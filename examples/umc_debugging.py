#!/usr/bin/env python3
"""UMC as a debugging aid: catching reads of uninitialized memory.

A function builds a record on its stack but forgets to initialize one
field before another routine consumes it — the classic heisenbug that
Purify-style tools hunt in software at a multi-x slowdown.  The UMC
extension catches the exact faulting load in hardware, and the example
also shows the use-after-free variant via the tag-clearing
co-processor instruction.
"""

from repro import assemble, create_extension, run_program

BUGGY = """
        .equ    REC, 0x20000            ! heap record: 4 fields
        .text
start:  call    make_record
        nop
        call    consume_record
        nop
        ta      0
        nop

make_record:
        set     REC, %o1
        mov     10, %o2
        st      %o2, [%o1]              ! field 0
        mov     20, %o2
        st      %o2, [%o1 + 4]          ! field 1
        mov     30, %o2
        st      %o2, [%o1 + 8]          ! field 2
        retl                            ! ... field 3 forgotten!
        nop

consume_record:
        set     REC, %o1
        ld      [%o1], %o2
        ld      [%o1 + 4], %o3
        add     %o2, %o3, %o2
        ld      [%o1 + 8], %o3
        add     %o2, %o3, %o2
        ld      [%o1 + 12], %o3         ! reads the missing field
        add     %o2, %o3, %o2
        set     total, %o4
        st      %o2, [%o4]
        retl
        nop

        .data
total:  .word   0
"""

USE_AFTER_FREE = """
        .equ    OBJ, 0x21000
        .text
start:  set     OBJ, %g1
        mov     99, %o0
        st      %o0, [%g1]              ! construct
        ld      [%g1], %o1              ! legitimate use
        fxuntagm %g1, %g0               ! free(): software clears the tag
        ld      [%g1], %o2              ! use after free
        ta      0
        nop
"""


def main() -> None:
    program = assemble(BUGGY, entry="start")
    result = run_program(program, create_extension("umc"))
    print("--- forgotten field ---")
    print(f"trap: {result.trap}")
    assert result.trap is not None
    assert result.trap.addr == 0x20000 + 12, "field 3 is the culprit"
    offset = result.trap.pc - program.symbol("consume_record")
    print(f"the trap PC is consume_record+{offset:#x} — the load of "
          f"field 3, exactly the buggy line.")

    print("\n--- use after free ---")
    result = run_program(assemble(USE_AFTER_FREE, entry="start"),
                         create_extension("umc"))
    print(f"trap: {result.trap}")
    assert result.trap is not None

    print("\n--- fixed program (field 3 initialized) ---")
    fixed = BUGGY.replace(
        "        retl                            ! ... field 3 forgotten!",
        "        mov     40, %o2\n"
        "        st      %o2, [%o1 + 12]         ! field 3\n"
        "        retl",
    )
    result = run_program(assemble(fixed, entry="start"),
                         create_extension("umc"))
    print(f"trap: {result.trap}, total = {result.word('total')}")
    assert result.trap is None and result.word("total") == 100


if __name__ == "__main__":
    main()
