#!/usr/bin/env python3
"""DIFT catching a control-flow hijack from untrusted input.

Scenario (the classic DIFT motivation, Section II-B): a server copies
a network packet into a buffer, and a bug lets the packet overwrite a
function pointer.  The OS tags the I/O buffer as tainted with the
explicit co-processor instructions; the taint then propagates through
the copy entirely in hardware, and the moment the program jumps
through the overwritten pointer, the fabric raises TRAP.

Run both the benign and the attack packet to see the difference.
"""

from repro import assemble, create_extension, run_program

SOURCE = """
        .equ    PKT, 0x20000            ! "network" buffer (tainted)
        .text
        ! --- kernel network driver: writes the packet and taints it ---
start:  set     PKT, %g1
        set     packet, %g2
        mov     8, %g3                  ! packet length in words
copy_in:
        ld      [%g2], %l0
        st      %l0, [%g1]
        fxtagm  %g1, %g0                ! mark the word as untrusted I/O
        add     %g1, 4, %g1
        add     %g2, 4, %g2
        subcc   %g3, 1, %g3
        bne     copy_in
        nop

        ! --- buggy application: copies packet over its own state, ---
        ! --- including the adjacent function pointer (overflow).  ---
        set     PKT, %g1
        set     handler_slot, %g2
        ld      [%g1 + 28], %l0         ! last packet word
        st      %l0, [%g2]              ! overwrites the handler pointer

        ! --- dispatch through the (possibly clobbered) pointer ---
        ld      [%g2], %l1
        jmpl    %l1, %o7                ! DIFT checks this jump
        nop
        ta      0
        nop

handler:
        retl                            ! the legitimate handler
        nop

        .data
handler_slot:
        .word   handler                 ! function pointer
packet: .space  32                      ! filled in by main() below
"""


def run(packet_words, label):
    program = assemble(SOURCE, entry="start")
    # Place the packet payload into the program image.
    base = program.symbol("packet") - program.data_base
    data = bytearray(program.data)
    for i, word in enumerate(packet_words):
        data[base + 4 * i: base + 4 * i + 4] = word.to_bytes(4, "big")
    program.data = bytes(data)

    result = run_program(program, create_extension("dift"),
                         clock_ratio=0.5)
    print(f"--- {label} ---")
    if result.trap is None:
        print("program completed normally")
    else:
        print(f"ATTACK DETECTED: {result.trap}")
    print()
    return result


def main() -> None:
    program = assemble(SOURCE, entry="start")
    handler = program.symbol("handler")

    # A benign packet whose last word happens to equal the legitimate
    # handler address: the jump target is *correct* but still tainted
    # data — exactly the attack DIFT is designed to refuse.
    benign = [0x11111111] * 7 + [handler]
    attack = [0x11111111] * 7 + [0x00001000]  # attacker-chosen address

    result = run(attack, "attack packet (pointer clobbered)")
    assert result.trap is not None and result.trap.kind == "tainted-jump"

    result = run(benign, "benign-looking packet (still tainted data)")
    assert result.trap is not None, "DIFT rejects any tainted jump target"

    print("both jumps used untrusted input as a control-flow target; "
          "DIFT trapped them before the jump committed.")


if __name__ == "__main__":
    main()
