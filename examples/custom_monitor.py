#!/usr/bin/env python3
"""Writing a new monitoring extension against the public API.

The whole point of FlexCore (vs. MemTracker/FlexiTaint-style fixed-
function monitors) is that the fabric is *general*: a new technique is
just a new bitstream.  In the reproduction, a new technique is a new
``MonitorExtension`` subclass.  This example builds a heap
write-set profiler — it watches every store, histograms them by
address region, and flags writes into a configurable "red zone" — and
shows that the same cost models immediately report its area, power and
achievable clock on the fabric.
"""

from repro import assemble, run_program
from repro.extensions import MonitorExtension, PacketOutcome
from repro.fabric import (
    LogicNetwork,
    Prim,
    synthesize_fabric,
)
from repro.flexcore import ForwardConfig, ForwardPolicy, TracePacket
from repro.isa import STORE_CLASSES, FlexOpf, InstrClass


class WriteProfiler(MonitorExtension):
    """Histogram stores by 4-KB region; trap on red-zone writes."""

    name = "writeprof"
    description = "store-address profiler with a red zone"
    register_tag_bits = 0
    memory_tag_bits = 0

    def __init__(self):
        super().__init__()
        self.histogram: dict[int, int] = {}
        self.red_zone = (0, 0)  # [lo, hi), set via SET_POLICY pairs

    def forward_config(self) -> ForwardConfig:
        config = ForwardConfig()
        config.set_classes(STORE_CLASSES, ForwardPolicy.ALWAYS)
        config.set(InstrClass.FLEX, ForwardPolicy.ALWAYS)
        return config

    def process(self, packet: TracePacket) -> PacketOutcome:
        if packet.opcode == InstrClass.FLEX:
            outcome = self.handle_flex(packet)
            if packet.opf == FlexOpf.SET_TAGVAL:
                # Reuse the tagval op to set the red zone: srcv1 = lo,
                # srcv2 = hi.  Extensions own their opf semantics.
                self.red_zone = (packet.srcv1, packet.srcv2)
            return outcome

        outcome = PacketOutcome()
        region = packet.addr >> 12
        self.histogram[region] = self.histogram.get(region, 0) + 1
        lo, hi = self.red_zone
        if lo <= packet.addr < hi:
            outcome.trap = self.trap(
                packet, "red-zone-write",
                f"store into protected region at {packet.addr:#x}",
                addr=packet.addr,
            )
        return outcome

    def status_word(self) -> int:
        return sum(self.histogram.values()) & 0xFFFFFFFF

    def hardware(self) -> LogicNetwork:
        """Cost sketch: two range comparators, a counter RAM indexed
        by address bits, and the usual FIFO handshake."""
        net = LogicNetwork(self.name, pipeline_stages=3)
        net.add(Prim.COMPARATOR_MAG, width=32, count=2,
                label="red-zone range check")
        net.add(Prim.LUTRAM, width=16, depth=64, label="region counters")
        net.add(Prim.ADDER, width=16, label="counter increment")
        net.add(Prim.GATE, width=24, label="control FSM")
        net.add(Prim.REGISTER, width=40, count=3, label="pipeline regs")
        return net


SOURCE = """
        .text
start:  set     0x20000, %g1            ! normal heap writes
        mov     24, %g2
w1:     st      %g2, [%g1]
        add     %g1, 4, %g1
        subcc   %g2, 1, %g2
        bne     w1
        nop

        set     0x7000, %l0             ! red zone lo
        set     0x8000, %l1             ! red zone hi
        flex    0x14, %l0, %l1          ! SET_TAGVAL -> red zone bounds

        set     0x30000, %g1            ! a second region
        mov     8, %g2
w2:     st      %g2, [%g1]
        add     %g1, 64, %g1
        subcc   %g2, 1, %g2
        bne     w2
        nop

        set     0x7100, %g1             ! stray write into the red zone
        st      %g2, [%g1]
        ta      0
        nop
"""


def main() -> None:
    extension = WriteProfiler()
    result = run_program(assemble(SOURCE, entry="start"), extension,
                         clock_ratio=0.5)

    print("write histogram (4-KB regions):")
    for region in sorted(extension.histogram):
        print(f"  {region << 12:#10x}: {extension.histogram[region]:4d} "
              f"stores")
    print(f"\ntrap: {result.trap}")
    assert result.trap is not None and result.trap.kind == "red-zone-write"

    report = synthesize_fabric(extension)
    print(f"\nfabric synthesis of the new monitor: {report.luts} LUTs, "
          f"{report.area_um2 / 1e3:.0f}k um^2, {report.fmax_mhz:.0f} MHz "
          f"(supports a {report.clock_ratio}x fabric clock), "
          f"{report.power_mw:.0f} mW")
    print("no silicon was harmed: the same chip runs UMC tomorrow.")


if __name__ == "__main__":
    main()
