#!/usr/bin/env python3
"""Quickstart: assemble a program, run it bare, then run it monitored.

This walks the core FlexCore flow end to end:

1. write a small SPARC-subset program and assemble it;
2. run it on the bare Leon3-like core (the baseline);
3. attach the DIFT extension behind the core-fabric interface at the
   fabric clock the synthesis model supports (0.5X) and run it again;
4. compare cycles and look at what the interface actually forwarded.
"""

from repro import assemble, create_extension, run_program

SOURCE = """
        .text
        ! Sum an array, then scale every element in place.
start:  set     array, %g1
        set     16, %g2                 ! element count
        clr     %o0                     ! sum
        clr     %g3
sum:    sll     %g3, 2, %l0
        ld      [%g1 + %l0], %l1
        add     %o0, %l1, %o0
        add     %g3, 1, %g3
        cmp     %g3, %g2
        bne     sum
        nop

        clr     %g3
scale:  sll     %g3, 2, %l0
        ld      [%g1 + %l0], %l1
        smul    %l1, 3, %l1
        st      %l1, [%g1 + %l0]
        add     %g3, 1, %g3
        cmp     %g3, %g2
        bne     scale
        nop

        set     result, %l2
        st      %o0, [%l2]
        ta      0                       ! exit
        nop

        .data
array:  .word   1, 2, 3, 4, 5, 6, 7, 8
        .word   9, 10, 11, 12, 13, 14, 15, 16
result: .word   0
"""


def main() -> None:
    program = assemble(SOURCE, entry="start")
    print(f"assembled {len(program.text)} instructions, "
          f"{len(program.data)} data bytes")

    baseline = run_program(program)
    print(f"\nbaseline:  {baseline.cycles} cycles for "
          f"{baseline.instructions} instructions "
          f"(CPI {baseline.cpi:.2f})")
    print(f"array sum = {baseline.word('result')}")

    monitored = run_program(program, create_extension("dift"),
                            clock_ratio=0.5)
    stats = monitored.interface_stats
    print(f"\nwith DIFT: {monitored.cycles} cycles "
          f"({monitored.cycles / baseline.cycles:.2f}x)")
    print(f"forwarded {stats.forwarded} of {stats.committed} committed "
          f"instructions ({stats.forwarded_fraction:.0%}) to the fabric")
    print(f"commit stalled {stats.fifo_stall_cycles} cycles on a full "
          f"FIFO; fabric stalled {stats.meta_stall_cycles:.0f} cycles "
          f"on meta-data misses")
    print(f"monitor trap: {monitored.trap}")


if __name__ == "__main__":
    main()
