#!/usr/bin/env python3
"""Beyond the paper's four prototypes: field-upgrading the fabric.

The FlexCore pitch is that monitors ship *after* the chip does.  This
example "reprograms" the same simulated system twice in one process:

1. a return-address shadow stack that catches a smashed saved return
   address the moment the `ret` commits;
2. hardware watchpoints over a heap range, armed by software.

It also shows the disassembler, which makes the trap reports readable.
"""

from repro import assemble, run_program
from repro.extensions import ShadowStack, Watchpoints
from repro.fabric import synthesize_fabric
from repro.isa import disassemble_program

VICTIM = """
        .text
start:  call    process_request
        nop
        ta      0
        nop

process_request:
        save    %sp, -96, %sp
        ! ... a stack-smashing bug corrupts the saved return address:
        set     attacker_code, %i7
        sub     %i7, 8, %i7
        ret
        restore

attacker_code:
        ta      0
        nop
"""

HEAP_BUG = """
        .equ    OBJ, 0x20000
        .text
start:  mov     3, %g2                  ! watch mode: read | write
        fxval   %g2
        set     OBJ, %g1
        set     OBJ+16, %g3
        fxtagm  %g1, %g3                ! watch the object's header

        set     OBJ+32, %g4             ! normal traffic elsewhere
        mov     10, %o0
w1:     st      %o0, [%g4]
        add     %g4, 4, %g4
        subcc   %o0, 1, %o0
        bne     w1
        nop

        mov     0x55, %o1
        st      %o1, [%g1 + 8]          ! the corrupting write
        ta      0
        nop
"""


def main() -> None:
    print("=== monitor 1: shadow stack ===")
    program = assemble(VICTIM, entry="start")
    print("victim function:")
    print(disassemble_program(program, limit=10))
    extension = ShadowStack()
    result = run_program(program, extension, clock_ratio=0.5)
    print(f"\ntrap: {result.trap}")
    assert result.trap is not None
    assert result.trap.kind == "return-address-mismatch"

    report = synthesize_fabric(extension)
    print(f"costs {report.luts} LUTs at {report.fmax_mhz:.0f} MHz — "
          f"the CFGR forwards only calls and returns, so the overhead "
          f"is negligible.")

    print("\n=== monitor 2 (same fabric, new bitstream): watchpoints ===")
    extension = Watchpoints()
    result = run_program(assemble(HEAP_BUG, entry="start"), extension,
                         clock_ratio=0.5)
    print(f"trap: {result.trap}")
    assert result.trap is not None
    assert result.trap.kind == "watchpoint-write"
    print("the stray write into the watched header was pinpointed "
          "without any single-stepping or page-protection tricks.")


if __name__ == "__main__":
    main()
