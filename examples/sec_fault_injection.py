#!/usr/bin/env python3
"""Soft-error checking: a fault-injection *campaign* against SEC.

The SEC co-processor re-executes every ALU operation from the operand
values in the trace packet (Argus-style) and compares.  Instead of the
old hand-rolled loop, this example drives the campaign subsystem
(`repro.faultinject`): a golden run profiles the kernel, then each
faulted run flips one random result bit of one random dynamic ALU
instruction — simulating a particle strike on the ALU output latch —
under a watchdog that would classify crashes and hangs gracefully.
The coverage report classifies every run as MASKED / DETECTED / SDC /
CRASH / HANG.
"""

from repro.faultinject import Campaign, CampaignConfig, Outcome

SOURCE = """
        .text
start:  set     0x1234, %o0
        mov     64, %o1
loop:   xor     %o0, %o1, %o2
        add     %o2, 17, %o2
        sll     %o2, 3, %o3
        srl     %o2, 5, %o4
        or      %o3, %o4, %o0
        umul    %o0, 13, %o5
        subcc   %o1, 1, %o1
        bne     loop
        nop
        set     checksum, %o1
        st      %o0, [%o1]
        ta      0
        nop
        .data
checksum: .word 0
"""

TRIALS = 50


def main() -> None:
    campaign = Campaign(CampaignConfig(
        extension="sec",
        source=SOURCE,
        faults=TRIALS,
        seed=42,
        models=("alu-result",),  # single-bit ALU output strikes
    ))
    print(f"kernel executes {campaign.profile.alu_commits} ALU "
          f"instructions\n")

    report = campaign.run()
    print(report.format())

    detected = report.counts()[Outcome.DETECTED]
    # Bit-exact re-execution catches every single-bit fault on
    # add/sub/logic/shift; only multiply faults that happen to preserve
    # the mod-7 residue could escape, and single-bit flips never do
    # (powers of two are never multiples of 7).
    assert detected == TRIALS, f"only {detected}/{TRIALS} detected"
    print("\nevery single-bit fault was caught — flips never preserve "
          "the mod-7 residue, so even the checksum-checked multiplies "
          "cannot hide them.")


if __name__ == "__main__":
    main()
