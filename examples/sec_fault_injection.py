#!/usr/bin/env python3
"""Soft-error checking: injecting transient ALU faults and watching
the SEC extension catch them.

The SEC co-processor re-executes every ALU operation from the operand
values in the trace packet (Argus-style) and compares.  We run a
compute kernel many times, each time flipping one random result bit of
one random dynamic ALU instruction — simulating a particle strike on
the ALU output latch — and measure the detection rate.
"""

import random

from repro import assemble, create_extension
from repro.flexcore import FlexCoreSystem
from repro.isa import ALU_CLASSES

SOURCE = """
        .text
start:  set     0x1234, %o0
        mov     64, %o1
loop:   xor     %o0, %o1, %o2
        add     %o2, 17, %o2
        sll     %o2, 3, %o3
        srl     %o2, 5, %o4
        or      %o3, %o4, %o0
        umul    %o0, 13, %o5
        subcc   %o1, 1, %o1
        bne     loop
        nop
        ta      0
        nop
"""


def count_alu_ops() -> int:
    program = assemble(SOURCE, entry="start")
    system = FlexCoreSystem(program, create_extension("sec"),
                            config=None)
    seen = {"n": 0}
    system.record_hooks.append(
        lambda r: seen.__setitem__(
            "n", seen["n"] + (r.instr_class in ALU_CLASSES))
    )
    system.run()
    return seen["n"]


def inject_one(target_index: int, bit: int):
    program = assemble(SOURCE, entry="start")
    extension = create_extension("sec")
    system = FlexCoreSystem(program, extension)
    state = {"alu": 0}

    def flip(record):
        if record.instr_class in ALU_CLASSES:
            state["alu"] += 1
            if state["alu"] == target_index:
                record.result ^= 1 << bit

    system.record_hooks.append(flip)
    return system.run(), extension


def main() -> None:
    total_alu = count_alu_ops()
    print(f"kernel executes {total_alu} ALU instructions\n")

    rng = random.Random(42)
    trials = 50
    detected = 0
    for _ in range(trials):
        index = rng.randrange(1, total_alu + 1)
        bit = rng.randrange(32)
        result, extension = inject_one(index, bit)
        if result.trap is not None:
            detected += 1

    print(f"injected {trials} single-bit ALU faults: "
          f"{detected} detected ({detected / trials:.0%})")
    # Bit-exact re-execution catches every single-bit fault on
    # add/sub/logic/shift; only multiply faults that happen to preserve
    # the mod-7 residue could escape, and single-bit flips never do
    # (powers of two are never multiples of 7).
    assert detected == trials
    print("every single-bit fault was caught — flips never preserve "
          "the mod-7 residue, so even the checksum-checked multiplies "
          "cannot hide them.")


if __name__ == "__main__":
    main()
