#!/usr/bin/env python3
"""A monitor defined *entirely* by an MDL spec — no Python subclass.

``redzone.mdl`` (next to this file) describes a store-only heap
red-zone checker: an allocator arms guard words around each
allocation with ``fxtagm``; any store that lands on an armed word is
a buffer overrun and traps immediately.  This example compiles the
spec, shows the derived forwarding policy (loads are never forwarded
— the compiler saw only store rules), runs an overflowing program
against the compiled monitor, and prices the same spec through the
Table-III fabric cost models.
"""

from pathlib import Path

from repro import assemble, run_program
from repro.fabric import synthesize_fabric
from repro.isa import LOAD_CLASSES
from repro.mdl import load_spec

SPEC = Path(__file__).resolve().parent / "redzone.mdl"

HEAP = 0x30000
ARRAY_WORDS = 4
GUARD = HEAP + 4 * ARRAY_WORDS  # the word right past the allocation

#: malloc() colours the region: 4 payload words, then an armed guard.
#: The overflowing loop writes ARRAY_WORDS + 1 words — classic
#: off-by-one — and the 5th store lands on the guard.
OVERFLOW = f"""
        .text
start:  set     {GUARD:#x}, %g1
        fxtagm  %g1, %g0            ! arm the red zone
        set     {HEAP:#x}, %o0      ! p = malloc(4 words)
        mov     {ARRAY_WORDS + 1}, %o1
fill:   st      %g0, [%o0]          ! p[i] = 0
        add     %o0, 4, %o0
        subcc   %o1, 1, %o1
        bne     fill
        nop
        ta      0
        nop
"""


def main() -> None:
    program = load_spec(SPEC)
    print(f"compiled: {program.name} — {program.ir.description}")

    forwarded = program.forward_config().forwarded_classes()
    assert not forwarded & set(LOAD_CLASSES)
    print(f"forwards {len(forwarded)} instruction classes, "
          f"zero load-side FIFO traffic")

    result = run_program(assemble(OVERFLOW, entry="start"),
                         program.create())
    assert result.trap is not None, "the overflow must be caught"
    assert result.trap.kind == "red-zone-write"
    assert result.trap.addr == GUARD
    print(f"overflow detected: {result.trap}")

    report = synthesize_fabric(program.create())
    print(f"fabric cost: {report.luts} LUTs, "
          f"{report.area_um2:,.0f} um^2 "
          f"({report.area_overhead:.1%} over the baseline core), "
          f"{report.fmax_mhz:.0f} MHz")


if __name__ == "__main__":
    main()
