#!/usr/bin/env python3
"""Array bound checking catching a heap buffer overflow.

A colour-tagging malloc (after Clause et al., the scheme the paper's
BC prototype implements) assigns each allocation a colour, marks the
pointer and the memory words with the co-processor instructions, and
the fabric then checks every access.  A copy loop with an off-by-one
walks off the end of its destination array into its neighbour and is
caught at the exact out-of-bounds store.
"""

from repro import assemble, create_extension, run_program

SOURCE = """
        .equ    HEAP_A, 0x30000         ! dst: 8 words, colour 3
        .equ    HEAP_B, 0x30020         ! src: 9 words, colour 5 (adjacent!)
        .text
start:
        ! --- malloc(32) -> colour 3: colour the region and pointer ---
        mov     3, %g1
        fxval   %g1
        set     HEAP_A, %o0
        mov     8, %g2
        mov     %o0, %g3
mk_a:   fxcolorm %g3, %g0
        add     %g3, 4, %g3
        subcc   %g2, 1, %g2
        bne     mk_a
        nop
        fxcolorp %o0                    ! dst pointer gets colour 3

        ! --- malloc(36) -> colour 5 ---
        mov     5, %g1
        fxval   %g1
        set     HEAP_B, %o1
        mov     9, %g2
        mov     %o1, %g3
mk_b:   fxcolorm %g3, %g0
        add     %g3, 4, %g3
        subcc   %g2, 1, %g2
        bne     mk_b
        nop
        fxcolorp %o1                    ! src pointer gets colour 5

        ! --- fill src with data (in bounds, colour 5 vs 5: fine) ---
        clr     %g2
fill:   sll     %g2, 2, %l0
        add     %g2, 100, %l1
        st      %l1, [%o1 + %l0]
        add     %g2, 1, %g2
        cmp     %g2, 9
        bne     fill
        nop

        ! --- buggy copy: dst has 8 words but the loop runs i <= 8 ---
        clr     %g2
copy:   sll     %g2, 2, %l0
        ld      [%o1 + %l0], %l1        ! src[i]
        st      %l1, [%o0 + %l0]        ! dst[i]  (i = 8 overflows!)
        add     %g2, 1, %g2
        cmp     %g2, 9
        bne     copy
        nop

        ta      0
        nop
"""


def main() -> None:
    program = assemble(SOURCE, entry="start")
    result = run_program(program, create_extension("bc"),
                         clock_ratio=0.5)
    print(f"trap: {result.trap}")
    assert result.trap is not None
    assert result.trap.kind == "out-of-bounds-write"
    # dst[8] is the first word *past* HEAP_A — which is HEAP_B[0].
    assert result.trap.addr == 0x30020
    print("\nthe 9th store landed on the neighbouring allocation "
          "(colour 5) while the pointer carries colour 3 — the fabric "
          "raised TRAP on the exact overflowing store.")
    print("\nNote what software-only checking would cost here: the "
          "paper cites up to 1.69x for compiler bound checks, while "
          "Table IV puts BC on FlexCore at ~1.17x.")


if __name__ == "__main__":
    main()
