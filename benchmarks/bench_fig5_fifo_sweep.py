"""Figure 5: average FlexCore performance vs forward-FIFO size.

Sweeps the FIFO depth from 8 to 256 entries: the knee is at 64 (the
paper's chosen size); smaller FIFOs hurt noticeably while bigger ones
give marginal benefit.  Also reports the FIFO silicon area, which
grows only ~10% from 16 to 64 entries because the SRAM periphery
dominates (Section V-C).
"""

from benchmarks.conftest import run_once
from repro.evaluation import format_figure5, run_figure5


def test_figure5_fifo_size_sweep(benchmark, bench_scale,
                                 bench_engine):
    result = run_once(benchmark, run_figure5, scale=bench_scale,
                      engine=bench_engine)
    print()
    print(format_figure5(result))
