"""Table IV: normalized execution time per benchmark, extension, and
fabric clock ratio (1X = the full-ASIC comparison point, 0.5X/0.25X =
the synthesised fabric clocks).

This is the headline result: FlexCore monitoring costs within a few
percent of ASIC integrations for UMC, ~17-18% for DIFT/BC at half the
core clock, and SEC needs a quarter clock.
"""

from benchmarks.conftest import run_once
from repro.evaluation import format_table4, run_table4


def test_table4_normalized_execution_time(benchmark, bench_scale,
                                          bench_engine):
    result = run_once(benchmark, run_table4, scale=bench_scale,
                      engine=bench_engine)
    print()
    print(format_table4(result))
