"""Section V-C: software monitoring comparison.

Runs the same monitors as compiler/DBI-style instrumentation on the
main core: optimized DIFT (LIFT-style, paper cites 3.6x), naive taint
tracking (up to 37x), Purify-style UMC (up to 5.5x), and software
bound checks (up to 1.69x) — versus ~1.0-1.2x on the fabric.
"""

from benchmarks.conftest import run_once
from repro.evaluation import format_software, run_software


def test_software_monitoring_slowdowns(benchmark, bench_scale):
    slowdowns = run_once(benchmark, run_software, scale=bench_scale)
    print()
    print(format_software(slowdowns))
