"""Submit→result latency of the job service, observability off/on.

Hosts a real :class:`~repro.service.server.JobServer` in-process
(thread-hosted event loop, Unix socket — the same harness the service
tests use) and drives a stream of small ``run`` jobs through it three
ways:

* **bare**    — ``metrics=False, forensics=False``: the registry is
  the null object, no tracing, no bundles;
* **metrics** — the default service configuration (metrics registry
  plus SLO tracking and forensics armed);
* **trace**   — full end-to-end tracing on top of metrics.

Each mode reports submit→result wall-clock percentiles and the mode's
overhead ratio versus *bare*.  The result documents of all three
modes must be byte-identical — observability observes, never
perturbs; the script asserts it the same way CI's obs-smoke job does.

Run as a script to emit ``BENCH_service.json``::

    PYTHONPATH=src python benchmarks/bench_service_latency.py
"""

from __future__ import annotations

import asyncio
import json
import sys
import threading
import time

from repro.service import Client, JobServer, ServerConfig

MODES = ("bare", "metrics", "trace")

#: one tiny spec for every job: the point is the service's per-job
#: overhead, not simulation time.  The service dedups identical
#: (tenant, kind, spec) triples, so each job submits under its own
#: tenant to get a fresh job id for the same work.
JOB_SPEC = {"workload": "crc32", "extension": "sec", "scale": 0.03125}


def _config(mode: str) -> ServerConfig:
    if mode == "bare":
        return ServerConfig(heartbeat=0.1, metrics=False,
                            forensics=False)
    if mode == "metrics":
        return ServerConfig(heartbeat=0.1, slo=30.0)
    return ServerConfig(heartbeat=0.1, slo=30.0, trace=True)


class HostedServer:
    """A JobServer on a side-thread event loop (benchmark-local)."""

    def __init__(self, root, mode: str):
        self.address = str(root / "sock")
        self.server = JobServer(root / "state", self.address,
                                _config(mode))
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self._host, daemon=True)

    def _host(self):
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.server.start())
        self.loop.run_until_complete(self.server.serve_forever())
        self.loop.close()

    def __enter__(self) -> "HostedServer":
        self.thread.start()
        deadline = time.monotonic() + 30
        while not self.server.ready:
            if time.monotonic() > deadline:
                raise TimeoutError("server did not become ready")
            time.sleep(0.01)
        return self

    def __exit__(self, *exc) -> None:
        future = asyncio.run_coroutine_threadsafe(
            self.server.stop(), self.loop)
        future.result(timeout=30)
        self.thread.join(timeout=30)


def percentile(ordered: list[float], q: float) -> float:
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def measure(root, mode: str, jobs: int) -> dict:
    latencies: list[float] = []
    documents: list[str] = []
    with HostedServer(root / mode, mode) as hosted:
        # warm the toolchain caches outside the timed window
        with Client(hosted.address, tenant="warmup") as client:
            warm = client.submit("run", JOB_SPEC)
            client.wait(warm["job_id"], deadline=120)
        for n in range(jobs):
            with Client(hosted.address, tenant=f"t{n}") as client:
                start = time.perf_counter()
                response = client.submit("run", JOB_SPEC)
                client.wait(response["job_id"], deadline=120)
                latencies.append(time.perf_counter() - start)
                documents.append(
                    client.result(response["job_id"])["document"])
    ordered = sorted(latencies)
    return {
        "mode": mode,
        "jobs": jobs,
        "p50": round(percentile(ordered, 0.50), 4),
        "p95": round(percentile(ordered, 0.95), 4),
        "p99": round(percentile(ordered, 0.99), 4),
        "mean": round(sum(ordered) / len(ordered), 4),
        "documents": documents,
    }


def main(argv: list[str] | None = None) -> int:
    import tempfile
    from pathlib import Path

    args = argv if argv is not None else sys.argv[1:]
    jobs = int(args[0]) if args else 12

    rows = []
    with tempfile.TemporaryDirectory() as scratch:
        for mode in MODES:
            rows.append(measure(Path(scratch), mode, jobs))

    # the invariance gate: every mode produced byte-identical result
    # documents for the same specs
    for row in rows[1:]:
        if row["documents"] != rows[0]["documents"]:
            raise AssertionError(
                f"observability perturbed results: mode "
                f"{row['mode']!r} differs from bare"
            )
    for row in rows:
        del row["documents"]

    bare = rows[0]["mean"]
    document = {
        "benchmark": "service_latency",
        "jobs": jobs,
        "spec": JOB_SPEC,
        "target": "metrics+trace mean within ~1.05x of bare",
        "modes": rows,
        "overhead_vs_bare": {
            row["mode"]: round(row["mean"] / bare, 4) for row in rows
        },
        "documents_identical": True,
    }
    with open("BENCH_service.json", "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(f"{'mode':<10}{'p50':>9}{'p95':>9}{'p99':>9}{'mean':>9}"
          f"{'vs bare':>9}")
    for row in rows:
        ratio = document["overhead_vs_bare"][row["mode"]]
        print(f"{row['mode']:<10}{row['p50']:>8.3f}s"
              f"{row['p95']:>8.3f}s{row['p99']:>8.3f}s"
              f"{row['mean']:>8.3f}s{ratio:>8.2f}x")
    print("written: BENCH_service.json")
    return 0


if __name__ == "__main__":
    sys.exit(main())
