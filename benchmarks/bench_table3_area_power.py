"""Table III: area, power and frequency of every implementation.

Regenerates all three columns for the baseline Leon3, the four
full-ASIC integrations, the dedicated FlexCore modules, and the four
extensions mapped onto the reconfigurable fabric — side by side with
the numbers published in the paper.
"""

from benchmarks.conftest import run_once
from repro.evaluation import format_table3, run_table3


def test_table3_area_power_frequency(benchmark):
    result = run_once(benchmark, run_table3)
    print()
    print(format_table3(result))
