"""Section III-C ablation: core-side instruction pre-decoding.

The paper: "our DIFT prototype can run 30% faster by performing the
instruction decoding for operands and control signals on the core
side".  We run DIFT with the pre-decoded packet fields and with the
decode pushed onto the fabric (one extra fabric cycle per packet).
"""

from benchmarks.conftest import run_once
from repro.evaluation import geomean, run_decode_ablation


def test_decode_ablation_dift(benchmark, bench_scale):
    ablation = run_once(benchmark, run_decode_ablation, scale=bench_scale)
    print()
    print(f"{'Benchmark':14s}{'pre-decoded':>12s}{'fabric-decode':>14s}"
          f"{'penalty':>9s}")
    for bench, (with_decode, without) in ablation.items():
        print(f"{bench:14s}{with_decode:12.2f}{without:14.2f}"
              f"{without / with_decode - 1:9.1%}")
    with_gm = geomean(v[0] for v in ablation.values())
    without_gm = geomean(v[1] for v in ablation.values())
    print(f"{'geomean':14s}{with_gm:12.2f}{without_gm:14.2f}"
          f"{without_gm / with_gm - 1:9.1%}")
