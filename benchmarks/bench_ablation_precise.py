"""Ablation: decoupled vs precise-exception commit (Section III-C).

The paper argues the decoupling through FIFOs is what hides fabric
latency: extensions that terminate on a trap don't need precise
exceptions, so the commit never waits for an acknowledgment.  This
ablation turns the conservative always-ack mode on and measures what
the decoupling buys.
"""

from benchmarks.conftest import run_once
from repro.evaluation import geomean
from repro.evaluation.config import experiment_system_config
from repro.extensions import create_extension
from repro.flexcore import FlexCoreSystem
from repro.workloads import build_workload, workload_names


def sweep(scale):
    rows = {}
    for bench in workload_names():
        workload = build_workload(bench, scale)
        baseline = FlexCoreSystem(workload.build()).run().cycles
        row = {}
        for precise in (False, True):
            config = experiment_system_config(clock_ratio=0.5)
            config.interface.precise_exceptions = precise
            run = FlexCoreSystem(
                workload.build(), create_extension("dift"), config
            ).run()
            row["precise" if precise else "decoupled"] = (
                run.cycles / baseline
            )
        rows[bench] = row
    return rows


def test_decoupling_ablation_dift(benchmark, bench_scale):
    rows = run_once(benchmark, sweep, bench_scale)
    print()
    print(f"{'Benchmark':14s}{'decoupled':>11s}{'precise':>9s}")
    for bench, row in rows.items():
        print(f"{bench:14s}{row['decoupled']:11.2f}{row['precise']:9.2f}")
    print(f"{'geomean':14s}"
          f"{geomean(r['decoupled'] for r in rows.values()):11.2f}"
          f"{geomean(r['precise'] for r in rows.values()):9.2f}")
