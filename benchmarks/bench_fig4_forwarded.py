"""Figure 4: percentage of committed instructions forwarded to the
reconfigurable fabric for each extension prototype.

UMC (loads/stores only) forwards the least; DIFT (loads, stores, ALU
ops, indirect jumps) the most; SEC forwards the ALU share.
"""

from benchmarks.conftest import run_once
from repro.evaluation import format_figure4, run_figure4


def test_figure4_forwarded_fraction(benchmark, bench_scale,
                                    bench_engine):
    fractions = run_once(benchmark, run_figure4, scale=bench_scale,
                         engine=bench_engine)
    print()
    print(format_figure4(fractions))
