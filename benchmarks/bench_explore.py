"""Cold vs warm design-space exploration: the cache does the work.

Evaluates the ``smoke`` preset space (2 workloads x 2 monitors x
2 FIFO depths -> 8 design points over 10 deduplicated simulations)
twice against the same state directory:

* **cold** — empty state dir, every sweep point simulates;
* **warm** — same state dir, every sweep point must come out of the
  on-disk outcome cache (``SweepRunner.cache_hits``).

Reports wall-clock for both passes, the warm pass's cache-hit ratio,
and asserts the two exploration reports are byte-identical — the
cache accelerates, it never changes the answer.

Run as a script to emit ``BENCH_explore.json``::

    PYTHONPATH=src python benchmarks/bench_explore.py
"""

from __future__ import annotations

import json
import sys
import time

from repro.explore import (
    ExplorationReport,
    PointEvaluator,
    full_factorial,
    load_space,
)

SPACE = "smoke"


def measure(space, state_dir) -> tuple[dict, str]:
    evaluator = PointEvaluator(space, state_dir=state_dir)
    points = full_factorial(space)
    start = time.perf_counter()
    evaluations = evaluator.evaluate(points)
    elapsed = time.perf_counter() - start
    report = ExplorationReport.build(space, "factorial", evaluations,
                                     coverage=False)
    sims = evaluator.runner.cache_hits + evaluator.runner.cache_misses
    row = {
        "seconds": round(elapsed, 4),
        "cache_hits": evaluator.runner.cache_hits,
        "cache_misses": evaluator.runner.cache_misses,
        "hit_ratio": round(evaluator.runner.cache_hits / sims, 4),
    }
    return row, report.to_json()


def main(argv: list[str] | None = None) -> int:
    import tempfile
    from pathlib import Path

    space = load_space(SPACE)
    with tempfile.TemporaryDirectory() as scratch:
        state = Path(scratch) / "explore-state"
        cold, cold_report = measure(space, state)
        warm, warm_report = measure(space, state)

    if warm_report != cold_report:
        raise AssertionError(
            "warm exploration diverged from cold: the sweep cache "
            "changed the answer")
    if warm["cache_misses"] != 0:
        raise AssertionError(
            f"warm exploration missed the cache "
            f"{warm['cache_misses']} time(s)")

    document = {
        "benchmark": "explore_cold_vs_warm",
        "space": SPACE,
        "design_points": space.size,
        "target": "warm pass all-cache-hits, report bit-identical",
        "cold": cold,
        "warm": warm,
        "speedup": round(cold["seconds"] / max(warm["seconds"], 1e-9),
                         2),
        "reports_identical": True,
    }
    with open("BENCH_explore.json", "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(f"{'pass':<6}{'seconds':>9}{'hits':>6}{'misses':>8}"
          f"{'hit ratio':>11}")
    for name, row in (("cold", cold), ("warm", warm)):
        print(f"{name:<6}{row['seconds']:>8.3f}s{row['cache_hits']:>6}"
              f"{row['cache_misses']:>8}{row['hit_ratio']:>10.0%}")
    print(f"speedup {document['speedup']}x, reports bit-identical")
    print("written: BENCH_explore.json")
    return 0


if __name__ == "__main__":
    sys.exit(main())
