"""Wall-clock overhead of the telemetry subsystem.

Measures the same monitored workload three ways:

* **off**  — ``telemetry=None`` (the default every benchmark and
  campaign uses): must stay within ~2% of the pre-telemetry seed,
  because the only added work is a handful of ``is not None`` checks
  on paths the timing model already branches on;
* **metrics** — counters/gauges/histograms enabled, no tracing;
* **trace** — full cycle-accurate event tracing into the ring buffer.

Run as a script to emit ``BENCH_telemetry.json``::

    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py

The JSON records per-mode wall-clock seconds (best of ``repeats``),
the overhead ratios versus *off*, and the run digest of each mode —
which must be identical across all three (telemetry observes, never
perturbs).
"""

from __future__ import annotations

import json
import sys
import time

from repro.extensions import create_extension
from repro.flexcore import run_program
from repro.telemetry import Telemetry, run_digest
from repro.workloads import build_workload

#: (workload, extension, clock ratio) — one FIFO-bound point and one
#: meta-data-bound point, so both hot paths are exercised.
SCENARIOS = (
    ("crc32", "sec", 0.25),
    ("sha", "dift", 0.5),
)

MODES = ("off", "metrics", "trace")


def _telemetry(mode: str) -> Telemetry | None:
    if mode == "off":
        return None
    return Telemetry.enabled(trace=(mode == "trace"))


def measure(workload: str, extension: str, ratio: float,
            scale: float, repeats: int) -> dict:
    program = build_workload(workload, scale).build()
    timings: dict[str, float] = {}
    digests: dict[str, str] = {}
    for mode in MODES:
        best = float("inf")
        for _ in range(repeats):
            telemetry = _telemetry(mode)
            start = time.perf_counter()
            result = run_program(
                program, create_extension(extension),
                clock_ratio=ratio, telemetry=telemetry,
            )
            best = min(best, time.perf_counter() - start)
        timings[mode] = best
        digests[mode] = run_digest(result)
    if len(set(digests.values())) != 1:
        raise AssertionError(
            f"telemetry perturbed the run: digests {digests}"
        )
    off = timings["off"]
    return {
        "workload": workload,
        "extension": extension,
        "clock_ratio": ratio,
        "seconds": {m: round(t, 4) for m, t in timings.items()},
        "overhead_vs_off": {
            m: round(timings[m] / off, 4) for m in MODES
        },
        "digest": digests["off"],
    }


def main(argv: list[str] | None = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    scale = float(args[0]) if args else 0.125
    repeats = int(args[1]) if len(args) > 1 else 3
    rows = [
        measure(workload, extension, ratio, scale, repeats)
        for workload, extension, ratio in SCENARIOS
    ]
    document = {
        "benchmark": "telemetry_overhead",
        "scale": scale,
        "repeats": repeats,
        "target": "off <= 1.02x of the untelemetered hot path",
        "scenarios": rows,
    }
    with open("BENCH_telemetry.json", "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    header = f"{'scenario':<16} " + "".join(f"{m:>10}" for m in MODES)
    print(header)
    for row in rows:
        label = f"{row['workload']}+{row['extension']}"
        print(f"{label:<16} " + "".join(
            f"{row['seconds'][m]:>9.3f}s" for m in MODES
        ))
        print(f"{'  vs off':<16} " + "".join(
            f"{row['overhead_vs_off'][m]:>9.2f}x" for m in MODES
        ))
    print("written: BENCH_telemetry.json")
    return 0


if __name__ == "__main__":
    sys.exit(main())
