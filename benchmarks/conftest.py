"""Benchmark harness configuration.

Each benchmark regenerates one table or figure of the paper and
prints it (run with ``pytest benchmarks/ --benchmark-only -s`` to see
the tables).  ``REPRO_BENCH_SCALE`` scales the workload sizes; the
default of 1.0 is the calibrated size whose results EXPERIMENTS.md
records.  Set it to 0.25 for a quick smoke run.

``REPRO_BENCH_ENGINE`` selects the execution loop for the
simulation-sweep benchmarks (Table IV, Figures 4/5): ``fast`` (the
default, the predecoded engine) or ``reference``.  Both produce
bit-identical results — ``repro bench`` proves it — so the choice
only moves wall clock.
"""

import os

import pytest

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
BENCH_ENGINE = os.environ.get("REPRO_BENCH_ENGINE", "fast")


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def bench_engine() -> str:
    return BENCH_ENGINE


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are deterministic simulations — repeated rounds
    would only re-measure the same work — so a single round keeps the
    suite's total runtime proportional to the paper's actual
    experiment matrix.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
