"""Core-to-fabric trace packet (the FFIFO entry of Table II).

Every committed instruction the CFGR selects is turned into one packet
carrying "fairly comprehensive information": the program counter, the
undecoded instruction word, effective address, result, source operand
values, condition codes, branch outcome — plus the *pre-decoded*
fields (opcode, register numbers, control signals) that Section III-C
credits with a 30% speedup for DIFT because the fabric no longer has
to implement a SPARC decoder in LUTs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.executor import CommitRecord
from repro.isa.opcodes import InstrClass

#: Field widths in bits, straight from Table II.  Used by the area
#: model to size the forward FIFO's SRAM.
PACKET_FIELD_BITS = {
    "PC": 32,
    "INST": 32,
    "ADDR": 32,
    "RES": 32,
    "SRCV1": 32,
    "SRCV2": 32,
    "COND": 4,
    "BRANCH": 1,
    "OPCODE": 5,
    "DECODE": 32,
    "EXTRA": 32,
    "SRC1": 9,
    "SRC2": 9,
    "DEST": 9,
}

PACKET_BITS = sum(PACKET_FIELD_BITS.values())


@dataclass(frozen=True)
class TracePacket:
    """One forward-FIFO entry."""

    pc: int
    inst: int  # raw instruction word (INST)
    addr: int  # load/store effective address or branch target (ADDR)
    res: int  # instruction result (RES)
    srcv1: int  # source operand values (SRCV1/SRCV2)
    srcv2: int
    cond: int  # packed condition codes (COND, 4 bits)
    branch: bool  # computed branch direction (BRANCH)
    opcode: InstrClass  # decoded instruction type (OPCODE, 5 bits)
    decode: int  # miscellaneous decoded signals (DECODE)
    extra: int  # extra processor control signals (EXTRA)
    src1: int  # decoded physical source register numbers (9 bits)
    src2: int
    dest: int  # decoded physical destination register number
    #: not a wire — kept so extensions can dispatch without re-decoding
    #: in the *simulator* even when modelling a fabric-side decoder.
    record: CommitRecord | None = None

    @classmethod
    def from_commit(cls, record: CommitRecord) -> "TracePacket":
        """Build the packet the interface module would assemble at the
        commit stage."""
        instr = record.instr
        # DECODE carries miscellaneous pre-decoded control signals; we
        # pack the fields a monitoring engine typically needs.
        decode = 0
        decode |= int(record.is_load) << 0
        decode |= int(record.is_store) << 1
        decode |= int(instr.use_imm) << 2
        decode |= (instr.opf & 0x1FF) << 3
        if record.is_load or record.is_store:
            decode |= (instr.access_size() & 0xF) << 12
        decode |= int(record.carry_before) << 16
        return cls(
            pc=record.pc,
            inst=record.word,
            addr=record.addr,
            res=record.result,
            srcv1=record.srcv1,
            srcv2=record.srcv2,
            cond=record.cond,
            branch=record.branch_taken,
            opcode=record.instr_class,
            decode=decode,
            extra=record.y_before,
            src1=record.src1_phys,
            src2=record.src2_phys,
            dest=record.dest_phys,
            record=record,
        )

    @property
    def opf(self) -> int:
        """Flex sub-opcode, recovered from the DECODE field."""
        return (self.decode >> 3) & 0x1FF

    @property
    def is_load(self) -> bool:
        return bool(self.decode & 1)

    @property
    def is_store(self) -> bool:
        return bool(self.decode & 2)

    @property
    def access_size(self) -> int:
        return (self.decode >> 12) & 0xF

    @property
    def carry_in(self) -> bool:
        """Incoming carry flag (pre-instruction), for addx/subx checks."""
        return bool(self.decode & (1 << 16))
