"""Forwarding configuration register (CFGR).

Table II: "Select a FIFO behavior for each instruction type: 1) ignore,
2) accept only if not full, 3) accept and proceed, 4) accept and wait
for an acknowledgement.  Contains 2 bits for each of the main 32
instruction types" — a 64-bit register.
"""

from __future__ import annotations

import enum

from repro.isa.opcodes import NUM_INSTR_CLASSES, InstrClass


class ForwardPolicy(enum.IntEnum):
    """Per-instruction-type FIFO behaviour (2 bits each)."""

    IGNORE = 0  # never forwarded
    BEST_EFFORT = 1  # forwarded only if a FIFO entry is free
    ALWAYS = 2  # forwarded; commit stalls while the FIFO is full
    ALWAYS_ACK = 3  # forwarded; commit waits for the co-processor ack


class ForwardConfig:
    """A decoded CFGR: one :class:`ForwardPolicy` per instruction type."""

    def __init__(
        self, default: ForwardPolicy = ForwardPolicy.IGNORE, **overrides
    ):
        self._policies = [default] * NUM_INSTR_CLASSES
        for name, policy in overrides.items():
            self.set(InstrClass[name.upper()], policy)

    def set(self, instr_class: InstrClass, policy: ForwardPolicy) -> None:
        self._policies[int(instr_class)] = ForwardPolicy(policy)

    def set_classes(self, classes, policy: ForwardPolicy) -> None:
        for instr_class in classes:
            self.set(instr_class, policy)

    def policy(self, instr_class: InstrClass) -> ForwardPolicy:
        return self._policies[int(instr_class)]

    def forwarded_classes(self) -> set[InstrClass]:
        """The instruction types this configuration forwards at all."""
        return {
            InstrClass(i)
            for i, policy in enumerate(self._policies)
            if policy != ForwardPolicy.IGNORE
        }

    # ------------------------------------------------------------------
    # 64-bit hardware encoding (2 bits per type, type 0 in bits 1:0).

    def encode(self) -> int:
        word = 0
        for i, policy in enumerate(self._policies):
            word |= int(policy) << (2 * i)
        return word

    @classmethod
    def decode(cls, word: int) -> "ForwardConfig":
        if not 0 <= word < (1 << 64):
            raise ValueError("CFGR encoding must fit in 64 bits")
        config = cls()
        for i in range(NUM_INSTR_CLASSES):
            config._policies[i] = ForwardPolicy((word >> (2 * i)) & 0b11)
        return config

    def __eq__(self, other) -> bool:
        if not isinstance(other, ForwardConfig):
            return NotImplemented
        return self._policies == other._policies

    def __repr__(self) -> str:
        active = {
            instr_class.name: self.policy(instr_class).name
            for instr_class in self.forwarded_classes()
        }
        return f"ForwardConfig({active})"
