"""FlexCore architecture: CFGR, trace packets, FIFOs, interface,
shadow meta-data state, and the top-level system."""

from repro.flexcore.cfgr import ForwardConfig, ForwardPolicy
from repro.flexcore.fifo import DecouplingFifo, FifoStats
from repro.flexcore.interface import (
    CoreFabricInterface,
    InterfaceConfig,
    InterfaceStats,
)
from repro.flexcore.packet import PACKET_BITS, PACKET_FIELD_BITS, TracePacket
from repro.flexcore.shadow import ShadowRegisterFile, TagStore
from repro.flexcore.system import (
    WATCHDOG_TERMINATIONS,
    FlexCoreSystem,
    RunResult,
    SystemConfig,
    Termination,
    run_program,
)

__all__ = [
    "CoreFabricInterface",
    "DecouplingFifo",
    "FifoStats",
    "FlexCoreSystem",
    "ForwardConfig",
    "ForwardPolicy",
    "InterfaceConfig",
    "InterfaceStats",
    "PACKET_BITS",
    "PACKET_FIELD_BITS",
    "RunResult",
    "ShadowRegisterFile",
    "SystemConfig",
    "TagStore",
    "Termination",
    "TracePacket",
    "WATCHDOG_TERMINATIONS",
    "run_program",
]
