"""Fabric-side meta-data state: shadow register file and memory tags.

Section III-E: "Our reconfigurable fabric also includes an embedded
meta-data register file, which is implemented with custom hardware and
has an 8-bit shadow register for each general-purpose architecture
register in the main core."  The shadow file is indexed by the 9-bit
*physical* register numbers carried in the trace packet, so it tracks
register windows for free.

Memory meta-data is held in a :class:`TagStore` keyed by word address;
its *timing* (the 4-KB meta-data cache, bus refills) is modelled by
:class:`~repro.memory.cache.MetadataCache` in the interface.
"""

from __future__ import annotations


class ShadowRegisterFile:
    """Per-physical-register tag storage, up to 8 bits per entry."""

    def __init__(self, num_registers: int, tag_bits: int = 8):
        if not 1 <= tag_bits <= 8:
            raise ValueError("shadow registers hold 1..8 tag bits")
        self.num_registers = num_registers
        self.tag_bits = tag_bits
        self._mask = (1 << tag_bits) - 1
        self._tags = [0] * num_registers

    def read(self, phys_index: int) -> int:
        # Physical register 0 is %g0: always zero, never tagged.
        if phys_index == 0:
            return 0
        return self._tags[phys_index]

    def write(self, phys_index: int, tag: int) -> None:
        if phys_index == 0:
            return
        self._tags[phys_index] = tag & self._mask

    def clear(self) -> None:
        self._tags = [0] * self.num_registers

    def nonzero_count(self) -> int:
        return sum(1 for tag in self._tags if tag)

    def snapshot_state(self) -> dict:
        return {"tags": list(self._tags)}

    def restore_state(self, state: dict) -> None:
        tags = state["tags"]
        if len(tags) != self.num_registers:
            raise ValueError(
                f"shadow snapshot holds {len(tags)} registers, this "
                f"file has {self.num_registers}"
            )
        self._tags[:] = tags


class TagStore:
    """Functional memory meta-data: one tag per 32-bit word.

    ``tag_bits`` is the meta-data width per word (1 for UMC/DIFT,
    8 for BC).  ``meta_address`` maps a data address to the byte
    address of the 32-bit meta-data word holding its tag — the same
    shift-and-add translation the UMC/DIFT/BC prototypes perform
    before accessing the meta-data cache (Section IV-A).
    """

    def __init__(self, tag_bits: int = 1, base: int = 0x4000_0000):
        if tag_bits not in (1, 2, 4, 8):
            raise ValueError("tag width must divide a byte")
        self.tag_bits = tag_bits
        self.base = base
        self._mask = (1 << tag_bits) - 1
        self._tags: dict[int, int] = {}

    def read(self, addr: int) -> int:
        """Tag of the word containing data address ``addr``."""
        return self._tags.get(addr >> 2, 0)

    def write(self, addr: int, tag: int) -> None:
        word = addr >> 2
        tag &= self._mask
        if tag:
            self._tags[word] = tag
        else:
            self._tags.pop(word, None)

    def fill_range(self, start: int, length: int, tag: int) -> None:
        """Tag every word overlapping [start, start+length)."""
        first = start >> 2
        last = (start + max(length, 1) - 1) >> 2
        for word in range(first, last + 1):
            self.write(word << 2, tag)

    def meta_address(self, addr: int) -> int:
        """Byte address of the meta-data *word* holding this tag."""
        word_index = addr >> 2
        tags_per_word = 32 // self.tag_bits
        return self.base + 4 * (word_index // tags_per_word)

    def write_mask(self, addr: int) -> int:
        """The 32-bit write-enable mask a bit-granular meta-data cache
        write would use for this tag (Section III-D)."""
        word_index = addr >> 2
        tags_per_word = 32 // self.tag_bits
        slot = word_index % tags_per_word
        return self._mask << (slot * self.tag_bits)

    def nonzero_count(self) -> int:
        return len(self._tags)

    def snapshot_state(self) -> dict:
        return {"base": self.base, "tags": dict(self._tags)}

    def restore_state(self, state: dict) -> None:
        self.base = state["base"]
        self._tags = {
            int(word): tag for word, tag in state["tags"].items()
        }
