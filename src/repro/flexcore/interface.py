"""The core-fabric interface module (Section III-C, Table II).

Sits at the commit stage of the main core.  For every committed
instruction it:

1. classifies the instruction into one of the 32 CFGR types and looks
   up the forwarding policy (ignore / best-effort / always /
   always-with-ack);
2. assembles the trace packet, including the pre-decoded fields;
3. pushes it into the forward FIFO, stalling the commit only when the
   policy requires forwarding and the FIFO is full;
4. lets the fabric drain packets in its own (slower) clock domain,
   stalling the fabric pipeline on meta-data cache misses, which are
   refilled over the *shared* bus and therefore contend with the main
   core's own cache traffic;
5. delivers TRAP/ACK/EMPTY control signals and BFIFO return values.

Timing is event-driven: the fabric's service schedule is computed at
enqueue time, which is exact for an in-order, single-engine fabric.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from repro.core.executor import CommitRecord
from repro.flexcore.cfgr import ForwardConfig, ForwardPolicy
from repro.flexcore.fifo import DecouplingFifo
from repro.flexcore.packet import TracePacket
from repro.isa.opcodes import FlexOpf, InstrClass
from repro.memory.bus import SharedBus
from repro.memory.cache import META_CACHE_CONFIG, CacheConfig, MetadataCache

if TYPE_CHECKING:
    from repro.extensions.base import MonitorExtension, MonitorTrap


@dataclass
class InterfaceConfig:
    """Configuration of the core-fabric interface."""

    #: fabric clock as a fraction of the core clock (Table IV: 1X for
    #: the ASIC comparison point, 0.5X for UMC/DIFT/BC, 0.25X for SEC).
    clock_ratio: float = 0.5
    fifo_depth: int = 64
    meta_cache: CacheConfig = field(default_factory=lambda: META_CACHE_CONFIG)
    #: cross-clock-domain synchronisation latency, in fabric cycles.
    sync_fabric_cycles: int = 1
    #: decode instruction fields on the core side (Section III-C: the
    #: DIFT prototype runs ~30% faster with core-side decoding).
    predecode: bool = True
    #: extra fabric cycles per packet when the fabric must decode the
    #: raw instruction word itself (predecode disabled).  A LUT-based
    #: SPARC decoder adds half an initiation interval on average (it
    #: overlaps with the tag datapath for the simpler formats), which
    #: reproduces the ~30% DIFT slowdown the paper reports.
    decode_penalty: float = 0.5
    #: require a CACK before every forwarded instruction commits,
    #: giving precise monitor exceptions (Section III-C discusses this
    #: as the conservative option; the prototypes don't need it since
    #: they terminate on a trap).  Expensive on an in-order core.
    precise_exceptions: bool = False
    #: optional meta-data TLB (Section III-B: "optionally a TLB if
    #: virtual memory is supported"; the paper's prototype omits it).
    #: When enabled, each meta-data access that misses the TLB costs a
    #: table walk over the shared bus.
    meta_tlb_entries: int = 0
    meta_tlb_walk_cycles: int = 12

    def __post_init__(self) -> None:
        if not 0 < self.clock_ratio <= 1:
            raise ValueError(
                f"clock ratio must be in (0, 1], got {self.clock_ratio}"
            )
        if self.fifo_depth < 1:
            raise ValueError(
                f"FIFO depth must be positive, got {self.fifo_depth}"
            )
        if self.sync_fabric_cycles < 0:
            raise ValueError("sync_fabric_cycles must be >= 0")
        if self.decode_penalty < 0:
            raise ValueError("decode_penalty must be >= 0")
        if self.meta_tlb_entries < 0:
            raise ValueError("meta_tlb_entries must be >= 0")

    @property
    def fabric_period(self) -> float:
        """Fabric clock period, in core-clock cycles."""
        if not 0 < self.clock_ratio <= 1:
            raise ValueError("clock ratio must be in (0, 1]")
        return 1.0 / self.clock_ratio


@dataclass
class InterfaceStats:
    """Counters the evaluation section reports."""

    committed: int = 0  # committed instructions seen (incl. annulled)
    forwarded: int = 0
    ignored: int = 0
    dropped: int = 0
    forwarded_by_class: dict[InstrClass, int] = field(default_factory=dict)
    fifo_stall_cycles: int = 0  # commit stalled on a full FIFO
    ack_stall_cycles: int = 0  # commit stalled waiting for an ack
    meta_stall_cycles: int = 0  # fabric stalled on meta-data misses
    fabric_busy_cycles: float = 0.0

    @property
    def forwarded_fraction(self) -> float:
        return self.forwarded / self.committed if self.committed else 0.0


class CoreFabricInterface:
    """FIFO interface + fabric service model for one extension."""

    def __init__(
        self,
        extension: MonitorExtension,
        bus: SharedBus,
        config: InterfaceConfig | None = None,
        telemetry=None,
    ):
        self.extension = extension
        self.bus = bus
        self.config = config or InterfaceConfig()
        self.cfgr = extension.forward_config()
        self.fifo = DecouplingFifo(self.config.fifo_depth)
        self.meta_cache = MetadataCache(self.config.meta_cache)
        self.stats = InterfaceStats()
        self.pending_trap: MonitorTrap | None = None
        self.trap_time: float = 0.0
        self._fabric_free: float = 0.0
        #: BFIFO: value most recently produced for READ_STATUS.
        self.bfifo_value = 0
        # Meta-data TLB: fully-associative over 4-KB meta pages.
        self._tlb: list[int] = []
        # Telemetry sinks, resolved once; every use sits inside a
        # branch the interface takes anyway (forward/drop/stall), so
        # the disabled default costs one None check per event at most.
        self._tracer = telemetry.tracer if telemetry is not None else None
        metrics = (telemetry.metrics
                   if telemetry is not None and telemetry.metrics.enabled
                   else None)
        if telemetry is not None:
            self.fifo.attach_telemetry(telemetry)
        if metrics is not None:
            self._m_forwarded = metrics.counter("iface.forwarded")
            self._m_ignored = metrics.counter("iface.ignored")
            self._m_dropped = metrics.counter("iface.dropped")
            self._m_fifo_stall = metrics.counter(
                "iface.fifo_stall_cycles"
            )
            self._m_ack_stall = metrics.counter("iface.ack_stall_cycles")
            self._m_meta_refill = metrics.counter("mcache.refill_cycles")
            self._h_service = metrics.histogram(
                "fabric.packet_latency",
                buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512),
            )
        else:
            self._m_forwarded = None
            self._m_ignored = None
            self._m_dropped = None
            self._m_fifo_stall = None
            self._m_ack_stall = None
            self._m_meta_refill = None
            self._h_service = None

    # ------------------------------------------------------------------

    def _fabric_edge(self, time: float) -> float:
        """Next fabric clock edge at or after ``time``."""
        period = self.config.fabric_period
        return math.ceil(time / period) * period

    def _service(self, packet: TracePacket, enqueue_time: float) -> float:
        """Run the packet through the fabric; return its drain time."""
        config = self.config
        period = config.fabric_period
        outcome = self.extension.process(packet)

        cycles = outcome.fabric_cycles
        if not config.predecode:
            cycles += config.decode_penalty

        # The packet crosses the clock domain, then waits for the
        # fabric engine to be free.
        earliest = self._fabric_edge(
            enqueue_time + config.sync_fabric_cycles * period
        )
        start = max(self._fabric_free, earliest)
        time = start + cycles * period

        # Meta-data accesses: reads stall the fabric on a miss while
        # the line is refilled over the shared bus; writes go through
        # write-through posted writes that occupy the bus but do not
        # stall the fabric.
        for access in outcome.meta_accesses:
            time = self._tlb_lookup(access.addr, time)
            if access.kind == "read":
                if not self.meta_cache.read(access.addr):
                    done = self.bus.line_refill(int(time), "meta-refill")
                    self.stats.meta_stall_cycles += done - time
                    if self._tracer is not None:
                        self._tracer.span(time, done - time, "mcache",
                                          "mcache.refill",
                                          addr=access.addr)
                    if self._m_meta_refill is not None:
                        self._m_meta_refill.inc(done - time)
                    time = done
            else:
                self.meta_cache.write_bits(access.addr, access.mask)
                self.bus.word_write(int(time), "meta-write")

        self.stats.fabric_busy_cycles += time - start
        self._fabric_free = time

        if outcome.trap is not None and self.pending_trap is None:
            self.pending_trap = outcome.trap
            self.trap_time = time
            if self._tracer is not None:
                self._tracer.instant(time, "monitor", "monitor.trap",
                                     kind=outcome.trap.kind,
                                     pc=outcome.trap.pc)
        return time

    def _tlb_lookup(self, addr: int, time: float) -> float:
        """Translate a meta-data address; a miss costs a table walk
        over the shared bus.  Disabled (zero entries) by default, like
        the paper's prototype."""
        entries = self.config.meta_tlb_entries
        if entries <= 0:
            return time
        page = addr >> 12
        if page in self._tlb:
            self._tlb.remove(page)
            self._tlb.append(page)
            return time
        done = self.bus.acquire(
            int(time), self.config.meta_tlb_walk_cycles, "meta-tlb-walk"
        )
        self.stats.meta_stall_cycles += done - time
        self._tlb.append(page)
        if len(self._tlb) > entries:
            self._tlb.pop(0)
        return done

    # ------------------------------------------------------------------

    def on_commit(self, record: CommitRecord, now: float) -> float:
        """Handle one committed instruction; return the (possibly
        stalled) core time after commit."""
        stats = self.stats
        stats.committed += 1
        if record.annulled:
            return now

        instr_class = record.instr_class
        policy = self.cfgr.policy(instr_class)
        if policy == ForwardPolicy.IGNORE:
            stats.ignored += 1
            if self._m_ignored is not None:
                self._m_ignored.inc()
            return now

        # The "read from co-processor" instruction always needs the
        # BFIFO round trip, regardless of the class policy; precise-
        # exception mode acknowledges every forwarded instruction.
        needs_ack = (
            policy == ForwardPolicy.ALWAYS_ACK
            or self.config.precise_exceptions
            or (instr_class == InstrClass.FLEX
                and record.instr.opf == FlexOpf.READ_STATUS)
        )

        if self.fifo.is_full(now):
            if policy == ForwardPolicy.BEST_EFFORT:
                stats.dropped += 1
                self.fifo.stats.dropped += 1
                if self._tracer is not None:
                    self._tracer.instant(now, "fifo", "fifo.drop",
                                         pc=record.pc)
                if self._m_dropped is not None:
                    self._m_dropped.inc()
                return now
            wait = self.fifo.time_until_space(now)
            stats.fifo_stall_cycles += wait
            self.fifo.stats.full_stall_cycles += wait
            if self._tracer is not None:
                self._tracer.span(now, wait, "core", "stall.fifo_full",
                                  pc=record.pc)
            if self._m_fifo_stall is not None:
                self._m_fifo_stall.inc(wait)
            now += wait

        packet = TracePacket.from_commit(record)
        stats.forwarded += 1
        stats.forwarded_by_class[instr_class] = (
            stats.forwarded_by_class.get(instr_class, 0) + 1
        )
        drain = self._service(packet, now)
        self.fifo.push(now, drain)
        if self._m_forwarded is not None:
            self._m_forwarded.inc()
            self._h_service.observe(drain - now)
        if self._tracer is not None:
            # Packet lifecycle: enqueue at commit, serviced at drain.
            self._tracer.span(now, drain - now, "fabric",
                              f"packet.{instr_class.name.lower()}",
                              pc=record.pc)

        if needs_ack:
            # CACK comes back through a synchroniser as well.
            ack_at = drain + self.config.sync_fabric_cycles
            stats.ack_stall_cycles += ack_at - now
            if self._tracer is not None:
                self._tracer.span(now, ack_at - now, "core",
                                  "stall.ack", pc=record.pc)
            if self._m_ack_stall is not None:
                self._m_ack_stall.inc(ack_at - now)
            now = ack_at
        return now

    # ------------------------------------------------------------------

    def read_status(self) -> int:
        """Functional BFIFO read for the READ_STATUS instruction."""
        self.bfifo_value = self.extension.status_word()
        return self.bfifo_value

    def drain_time(self) -> float:
        """Time at which the co-processor goes EMPTY."""
        return self._fabric_free

    # ------------------------------------------------------------------
    # Snapshot/restore (crash-safe checkpointing).

    def snapshot_state(self) -> dict:
        stats = self.stats
        trap = self.pending_trap
        return {
            "stats": {
                "committed": stats.committed,
                "forwarded": stats.forwarded,
                "ignored": stats.ignored,
                "dropped": stats.dropped,
                "forwarded_by_class": {
                    int(cls): count
                    for cls, count in stats.forwarded_by_class.items()
                },
                "fifo_stall_cycles": stats.fifo_stall_cycles,
                "ack_stall_cycles": stats.ack_stall_cycles,
                "meta_stall_cycles": stats.meta_stall_cycles,
                "fabric_busy_cycles": stats.fabric_busy_cycles,
            },
            "fifo": self.fifo.snapshot_state(),
            "meta_cache": self.meta_cache.snapshot_state(),
            # The CFGR is live state: a configuration upset (or a
            # software rewrite) must survive a checkpoint round-trip.
            "cfgr": self.cfgr.encode(),
            "pending_trap": None if trap is None else {
                "extension": trap.extension,
                "kind": trap.kind,
                "pc": trap.pc,
                "addr": trap.addr,
                "message": trap.message,
            },
            "trap_time": self.trap_time,
            "fabric_free": self._fabric_free,
            "bfifo": self.bfifo_value,
            "tlb": list(self._tlb),
        }

    def restore_state(self, state: dict) -> None:
        from repro.extensions.base import MonitorTrap

        saved = state["stats"]
        self.stats = InterfaceStats(
            committed=saved["committed"],
            forwarded=saved["forwarded"],
            ignored=saved["ignored"],
            dropped=saved["dropped"],
            forwarded_by_class={
                InstrClass(int(cls)): count
                for cls, count in saved["forwarded_by_class"].items()
            },
            fifo_stall_cycles=saved["fifo_stall_cycles"],
            ack_stall_cycles=saved["ack_stall_cycles"],
            meta_stall_cycles=saved["meta_stall_cycles"],
            fabric_busy_cycles=saved["fabric_busy_cycles"],
        )
        self.fifo.restore_state(state["fifo"])
        self.meta_cache.restore_state(state["meta_cache"])
        self.cfgr = ForwardConfig.decode(state["cfgr"])
        trap = state["pending_trap"]
        self.pending_trap = None if trap is None else MonitorTrap(
            extension=trap["extension"],
            kind=trap["kind"],
            pc=trap["pc"],
            addr=trap["addr"],
            message=trap["message"],
        )
        self.trap_time = state["trap_time"]
        self._fabric_free = state["fabric_free"]
        self.bfifo_value = state["bfifo"]
        self._tlb = list(state["tlb"])
