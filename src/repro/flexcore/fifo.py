"""Decoupling FIFO between the core's commit stage and the fabric.

The forward FIFO is the central decoupling mechanism of the FlexCore
architecture (Section III-B): the core pushes trace packets at commit,
the fabric drains them at its own (slower) clock, and the core only
stalls when the FIFO is full and the CFGR policy demands forwarding.

The simulator is discrete-event, so occupancy is represented as the
set of *drain times* of in-flight packets rather than ticking every
cycle.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


@dataclass
class FifoStats:
    enqueued: int = 0
    dropped: int = 0  # BEST_EFFORT packets rejected while full
    full_stall_cycles: int = 0  # commit stalls waiting for space
    max_occupancy: int = 0


class DecouplingFifo:
    """Bounded FIFO tracked by drain timestamps (core-clock cycles)."""

    def __init__(self, depth: int = 64):
        if depth < 1:
            raise ValueError("FIFO depth must be positive")
        self.depth = depth
        self._drains: deque[int] = deque()
        self.stats = FifoStats()
        # Telemetry sinks (None = disabled, the zero-overhead default).
        self._tracer = None
        self._h_occupancy = None
        self._g_high_water = None

    def attach_telemetry(self, telemetry) -> None:
        """Wire a :class:`repro.telemetry.Telemetry` bundle in."""
        self._tracer = telemetry.tracer
        if telemetry.metrics.enabled:
            occupancy_buckets = tuple(
                1 << i for i in range(max(1, self.depth.bit_length()))
            )
            self._h_occupancy = telemetry.metrics.histogram(
                "fifo.occupancy", buckets=occupancy_buckets
            )
            self._g_high_water = telemetry.metrics.gauge(
                "fifo.high_water"
            )

    def occupancy(self, now: int) -> int:
        """Entries still resident at time ``now``."""
        while self._drains and self._drains[0] <= now:
            self._drains.popleft()
        return len(self._drains)

    def is_full(self, now: int) -> bool:
        return self.occupancy(now) >= self.depth

    def time_until_space(self, now: int) -> int:
        """Cycles the core must wait before a slot frees up."""
        if not self.is_full(now):
            return 0
        return self._drains[0] - now

    def push(self, now: int, drain_time: int) -> None:
        """Insert a packet that the fabric will drain at ``drain_time``.

        The caller must have ensured space (policy-dependent).
        """
        if self.is_full(now):
            raise OverflowError("push into a full FIFO")
        if drain_time < now:
            raise ValueError("drain time before enqueue time")
        self._drains.append(drain_time)
        self.stats.enqueued += 1
        occupancy = len(self._drains)
        if occupancy > self.stats.max_occupancy:
            self.stats.max_occupancy = occupancy
        tracer = self._tracer
        if tracer is not None:
            # The pop is known at push time (discrete-event model):
            # emit it at the drain timestamp so the occupancy timeline
            # in the trace is exact.
            tracer.instant(now, "fifo", "fifo.push", drain=drain_time)
            tracer.instant(drain_time, "fifo", "fifo.pop")
            tracer.counter(now, "fifo", "fifo.occupancy", occupancy)
        if self._h_occupancy is not None:
            self._h_occupancy.observe(occupancy)
            self._g_high_water.track_max(occupancy)

    def drained_by(self) -> int:
        """Time at which the FIFO is empty (EMPTY signal asserts)."""
        return self._drains[-1] if self._drains else 0

    def reset(self) -> None:
        self._drains.clear()
        self.stats = FifoStats()

    # ------------------------------------------------------------------
    # Snapshot/restore (crash-safe checkpointing): in-flight packet
    # drain times are state — a restored core must feel the same
    # backpressure the original would have.

    def snapshot_state(self) -> dict:
        return {
            "drains": list(self._drains),
            "stats": vars(self.stats).copy(),
        }

    def restore_state(self, state: dict) -> None:
        self._drains = deque(state["drains"])
        self.stats = FifoStats(**state["stats"])
