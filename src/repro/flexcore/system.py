"""Top-level FlexCore system: core + interface + fabric extension.

:class:`FlexCoreSystem` assembles the whole prototype of Section IV:
the Leon3-like core with its L1 caches, the shared bus to SDRAM, and
(optionally) one monitoring extension behind the core-fabric
interface.  ``clock_ratio=1.0`` models the full-ASIC comparison point
of Table IV (the extension keeps up with the core clock);
``clock_ratio=0.5 / 0.25`` model the synthesised fabric frequencies.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field

from repro.core.executor import CommitRecord, CpuState, SimulationError
from typing import TYPE_CHECKING

from repro.core.timing import CoreTiming, CoreTimingConfig, CoreTimingStats
from repro.flexcore.fifo import FifoStats
from repro.flexcore.interface import (
    CoreFabricInterface,
    InterfaceConfig,
    InterfaceStats,
)
from repro.isa.assembler import Program
from repro.memory.backing import SparseMemory
from repro.memory.bus import BusStats, SharedBus
from repro.memory.cache import CacheStats

if TYPE_CHECKING:
    from repro.extensions.base import MonitorExtension, MonitorTrap
    from repro.telemetry import Telemetry

DEFAULT_STACK_TOP = 0x7FFFF0
DEFAULT_MAX_INSTRUCTIONS = 50_000_000

#: Default cost, in core cycles, of one monitor-triggered rollback:
#: flush the pipeline and FIFO, reload the architectural state from
#: the last on-chip checkpoint.  This extends the paper's exception
#: model (Section III-C) from terminate-on-TRAP to recover-on-TRAP.
DEFAULT_RECOVERY_LATENCY = 128

#: Give up after this many rollbacks of one run: a persistent fault
#: (e.g. a configuration upset captured *inside* the checkpoint)
#: re-traps forever, and recovery must degrade into detection.
DEFAULT_RECOVERY_LIMIT = 3

#: Valid execution engines.  ``fast`` predecodes each PC into a fused
#: handler closure (see :mod:`repro.engine`); ``superblock``
#: additionally fuses straight-line runs so the dispatch loop strides
#: a basic block at a time; ``reference`` is the original
#: step/advance/on_commit loop.  Results are bit-identical — the
#: differential and golden tests enforce it — and both fused engines
#: silently fall back to the reference loop whenever record hooks or
#: live telemetry need to observe every commit record.
ENGINES = ("fast", "superblock", "reference")


class Termination(str, enum.Enum):
    """Why a (bounded) run ended."""

    HALTED = "halted"  # the program executed `ta 0`
    TRAP = "trap"  # the monitoring extension raised TRAP
    INSTRUCTION_LIMIT = "instruction-limit"  # watchdog: instret budget
    CYCLE_LIMIT = "cycle-limit"  # watchdog: cycle budget
    DEADLINE = "deadline"  # watchdog: wall-clock timeout
    ERROR = "error"  # the simulated program crashed

    def __str__(self) -> str:  # report-friendly ("halted", not enum repr)
        return self.value


#: Termination reasons the fault-injection watchdog treats as a hang.
WATCHDOG_TERMINATIONS = frozenset(
    {Termination.INSTRUCTION_LIMIT, Termination.CYCLE_LIMIT,
     Termination.DEADLINE}
)


@dataclass
class RunResult:
    """Everything a run produces."""

    cycles: int
    instructions: int
    halted: bool
    trap: MonitorTrap | None
    core_stats: CoreTimingStats
    interface_stats: InterfaceStats | None
    memory: SparseMemory
    program: Program
    #: why the run ended (always set; ``HALTED`` for a clean exit).
    termination: Termination = Termination.HALTED
    #: the structured crash, when ``termination`` is ``ERROR`` or
    #: ``INSTRUCTION_LIMIT`` (bounded runs never raise).
    error: SimulationError | None = None
    #: monitor-triggered rollbacks performed (``--recover`` mode).
    recoveries: int = 0
    #: total cycles spent detecting, rolling back and re-executing.
    recovery_cycles: int = 0
    #: decoupling-FIFO accounting (peak occupancy, full-stall cycles,
    #: drops); ``None`` when no monitoring extension is attached.
    fifo_stats: FifoStats | None = None
    #: configured forward-FIFO depth, for high-water-vs-depth reports.
    fifo_depth: int | None = None
    #: hit/miss accounting per cache ("icache", "dcache", "mcache").
    cache_stats: dict[str, CacheStats] = field(default_factory=dict)
    #: shared-bus accounting per requester.
    bus_stats: BusStats | None = None
    #: which loop actually ran ("fast" or "reference").  Deliberately
    #: excluded from the result fingerprint/digest: digests must be
    #: engine-independent, that is the whole observational contract.
    engine: str = "reference"

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    def word(self, symbol: str, offset: int = 0) -> int:
        """Read a result word from memory by data-symbol name."""
        return self.memory.read_word(self.program.symbol(symbol) + offset)


@dataclass
class SystemConfig:
    """Configuration for one simulated system.

    Parameters are validated at construction so a bad value fails
    with a clear ``ValueError`` instead of a downstream mystery.
    """

    core: CoreTimingConfig = field(default_factory=CoreTimingConfig)
    interface: InterfaceConfig = field(default_factory=InterfaceConfig)
    nwindows: int = 8
    stack_top: int = DEFAULT_STACK_TOP
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS
    #: stop the simulation when the extension raises TRAP (the paper's
    #: extensions terminate the program); if False, record and continue.
    stop_on_trap: bool = True
    #: execution engine: "fast" (predecoded handler loop),
    #: "superblock" (predecoded + fused straight-line runs) or
    #: "reference" (original loop).  Bit-identical results any way.
    engine: str = "fast"

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ValueError(
                f"engine must be one of {ENGINES}, got {self.engine!r}"
            )
        if self.nwindows < 2:
            raise ValueError(
                f"nwindows must be >= 2, got {self.nwindows}"
            )
        if self.stack_top <= 0 or self.stack_top & 3:
            raise ValueError(
                f"stack_top must be positive and word-aligned, "
                f"got {self.stack_top:#x}"
            )
        if self.max_instructions <= 0:
            raise ValueError(
                f"max_instructions must be positive, "
                f"got {self.max_instructions}"
            )


class FlexCoreSystem:
    """One assembled program running on one system configuration."""

    def __init__(
        self,
        program: Program,
        extension: MonitorExtension | None = None,
        config: SystemConfig | None = None,
        telemetry: Telemetry | None = None,
    ):
        self.program = program
        self.config = config or SystemConfig()
        #: observability bundle; ``None`` (the default) is the
        #: zero-overhead path — no component emits anything, and the
        #: timing result is bit-identical either way (telemetry only
        #: ever observes).
        self.telemetry = telemetry
        self.memory = SparseMemory()
        self.memory.load_program(program)
        self.bus = SharedBus(self.config.core.bus)
        if telemetry is not None:
            self.bus.attach_telemetry(telemetry)
        self.cpu = CpuState(
            self.memory,
            entry=program.entry,
            nwindows=self.config.nwindows,
            stack_top=self.config.stack_top,
        )
        if telemetry is not None:
            self.cpu.attach_telemetry(telemetry)
        self.core_timing = CoreTiming(self.config.core, self.bus,
                                      telemetry=telemetry)
        self.extension = extension
        self.interface: CoreFabricInterface | None = None
        if extension is not None:
            extension.attach(self.cpu.regs.num_physical)
            extension.on_program_load(program, self.config.stack_top)
            if telemetry is not None and telemetry.metrics.enabled:
                extension.metrics = telemetry.metrics
            self.interface = CoreFabricInterface(
                extension, self.bus, self.config.interface,
                telemetry=telemetry,
            )
            self.cpu.coprocessor_read = self.interface.read_status
        #: hooks applied to every commit record before forwarding —
        #: used for fault injection in the SEC example/tests.
        self.record_hooks: list = []
        #: simulation time (core cycles, fractional while the fabric
        #: clock divides them).  Promoted to system state so snapshots
        #: can freeze and resume a run mid-flight.
        self.now: float = 0.0
        # Pristine program image, built lazily for memory-delta
        # snapshots (shared baseline for every checkpoint of this run).
        self._baseline_memory_cache: SparseMemory | None = None

    # ------------------------------------------------------------------
    # Snapshot/restore (crash-safe checkpointing).

    def _baseline_memory(self) -> SparseMemory:
        if self._baseline_memory_cache is None:
            baseline = SparseMemory()
            baseline.load_program(self.program)
            self._baseline_memory_cache = baseline
        return self._baseline_memory_cache

    def snapshot_state(self) -> dict:
        """Capture the *complete* system state as plain data.

        Covers architectural state (PC/nPC, windowed registers, icc),
        pipeline timing state, both L1s and the meta-data cache,
        backing memory (as a sparse delta against the program image),
        the decoupling FIFO, the CFGR, and the attached monitor's
        meta-data.  ``restore_state`` of this dict is bit-exact: a run
        restored at cycle N and run to completion produces a
        :class:`RunResult` identical to the uninterrupted run.

        ``record_hooks`` are deliberately *not* state: they model
        external stimuli (fault injectors, profilers), not machine
        state, so a transient fault does not re-fire after a rollback.
        """
        return {
            "now": self.now,
            "cpu": self.cpu.snapshot_state(),
            "memory": self.memory.snapshot_state(self._baseline_memory()),
            "bus": self.bus.snapshot_state(),
            "core_timing": self.core_timing.snapshot_state(),
            "interface": (
                self.interface.snapshot_state()
                if self.interface is not None else None
            ),
            "extension": (
                self.extension.snapshot_state()
                if self.extension is not None else None
            ),
        }

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot in place (objects are mutated, never
        replaced, so aliases held by callers stay valid).  The same
        snapshot may be restored repeatedly (rollback retries)."""
        self.now = state["now"]
        self.cpu.restore_state(state["cpu"])
        self.memory.restore_state(state["memory"], self._baseline_memory())
        self.bus.restore_state(state["bus"])
        self.core_timing.restore_state(state["core_timing"])
        if self.interface is not None:
            if state["interface"] is None:
                raise ValueError(
                    "snapshot was taken without a monitoring extension"
                )
            self.interface.restore_state(state["interface"])
            self.extension.restore_state(state["extension"])
        elif state["interface"] is not None:
            raise ValueError(
                "snapshot was taken with a monitoring extension attached"
            )

    def run(
        self,
        max_instructions: int | None = None,
        checkpoint_every: int | None = None,
        recover: bool = False,
        engine: str | None = None,
    ) -> RunResult:
        """Run to completion (ta 0), trap, or the instruction limit.

        Raises :class:`SimulationError` on a crash or when the
        instruction limit trips; :meth:`run_bounded` is the
        non-raising variant.
        """
        result = self.run_bounded(
            max_instructions=max_instructions,
            checkpoint_every=checkpoint_every,
            recover=recover,
            engine=engine,
        )
        if result.error is not None:
            raise result.error
        return result

    def _fast_loop_supported(self) -> bool:
        """Whether the fused loop can run without losing observers.

        Record hooks must see every :class:`CommitRecord`, and live
        telemetry (metrics or a tracer) counts events the fused
        closures skip, so either forces the reference loop.  The
        *results* are bit-identical regardless — this only preserves
        the observers' view.
        """
        if self.record_hooks:
            return False
        telemetry = self.telemetry
        return telemetry is None or (
            telemetry.tracer is None and not telemetry.metrics.enabled
        )

    #: check the wall-clock deadline every this many instructions.
    DEADLINE_STRIDE = 4096

    def run_bounded(
        self,
        max_instructions: int | None = None,
        max_cycles: int | None = None,
        deadline: float | None = None,
        checkpoint_every: int | None = None,
        on_checkpoint=None,
        recover: bool = False,
        recovery_limit: int = DEFAULT_RECOVERY_LIMIT,
        recovery_latency: int = DEFAULT_RECOVERY_LATENCY,
        engine: str | None = None,
    ) -> RunResult:
        """Run under a watchdog; never raise for in-simulation faults.

        The result's ``termination`` records why the run ended:
        ``HALTED``/``TRAP`` for clean exits, ``INSTRUCTION_LIMIT`` /
        ``CYCLE_LIMIT`` / ``DEADLINE`` when a watchdog budget trips
        (the fault-injection campaign classifies these as hangs), and
        ``ERROR`` with the structured :class:`SimulationError` when
        the simulated program crashes.  ``deadline`` is an absolute
        ``time.monotonic()`` timestamp, checked periodically.

        ``checkpoint_every=N`` captures a full system snapshot every N
        committed instructions; each one is handed to ``on_checkpoint
        (system, state)`` if given.  With ``recover=True``, a monitor
        TRAP no longer terminates the run: the system rolls back to
        the last checkpoint (or the run's initial state), charges the
        wasted cycles plus ``recovery_latency``, and re-executes —
        the paper's exception model extended to recovery.  After
        ``recovery_limit`` rollbacks the trap is delivered normally.

        The run resumes from ``self.now`` (zero for a fresh system, a
        restored timestamp after ``restore_state``), so a snapshot
        restored at cycle N continues bit-exactly.

        ``engine`` overrides the config's engine for this run; the
        fast engine transparently falls back to the reference loop
        when hooks or telemetry need every commit record (see
        :meth:`_fast_loop_supported`).
        """
        if engine is None:
            engine = self.config.engine
        if engine not in ENGINES:
            raise ValueError(
                f"engine must be one of {ENGINES}, got {engine!r}"
            )
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        limit = max_instructions or self.config.max_instructions
        cpu = self.cpu
        core_timing = self.core_timing
        interface = self.interface

        use_fast = (engine in ("fast", "superblock")
                    and self._fast_loop_supported())
        if use_fast:
            if engine == "superblock":
                from repro.engine.fastloop import (
                    run_superblock_loop as fused_loop,
                )
            else:
                from repro.engine.fastloop import (
                    run_fast_loop as fused_loop,
                )

            (now, trap, termination, error, recoveries,
             recovery_cycles) = fused_loop(
                self, limit, max_cycles, deadline, checkpoint_every,
                on_checkpoint, recover, recovery_limit,
                recovery_latency,
            )
        else:
            (now, trap, termination, error, recoveries,
             recovery_cycles) = self._run_reference_loop(
                limit, max_cycles, deadline, checkpoint_every,
                on_checkpoint, recover, recovery_limit,
                recovery_latency,
            )

        # Wait for the co-processor to drain (the EMPTY signal) and
        # the store buffer to flush before declaring the run over.
        if interface is not None:
            if trap is None and interface.pending_trap is not None:
                trap = interface.pending_trap
                if termination == Termination.HALTED:
                    termination = Termination.TRAP
            now = max(now, interface.drain_time())
        now = max(now, core_timing.store_buffer.drain_time())
        self.now = now

        cache_stats = {
            "icache": core_timing.icache.stats,
            "dcache": core_timing.dcache.stats,
        }
        if interface is not None:
            cache_stats["mcache"] = interface.meta_cache.stats
        if (self.telemetry is not None
                and self.telemetry.metrics.enabled):
            metrics = self.telemetry.metrics
            metrics.gauge("system.cycles").set(int(now))
            metrics.gauge("system.instructions").set(cpu.instret)
            metrics.counter("system.rollbacks").inc(recoveries)

        return RunResult(
            cycles=int(now),
            instructions=cpu.instret,
            halted=cpu.halted,
            trap=trap,
            core_stats=core_timing.stats,
            interface_stats=interface.stats if interface else None,
            memory=self.memory,
            program=self.program,
            termination=termination,
            error=error,
            recoveries=recoveries,
            recovery_cycles=int(recovery_cycles),
            fifo_stats=interface.fifo.stats if interface else None,
            fifo_depth=(self.config.interface.fifo_depth
                        if interface else None),
            cache_stats=cache_stats,
            bus_stats=self.bus.stats,
            engine=engine if use_fast else "reference",
        )

    def _run_reference_loop(
        self,
        limit: int,
        max_cycles: int | None,
        deadline: float | None,
        checkpoint_every: int | None,
        on_checkpoint,
        recover: bool,
        recovery_limit: int,
        recovery_latency: int,
    ):
        """The original step/advance/on_commit loop (``engine=
        "reference"``); returns the loop-state tuple the shared
        ``run_bounded`` tail turns into a :class:`RunResult`."""
        cpu = self.cpu
        core_timing = self.core_timing
        interface = self.interface
        hooks = self.record_hooks
        stop_on_trap = self.config.stop_on_trap
        now: float = self.now
        trap: MonitorTrap | None = None
        termination = Termination.HALTED
        error: SimulationError | None = None
        next_deadline_check = cpu.instret + self.DEADLINE_STRIDE
        recoveries = 0
        recovery_cycles = 0.0

        checkpoint: dict | None = None
        next_checkpoint: int | None = None
        #: when the current attempt from `checkpoint` started — equals
        #: the capture time until a rollback, then the resume time.
        #: Wasted work is measured from here, not from the capture
        #: time, so repeated rollbacks to one checkpoint never charge
        #: an earlier attempt twice.
        replay_from = now
        if recover:
            # The rollback target before the first periodic checkpoint
            # is the run's entry state.
            self.now = now
            checkpoint = self.snapshot_state()
        if checkpoint_every is not None:
            next_checkpoint = cpu.instret + checkpoint_every

        while not cpu.halted:
            if cpu.instret >= limit:
                termination = Termination.INSTRUCTION_LIMIT
                error = SimulationError(
                    f"instruction limit {limit} exceeded at "
                    f"pc={cpu.pc:#x} — runaway program?",
                    pc=cpu.pc, instret=cpu.instret, cycle=int(now),
                )
                break
            if max_cycles is not None and now >= max_cycles:
                termination = Termination.CYCLE_LIMIT
                break
            if deadline is not None and cpu.instret >= next_deadline_check:
                next_deadline_check = cpu.instret + self.DEADLINE_STRIDE
                if time.monotonic() >= deadline:
                    termination = Termination.DEADLINE
                    break
            if (next_checkpoint is not None
                    and cpu.instret >= next_checkpoint):
                next_checkpoint = cpu.instret + checkpoint_every
                self.now = now
                checkpoint = self.snapshot_state()
                replay_from = now
                if on_checkpoint is not None:
                    on_checkpoint(self, checkpoint)
            try:
                record: CommitRecord = cpu.step()
                now = core_timing.advance(record, int(now))
                if interface is not None:
                    for hook in hooks:
                        hook(record)
                    now = interface.on_commit(record, now)
                    if interface.pending_trap is not None and stop_on_trap:
                        if (recover and checkpoint is not None
                                and recoveries < recovery_limit):
                            # Roll back and re-execute.  The restored
                            # state predates the trap, so pending_trap
                            # comes back clear; time keeps moving
                            # forward — detection, rollback and replay
                            # all cost real cycles.
                            trap_at = max(now, interface.trap_time)
                            wasted = (trap_at - replay_from
                                      + recovery_latency)
                            if (self.telemetry is not None
                                    and self.telemetry.tracer is not None):
                                self.telemetry.tracer.span(
                                    trap_at, recovery_latency,
                                    "monitor", "monitor.rollback",
                                    wasted=wasted,
                                )
                            self.restore_state(checkpoint)
                            now = replay_from = trap_at + recovery_latency
                            recoveries += 1
                            recovery_cycles += wasted
                            if next_checkpoint is not None:
                                next_checkpoint = (cpu.instret
                                                   + checkpoint_every)
                            continue
                        trap = interface.pending_trap
                        now = max(now, interface.trap_time)
                        termination = Termination.TRAP
                        break
            except SimulationError as err:
                if err.cycle is None:
                    err.cycle = int(now)
                termination = Termination.ERROR
                error = err
                break

        return now, trap, termination, error, recoveries, recovery_cycles


def run_program(
    program: Program,
    extension: MonitorExtension | None = None,
    clock_ratio: float = 0.5,
    fifo_depth: int = 64,
    config: SystemConfig | None = None,
    max_instructions: int | None = None,
    checkpoint_every: int | None = None,
    recover: bool = False,
    telemetry: Telemetry | None = None,
    engine: str | None = None,
) -> RunResult:
    """Convenience entry point: build a system and run it.

    This is the main public API used by the examples and benchmarks::

        result = run_program(program)                         # baseline
        result = run_program(program, create_extension("dift"))
        result = run_program(program, SoftErrorCheck(), clock_ratio=0.25)

    ``engine`` selects the execution loop ("fast"/"reference"); the
    default is the config's engine (``fast`` unless overridden).
    """
    if config is None:
        config = SystemConfig()
        config.interface.clock_ratio = clock_ratio
        config.interface.fifo_depth = fifo_depth
    system = FlexCoreSystem(program, extension, config,
                            telemetry=telemetry)
    return system.run(
        max_instructions,
        checkpoint_every=checkpoint_every,
        recover=recover,
        engine=engine,
    )
