"""FlexCore reproduction.

A Python reproduction of "Flexible and Efficient Instruction-Grained
Run-Time Monitoring Using On-Chip Reconfigurable Fabric" (MICRO 2010):
a Leon3-like SPARC V8 core coupled with a reconfigurable-fabric
monitoring co-processor through the FlexCore FIFO interface, plus the
four monitoring extensions (UMC, DIFT, BC, SEC), fabric/ASIC cost
models, MiBench-like workloads, and the full evaluation harness.

Quick start::

    from repro import assemble, run_program, create_extension

    program = assemble(SOURCE, entry="start")
    baseline = run_program(program)
    monitored = run_program(program, create_extension("dift"))
    print(monitored.cycles / baseline.cycles)
"""

from repro.extensions import MonitorExtension, MonitorTrap, create_extension
from repro.flexcore import (
    FlexCoreSystem,
    ForwardConfig,
    ForwardPolicy,
    RunResult,
    SystemConfig,
    TracePacket,
    run_program,
)
from repro.isa import assemble

__version__ = "1.0.0"

__all__ = [
    "FlexCoreSystem",
    "ForwardConfig",
    "ForwardPolicy",
    "MonitorExtension",
    "MonitorTrap",
    "RunResult",
    "SystemConfig",
    "TracePacket",
    "assemble",
    "create_extension",
    "run_program",
    "__version__",
]
