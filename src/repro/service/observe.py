"""Service-wide observability: job tracing, SLOs, crash forensics.

The simulator already proves that *instruction-grained* telemetry can
be free when off and cheap when on (PR 3); this module applies the
same contract one layer up, to the distributed system that runs the
simulations.  Three faces:

* **End-to-end job tracing.**  A trace context (``trace_id`` plus a
  root ``span_id``) is minted at ``submit`` — by the client when it
  can, by the server otherwise — journaled with the job, and carried
  through admission → queue → runner thread → fleet lease → campaign
  execution.  Every hop lands in a :class:`ServiceTracer` (a
  thread-safe wall-clock wrapper around the simulator's
  :class:`~repro.telemetry.trace.EventTracer` ring), so one merged
  Perfetto document shows client submit, queue wait, worker lease and
  simulation progress on one timeline with consistent ids.
* **Metrics exposition.**  :func:`render_prometheus` turns the
  server's :class:`~repro.telemetry.metrics.MetricsRegistry` (plus
  quota, fleet, pool and SLO state) into Prometheus text format for
  the ``metrics`` protocol op and ``repro status --metrics``.
* **SLO tracking + crash forensics.**  :class:`SloTracker` keeps a
  rolling window of submit→result latencies with exact percentiles
  against a configurable target; :class:`ForensicsWriter` captures a
  post-mortem bundle (job spec + seed, trace context, last campaign
  journal frames, pool stats, recent trace ring) into ``.forensics/``
  whenever a job fails, a worker is crashed/quarantined under it, or
  a drain parks it mid-run.

Everything here observes and never perturbs: result documents are
bit-identical with tracing and metrics on or off, and CI's
``obs-smoke`` job diffs exactly that.
"""

from __future__ import annotations

import json
import re
import threading
import time
import uuid
from pathlib import Path

from repro.checkpoint import atomic_write_text
from repro.telemetry.trace import EventTracer, events_to_perfetto

#: histogram bounds for service latencies, seconds.  The simulator's
#: power-of-two defaults are integer-valued; service waits need
#: sub-second resolution.
LATENCY_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5,
                   1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 300.0)

#: trace ring capacity: a service trace is spans-per-job plus one
#: instant per faulted run, far sparser than a simulator trace.
TRACE_CAPACITY = 16_384

#: how many trailing trace events a forensics bundle captures.
FORENSICS_TRACE_TAIL = 200

#: how many trailing campaign-journal frames a bundle captures.
FORENSICS_JOURNAL_TAIL = 50


# -- trace context -----------------------------------------------------------


def mint_trace_context() -> dict:
    """A fresh trace context: the client mints one per submission.

    Randomness is deliberate — trace ids never influence job identity
    or results (they are *excluded* from the content-addressed job
    id), so two submissions of the same job share one job id while
    each keeps its own trace lineage.
    """
    return {
        "trace_id": uuid.uuid4().hex[:16],
        "span_id": uuid.uuid4().hex[:8],
    }


def ensure_trace_context(trace) -> dict:
    """Validate a client-supplied trace context, minting any missing
    piece; raises ``ValueError`` on malformed input."""
    if trace is None:
        return mint_trace_context()
    if not isinstance(trace, dict):
        raise ValueError("trace must be a JSON object")
    for key in ("trace_id", "span_id"):
        value = trace.get(key)
        if value is not None and (
                not isinstance(value, str) or not value):
            raise ValueError(f"trace.{key} must be a non-empty string")
    minted = mint_trace_context()
    return {
        "trace_id": trace.get("trace_id") or minted["trace_id"],
        "span_id": trace.get("span_id") or minted["span_id"],
    }


def derive_span_id(trace_id: str, track: str, name: str,
                   ts: float) -> str:
    """Deterministic span id: the same hop of the same trace always
    names itself identically, so a re-exported trace is stable."""
    import hashlib

    payload = f"{trace_id}/{track}/{name}/{ts:.3f}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:8]


# -- the service tracer ------------------------------------------------------


class ServiceTracer:
    """Thread-safe wall-clock facade over an :class:`EventTracer`.

    The simulator tracer is single-threaded by design; the service
    emits from the event loop *and* from runner threads, so every
    ring touch takes one lock.  Timestamps are microseconds since the
    tracer's epoch (server start), which keeps Perfetto's microsecond
    timeline honest for wall-clock spans.
    """

    def __init__(self, capacity: int = TRACE_CAPACITY):
        self._ring = EventTracer(capacity)
        self._lock = threading.Lock()
        self._epoch = time.monotonic()

    def now_us(self) -> float:
        """Microseconds since the trace epoch."""
        return (time.monotonic() - self._epoch) * 1e6

    def _stamp(self, job, track: str, name: str, ts: float,
               args: dict) -> dict:
        stamped = dict(args)
        if job is not None:
            stamped["job"] = job.id
            trace = getattr(job, "trace", None) or {}
            trace_id = trace.get("trace_id")
            if trace_id:
                stamped["trace"] = trace_id
                stamped["span"] = derive_span_id(
                    trace_id, track, name, ts)
                stamped.setdefault("parent", trace.get("span_id"))
        return stamped

    def span(self, job, track: str, name: str, start_us: float,
             end_us: float | None = None, **args) -> None:
        if end_us is None:
            end_us = self.now_us()
        stamped = self._stamp(job, track, name, start_us, args)
        with self._lock:
            self._ring.span(start_us, max(0.0, end_us - start_us),
                            track, name, **stamped)

    def instant(self, job, track: str, name: str, **args) -> None:
        ts = self.now_us()
        stamped = self._stamp(job, track, name, ts, args)
        with self._lock:
            self._ring.instant(ts, track, name, **stamped)

    def counter(self, track: str, name: str, value: float) -> None:
        with self._lock:
            self._ring.counter(self.now_us(), track, name, value)

    # -- reading -------------------------------------------------------------

    def events(self) -> list:
        with self._lock:
            return self._ring.events()

    def events_for(self, job_id: str) -> list:
        """Every ring event stamped with this job id, oldest first."""
        return [event for event in self.events()
                if event.args.get("job") == job_id]

    def recent(self, limit: int = FORENSICS_TRACE_TAIL) -> list[dict]:
        """The newest ``limit`` events as plain dicts (forensics)."""
        return [event.as_dict() for event in self.events()[-limit:]]

    def perfetto(self, events=None) -> dict:
        """A Chrome ``trace_event`` document of ``events`` (default:
        the whole ring) on the service's wall-clock timeline."""
        if events is None:
            events = self.events()
        with self._lock:
            overwritten = self._ring.overwritten
        return events_to_perfetto(
            events,
            process_name="repro-service",
            time_unit="wall-clock microseconds since server start",
            overwritten=overwritten,
        )


# -- SLO tracking ------------------------------------------------------------


class SloTracker:
    """Rolling submit→result latency percentiles against a target.

    Exact percentiles over a bounded window (not a sketch): at
    service scale the window is hundreds of points and sorting it on
    demand is cheaper than being clever.  Thread-safe — completions
    land from runner callbacks.
    """

    def __init__(self, target: float | None = None,
                 window: int = 512):
        if window < 1:
            raise ValueError(f"slo window must be >= 1, got {window}")
        if target is not None and target <= 0:
            raise ValueError(
                f"slo target must be positive, got {target}")
        self.target = target
        self.window = window
        self._lock = threading.Lock()
        self._latencies: list[float] = []
        self._count = 0

    def observe(self, seconds: float) -> None:
        if seconds < 0:
            return
        with self._lock:
            self._count += 1
            self._latencies.append(seconds)
            if len(self._latencies) > self.window:
                del self._latencies[0]

    @staticmethod
    def _percentile(ordered: list[float], q: float) -> float:
        if not ordered:
            return 0.0
        index = min(len(ordered) - 1,
                    max(0, round(q * (len(ordered) - 1))))
        return ordered[index]

    def snapshot(self) -> dict:
        """``{count, window, p50, p95, p99, target, ok}`` — ``ok``
        means the window's p95 meets the target (vacuously true with
        no target or no data)."""
        with self._lock:
            ordered = sorted(self._latencies)
            count = self._count
        p50 = self._percentile(ordered, 0.50)
        p95 = self._percentile(ordered, 0.95)
        p99 = self._percentile(ordered, 0.99)
        ok = True
        if self.target is not None and ordered:
            ok = p95 <= self.target
        return {
            "count": count,
            "window": len(ordered),
            "p50": round(p50, 6),
            "p95": round(p95, 6),
            "p99": round(p99, 6),
            "target": self.target,
            "ok": ok,
        }


# -- crash forensics ---------------------------------------------------------


class ForensicsWriter:
    """Post-mortem bundle writer rooted at ``<state>/.forensics/``.

    One JSON file per incident, written atomically; a writer that
    cannot write (disk full, permissions) degrades silently into
    ``disabled_reason`` — forensics must never take the server down
    with the incident it is documenting.
    """

    def __init__(self, root):
        self.root = Path(root)
        self.disabled_reason: str | None = None
        self.written: list[Path] = []

    def write(self, reason: str, job, *, journal_path=None,
              pool: dict | None = None,
              trace_tail: list[dict] | None = None,
              health: dict | None = None,
              metrics: dict | None = None) -> Path | None:
        """Capture one incident; returns the bundle path (None when
        disabled or the write failed)."""
        bundle = {
            "reason": reason,
            "written_at": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "job": {
                **job.describe(),
                "spec": job.spec,
                "seed": job.spec.get("seed"),
                "trace": getattr(job, "trace", None),
                "infra": getattr(job, "infra", None),
            },
            "pool": pool,
            "journal_tail": _journal_tail(journal_path)
            if journal_path is not None else [],
            "trace_tail": trace_tail or [],
            "health": health,
            "metrics": metrics,
        }
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            stamp = time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())
            base = f"{stamp}-{job.id}-{reason}"
            path = self.root / f"{base}.json"
            n = 1
            while path.exists():
                path = self.root / f"{base}-{n}.json"
                n += 1
            atomic_write_text(
                str(path),
                json.dumps(bundle, sort_keys=True, indent=2) + "\n",
            )
        except OSError as err:
            self.disabled_reason = (
                f"forensics disabled: cannot write under "
                f"{self.root}: {err}"
            )
            return None
        self.written.append(path)
        return path


def _journal_tail(path, limit: int = FORENSICS_JOURNAL_TAIL) -> list:
    """Best-effort parse of the last frames of a CRC-framed journal.

    Frame bodies only — the CRC envelope is transport, not evidence —
    and a torn tail line is reported as such rather than hidden.
    """
    try:
        lines = Path(path).read_bytes().splitlines()
    except OSError:
        return []
    frames: list = []
    for line in lines[-limit:]:
        try:
            frame = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            frames.append({"torn_frame": True})
            continue
        frames.append(frame.get("body", frame))
    return frames


# -- the observer facade -----------------------------------------------------


class ServiceObserver:
    """Everything the server consults before observing anything.

    Bundles the tracer (None when tracing is off — the common case),
    the SLO tracker (always on: a handful of floats) and the
    forensics writer, so instrumentation sites stay one-liners and
    the off path stays a single ``is None`` check.
    """

    def __init__(self, *, trace: bool = False,
                 trace_dir=None, slo: float | None = None,
                 forensics_dir=None):
        self.trace_dir = Path(trace_dir) if trace_dir else None
        enabled = trace or self.trace_dir is not None
        self.tracer = ServiceTracer() if enabled else None
        self.slo = SloTracker(target=slo)
        self.forensics = (ForensicsWriter(forensics_dir)
                          if forensics_dir else None)

    @property
    def tracing(self) -> bool:
        return self.tracer is not None

    def now_us(self) -> float:
        return self.tracer.now_us() if self.tracer else 0.0

    def instant(self, job, track: str, name: str, **args) -> None:
        if self.tracer is not None:
            self.tracer.instant(job, track, name, **args)

    def span(self, job, track: str, name: str, start_us: float,
             end_us: float | None = None, **args) -> None:
        if self.tracer is not None:
            self.tracer.span(job, track, name, start_us, end_us,
                             **args)

    def export_job_trace(self, job) -> dict | None:
        """The job's merged Perfetto document (None when tracing is
        off or the ring holds nothing for it)."""
        if self.tracer is None:
            return None
        events = self.tracer.events_for(job.id)
        if not events:
            return None
        return self.tracer.perfetto(events)

    def write_job_trace(self, job) -> Path | None:
        """Export a finished job's trace under ``--trace-dir``."""
        if self.trace_dir is None:
            return None
        document = self.export_job_trace(job)
        if document is None:
            return None
        try:
            self.trace_dir.mkdir(parents=True, exist_ok=True)
            path = self.trace_dir / f"{job.id}.json"
            atomic_write_text(
                str(path), json.dumps(document, sort_keys=True) + "\n")
        except OSError:
            return None
        return path


# -- Prometheus exposition ---------------------------------------------------


_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    return "repro_" + _NAME_SANITIZER.sub("_", name)


def _prom_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def render_prometheus(registry, *, quotas: dict | None = None,
                      quota_limit: int | None = None,
                      quota_peaks: dict | None = None,
                      fleet: dict | None = None,
                      pool: dict | None = None,
                      slo: dict | None = None) -> str:
    """Prometheus text exposition of one server's state.

    Registry instruments render under their dotted names with dots
    mangled to underscores (``service.jobs.submitted`` →
    ``repro_service_jobs_submitted``); histograms render cumulative
    ``_bucket{le=...}`` series plus ``_sum``/``_count``; per-tenant
    quota holds become one labelled series.
    """
    lines: list[str] = []
    for instrument in registry.instruments():
        name = _prom_name(instrument.name)
        kind = getattr(instrument, "kind", "untyped")
        if kind == "histogram":
            lines.append(f"# TYPE {name} histogram")
            cumulative = 0
            for i, bound in enumerate(instrument.buckets):
                cumulative += instrument.counts[i]
                lines.append(
                    f'{name}_bucket{{le="{_prom_value(float(bound))}"'
                    f"}} {cumulative}"
                )
            lines.append(
                f'{name}_bucket{{le="+Inf"}} {instrument.count}')
            lines.append(
                f"{name}_sum {_prom_value(float(instrument.total))}")
            lines.append(f"{name}_count {instrument.count}")
        else:
            prom_kind = kind if kind in ("counter", "gauge") \
                else "untyped"
            lines.append(f"# TYPE {name} {prom_kind}")
            lines.append(f"{name} {_prom_value(instrument.value)}")
    if quotas is not None:
        lines.append("# TYPE repro_service_quota_held gauge")
        for tenant in sorted(quotas):
            label = tenant.replace("\\", "\\\\").replace('"', '\\"')
            lines.append(
                f'repro_service_quota_held{{tenant="{label}"}} '
                f"{quotas[tenant]}"
            )
        if quota_limit is not None:
            lines.append("# TYPE repro_service_quota_limit gauge")
            lines.append(
                f"repro_service_quota_limit {quota_limit}")
    if quota_peaks:
        lines.append("# TYPE repro_service_quota_peak gauge")
        for tenant in sorted(quota_peaks):
            label = tenant.replace("\\", "\\\\").replace('"', '\\"')
            lines.append(
                f'repro_service_quota_peak{{tenant="{label}"}} '
                f"{quota_peaks[tenant]}"
            )
    if fleet:
        for key in sorted(fleet):
            name = f"repro_service_fleet_{key}"
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_prom_value(fleet[key])}")
    if pool:
        for key in sorted(pool):
            name = f"repro_service_pool_{key}"
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {_prom_value(pool[key])}")
    if slo:
        for key in ("p50", "p95", "p99", "count", "window"):
            if key in slo:
                name = f"repro_service_slo_{key}"
                lines.append(f"# TYPE {name} gauge")
                lines.append(f"{name} {_prom_value(slo[key])}")
        if slo.get("target") is not None:
            lines.append("# TYPE repro_service_slo_target gauge")
            lines.append(
                f"repro_service_slo_target "
                f"{_prom_value(float(slo['target']))}"
            )
        lines.append("# TYPE repro_service_slo_ok gauge")
        lines.append(
            f"repro_service_slo_ok "
            f"{_prom_value(bool(slo.get('ok', True)))}"
        )
    return "\n".join(lines) + "\n"
