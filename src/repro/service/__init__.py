"""Campaign-as-a-service: a crash-safe, backpressured job server.

The service turns the one-shot CLI workflows (``repro inject``,
``repro sweep``, ...) into jobs submitted over a tiny JSON-lines
protocol (Unix socket or TCP) and executed on the shared supervised
worker machinery.  The layering, bottom up:

* :mod:`repro.service.protocol` — wire format, job kinds, spec
  normalisation and content-addressed job ids;
* :mod:`repro.service.quotas` — per-tenant admission quotas;
* :mod:`repro.service.queue` — the bounded admission queue with an
  explicit retry-after backpressure hint;
* :mod:`repro.service.jobs` — the durable job store: every accepted
  job and every state transition is a CRC-framed journal record, so
  ``kill -9`` plus restart recovers the full queue and resumes
  in-flight campaigns bit-identically;
* :mod:`repro.service.runner` — executes one job synchronously in a
  runner thread (campaign journals make inject jobs resumable);
* :mod:`repro.service.observe` — service-wide observability:
  end-to-end job tracing (one merged Perfetto timeline per job),
  Prometheus metrics exposition, SLO latency tracking and crash
  forensics bundles — off by default and observationally invariant;
* :mod:`repro.service.server` — the asyncio front end: admission,
  scheduling, progress streaming, heartbeats, graceful drain;
* :mod:`repro.service.client` — sync and asyncio client libraries
  with bounded retry/backoff and idempotent submission.
"""

from repro.service.client import AsyncClient, Client, parse_address
from repro.service.jobs import JobState, JobStore
from repro.service.observe import (
    ForensicsWriter,
    ServiceObserver,
    ServiceTracer,
    SloTracker,
    mint_trace_context,
    render_prometheus,
)
from repro.service.protocol import (
    JOB_KINDS,
    ProtocolError,
    job_id_for,
    normalize_spec,
)
from repro.service.quotas import TenantQuotas
from repro.service.queue import AdmissionQueue
from repro.service.server import JobServer, ServerConfig

__all__ = [
    "AdmissionQueue",
    "AsyncClient",
    "Client",
    "ForensicsWriter",
    "JOB_KINDS",
    "JobServer",
    "JobState",
    "JobStore",
    "ProtocolError",
    "ServerConfig",
    "ServiceObserver",
    "ServiceTracer",
    "SloTracker",
    "TenantQuotas",
    "job_id_for",
    "mint_trace_context",
    "normalize_spec",
    "parse_address",
    "render_prometheus",
]
