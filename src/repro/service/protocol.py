"""Wire protocol of the job service: JSON lines, content-addressed ids.

Every message — request or response — is one JSON object on one
``\\n``-terminated line, UTF-8, canonically encoded (sorted keys).
Requests carry ``{"op": ..., ...}``; responses carry ``{"ok": true,
...}`` or ``{"ok": false, "error": ..., ...}``.  A rejected
submission additionally carries ``"retry_after"`` (seconds, float):
explicit backpressure the client library honours instead of
hammering a full queue.

Job identity is content-addressed: ``job_id_for`` hashes the
canonical JSON of ``(tenant, kind, normalised spec)``, so submitting
the same work twice — by a retrying client, or by two operators —
lands on the same job instead of running it twice.  The server
recomputes the id and rejects a client-supplied id that does not
match its spec, which keeps ids trustworthy as result-cache keys.
"""

from __future__ import annotations

import hashlib
import json

from repro.checkpoint import canonical_json

PROTOCOL_VERSION = 1

#: job kinds the service executes.  ``sleep`` is a diagnostics kind
#: (chaos tests and operators pacing a queue) — it holds a runner
#: slot for ``seconds`` while staying cancellable.
JOB_KINDS = ("inject", "sweep", "explore", "run", "compile", "sleep")

#: request operations.  ``metrics`` serves the Prometheus-renderable
#: registry snapshot; ``trace`` serves one job's end-to-end trace
#: events (when the server runs with tracing enabled).
OPS = ("health", "submit", "status", "jobs", "result", "tail",
       "cancel", "drain", "metrics", "trace")

#: maximum accepted request line, bytes.  Campaign specs are small;
#: anything larger is a confused or malicious client and is refused
#: before it can balloon server memory.
MAX_LINE_BYTES = 1 << 20

DEFAULT_TENANT = "default"

#: the spec fields accepted per kind (everything else is rejected —
#: a typo like ``sede`` must fail loudly, not silently run with the
#: default seed).  Values are normalised but deliberately not deeply
#: validated here: the execution layer applies the same validation
#: the CLI does (``CampaignConfig.__post_init__`` etc.).
SPEC_FIELDS = {
    "inject": {
        "extension", "workload", "source", "entry", "scale", "faults",
        "seed", "models", "clock_ratio", "fifo_depth", "jobs",
        "checkpoint_every", "recover", "mdl", "task_timeout",
        "max_retries", "serial_fallback", "warm_start", "batch_size",
    },
    "sweep": {"points", "engine"},
    "explore": {
        "space", "mode", "max_points", "population", "generations",
        "faults", "ci_target", "budget", "batch", "min_faults",
        "seed", "jobs", "engine",
    },
    "run": {"workload", "extension", "clock_ratio", "fifo_depth",
            "scale", "predecode", "scaled_memory", "engine"},
    "compile": {"source", "filename"},
    "sleep": {"seconds"},
}

#: spec fields that must be present.
REQUIRED_FIELDS = {
    "inject": {"extension"},
    "sweep": {"points"},
    "explore": {"space"},
    "run": {"workload"},
    "compile": {"source"},
    "sleep": {"seconds"},
}


class ProtocolError(Exception):
    """A malformed or unacceptable protocol message."""


def encode(message: dict) -> bytes:
    """One canonical JSON line, ready for the socket."""
    return (canonical_json(message) + "\n").encode("utf-8")


def decode_line(line: bytes) -> dict:
    """Parse one received line; raises :class:`ProtocolError`."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"message exceeds {MAX_LINE_BYTES} bytes"
        )
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as err:
        raise ProtocolError(f"not a JSON line: {err}") from None
    if not isinstance(message, dict):
        raise ProtocolError("message must be a JSON object")
    return message


def normalize_spec(kind: str, spec: dict) -> dict:
    """Validate and canonicalise one job spec.

    Normalisation makes idempotent submission work: two specs that
    mean the same job must hash identically, so defaults are *not*
    filled in (a spec that says ``seed=1`` explicitly and one that
    omits it are different submissions — the executor applies the
    same default either way, but we refuse to guess equivalence),
    while key order and JSON-level representation differences are
    erased by the canonical encoding.
    """
    if kind not in JOB_KINDS:
        known = ", ".join(JOB_KINDS)
        raise ProtocolError(f"unknown job kind {kind!r} (known: {known})")
    if not isinstance(spec, dict):
        raise ProtocolError(f"{kind} spec must be a JSON object")
    allowed = SPEC_FIELDS[kind]
    unknown = sorted(set(spec) - allowed)
    if unknown:
        raise ProtocolError(
            f"unknown {kind} spec field(s): {', '.join(unknown)} "
            f"(allowed: {', '.join(sorted(allowed))})"
        )
    missing = sorted(REQUIRED_FIELDS[kind] - set(spec))
    if missing:
        raise ProtocolError(
            f"{kind} spec is missing required field(s): "
            f"{', '.join(missing)}"
        )
    try:
        canonical_json(spec)
    except (TypeError, ValueError) as err:
        raise ProtocolError(
            f"{kind} spec is not plain JSON data: {err}"
        ) from None
    return dict(spec)


def job_id_for(tenant: str, kind: str, spec: dict) -> str:
    """Content-addressed job id: the same submission always maps to
    the same id, on the client and on the server independently.

    The submission's optional ``trace`` context is deliberately *not*
    part of the hash: trace ids are per-attempt lineage, and folding
    them in would break idempotent resubmission (the whole point of
    content addressing).
    """
    normalized = normalize_spec(kind, spec)
    payload = canonical_json(
        {"tenant": tenant, "kind": kind, "spec": normalized}
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def normalize_trace(trace) -> dict:
    """Validate/complete a submission's trace context; raises
    :class:`ProtocolError` on malformed input."""
    from repro.service.observe import ensure_trace_context

    try:
        return ensure_trace_context(trace)
    except ValueError as err:
        raise ProtocolError(str(err)) from None


# -- response helpers --------------------------------------------------------


def ok(**fields) -> dict:
    return {"ok": True, **fields}


def error(message: str, **fields) -> dict:
    return {"ok": False, "error": message, **fields}


def reject(message: str, retry_after: float, **fields) -> dict:
    """Backpressure response: try again, but not before
    ``retry_after`` seconds."""
    return error(message, retry_after=round(retry_after, 3),
                 rejected=True, **fields)
