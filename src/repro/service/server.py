"""The asyncio job server: admission, scheduling, streaming, drain.

One event loop owns all bookkeeping; jobs execute on a small thread
pool (:mod:`repro.service.runner`), fanning out further through the
shared :class:`~repro.engine.pool.WorkerFleet` when a job asks for
parallelism.  The design rules:

* **Nothing is accepted before it is durable.**  ``submit`` journals
  the job, then answers.  A ``kill -9`` at any point therefore loses
  no accepted job: restart replays the journal, re-queues everything
  non-terminal and resumes inject campaigns from their own journals.
* **Backpressure is explicit.**  A full queue or exhausted tenant
  quota rejects with ``retry_after`` rather than buffering without
  bound; clients back off and retry idempotently (content-addressed
  job ids make duplicate submissions collapse onto the same job).
* **Progress is level-triggered.**  ``tail`` streams a job's state
  events by version number: a slow consumer never buffers more than
  the events it has not read, and naturally coalesces to the latest
  state (snapshot-on-reconnect, not an unbounded replay buffer).
* **Shutdown is a drain.**  SIGTERM stops admission, cancels running
  jobs cooperatively (their campaign journals checkpoint every
  result, so nothing is lost), re-queues them durably and exits;
  the next start picks the queue straight back up.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from repro.engine.pool import WorkerFleet
from repro.engine.supervisor import PoolStats
from repro.service import protocol
from repro.service.jobs import JobState, JobStore
from repro.service.observe import (
    LATENCY_BUCKETS,
    ServiceObserver,
    render_prometheus,
)
from repro.service.queue import AdmissionQueue
from repro.service.quotas import TenantQuotas
from repro.service.runner import CancelToken, JobCancelled, execute_job
from repro.telemetry.metrics import NULL_METRICS, MetricsRegistry


@dataclass(frozen=True)
class ServerConfig:
    """Service tuning knobs (none affect job *results*)."""

    #: bounded admission queue capacity.
    capacity: int = 64
    #: concurrent runner threads (jobs executing at once).
    runners: int = 2
    #: per-tenant live-job quota.
    quota: int = 8
    #: total worker processes shared by all jobs' fan-out.
    fleet: int = 4
    #: heartbeat period, seconds.
    heartbeat: float = 1.0
    #: wall-clock deadline per job, seconds (None = unlimited).
    #: Enforced cooperatively: the job's cancel token fires and the
    #: job fails with a deadline detail.
    job_deadline: float | None = None
    #: end-to-end job tracing (submit → queue → lease → simulation)
    #: into a bounded in-memory ring; off by default — tracing
    #: observes, never perturbs (result documents are bit-identical
    #: either way).
    trace: bool = False
    #: export each finished job's merged Perfetto trace here
    #: (implies ``trace``).
    trace_dir: str | None = None
    #: submit→result p95 SLO target, seconds (None = track latencies
    #: without a pass/fail threshold).
    slo: float | None = None
    #: write post-mortem bundles to ``<state>/.forensics/`` on job
    #: failure, worker crash/quarantine, or drain.  On by default:
    #: it costs nothing until something goes wrong.
    forensics: bool = True
    #: metrics registry on/off (off exists for overhead benchmarks;
    #: the registry is cheap enough to leave on in production).
    metrics: bool = True


class JobServer:
    """One service instance rooted at a state directory."""

    def __init__(self, state_dir, address: str,
                 config: ServerConfig | None = None):
        self.config = config or ServerConfig()
        self.address = address
        self.metrics = (MetricsRegistry() if self.config.metrics
                        else NULL_METRICS)
        self.store = JobStore(state_dir, metrics=self.metrics)
        self.queue = AdmissionQueue(self.config.capacity)
        self.quotas = TenantQuotas(self.config.quota)
        self.fleet = WorkerFleet(self.config.fleet)
        self.observer = ServiceObserver(
            trace=self.config.trace,
            trace_dir=self.config.trace_dir,
            slo=self.config.slo,
            forensics_dir=(Path(state_dir) / ".forensics"
                           if self.config.forensics else None),
        )
        #: fleet-lifetime supervised-pool tallies, summed across
        #: every campaign this server ran (satellite: PoolStats in
        #: health/status instead of stderr-only warnings).
        self.pool_totals = PoolStats()
        self._submitted = self.metrics.counter(
            "service.jobs.submitted")
        self._rejected = self.metrics.counter("service.jobs.rejected")
        self._completed = self.metrics.counter(
            "service.jobs.completed")
        self._failed = self.metrics.counter("service.jobs.failed")
        self._cancelled = self.metrics.counter(
            "service.jobs.cancelled")
        self._recovered = self.metrics.counter(
            "service.jobs.recovered")
        self._deduplicated = self.metrics.counter(
            "service.jobs.deduplicated")
        self._queued_gauge = self.metrics.gauge("service.queue.depth")
        self._running_gauge = self.metrics.gauge(
            "service.jobs.running")
        self._leased_gauge = self.metrics.gauge(
            "service.fleet.leased")
        self._wait_hist = self.metrics.histogram(
            "service.queue.wait_seconds", LATENCY_BUCKETS)
        self._latency_hist = self.metrics.histogram(
            "service.submit_to_result_seconds", LATENCY_BUCKETS)
        self._lease_hist = self.metrics.histogram(
            "service.fleet.lease_seconds", LATENCY_BUCKETS)
        self._retry_hist = self.metrics.histogram(
            "service.queue.retry_after_seconds", LATENCY_BUCKETS)
        self.ready = False
        self.draining = False
        self.heartbeats = 0
        self._started = time.monotonic()
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._running: dict[str, CancelToken] = {}
        #: recovered jobs that did not fit a shrunk queue; drained
        #: by the dispatcher as capacity frees up.
        self._overflow: list[str] = []
        self._tasks: set[asyncio.Task] = set()
        #: fires whenever any job gains an event; tail subscribers
        #: and the dispatcher wake on it.  Level-triggered: waiters
        #: re-check state, so a burst of events coalesces.
        self._wakeup: asyncio.Event | None = None
        self._stopping: asyncio.Event | None = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Recover state, bind the socket, start background tasks."""
        self._loop = asyncio.get_running_loop()
        self._wakeup = asyncio.Event()
        self._stopping = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.runners,
            thread_name_prefix="repro-runner",
        )
        recovered = self.store.load()
        # Warm the retry-after EWMA from replayed journal timings so
        # the first post-restart backpressure hint reflects real
        # service times instead of the cold default.
        self.queue.seed_service_times(
            self.store.replayed_service_times)
        now = time.monotonic()
        for job in recovered:
            job.accepted_monotonic = now
            job.queued_monotonic = now
            self.observer.instant(job, "queue", "recovered")
            self.quotas.try_acquire(job.tenant)  # re-admit silently
            admitted, _hint = self.queue.try_push(job.id)
            if not admitted:
                # The queue shrank across the restart; the job stays
                # QUEUED in the store and a later dispatch sweep
                # (triggered when capacity frees up) re-queues it.
                self._overflow.append(job.id)
            self._recovered.inc()
        host, port, path = parse_listen(self.address)
        if path is not None:
            self._server = await asyncio.start_unix_server(
                self._serve_connection, path=path)
        else:
            self._server = await asyncio.start_server(
                self._serve_connection, host=host, port=port)
        self._spawn(self._dispatch_loop(), name="dispatch")
        self._spawn(self._heartbeat_loop(), name="heartbeat")
        self._install_signal_handlers()
        self.ready = True

    def _spawn(self, coro, name: str) -> asyncio.Task:
        task = self._loop.create_task(coro, name=name)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return task

    def _install_signal_handlers(self) -> None:
        # add_signal_handler only works on a main-thread loop; tests
        # host the server on a side thread and drive drain directly.
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(
                    signum,
                    lambda: self._spawn(self.drain(), name="drain"),
                )
            except (NotImplementedError, RuntimeError, ValueError):
                return

    async def serve_forever(self) -> None:
        await self._stopping.wait()

    async def drain(self) -> None:
        """Graceful shutdown: stop admission, park running jobs
        durably back in the QUEUED state, stop."""
        if self.draining:
            return
        self.draining = True
        self.ready = False
        for job_id, token in list(self._running.items()):
            # Park a post-mortem bundle for every job the drain
            # interrupts: the operator who sent SIGTERM gets the
            # job's spec, journal tail and trace without having to
            # reconstruct the moment later.
            job = self.store.jobs.get(job_id)
            if job is not None:
                self._write_forensics("drain", job)
            token.cancel("drain")
        # Wait for runner threads to come home (each notices its
        # cancel token between units of work).
        while self._running:
            self._wakeup.clear()
            await self._wakeup.wait()
        await self.stop()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        for task in list(self._tasks):
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await task
        self.store.close()
        self._stopping.set()

    def _notify(self) -> None:
        """Wake every waiter (dispatcher, tail subscribers)."""
        self._wakeup.set()

    # -- background tasks ----------------------------------------------------

    async def _heartbeat_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.heartbeat)
            self.heartbeats += 1
            self._queued_gauge.set(len(self.queue))
            self._running_gauge.set(len(self._running))
            self._leased_gauge.set(self.fleet.leased)

    async def _dispatch_loop(self) -> None:
        while True:
            dispatched = self._try_dispatch()
            if not dispatched:
                self._wakeup.clear()
                # Re-check after clearing: a completion may have
                # raced the clear (classic lost-wakeup guard).
                if not self._try_dispatch():
                    await self._wakeup.wait()

    def _try_dispatch(self) -> bool:
        if self.draining:
            return False
        if len(self._running) >= self.config.runners:
            return False
        job_id = self.queue.pop()
        if job_id is None:
            if self._overflow:
                job_id = self._overflow.pop(0)
            else:
                return False
        job = self.store.jobs.get(job_id)
        if job is None or job.state is not JobState.QUEUED:
            return True  # cancelled while queued; slot freed
        token = CancelToken()
        self._running[job.id] = token
        now = time.monotonic()
        if job.queued_monotonic is not None:
            wait = now - job.queued_monotonic
            self._wait_hist.observe(wait)
            if self.observer.tracing:
                end_us = self.observer.now_us()
                self.observer.span(
                    job, "queue", "queue.wait",
                    end_us - wait * 1e6, end_us)
        self.store.transition(job, JobState.RUNNING)
        self._notify()
        if self.config.job_deadline is not None:
            self._loop.call_later(
                self.config.job_deadline, token.cancel,
                f"deadline exceeded "
                f"({self.config.job_deadline:g}s)",
            )
        started = time.monotonic()
        future = self._loop.run_in_executor(
            self._executor, self._execute, job, token)
        future.add_done_callback(
            lambda fut: self._loop.call_soon_threadsafe(
                self._finish, job, token, started, fut)
        )
        return True

    def _execute(self, job, token: CancelToken) -> dict:
        want = max(1, int(job.spec.get("jobs", 1)))
        lease_start = time.monotonic()
        lease_start_us = self.observer.now_us()
        try:
            with self.fleet.lease(want) as lease:
                self._lease_hist.observe(
                    time.monotonic() - lease_start)
                self._leased_gauge.set(self.fleet.leased)
                try:
                    return execute_job(job, self.store, token,
                                       jobs=lease.granted,
                                       observer=self.observer)
                finally:
                    # One span per lease covering the whole hold:
                    # the fleet track in the merged trace shows when
                    # worker capacity was pinned by which job.
                    if self.observer.tracing:
                        self.observer.span(
                            job, "fleet", "lease", lease_start_us,
                            want=want, granted=lease.granted)
        finally:
            self._leased_gauge.set(self.fleet.leased)

    def _finish(self, job, token: CancelToken, started: float,
                future) -> None:
        self._running.pop(job.id, None)
        now = time.monotonic()
        service_time = now - started
        self.queue.note_service_time(service_time)
        if self.observer.tracing:
            end_us = self.observer.now_us()
            self.observer.span(
                job, "runner", "job.run",
                end_us - service_time * 1e6, end_us, kind=job.kind)
        forensics_reason = None
        try:
            outcome = future.result()
        except JobCancelled as err:
            if self.draining or str(err) == "drain":
                self.store.transition(
                    job, JobState.QUEUED,
                    "re-queued: server drained mid-run")
            else:
                self.quotas.release(job.tenant)
                self._cancelled.inc()
                self.store.transition(job, JobState.CANCELLED,
                                      str(err))
        except Exception as err:  # noqa: BLE001 — job boundary
            self.quotas.release(job.tenant)
            self._failed.inc()
            forensics_reason = "job-failed"
            self.store.transition(
                job, JobState.FAILED,
                f"{type(err).__name__}: {err}")
        else:
            self._absorb_pool_stats(job, outcome.get("meta"))
            if job.infra is not None:
                forensics_reason = (
                    "quarantine" if job.infra.get("quarantined")
                    else "worker-crash"
                    if (job.infra.get("crashes")
                        or job.infra.get("timeouts")
                        or job.infra.get("respawns"))
                    else "pool-degraded")
            try:
                self.store.store_result(
                    job, outcome["document"], outcome.get("meta"))
            except OSError as err:
                self.quotas.release(job.tenant)
                self._failed.inc()
                forensics_reason = forensics_reason or "job-failed"
                self.store.transition(
                    job, JobState.FAILED,
                    f"result store failed: {err}")
            else:
                self.quotas.release(job.tenant)
                self._completed.inc()
                if job.accepted_monotonic is not None:
                    latency = now - job.accepted_monotonic
                    self._latency_hist.observe(latency)
                    self.observer.slo.observe(latency)
                self.store.transition(job, JobState.DONE)
        if forensics_reason is not None:
            self._write_forensics(forensics_reason, job)
        if job.terminal:
            self.observer.write_job_trace(job)
        self._notify()

    def _absorb_pool_stats(self, job, meta: dict | None) -> None:
        """Fold one campaign's supervised-pool tallies into the
        fleet-lifetime totals and pin them on the job when something
        actually went wrong (surfaced via ``status``/``health``
        instead of stderr-only warnings)."""
        pool = (meta or {}).get("pool")
        if not pool:
            return
        self.pool_totals.merge(pool)
        if any(pool.get(key) for key in
               ("retries", "respawns", "timeouts", "crashes",
                "quarantined", "degraded")):
            job.infra = dict(pool)

    def _write_forensics(self, reason: str, job) -> None:
        writer = self.observer.forensics
        if writer is None:
            return
        journal_path = self.store.campaign_journal_path(job.id)
        writer.write(
            reason, job,
            journal_path=(journal_path if journal_path.exists()
                          else None),
            pool=self.pool_totals.as_dict(),
            trace_tail=(self.observer.tracer.recent()
                        if self.observer.tracing else []),
            health=self._health_payload(),
            metrics=self.metrics.snapshot(),
        )

    # -- protocol ------------------------------------------------------------

    async def _serve_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.LimitOverrunError):
                    break
                if not line:
                    break
                response = await self._handle_line(line, writer)
                if response is not None:
                    writer.write(protocol.encode(response))
                    try:
                        await writer.drain()
                    except ConnectionError:
                        break
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _handle_line(self, line: bytes, writer) -> dict | None:
        try:
            message = protocol.decode_line(line)
            op = message.get("op")
            if op == "tail":
                await self._op_tail(message, writer)
                return None
            handler = {
                "health": self._op_health,
                "submit": self._op_submit,
                "status": self._op_status,
                "jobs": self._op_jobs,
                "result": self._op_result,
                "cancel": self._op_cancel,
                "drain": self._op_drain,
                "metrics": self._op_metrics,
                "trace": self._op_trace,
            }.get(op)
            if handler is None:
                known = ", ".join(protocol.OPS)
                return protocol.error(
                    f"unknown op {op!r} (known: {known})")
            return await handler(message)
        except protocol.ProtocolError as err:
            return protocol.error(str(err))

    def _health_payload(self) -> dict:
        states = {state.value: 0 for state in JobState}
        for job in self.store.jobs.values():
            states[job.state.value] += 1
        return {
            "version": protocol.PROTOCOL_VERSION,
            "ready": self.ready,
            "draining": self.draining,
            "heartbeats": self.heartbeats,
            "uptime": round(time.monotonic() - self._started, 3),
            "queued": len(self.queue),
            "running": len(self._running),
            "states": states,
            "capacity": self.config.capacity,
            "fleet": self.fleet.snapshot(),
            "pool": self.pool_totals.as_dict(),
            "slo": self.observer.slo.snapshot(),
            "metrics": self.metrics.snapshot(),
        }

    async def _op_health(self, message: dict) -> dict:
        return protocol.ok(**self._health_payload())

    async def _op_metrics(self, message: dict) -> dict:
        """The metrics op: a structured snapshot plus a ready-to-
        scrape Prometheus rendering (``repro status --metrics``)."""
        self._queued_gauge.set(len(self.queue))
        self._running_gauge.set(len(self._running))
        self._leased_gauge.set(self.fleet.leased)
        quotas = self.quotas.snapshot()
        quota_peaks = self.quotas.peak_snapshot()
        fleet = self.fleet.snapshot()
        pool = self.pool_totals.as_dict()
        slo = self.observer.slo.snapshot()
        return protocol.ok(
            metrics=self.metrics.snapshot(),
            quotas=quotas,
            quota_peaks=quota_peaks,
            fleet=fleet,
            pool=pool,
            slo=slo,
            prometheus=render_prometheus(
                self.metrics, quotas=quotas,
                quota_limit=self.quotas.limit,
                quota_peaks=quota_peaks, fleet=fleet,
                pool=pool, slo=slo,
            ),
        )

    async def _op_trace(self, message: dict) -> dict:
        """One job's end-to-end trace events (tracing servers only)."""
        if not self.observer.tracing:
            return protocol.error(
                "tracing is disabled on this server (start it with "
                "--trace-dir or ServerConfig(trace=True))"
            )
        job = self._find(message)
        events = self.observer.tracer.events_for(job.id)
        return protocol.ok(
            job_id=job.id,
            trace=job.trace,
            events=[event.as_dict() for event in events],
        )

    async def _op_submit(self, message: dict) -> dict:
        if self.draining or not self.ready:
            return protocol.reject(
                "server is draining" if self.draining
                else "server is not ready",
                retry_after=1.0,
            )
        tenant = message.get("tenant", protocol.DEFAULT_TENANT)
        if not isinstance(tenant, str) or not tenant:
            return protocol.error("tenant must be a non-empty string")
        kind = message.get("kind")
        spec = protocol.normalize_spec(kind, message.get("spec"))
        job_id = protocol.job_id_for(tenant, kind, spec)
        claimed = message.get("job_id")
        if claimed is not None and claimed != job_id:
            return protocol.error(
                f"job_id mismatch: client sent {claimed}, spec "
                f"hashes to {job_id} — refusing ambiguous identity"
            )
        trace = protocol.normalize_trace(message.get("trace"))
        existing = self.store.jobs.get(job_id)
        if existing is not None:
            # Idempotent resubmission: same content, same job — and
            # the *original* trace lineage wins (the resubmitter's
            # context would orphan the spans already recorded).
            self._deduplicated.inc()
            return protocol.ok(job_id=job_id, deduplicated=True,
                               state=existing.state.value)
        if not self.quotas.try_acquire(tenant):
            self._rejected.inc()
            hint = self.queue.retry_hint()
            self._retry_hist.observe(hint)
            return protocol.reject(
                f"tenant {tenant!r} is at its quota "
                f"({self.quotas.limit} live jobs)",
                retry_after=hint,
                quota=self.quotas.limit,
            )
        admitted, retry_after = self.queue.try_push(job_id)
        if not admitted:
            self.quotas.release(tenant)
            self._rejected.inc()
            self._retry_hist.observe(retry_after)
            return protocol.reject(
                f"queue is full ({self.queue.capacity} jobs)",
                retry_after=retry_after,
            )
        try:
            job = self.store.accept(job_id, tenant, kind, spec,
                                    trace=trace)
        except OSError as err:
            self.queue.remove(job_id)
            self.quotas.release(tenant)
            return protocol.error(f"cannot journal job: {err}")
        now = time.monotonic()
        job.accepted_monotonic = now
        job.queued_monotonic = now
        self._submitted.inc()
        self.observer.instant(job, "client", "submit",
                              tenant=tenant, kind=kind)
        self._notify()
        return protocol.ok(job_id=job.id, deduplicated=False,
                           state=job.state.value)

    async def _op_status(self, message: dict) -> dict:
        job = self._find(message)
        return protocol.ok(job=job.describe())

    async def _op_jobs(self, message: dict) -> dict:
        jobs = sorted(self.store.jobs.values(), key=lambda j: j.seq)
        return protocol.ok(jobs=[job.describe() for job in jobs])

    async def _op_result(self, message: dict) -> dict:
        job = self._find(message)
        if job.state is not JobState.DONE:
            return protocol.error(
                f"job {job.id} is {job.state.value}, not done",
                state=job.state.value, detail=job.detail,
            )
        payload = self.store.result(job)
        if payload is None:
            return protocol.error(
                f"result document for {job.id} is missing or "
                f"corrupt; resubmit to recompute"
            )
        return protocol.ok(job_id=job.id,
                           document=payload["document"],
                           meta=payload.get("meta", {}))

    async def _op_cancel(self, message: dict) -> dict:
        job = self._find(message)
        if job.terminal:
            return protocol.ok(job=job.describe(), noop=True)
        token = self._running.get(job.id)
        if token is not None:
            token.cancel("cancelled by client")
            return protocol.ok(job=job.describe(), cancelling=True)
        self.queue.remove(job.id)
        self.quotas.release(job.tenant)
        self._cancelled.inc()
        self.store.transition(job, JobState.CANCELLED,
                              "cancelled while queued")
        self._notify()
        return protocol.ok(job=job.describe(), cancelling=False)

    async def _op_drain(self, message: dict) -> dict:
        self._spawn(self.drain(), name="drain")
        return protocol.ok(draining=True)

    async def _op_tail(self, message: dict, writer) -> None:
        """Stream one job's state events until it goes terminal.

        Level-triggered by job.version: each iteration sends every
        event the subscriber has not seen, then waits for the next
        change.  A slow consumer therefore receives a *coalesced*
        history — never an unbounded backlog — and a disconnect just
        ends the subscription.
        """
        job = self._find(message)
        seen = int(message.get("since", -1))
        while True:
            for version, state, detail in job.events:
                if version <= seen:
                    continue
                seen = version
                writer.write(protocol.encode(protocol.ok(
                    event="state", job_id=job.id, version=version,
                    state=state, detail=detail,
                )))
            try:
                await writer.drain()
            except ConnectionError:
                return
            if job.terminal:
                writer.write(protocol.encode(protocol.ok(
                    event="end", job_id=job.id,
                    state=job.state.value, detail=job.detail,
                )))
                with contextlib.suppress(ConnectionError):
                    await writer.drain()
                return
            self._wakeup.clear()
            await self._wakeup.wait()

    def _find(self, message: dict):
        job_id = message.get("job_id")
        job = self.store.jobs.get(job_id)
        if job is None:
            raise protocol.ProtocolError(f"unknown job {job_id!r}")
        return job


def parse_listen(address: str) -> tuple[str | None, int | None,
                                        str | None]:
    """``(host, port, unix_path)`` — exactly one side is populated.

    ``unix:/path`` or anything containing ``/`` is a Unix socket;
    ``host:port`` is TCP.
    """
    if address.startswith("unix:"):
        return None, None, address[len("unix:"):]
    if "/" in address:
        return None, None, address
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(
            f"listen address must be unix:/path, /path or host:port, "
            f"got {address!r}"
        )
    return host or "127.0.0.1", int(port), None
