"""The asyncio job server: admission, scheduling, streaming, drain.

One event loop owns all bookkeeping; jobs execute on a small thread
pool (:mod:`repro.service.runner`), fanning out further through the
shared :class:`~repro.engine.pool.WorkerFleet` when a job asks for
parallelism.  The design rules:

* **Nothing is accepted before it is durable.**  ``submit`` journals
  the job, then answers.  A ``kill -9`` at any point therefore loses
  no accepted job: restart replays the journal, re-queues everything
  non-terminal and resumes inject campaigns from their own journals.
* **Backpressure is explicit.**  A full queue or exhausted tenant
  quota rejects with ``retry_after`` rather than buffering without
  bound; clients back off and retry idempotently (content-addressed
  job ids make duplicate submissions collapse onto the same job).
* **Progress is level-triggered.**  ``tail`` streams a job's state
  events by version number: a slow consumer never buffers more than
  the events it has not read, and naturally coalesces to the latest
  state (snapshot-on-reconnect, not an unbounded replay buffer).
* **Shutdown is a drain.**  SIGTERM stops admission, cancels running
  jobs cooperatively (their campaign journals checkpoint every
  result, so nothing is lost), re-queues them durably and exits;
  the next start picks the queue straight back up.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from repro.engine.pool import WorkerFleet
from repro.service import protocol
from repro.service.jobs import JobState, JobStore
from repro.service.queue import AdmissionQueue
from repro.service.quotas import TenantQuotas
from repro.service.runner import CancelToken, JobCancelled, execute_job
from repro.telemetry.metrics import MetricsRegistry


@dataclass(frozen=True)
class ServerConfig:
    """Service tuning knobs (none affect job *results*)."""

    #: bounded admission queue capacity.
    capacity: int = 64
    #: concurrent runner threads (jobs executing at once).
    runners: int = 2
    #: per-tenant live-job quota.
    quota: int = 8
    #: total worker processes shared by all jobs' fan-out.
    fleet: int = 4
    #: heartbeat period, seconds.
    heartbeat: float = 1.0
    #: wall-clock deadline per job, seconds (None = unlimited).
    #: Enforced cooperatively: the job's cancel token fires and the
    #: job fails with a deadline detail.
    job_deadline: float | None = None


class JobServer:
    """One service instance rooted at a state directory."""

    def __init__(self, state_dir, address: str,
                 config: ServerConfig | None = None):
        self.config = config or ServerConfig()
        self.address = address
        self.store = JobStore(state_dir)
        self.queue = AdmissionQueue(self.config.capacity)
        self.quotas = TenantQuotas(self.config.quota)
        self.fleet = WorkerFleet(self.config.fleet)
        self.metrics = MetricsRegistry()
        self._submitted = self.metrics.counter(
            "service.jobs.submitted")
        self._rejected = self.metrics.counter("service.jobs.rejected")
        self._completed = self.metrics.counter(
            "service.jobs.completed")
        self._failed = self.metrics.counter("service.jobs.failed")
        self._cancelled = self.metrics.counter(
            "service.jobs.cancelled")
        self._recovered = self.metrics.counter(
            "service.jobs.recovered")
        self._queued_gauge = self.metrics.gauge("service.queue.depth")
        self._running_gauge = self.metrics.gauge(
            "service.jobs.running")
        self.ready = False
        self.draining = False
        self.heartbeats = 0
        self._started = time.monotonic()
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._running: dict[str, CancelToken] = {}
        #: recovered jobs that did not fit a shrunk queue; drained
        #: by the dispatcher as capacity frees up.
        self._overflow: list[str] = []
        self._tasks: set[asyncio.Task] = set()
        #: fires whenever any job gains an event; tail subscribers
        #: and the dispatcher wake on it.  Level-triggered: waiters
        #: re-check state, so a burst of events coalesces.
        self._wakeup: asyncio.Event | None = None
        self._stopping: asyncio.Event | None = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Recover state, bind the socket, start background tasks."""
        self._loop = asyncio.get_running_loop()
        self._wakeup = asyncio.Event()
        self._stopping = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.runners,
            thread_name_prefix="repro-runner",
        )
        recovered = self.store.load()
        for job in recovered:
            self.quotas.try_acquire(job.tenant)  # re-admit silently
            admitted, _hint = self.queue.try_push(job.id)
            if not admitted:
                # The queue shrank across the restart; the job stays
                # QUEUED in the store and a later dispatch sweep
                # (triggered when capacity frees up) re-queues it.
                self._overflow.append(job.id)
            self._recovered.inc()
        host, port, path = parse_listen(self.address)
        if path is not None:
            self._server = await asyncio.start_unix_server(
                self._serve_connection, path=path)
        else:
            self._server = await asyncio.start_server(
                self._serve_connection, host=host, port=port)
        self._spawn(self._dispatch_loop(), name="dispatch")
        self._spawn(self._heartbeat_loop(), name="heartbeat")
        self._install_signal_handlers()
        self.ready = True

    def _spawn(self, coro, name: str) -> asyncio.Task:
        task = self._loop.create_task(coro, name=name)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return task

    def _install_signal_handlers(self) -> None:
        # add_signal_handler only works on a main-thread loop; tests
        # host the server on a side thread and drive drain directly.
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(
                    signum,
                    lambda: self._spawn(self.drain(), name="drain"),
                )
            except (NotImplementedError, RuntimeError, ValueError):
                return

    async def serve_forever(self) -> None:
        await self._stopping.wait()

    async def drain(self) -> None:
        """Graceful shutdown: stop admission, park running jobs
        durably back in the QUEUED state, stop."""
        if self.draining:
            return
        self.draining = True
        self.ready = False
        for job_id, token in list(self._running.items()):
            token.cancel("drain")
        # Wait for runner threads to come home (each notices its
        # cancel token between units of work).
        while self._running:
            self._wakeup.clear()
            await self._wakeup.wait()
        await self.stop()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        for task in list(self._tasks):
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await task
        self.store.close()
        self._stopping.set()

    def _notify(self) -> None:
        """Wake every waiter (dispatcher, tail subscribers)."""
        self._wakeup.set()

    # -- background tasks ----------------------------------------------------

    async def _heartbeat_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.heartbeat)
            self.heartbeats += 1
            self._queued_gauge.set(len(self.queue))
            self._running_gauge.set(len(self._running))

    async def _dispatch_loop(self) -> None:
        while True:
            dispatched = self._try_dispatch()
            if not dispatched:
                self._wakeup.clear()
                # Re-check after clearing: a completion may have
                # raced the clear (classic lost-wakeup guard).
                if not self._try_dispatch():
                    await self._wakeup.wait()

    def _try_dispatch(self) -> bool:
        if self.draining:
            return False
        if len(self._running) >= self.config.runners:
            return False
        job_id = self.queue.pop()
        if job_id is None:
            if self._overflow:
                job_id = self._overflow.pop(0)
            else:
                return False
        job = self.store.jobs.get(job_id)
        if job is None or job.state is not JobState.QUEUED:
            return True  # cancelled while queued; slot freed
        token = CancelToken()
        self._running[job.id] = token
        self.store.transition(job, JobState.RUNNING)
        self._notify()
        if self.config.job_deadline is not None:
            self._loop.call_later(
                self.config.job_deadline, token.cancel,
                f"deadline exceeded "
                f"({self.config.job_deadline:g}s)",
            )
        started = time.monotonic()
        future = self._loop.run_in_executor(
            self._executor, self._execute, job, token)
        future.add_done_callback(
            lambda fut: self._loop.call_soon_threadsafe(
                self._finish, job, token, started, fut)
        )
        return True

    def _execute(self, job, token: CancelToken) -> dict:
        want = max(1, int(job.spec.get("jobs", 1)))
        with self.fleet.lease(want) as lease:
            return execute_job(job, self.store, token,
                               jobs=lease.granted)

    def _finish(self, job, token: CancelToken, started: float,
                future) -> None:
        self._running.pop(job.id, None)
        self.queue.note_service_time(time.monotonic() - started)
        try:
            outcome = future.result()
        except JobCancelled as err:
            if self.draining or str(err) == "drain":
                self.store.transition(
                    job, JobState.QUEUED,
                    "re-queued: server drained mid-run")
            else:
                self.quotas.release(job.tenant)
                self._cancelled.inc()
                self.store.transition(job, JobState.CANCELLED,
                                      str(err))
        except Exception as err:  # noqa: BLE001 — job boundary
            self.quotas.release(job.tenant)
            self._failed.inc()
            self.store.transition(
                job, JobState.FAILED,
                f"{type(err).__name__}: {err}")
        else:
            try:
                self.store.store_result(
                    job, outcome["document"], outcome.get("meta"))
            except OSError as err:
                self.quotas.release(job.tenant)
                self._failed.inc()
                self.store.transition(
                    job, JobState.FAILED,
                    f"result store failed: {err}")
            else:
                self.quotas.release(job.tenant)
                self._completed.inc()
                self.store.transition(job, JobState.DONE)
        self._notify()

    # -- protocol ------------------------------------------------------------

    async def _serve_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.LimitOverrunError):
                    break
                if not line:
                    break
                response = await self._handle_line(line, writer)
                if response is not None:
                    writer.write(protocol.encode(response))
                    try:
                        await writer.drain()
                    except ConnectionError:
                        break
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _handle_line(self, line: bytes, writer) -> dict | None:
        try:
            message = protocol.decode_line(line)
            op = message.get("op")
            if op == "tail":
                await self._op_tail(message, writer)
                return None
            handler = {
                "health": self._op_health,
                "submit": self._op_submit,
                "status": self._op_status,
                "jobs": self._op_jobs,
                "result": self._op_result,
                "cancel": self._op_cancel,
                "drain": self._op_drain,
            }.get(op)
            if handler is None:
                known = ", ".join(protocol.OPS)
                return protocol.error(
                    f"unknown op {op!r} (known: {known})")
            return await handler(message)
        except protocol.ProtocolError as err:
            return protocol.error(str(err))

    async def _op_health(self, message: dict) -> dict:
        states = {state.value: 0 for state in JobState}
        for job in self.store.jobs.values():
            states[job.state.value] += 1
        return protocol.ok(
            version=protocol.PROTOCOL_VERSION,
            ready=self.ready,
            draining=self.draining,
            heartbeats=self.heartbeats,
            uptime=round(time.monotonic() - self._started, 3),
            queued=len(self.queue),
            running=len(self._running),
            states=states,
            capacity=self.config.capacity,
            fleet={"size": self.fleet.size,
                   "leased": self.fleet.leased,
                   "peak": self.fleet.peak},
            metrics=self.metrics.snapshot(),
        )

    async def _op_submit(self, message: dict) -> dict:
        if self.draining or not self.ready:
            return protocol.reject(
                "server is draining" if self.draining
                else "server is not ready",
                retry_after=1.0,
            )
        tenant = message.get("tenant", protocol.DEFAULT_TENANT)
        if not isinstance(tenant, str) or not tenant:
            return protocol.error("tenant must be a non-empty string")
        kind = message.get("kind")
        spec = protocol.normalize_spec(kind, message.get("spec"))
        job_id = protocol.job_id_for(tenant, kind, spec)
        claimed = message.get("job_id")
        if claimed is not None and claimed != job_id:
            return protocol.error(
                f"job_id mismatch: client sent {claimed}, spec "
                f"hashes to {job_id} — refusing ambiguous identity"
            )
        existing = self.store.jobs.get(job_id)
        if existing is not None:
            # Idempotent resubmission: same content, same job.
            return protocol.ok(job_id=job_id, deduplicated=True,
                               state=existing.state.value)
        if not self.quotas.try_acquire(tenant):
            self._rejected.inc()
            return protocol.reject(
                f"tenant {tenant!r} is at its quota "
                f"({self.quotas.limit} live jobs)",
                retry_after=self.queue.retry_hint(),
                quota=self.quotas.limit,
            )
        admitted, retry_after = self.queue.try_push(job_id)
        if not admitted:
            self.quotas.release(tenant)
            self._rejected.inc()
            return protocol.reject(
                f"queue is full ({self.queue.capacity} jobs)",
                retry_after=retry_after,
            )
        try:
            job = self.store.accept(job_id, tenant, kind, spec)
        except OSError as err:
            self.queue.remove(job_id)
            self.quotas.release(tenant)
            return protocol.error(f"cannot journal job: {err}")
        self._submitted.inc()
        self._notify()
        return protocol.ok(job_id=job.id, deduplicated=False,
                           state=job.state.value)

    async def _op_status(self, message: dict) -> dict:
        job = self._find(message)
        return protocol.ok(job=job.describe())

    async def _op_jobs(self, message: dict) -> dict:
        jobs = sorted(self.store.jobs.values(), key=lambda j: j.seq)
        return protocol.ok(jobs=[job.describe() for job in jobs])

    async def _op_result(self, message: dict) -> dict:
        job = self._find(message)
        if job.state is not JobState.DONE:
            return protocol.error(
                f"job {job.id} is {job.state.value}, not done",
                state=job.state.value, detail=job.detail,
            )
        payload = self.store.result(job)
        if payload is None:
            return protocol.error(
                f"result document for {job.id} is missing or "
                f"corrupt; resubmit to recompute"
            )
        return protocol.ok(job_id=job.id,
                           document=payload["document"],
                           meta=payload.get("meta", {}))

    async def _op_cancel(self, message: dict) -> dict:
        job = self._find(message)
        if job.terminal:
            return protocol.ok(job=job.describe(), noop=True)
        token = self._running.get(job.id)
        if token is not None:
            token.cancel("cancelled by client")
            return protocol.ok(job=job.describe(), cancelling=True)
        self.queue.remove(job.id)
        self.quotas.release(job.tenant)
        self._cancelled.inc()
        self.store.transition(job, JobState.CANCELLED,
                              "cancelled while queued")
        self._notify()
        return protocol.ok(job=job.describe(), cancelling=False)

    async def _op_drain(self, message: dict) -> dict:
        self._spawn(self.drain(), name="drain")
        return protocol.ok(draining=True)

    async def _op_tail(self, message: dict, writer) -> None:
        """Stream one job's state events until it goes terminal.

        Level-triggered by job.version: each iteration sends every
        event the subscriber has not seen, then waits for the next
        change.  A slow consumer therefore receives a *coalesced*
        history — never an unbounded backlog — and a disconnect just
        ends the subscription.
        """
        job = self._find(message)
        seen = int(message.get("since", -1))
        while True:
            for version, state, detail in job.events:
                if version <= seen:
                    continue
                seen = version
                writer.write(protocol.encode(protocol.ok(
                    event="state", job_id=job.id, version=version,
                    state=state, detail=detail,
                )))
            try:
                await writer.drain()
            except ConnectionError:
                return
            if job.terminal:
                writer.write(protocol.encode(protocol.ok(
                    event="end", job_id=job.id,
                    state=job.state.value, detail=job.detail,
                )))
                with contextlib.suppress(ConnectionError):
                    await writer.drain()
                return
            self._wakeup.clear()
            await self._wakeup.wait()

    def _find(self, message: dict):
        job_id = message.get("job_id")
        job = self.store.jobs.get(job_id)
        if job is None:
            raise protocol.ProtocolError(f"unknown job {job_id!r}")
        return job


def parse_listen(address: str) -> tuple[str | None, int | None,
                                        str | None]:
    """``(host, port, unix_path)`` — exactly one side is populated.

    ``unix:/path`` or anything containing ``/`` is a Unix socket;
    ``host:port`` is TCP.
    """
    if address.startswith("unix:"):
        return None, None, address[len("unix:"):]
    if "/" in address:
        return None, None, address
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(
            f"listen address must be unix:/path, /path or host:port, "
            f"got {address!r}"
        )
    return host or "127.0.0.1", int(port), None
