"""Per-tenant admission quotas.

A quota bounds how many *live* (queued or running) jobs one tenant
may hold at once, so a single runaway client cannot monopolise the
shared queue and fleet.  Accounting is acquire/release around the
whole job lifetime: acquired at admission, released exactly once at
the terminal transition — the invariant the property-based tests
hammer on is that concurrent submission storms never push a tenant
past its limit and never leak a slot.
"""

from __future__ import annotations

import threading


class TenantQuotas:
    """Thread-safe per-tenant live-job accounting."""

    def __init__(self, limit: int):
        if limit < 1:
            raise ValueError(f"quota limit must be >= 1, got {limit}")
        self.limit = limit
        self._live: dict[str, int] = {}
        self._peaks: dict[str, int] = {}
        self._lock = threading.Lock()

    def try_acquire(self, tenant: str) -> bool:
        """Take one slot for ``tenant``; False when at the limit."""
        with self._lock:
            held = self._live.get(tenant, 0)
            if held >= self.limit:
                return False
            self._live[tenant] = held + 1
            if held + 1 > self._peaks.get(tenant, 0):
                self._peaks[tenant] = held + 1
            return True

    def release(self, tenant: str) -> None:
        """Give one slot back (terminal job transition)."""
        with self._lock:
            held = self._live.get(tenant, 0)
            if held <= 0:
                raise RuntimeError(
                    f"quota release for {tenant!r} without a matching "
                    f"acquire — job accounting is corrupt"
                )
            if held == 1:
                del self._live[tenant]
            else:
                self._live[tenant] = held - 1

    def held(self, tenant: str) -> int:
        with self._lock:
            return self._live.get(tenant, 0)

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self._live)

    def peak_snapshot(self) -> dict[str, int]:
        """Lifetime high-water mark per tenant — the signal for
        whether the quota limit is actually binding anyone."""
        with self._lock:
            return dict(self._peaks)
