"""Client library for the job service (sync and asyncio).

Both clients speak the same JSON-lines protocol and share the same
robustness posture:

* **Idempotent submission.**  The job id is computed client-side
  (content-addressed over tenant + kind + normalised spec), so a
  retried submit — after a timeout, a dropped connection, a server
  restart — lands on the same job instead of duplicating work.  The
  id travels with the request and the server cross-checks it.
* **Bounded retry with deterministic backoff.**  Connection-level
  failures retry up to ``max_retries`` times, paced by the same
  :func:`~repro.engine.supervisor.deterministic_backoff` schedule the
  worker pool uses.  A rejected submission (backpressure) honours
  the server's ``retry_after`` hint instead.
* **No hidden buffering.**  ``tail`` yields events as they arrive;
  ``wait`` polls status with the same deterministic pacing.
"""

from __future__ import annotations

import asyncio
import json
import socket
import time

from repro.engine.supervisor import deterministic_backoff
from repro.service import protocol
from repro.service.observe import mint_trace_context
from repro.service.protocol import ProtocolError, job_id_for


class ServiceError(Exception):
    """The server answered with a non-retryable error."""


class ServiceRejected(ServiceError):
    """The server rejected the request with backpressure."""

    def __init__(self, message: str, retry_after: float):
        super().__init__(message)
        self.retry_after = retry_after


class ServiceUnavailable(ServiceError):
    """Could not reach the server within the retry budget."""


def parse_address(address: str) -> tuple[str | None, int | None,
                                         str | None]:
    """``(host, port, unix_path)`` — mirrors the server's parser."""
    from repro.service.server import parse_listen
    return parse_listen(address)


def _raise_for(response: dict) -> dict:
    if response.get("ok"):
        return response
    message = response.get("error", "unknown server error")
    if response.get("rejected"):
        raise ServiceRejected(
            message, float(response.get("retry_after", 1.0)))
    raise ServiceError(message)


class Client:
    """Synchronous client; one connection, reconnects on demand."""

    def __init__(self, address: str, *, tenant: str = "default",
                 timeout: float | None = 30.0, max_retries: int = 4,
                 backoff_base: float = 0.1, backoff_cap: float = 2.0,
                 sleep=time.sleep):
        self.address = address
        self.tenant = tenant
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._sleep = sleep
        self._sock: socket.socket | None = None
        self._file = None

    # -- transport -----------------------------------------------------------

    def _connect(self) -> None:
        host, port, path = parse_address(self.address)
        if path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(path)
        else:
            sock = socket.create_connection(
                (host, port), timeout=self.timeout)
        self._sock = sock
        self._file = sock.makefile("rb")

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
            self._file = None

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _roundtrip(self, message: dict) -> dict:
        if self._sock is None:
            self._connect()
        self._sock.sendall(protocol.encode(message))
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line.decode("utf-8"))

    def request(self, op: str, **fields) -> dict:
        """One request/response exchange with bounded reconnect
        retries; raises :class:`ServiceError` on server errors."""
        attempt = 0
        while True:
            try:
                return _raise_for(
                    self._roundtrip({"op": op, **fields}))
            except (ConnectionError, OSError) as err:
                self.close()
                attempt += 1
                if attempt > self.max_retries:
                    raise ServiceUnavailable(
                        f"{op}: {self.address} unreachable after "
                        f"{attempt} attempt(s): {err}"
                    ) from None
                self._sleep(deterministic_backoff(
                    self.backoff_base, self.backoff_cap, attempt,
                    key=op))

    # -- operations ----------------------------------------------------------

    def health(self) -> dict:
        return self.request("health")

    def submit(self, kind: str, spec: dict, *,
               wait_on_backpressure: int = 0,
               trace: dict | None = None) -> dict:
        """Submit one job; returns ``{"job_id", "state",
        "deduplicated"}``.

        With ``wait_on_backpressure=N`` a rejected submission sleeps
        the server's ``retry_after`` hint and retries up to N times
        before letting :class:`ServiceRejected` escape.

        Every submission carries a trace context (minted here unless
        the caller passes its own): trace ids never influence the
        content-addressed job id, so idempotent resubmission still
        collapses onto one job — keeping the *first* submitter's
        lineage.
        """
        job_id = job_id_for(self.tenant, kind, spec)
        trace = trace or mint_trace_context()
        rejections = 0
        while True:
            try:
                return self.request(
                    "submit", tenant=self.tenant, kind=kind,
                    spec=spec, job_id=job_id, trace=trace)
            except ServiceRejected as err:
                rejections += 1
                if rejections > wait_on_backpressure:
                    raise
                self._sleep(err.retry_after)

    def status(self, job_id: str) -> dict:
        return self.request("status", job_id=job_id)["job"]

    def jobs(self) -> list[dict]:
        return self.request("jobs")["jobs"]

    def result(self, job_id: str) -> dict:
        return self.request("result", job_id=job_id)

    def cancel(self, job_id: str) -> dict:
        return self.request("cancel", job_id=job_id)

    def drain(self) -> dict:
        return self.request("drain")

    def metrics(self) -> dict:
        """The metrics op: registry snapshot, quota/fleet/pool/SLO
        state and a Prometheus text rendering."""
        return self.request("metrics")

    def trace(self, job_id: str) -> dict:
        """One job's end-to-end trace events (tracing servers)."""
        return self.request("trace", job_id=job_id)

    def tail(self, job_id: str, since: int = -1):
        """Yield state events until the job goes terminal."""
        if self._sock is None:
            self._connect()
        self._sock.sendall(protocol.encode(
            {"op": "tail", "job_id": job_id, "since": since}))
        while True:
            line = self._file.readline()
            if not line:
                raise ConnectionError(
                    "server closed the tail stream")
            event = _raise_for(json.loads(line.decode("utf-8")))
            yield event
            if event.get("event") == "end":
                return

    def wait(self, job_id: str, *, poll: float = 0.1,
             deadline: float | None = None) -> dict:
        """Poll until the job is terminal; returns its final status."""
        from repro.service.jobs import TERMINAL_STATES, JobState
        limit = (time.monotonic() + deadline
                 if deadline is not None else None)
        while True:
            job = self.status(job_id)
            if JobState(job["state"]) in TERMINAL_STATES:
                return job
            if limit is not None and time.monotonic() > limit:
                raise TimeoutError(
                    f"job {job_id} still {job['state']} after "
                    f"{deadline:g}s")
            self._sleep(poll)


class AsyncClient:
    """Asyncio client with the same surface as :class:`Client`."""

    def __init__(self, address: str, *, tenant: str = "default",
                 max_retries: int = 4, backoff_base: float = 0.1,
                 backoff_cap: float = 2.0):
        self.address = address
        self.tenant = tenant
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def _connect(self) -> None:
        host, port, path = parse_address(self.address)
        if path is not None:
            self._reader, self._writer = (
                await asyncio.open_unix_connection(path))
        else:
            self._reader, self._writer = (
                await asyncio.open_connection(host, port))

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = self._writer = None

    async def __aenter__(self) -> "AsyncClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def request(self, op: str, **fields) -> dict:
        attempt = 0
        while True:
            try:
                if self._writer is None:
                    await self._connect()
                self._writer.write(
                    protocol.encode({"op": op, **fields}))
                await self._writer.drain()
                line = await self._reader.readline()
                if not line:
                    raise ConnectionError(
                        "server closed the connection")
                return _raise_for(json.loads(line.decode("utf-8")))
            except (ConnectionError, OSError) as err:
                await self.close()
                attempt += 1
                if attempt > self.max_retries:
                    raise ServiceUnavailable(
                        f"{op}: {self.address} unreachable after "
                        f"{attempt} attempt(s): {err}"
                    ) from None
                await asyncio.sleep(deterministic_backoff(
                    self.backoff_base, self.backoff_cap, attempt,
                    key=op))

    async def health(self) -> dict:
        return await self.request("health")

    async def submit(self, kind: str, spec: dict, *,
                     wait_on_backpressure: int = 0,
                     trace: dict | None = None) -> dict:
        job_id = job_id_for(self.tenant, kind, spec)
        trace = trace or mint_trace_context()
        rejections = 0
        while True:
            try:
                return await self.request(
                    "submit", tenant=self.tenant, kind=kind,
                    spec=spec, job_id=job_id, trace=trace)
            except ServiceRejected as err:
                rejections += 1
                if rejections > wait_on_backpressure:
                    raise
                await asyncio.sleep(err.retry_after)

    async def status(self, job_id: str) -> dict:
        return (await self.request("status", job_id=job_id))["job"]

    async def result(self, job_id: str) -> dict:
        return await self.request("result", job_id=job_id)

    async def cancel(self, job_id: str) -> dict:
        return await self.request("cancel", job_id=job_id)

    async def metrics(self) -> dict:
        return await self.request("metrics")

    async def trace(self, job_id: str) -> dict:
        return await self.request("trace", job_id=job_id)

    async def tail(self, job_id: str, since: int = -1):
        """Async generator of state events until terminal."""
        if self._writer is None:
            await self._connect()
        self._writer.write(protocol.encode(
            {"op": "tail", "job_id": job_id, "since": since}))
        await self._writer.drain()
        while True:
            line = await self._reader.readline()
            if not line:
                raise ConnectionError("server closed the tail stream")
            event = _raise_for(json.loads(line.decode("utf-8")))
            yield event
            if event.get("event") == "end":
                return
