"""Synchronous job execution, one job per runner thread.

The server dispatches each job to a thread pool; everything here is
plain blocking code.  Execution must be safe off the main thread
(``Campaign.run`` already tolerates that: its SIGTERM hook is
best-effort), must honour cooperative cancellation, and must produce
*deterministic* result documents — an inject job's document is
exactly the ``repro inject --json`` report plus a trailing newline,
so CI can ``cmp`` a served result against a locally-computed
reference.

Inject jobs always run against the job's campaign journal with
``resume=True``: on a fresh job that is simply an empty journal, and
after a server crash it is what makes the re-run finish the campaign
instead of restarting it — the final report is bit-identical either
way, which is the service's core crash-safety promise.
"""

from __future__ import annotations

import threading
import time

from repro.checkpoint import canonical_json


class JobCancelled(Exception):
    """The job was cancelled (client request or server drain)."""


class CancelToken:
    """Cooperative cancellation flag shared with the runner thread."""

    def __init__(self):
        self._event = threading.Event()
        #: why the cancel happened ("cancelled by client", "drain").
        self.reason = ""

    def cancel(self, reason: str) -> None:
        self.reason = reason
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def check(self) -> None:
        if self._event.is_set():
            raise JobCancelled(self.reason or "cancelled")


#: config keys an inject spec may set, mapped straight onto
#: :class:`~repro.faultinject.campaign.CampaignConfig` — the service
#: accepts the same knobs as the CLI, minus paths (``cache_dir``)
#: that must stay under the server's control.
_INJECT_PASSTHROUGH = (
    "extension", "workload", "source", "entry", "scale", "faults",
    "seed", "clock_ratio", "fifo_depth", "warm_start", "batch_size",
    "checkpoint_every", "recover", "task_timeout", "max_retries",
    "serial_fallback",
)


def execute_job(job, store, cancel: CancelToken,
                jobs: int = 1, observer=None) -> dict:
    """Run one job to completion; returns ``{"document", "meta"}``.

    Raises :class:`JobCancelled` for cooperative cancellation and
    lets real execution errors propagate (the server maps them to
    FAILED with the message as detail).  ``jobs`` is the worker-count
    granted by the shared fleet lease (inject/sweep fan-out).
    ``observer`` is the server's
    :class:`~repro.service.observe.ServiceObserver` (or None): job
    kinds hang simulation-track trace events off it, and it never
    influences the result document.
    """
    cancel.check()
    handler = _HANDLERS[job.kind]
    return handler(job, store, cancel, jobs, observer)


def _run_inject(job, store, cancel: CancelToken, jobs: int,
                observer=None) -> dict:
    from repro.faultinject import Campaign, CampaignConfig
    from repro.faultinject.campaign import CampaignInterrupted

    spec = job.spec
    kwargs = {key: spec[key] for key in _INJECT_PASSTHROUGH
              if key in spec}
    if "models" in spec and spec["models"] is not None:
        kwargs["models"] = tuple(spec["models"])
    if "mdl" in spec:
        kwargs["mdl"] = tuple(
            (name, source) for name, source in spec["mdl"]
        )
    kwargs["jobs"] = max(1, min(int(spec.get("jobs", 1)), jobs))
    config = CampaignConfig(**kwargs)
    tracing = observer is not None and observer.tracing
    build_start = observer.now_us() if tracing else 0.0
    campaign = Campaign(config)
    if tracing:
        # The constructor runs the golden (fault-free) reference —
        # the first simulation work a traced job does.
        observer.span(job, "simulation", "golden-run", build_start,
                      workload=config.workload or config.source)

    def progress(done: int, total: int) -> None:
        # Cancellation (and drain) interrupts between faulted runs —
        # everything already journaled is safe and a later resume
        # completes the campaign bit-identically.
        if cancel.cancelled:
            raise KeyboardInterrupt

    on_result = None
    if tracing:
        def on_result(result) -> None:
            observer.instant(
                job, "simulation", "fault",
                index=result.index,
                outcome=getattr(result.outcome, "value",
                                str(result.outcome)),
                cycles=result.cycles,
                instructions=result.instructions,
            )

    journal_path = store.campaign_journal_path(job.id)
    faults_start = observer.now_us() if tracing else 0.0
    try:
        report = campaign.run(progress=progress,
                              journal_path=journal_path, resume=True,
                              on_result=on_result)
    except CampaignInterrupted:
        cancel.check()  # cancelled: surface as JobCancelled
        raise  # a real signal hit the server process itself
    if tracing:
        observer.span(job, "simulation", "faulted-runs", faults_start,
                      faults=config.faults,
                      workers=kwargs["jobs"])
    document = report.to_json() + "\n"
    return {
        "document": document,
        "meta": {
            "kind": "inject",
            "no_coverage": bool(report.no_coverage),
            "detection_coverage": round(report.detection_coverage, 6),
            "warnings": list(campaign.warnings),
            "pool": campaign.pool_stats.as_dict(),
        },
    }


def _run_sweep(job, store, cancel: CancelToken, jobs: int,
               observer=None) -> dict:
    from repro.engine.sweep import SweepPoint, run_point

    spec = job.spec
    engine = spec.get("engine", "fast")
    tracing = observer is not None and observer.tracing
    outcomes = []
    for index, raw in enumerate(spec["points"]):
        cancel.check()
        point_start = observer.now_us() if tracing else 0.0
        point = SweepPoint(**raw)
        outcome = run_point(point, engine=engine)
        if tracing:
            observer.span(job, "simulation", "sweep-point",
                          point_start, index=index)
        outcomes.append(
            {"point": point.identity(), **outcome.payload()}
        )
    document = canonical_json({"points": outcomes}) + "\n"
    return {"document": document,
            "meta": {"kind": "sweep", "points": len(outcomes)}}


def _run_explore(job, store, cancel: CancelToken, jobs: int,
                 observer=None) -> dict:
    """Design-space exploration as a service job.

    The spec mirrors the ``repro explore`` CLI (space as an inline
    dict instead of a preset/file).  State lives under the store's
    per-job explore directory and every campaign always resumes, so a
    crashed or cancelled exploration continues where it stopped and
    the result document is bit-identical to an uninterrupted run —
    and to the CLI run of the same space, which is what the CI smoke
    job ``cmp``\\ s.
    """
    from repro.explore import (
        AdaptiveConfig,
        EvolveConfig,
        ExplorationReport,
        PointEvaluator,
        evolve,
        fractional_factorial,
        full_factorial,
    )
    from repro.explore.space import DesignSpace, SpaceError
    from repro.faultinject.campaign import CampaignInterrupted

    spec = job.spec
    try:
        space = DesignSpace.from_dict(spec["space"])
    except SpaceError as err:
        raise RuntimeError(f"bad explore space: {err}") from None
    mode = spec.get("mode")
    if mode is None:
        mode = "fractional" if "max_points" in spec else "factorial"
    if mode not in ("factorial", "fractional", "evolve"):
        raise RuntimeError(
            f"bad explore mode {mode!r} (expected factorial, "
            f"fractional or evolve)")
    adaptive = None
    if spec.get("ci_target") is not None:
        adaptive = AdaptiveConfig(
            batch=int(spec.get("batch", 50)),
            min_faults=int(spec.get("min_faults", 50)),
            max_faults=int(spec.get("budget", 400)),
            target_half_width=float(spec["ci_target"]),
        )
    seed = int(spec.get("seed", 1))
    granted = max(1, min(int(spec.get("jobs", 1)), jobs))
    tracing = observer is not None and observer.tracing

    def progress(done: int, total: int) -> None:
        if cancel.cancelled:
            raise KeyboardInterrupt

    def log(message: str) -> None:
        cancel.check()
        if tracing:
            observer.instant(job, "simulation", "explore",
                             note=message)

    evaluator = PointEvaluator(
        space,
        jobs=granted,
        engine=spec.get("engine", "fast"),
        state_dir=store.explore_dir(job.id),
        seed=seed,
        faults=int(spec.get("faults", 0)),
        adaptive=adaptive,
        resume=True,
        log=log,
        progress=progress,
    )
    coverage = evaluator.coverage_enabled
    explore_start = observer.now_us() if tracing else 0.0
    try:
        if mode == "evolve":
            evolve_config = EvolveConfig(
                population=int(spec.get("population", 8)),
                generations=int(spec.get("generations", 4)),
            )

            def objective_key(evaluation):
                if (not evaluation.feasible
                        or evaluation.slowdown is None
                        or (coverage and evaluation.coverage is None)):
                    return None
                return evaluation.objectives(coverage)

            evaluations = list(evolve(
                space, evaluator.evaluate, evolve_config,
                objective_key, seed=seed, log=log,
            ).values())
        else:
            if mode == "fractional":
                points = fractional_factorial(
                    space, int(spec.get("max_points", space.size)),
                    seed=seed)
            else:
                points = full_factorial(space)
            evaluations = evaluator.evaluate(points)
    except CampaignInterrupted:
        cancel.check()  # cancelled: surface as JobCancelled
        raise  # a real signal hit the server process itself
    report = ExplorationReport.build(space, mode, evaluations,
                                     coverage)
    if tracing:
        observer.span(job, "simulation", "exploration",
                      explore_start, mode=mode,
                      evaluated=len(report.evaluations),
                      front=len(report.front))
    document = report.to_json() + "\n"
    return {
        "document": document,
        "meta": {
            "kind": "explore",
            "mode": mode,
            "evaluated": len(report.evaluations),
            "feasible": sum(
                1 for e in report.evaluations if e.feasible),
            "front": len(report.front),
            "knee": report.knee,
            "digest": report.digest(),
            "pool": evaluator.runner.stats.as_dict(),
        },
    }


def _run_run(job, store, cancel: CancelToken, jobs: int,
             observer=None) -> dict:
    from repro.engine.sweep import SweepPoint, run_point

    spec = dict(job.spec)
    engine = spec.pop("engine", "fast")
    point = SweepPoint(**spec)
    outcome = run_point(point, engine=engine)
    document = canonical_json(
        {"point": point.identity(), **outcome.payload()}
    ) + "\n"
    return {"document": document, "meta": {"kind": "run"}}


def _run_compile(job, store, cancel: CancelToken, jobs: int,
                 observer=None) -> dict:
    from repro.mdl import MdlError, compile_spec

    spec = job.spec
    filename = spec.get("filename", "<service>")
    try:
        program = compile_spec(spec["source"], filename)
    except MdlError as err:
        raise RuntimeError(f"mdl compile failed: {err}") from None
    document = canonical_json({
        "name": program.name,
        "filename": filename,
    }) + "\n"
    return {"document": document,
            "meta": {"kind": "compile", "name": program.name}}


def _run_sleep(job, store, cancel: CancelToken, jobs: int,
               observer=None) -> dict:
    """Diagnostics kind: hold a runner slot, stay cancellable."""
    remaining = float(job.spec["seconds"])
    if remaining < 0:
        raise RuntimeError("sleep seconds must be >= 0")
    deadline = time.monotonic() + remaining
    while True:
        cancel.check()
        left = deadline - time.monotonic()
        if left <= 0:
            break
        time.sleep(min(0.05, left))
    document = canonical_json(
        {"slept": round(float(job.spec["seconds"]), 6)}
    ) + "\n"
    return {"document": document, "meta": {"kind": "sleep"}}


_HANDLERS = {
    "inject": _run_inject,
    "sweep": _run_sweep,
    "explore": _run_explore,
    "run": _run_run,
    "compile": _run_compile,
    "sleep": _run_sleep,
}
