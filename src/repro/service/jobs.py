"""The durable job store: accepted jobs, state transitions, results.

Crash safety is the point.  Everything the server must not forget
goes through one :class:`~repro.checkpoint.journal.EventJournal`
(``jobs.jsonl``) *before* the client hears "accepted":

* a ``job`` frame records the submission (id, tenant, kind, spec);
* a ``state`` frame records every transition thereafter.

``kill -9`` the server at any point and :meth:`JobStore.load` replays
the journal: terminal jobs stay terminal, everything else (queued
*or* running — a running job's worker died with the server) is
re-queued in original admission order.  Inject jobs additionally keep
a per-job campaign journal under ``journals/``, so a resumed job
re-runs only its missing fault indices and its final report is
bit-identical to an uninterrupted run.

Result documents live in an :class:`~repro.checkpoint.golden_cache.
IdentityCache` keyed on the job's content-addressed identity — the
same CRC-checked, atomically-written container format every other
artifact uses, so a torn result write surfaces as a miss (job is
re-run), never as a silently corrupt result served to a client.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.checkpoint import EventJournal, IdentityCache
from repro.service.observe import LATENCY_BUCKETS
from repro.telemetry.metrics import NULL_METRICS

#: identity frame pinning the journal to this store format.  Stays at
#: version 1: the observability fields added later (``trace`` on job
#: frames, ``ts`` on state frames) are optional and read with
#: ``.get``, so old journals replay unchanged.
STORE_IDENTITY = {"store": "repro-job-service", "version": 1}

#: how many replayed service-time samples seed the admission queue's
#: retry-after EWMA after a restart.
REPLAY_SERVICE_SAMPLES = 32


class JobState(str, enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    def __str__(self) -> str:
        return self.value


TERMINAL_STATES = frozenset(
    {JobState.DONE, JobState.FAILED, JobState.CANCELLED}
)


@dataclass
class Job:
    """One accepted job (mutable: the server owns its lifecycle)."""

    id: str
    tenant: str
    kind: str
    spec: dict
    state: JobState = JobState.QUEUED
    #: human-readable note for the current state (failure reason,
    #: "recovered after restart", ...).
    detail: str = ""
    #: admission sequence number: total order of accepted jobs,
    #: stable across restarts (replayed from the journal).
    seq: int = 0
    #: monotonically increasing per-job event counter; every state
    #: transition bumps it, which is what ``tail`` clients key on.
    version: int = 0
    #: state history as ``(version, state, detail)`` — served to
    #: ``tail`` subscribers that attach after the fact.
    events: list = field(default_factory=list)
    #: trace context minted at submit (``{"trace_id", "span_id"}``);
    #: journaled with the job so a recovered job keeps its lineage.
    trace: dict | None = None
    #: supervised-pool tallies from the job's last execution, kept
    #: in memory only when something actually went wrong (crashes,
    #: quarantines, degradation) — surfaced via ``status``.
    infra: dict | None = None
    #: monotonic clock at admission/dispatch, server-local and never
    #: journaled — feeds the queue-wait and submit→result metrics.
    accepted_monotonic: float | None = None
    queued_monotonic: float | None = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def describe(self) -> dict:
        data = {
            "id": self.id,
            "tenant": self.tenant,
            "kind": self.kind,
            "state": self.state.value,
            "detail": self.detail,
            "seq": self.seq,
            "version": self.version,
        }
        if self.trace is not None:
            data["trace_id"] = self.trace.get("trace_id")
        if self.infra is not None:
            data["infra"] = self.infra
        return data

    def identity(self) -> dict:
        return {"job": self.id, "tenant": self.tenant,
                "kind": self.kind, "spec": self.spec}


class JobStore:
    """Durable job state rooted at one directory.

    Layout::

        <root>/jobs.jsonl        the job/state journal (recovery)
        <root>/results/          result documents (IdentityCache)
        <root>/journals/<id>.jsonl   per-job campaign journals
        <root>/explore/<id>/     per-job exploration state
    """

    def __init__(self, root, metrics=None):
        self.root = Path(root)
        self.jobs: dict[str, Job] = {}
        self._journal = EventJournal(self.root / "jobs.jsonl")
        self._results = IdentityCache(
            self.root / "results",
            label="result store", section="result",
        )
        self._next_seq = 0
        #: per-job RUNNING→terminal durations recovered from journal
        #: timestamps at load() — seeds the admission queue's
        #: retry-after EWMA so post-restart backpressure hints are
        #: warm instead of reset to the 1-second default.
        self.replayed_service_times: list[float] = []
        registry = metrics if metrics is not None else NULL_METRICS
        self._fsync_hist = registry.histogram(
            "service.journal.fsync_seconds", LATENCY_BUCKETS)
        self._result_hits = registry.counter("service.results.hits")
        self._result_misses = registry.counter(
            "service.results.misses")

    # -- recovery ------------------------------------------------------------

    def load(self) -> list[Job]:
        """Replay the journal; returns recovered *non-terminal* jobs
        in admission order (the server re-queues them).

        A job whose last state was RUNNING died with the server; a
        DONE job whose result document is missing or corrupt is
        demoted and re-queued too — "done" with nothing to serve is
        not done.
        """
        if not self._journal.exists():
            self._journal.start(STORE_IDENTITY)
            return []
        identity, records = self._journal.read_events()
        if identity is None:
            # Zero-byte or torn-at-birth journal: start clean.
            self._journal.start(STORE_IDENTITY)
            return []
        if identity != STORE_IDENTITY:
            from repro.checkpoint import JournalMismatchError
            raise JournalMismatchError(
                f"{self._journal.path} was written by a different "
                f"store format ({identity}); refusing to guess"
            )
        running_since: dict[str, float] = {}
        for record in records:
            kind = record.get("kind")
            if kind == "job":
                job = Job(
                    id=record["id"],
                    tenant=record["tenant"],
                    kind=record["job_kind"],
                    spec=record["spec"],
                    seq=record["seq"],
                    trace=record.get("trace"),
                )
                job.events.append((0, JobState.QUEUED.value, ""))
                self.jobs[job.id] = job
                self._next_seq = max(self._next_seq, job.seq + 1)
            elif kind == "state":
                job = self.jobs.get(record["id"])
                if job is None:
                    continue  # state for a job frame the tail lost
                job.state = JobState(record["state"])
                job.detail = record.get("detail", "")
                job.version += 1
                job.events.append(
                    (job.version, job.state.value, job.detail)
                )
                # RUNNING→terminal wall-clock gaps are past service
                # times (older journals have no ``ts``; skip them).
                ts = record.get("ts")
                if ts is not None:
                    if job.state is JobState.RUNNING:
                        running_since[job.id] = ts
                    elif job.state in TERMINAL_STATES:
                        started = running_since.pop(job.id, None)
                        if started is not None and ts >= started:
                            self.replayed_service_times.append(
                                ts - started)
        self.replayed_service_times = (
            self.replayed_service_times[-REPLAY_SERVICE_SAMPLES:])
        self._journal.open_append()
        recovered: list[Job] = []
        for job in sorted(self.jobs.values(), key=lambda j: j.seq):
            if job.state is JobState.DONE and self.result(job) is None:
                self.transition(
                    job, JobState.QUEUED,
                    "re-queued: result document missing or corrupt",
                )
                recovered.append(job)
            elif not job.terminal:
                self.transition(
                    job, JobState.QUEUED,
                    "re-queued after server restart",
                )
                recovered.append(job)
        return recovered

    # -- accepted jobs -------------------------------------------------------

    def accept(self, job_id: str, tenant: str, kind: str,
               spec: dict, trace: dict | None = None) -> Job:
        """Durably record one accepted submission (QUEUED)."""
        job = Job(id=job_id, tenant=tenant, kind=kind, spec=spec,
                  seq=self._next_seq, trace=trace)
        self._next_seq += 1
        frame = {
            "id": job.id, "tenant": job.tenant, "job_kind": job.kind,
            "spec": job.spec, "seq": job.seq,
        }
        if trace is not None:
            frame["trace"] = trace
        self._append_timed("job", frame)
        self._check_durable()
        job.events.append((0, JobState.QUEUED.value, ""))
        self.jobs[job.id] = job
        return job

    def transition(self, job: Job, state: JobState,
                   detail: str = "") -> None:
        """Durably record one state transition."""
        self._append_timed("state", {
            "id": job.id, "state": state.value, "detail": detail,
            "ts": time.time(),
        })
        self._check_durable()
        job.state = state
        job.detail = detail
        job.version += 1
        job.events.append((job.version, state.value, detail))

    def _append_timed(self, kind: str, record: dict) -> None:
        """One journal append, timed into the fsync-latency
        histogram (durability is the service's slowest hot path —
        watching it drift is how an operator spots a dying disk)."""
        started = time.perf_counter()
        self._journal.append_event(kind, record)
        self._fsync_hist.observe(time.perf_counter() - started)

    def _check_durable(self) -> None:
        # A job server that cannot journal cannot promise recovery —
        # unlike a campaign (where losing resumability beats losing
        # the run), accepting work we may silently forget is a lie.
        if self._journal.disabled_reason is not None:
            raise OSError(self._journal.disabled_reason)

    # -- results -------------------------------------------------------------

    def store_result(self, job: Job, document: str,
                     meta: dict | None = None) -> None:
        """Atomically persist a job's result document."""
        self._results.store(job.identity(), job.id, {
            "document": document, "meta": meta or {},
        })
        if self._results.disabled_reason is not None:
            raise OSError(self._results.disabled_reason)

    def result(self, job: Job) -> dict | None:
        """The stored result payload (None when absent/corrupt)."""
        payload, _diagnostic = self._results.load(
            job.identity(), job.id
        )
        if payload is None:
            self._result_misses.inc()
        else:
            self._result_hits.inc()
        return payload

    # -- campaign journals ---------------------------------------------------

    def campaign_journal_path(self, job_id: str) -> Path:
        return self.root / "journals" / f"{job_id}.jsonl"

    def explore_dir(self, job_id: str) -> Path:
        """Per-job exploration state (sweep cache, campaign journals,
        golden cache) — same durability contract as the campaign
        journals: a restarted server resumes the exploration from
        whatever this directory already holds, bit-identically."""
        return self.root / "explore" / job_id

    def close(self) -> None:
        self._journal.close()
