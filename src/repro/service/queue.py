"""The bounded admission queue and its backpressure hint.

Admission control is reject-with-retry-after, not block: a full
queue refuses the submission immediately and tells the client *when*
retrying is likely to succeed, so backpressure propagates to the
submitter instead of accumulating as unbounded buffered work inside
the server.  The hint is an EWMA of recent job service times scaled
by the queue depth ahead of the retry — deliberately an estimate,
never a promise.
"""

from __future__ import annotations

import threading
from collections import deque

#: retry-after floor/ceiling, seconds: even a wildly wrong service
#: EWMA must produce a hint a client can act on.
MIN_RETRY_AFTER = 0.05
MAX_RETRY_AFTER = 60.0

#: EWMA smoothing for observed job service times.
EWMA_ALPHA = 0.3


class AdmissionQueue:
    """A bounded FIFO of job ids with an explicit backpressure hint.

    Thread-safe: submissions arrive on the event loop while
    completions (which feed the service-time EWMA) arrive from runner
    threads.
    """

    def __init__(self, capacity: int,
                 initial_service_time: float = 1.0):
        if capacity < 1:
            raise ValueError(
                f"queue capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self._queue: deque[str] = deque()
        self._lock = threading.Lock()
        self._service_ewma = float(initial_service_time)
        self.rejected = 0

    def try_push(self, job_id: str) -> tuple[bool, float]:
        """Admit ``job_id`` or reject it: ``(admitted, retry_after)``.

        ``retry_after`` is 0.0 on admission; on rejection it estimates
        how long until one slot frees up (one job's expected service
        time — the head of the queue must finish before anything
        moves)."""
        with self._lock:
            if len(self._queue) >= self.capacity:
                self.rejected += 1
                return False, self._retry_after_locked()
            self._queue.append(job_id)
            return True, 0.0

    def _retry_after_locked(self) -> float:
        hint = self._service_ewma
        return max(MIN_RETRY_AFTER, min(MAX_RETRY_AFTER, hint))

    def retry_hint(self) -> float:
        """The current backpressure hint, for non-queue rejections
        (tenant quota) that want a comparable pacing signal."""
        with self._lock:
            return self._retry_after_locked()

    def pop(self) -> str | None:
        """Take the oldest admitted job id (None when empty)."""
        with self._lock:
            if not self._queue:
                return None
            return self._queue.popleft()

    def requeue_front(self, job_id: str) -> None:
        """Put a job back at the head (dispatch raced a cancel)."""
        with self._lock:
            self._queue.appendleft(job_id)

    def remove(self, job_id: str) -> bool:
        """Drop a queued job (cancellation before dispatch)."""
        with self._lock:
            try:
                self._queue.remove(job_id)
            except ValueError:
                return False
            return True

    def note_service_time(self, seconds: float) -> None:
        """Feed one observed job duration into the retry-after EWMA."""
        if seconds < 0:
            return
        with self._lock:
            self._service_ewma = (
                (1 - EWMA_ALPHA) * self._service_ewma
                + EWMA_ALPHA * seconds
            )

    def seed_service_times(self, samples) -> None:
        """Warm the EWMA from historical durations (journal replay).

        A restarted server used to hand out the cold 1-second default
        until enough jobs completed; replaying the pre-crash service
        times through the same EWMA makes the first post-restart
        backpressure hint as informed as the last pre-crash one.
        """
        for seconds in samples:
            self.note_service_time(float(seconds))

    def service_estimate(self) -> float:
        """The current EWMA service-time estimate, seconds."""
        with self._lock:
            return self._service_ewma

    def __len__(self) -> int:
        with self._lock:
            return len(self._queue)

    def snapshot(self) -> list[str]:
        with self._lock:
            return list(self._queue)
