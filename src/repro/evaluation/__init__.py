"""Evaluation harness: experiment runners and report formatters."""

from repro.evaluation.config import (
    CLOCK_RATIOS,
    DEFAULT_FIFO_DEPTH,
    FIFO_SWEEP,
    FLEXCORE_RATIOS,
    MEMORY_SCALE,
    experiment_system_config,
)
from repro.evaluation.experiments import (
    Figure5Result,
    Table3Result,
    Table4Cell,
    Table4Result,
    geomean,
    run_decode_ablation,
    run_figure4,
    run_figure5,
    run_software,
    run_table3,
    run_table4,
)
from repro.evaluation.tables import (
    format_figure4,
    format_figure5,
    format_software,
    format_table3,
    format_table4,
)

__all__ = [
    "CLOCK_RATIOS",
    "DEFAULT_FIFO_DEPTH",
    "FIFO_SWEEP",
    "FLEXCORE_RATIOS",
    "Figure5Result",
    "MEMORY_SCALE",
    "Table3Result",
    "Table4Cell",
    "Table4Result",
    "experiment_system_config",
    "format_figure4",
    "format_figure5",
    "format_software",
    "format_table3",
    "format_table4",
    "geomean",
    "run_decode_ablation",
    "run_figure4",
    "run_figure5",
    "run_software",
    "run_table3",
    "run_table4",
]
