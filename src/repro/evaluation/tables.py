"""Render experiment results as the paper's tables and figures."""

from __future__ import annotations

from repro.evaluation import paper
from repro.evaluation.config import CLOCK_RATIOS
from repro.evaluation.experiments import (
    Figure5Result,
    Table3Result,
    Table4Result,
)
from repro.extensions import EXTENSION_NAMES
from repro.workloads import workload_names

RATIO_LABELS = {1.0: "(1X)", 0.5: "(0.5X)", 0.25: "(0.25X)"}


def format_table3(result: Table3Result, compare: bool = True) -> str:
    """Table III: area, power and frequency for every target."""
    lines = []
    header = (f"{'':10s}{'Extension':11s}{'MHz':>6s}{'Area um^2':>12s}"
              f"{'ovh':>8s}{'mW':>7s}{'ovh':>7s}")
    if compare:
        header += f"   {'paper: MHz / um^2 / mW'}"
    lines.append(header)
    lines.append("-" * len(header))

    def row(group, name, report, ref=None):
        text = (f"{group:10s}{name:11s}{report.fmax_mhz:6.0f}"
                f"{report.area_um2:12,.0f}{report.area_overhead:8.1%}"
                f"{report.power_mw:7.0f}{report.power_overhead:7.1%}")
        if compare and ref:
            text += (f"   {ref['fmax_mhz']:.0f} / {ref['area_um2']:,}"
                     f" / {ref['power_mw']}")
        return text

    lines.append(row("Baseline", "-", result.baseline,
                     paper.TABLE3_BASELINE if compare else None))
    for name in result.extensions:
        lines.append(row("ASIC", name, result.asic[name],
                         paper.TABLE3_ASIC.get(name) if compare else None))
    lines.append(row("FlexCore", "common", result.common,
                     paper.TABLE3_COMMON if compare else None))
    for name in result.extensions:
        report = result.fabric[name]
        text = (f"{'FlexCore':10s}{name + ' (fab)':11s}"
                f"{report.fmax_mhz:6.0f}{report.area_um2:12,.0f}"
                f"{report.area_overhead:8.1%}{report.power_mw:7.0f}"
                f"{report.power_overhead:7.1%}")
        # .get(): MDL-compiled monitors have no paper reference row.
        ref = paper.TABLE3_FABRIC.get(name) if compare else None
        if ref:
            text += (f"   {ref['fmax_mhz']} / {ref['area_um2']:,}"
                     f" / {ref['power_mw']}")
        lines.append(text)
    return "\n".join(lines)


def format_table4(result: Table4Result, compare: bool = True) -> str:
    """Table IV: normalized execution time."""
    ratios = sorted({c.clock_ratio for c in result.cells}, reverse=True)
    extensions = [e for e in EXTENSION_NAMES
                  if any(c.extension == e for c in result.cells)]
    benchmarks = list(dict.fromkeys(c.benchmark for c in result.cells))

    lines = []
    header = f"{'Benchmark':14s}"
    for ext in extensions:
        for ratio in ratios:
            header += f"{ext + RATIO_LABELS.get(ratio, ''):>12s}"
    lines.append(header)
    lines.append("-" * len(header))
    for bench in benchmarks:
        line = f"{bench:14s}"
        for ext in extensions:
            for ratio in ratios:
                line += f"{result.cell(bench, ext, ratio).normalized_time:12.2f}"
        lines.append(line)
    line = f"{'geomean':14s}"
    for ext in extensions:
        for ratio in ratios:
            line += f"{result.geomean(ext, ratio):12.2f}"
    lines.append(line)
    if compare:
        line = f"{'paper geomean':14s}"
        for ext in extensions:
            for ratio in ratios:
                ref = paper.TABLE4_GEOMEAN.get(ext, {}).get(ratio)
                line += f"{ref:12.2f}" if ref else f"{'-':>12s}"
        lines.append(line)
    return "\n".join(lines)


def format_figure4(fractions: dict[str, dict[str, float]]) -> str:
    """Figure 4: % of instructions forwarded to the fabric."""
    extensions = EXTENSION_NAMES
    lines = [f"{'Benchmark':14s}" + "".join(f"{e:>8s}" for e in extensions)]
    lines.append("-" * len(lines[0]))
    for bench, per_ext in fractions.items():
        lines.append(
            f"{bench:14s}"
            + "".join(f"{per_ext[e] * 100:7.1f}%" for e in extensions)
        )
    return "\n".join(lines)


def format_figure5(result: Figure5Result) -> str:
    """Figure 5: average normalized time vs forward-FIFO size."""
    depths = sorted(next(iter(result.times.values())))
    lines = [f"{'FIFO size':10s}"
             + "".join(f"{d:>8d}" for d in depths)]
    lines.append("-" * len(lines[0]))
    for ext, per_depth in result.times.items():
        lines.append(f"{ext:10s}"
                     + "".join(f"{per_depth[d]:8.2f}" for d in depths))
    lines.append(f"{'FIFO um^2':10s}"
                 + "".join(f"{result.fifo_area_um2[d]/1000:7.1f}k"
                           for d in depths))
    return "\n".join(lines)


def format_software(slowdowns: dict[str, dict[str, float]]) -> str:
    """Section V-C software-monitoring slowdowns."""
    benchmarks = list(next(iter(slowdowns.values())))
    lines = [f"{'Tool':12s}"
             + "".join(f"{b[:9]:>10s}" for b in benchmarks)
             + f"{'geomean':>10s}"]
    lines.append("-" * len(lines[0]))
    import math
    for tool, per_bench in slowdowns.items():
        values = [per_bench[b] for b in benchmarks]
        gm = math.exp(sum(math.log(v) for v in values) / len(values))
        lines.append(f"{tool:12s}"
                     + "".join(f"{v:10.2f}" for v in values)
                     + f"{gm:10.2f}")
    return "\n".join(lines)
