"""Experiment configuration.

The paper simulates 32-KB L1 caches against MiBench inputs of hundreds
of kilobytes, so the data working sets *stream* through the L1s and
the meta-data working sets stream through the 4-KB meta-data cache.
Running working sets that big through a Python cycle model is
impractical, so the experiment harness scales the *memory system* down
8x (4-KB L1s, 512-B meta-data cache) together with kernel working
sets of a few KB — preserving the cache-to-working-set ratios that
drive every memory-system effect in Table IV.  The default
:class:`~repro.flexcore.system.SystemConfig` remains paper-exact
(32 KB / 4 KB) for library users; only the experiment harness opts
into the scaled system.  DESIGN.md documents this substitution.
"""

from __future__ import annotations

from repro.core.timing import CoreTimingConfig
from repro.flexcore.interface import InterfaceConfig
from repro.flexcore.system import SystemConfig
from repro.memory.cache import CacheConfig

#: memory-system scale factor relative to the paper's configuration.
MEMORY_SCALE = 8

#: fabric clock ratios evaluated in Table IV.
CLOCK_RATIOS = (1.0, 0.5, 0.25)

#: the fabric clock each extension runs at in the FlexCore rows of
#: Table IV ("BC, UMC, and DIFT run at half the frequency ... while
#: SEC runs slower (0.25X)"), as dictated by the synthesis results.
FLEXCORE_RATIOS = {"umc": 0.5, "dift": 0.5, "bc": 0.5, "sec": 0.25}

#: default forward-FIFO depth (Section V-A).
DEFAULT_FIFO_DEPTH = 64

#: FIFO depths swept in Figure 5.
FIFO_SWEEP = (8, 16, 32, 64, 128, 256)

#: the paper's meta-data cache capacity (Section V-A), before the
#: experiment harness's memory-system scaling is applied.
DEFAULT_META_CACHE_BYTES = 4 * 1024

#: meta-data cache sizes explored by the design-space explorer.  Paper-
#: scale bytes (divided by MEMORY_SCALE under scaled memory); each must
#: stay a multiple of line*associativity after scaling.
META_CACHE_SWEEP = (1 * 1024, 2 * 1024, 4 * 1024, 8 * 1024)


def experiment_system_config(
    clock_ratio: float = 0.5,
    fifo_depth: int = DEFAULT_FIFO_DEPTH,
    scaled_memory: bool = True,
    predecode: bool = True,
    meta_cache_bytes: int = DEFAULT_META_CACHE_BYTES,
) -> SystemConfig:
    """Build the system configuration used by the experiment harness.

    ``meta_cache_bytes`` is expressed at *paper* scale: like the L1s it
    is divided by :data:`MEMORY_SCALE` when ``scaled_memory`` is on, so
    a design point means the same thing in scaled and unscaled runs.
    """
    scale = MEMORY_SCALE if scaled_memory else 1
    core = CoreTimingConfig(
        icache=CacheConfig(32 * 1024 // scale, 32, 4),
        dcache=CacheConfig(32 * 1024 // scale, 32, 4),
    )
    interface = InterfaceConfig(
        clock_ratio=clock_ratio,
        fifo_depth=fifo_depth,
        meta_cache=CacheConfig(meta_cache_bytes // scale, 32, 4),
        predecode=predecode,
    )
    return SystemConfig(core=core, interface=interface)
