"""Published numbers from the paper, for side-by-side comparison.

Only used for reporting (EXPERIMENTS.md, shape assertions in tests) —
never fed back into the models at run time.
"""

from __future__ import annotations

#: Table III — baseline Leon3 with 32-KB L1 caches.
TABLE3_BASELINE = {"fmax_mhz": 465, "area_um2": 835_525, "power_mw": 365}

#: Table III — full-ASIC integration rows (absolute values).
TABLE3_ASIC = {
    "umc": {"fmax_mhz": 463, "area_um2": 932_118, "power_mw": 388},
    "dift": {"fmax_mhz": 456, "area_um2": 960_558, "power_mw": 388},
    "bc": {"fmax_mhz": 456, "area_um2": 996_894, "power_mw": 393},
    "sec": {"fmax_mhz": 463, "area_um2": 836_786, "power_mw": 364},
}

#: Table III — dedicated FlexCore modules (interface + meta cache).
TABLE3_COMMON = {"fmax_mhz": 458, "area_um2": 1_106_967, "power_mw": 418}

#: Table III — extensions on the Flex fabric (area excludes the
#: dedicated modules; power is the fabric extension alone).
TABLE3_FABRIC = {
    "umc": {"fmax_mhz": 266, "area_um2": 90_384, "power_mw": 21},
    "dift": {"fmax_mhz": 256, "area_um2": 123_471, "power_mw": 23},
    "bc": {"fmax_mhz": 229, "area_um2": 203_364, "power_mw": 27},
    "sec": {"fmax_mhz": 213, "area_um2": 390_588, "power_mw": 36},
}

#: Table IV — normalized execution time (baseline Leon3 = 1.00) per
#: benchmark, extension, and fabric clock ratio.
TABLE4 = {
    # benchmark: {extension: {ratio: normalized time}}
    "sha": {
        "umc": {1.0: 1.01, 0.5: 1.01, 0.25: 1.01},
        "dift": {1.0: 1.01, 0.5: 1.06, 0.25: 1.16},
        "bc": {1.0: 1.03, 0.5: 1.07, 0.25: 1.15},
        "sec": {1.0: 1.00, 0.5: 1.33, 0.25: 1.50},
    },
    "gmac": {
        "umc": {1.0: 1.01, 0.5: 1.01, 0.25: 1.09},
        "dift": {1.0: 1.01, 0.5: 1.15, 0.25: 1.34},
        "bc": {1.0: 1.02, 0.5: 1.17, 0.25: 1.37},
        "sec": {1.0: 1.00, 0.5: 1.20, 0.25: 1.47},
    },
    "stringsearch": {
        "umc": {1.0: 1.03, 0.5: 1.05, 0.25: 1.12},
        "dift": {1.0: 1.16, 0.5: 1.46, 0.25: 1.89},
        "bc": {1.0: 1.22, 0.5: 1.45, 0.25: 1.84},
        "sec": {1.0: 1.00, 0.5: 1.00, 0.25: 1.11},
    },
    "fft": {
        "umc": {1.0: 1.01, 0.5: 1.01, 0.25: 1.01},
        "dift": {1.0: 1.02, 0.5: 1.05, 0.25: 1.31},
        "bc": {1.0: 1.02, 0.5: 1.03, 0.25: 1.35},
        "sec": {1.0: 1.00, 0.5: 1.15, 0.25: 1.45},
    },
    "basicmath": {
        "umc": {1.0: 1.01, 0.5: 1.01, 0.25: 1.01},
        "dift": {1.0: 1.03, 0.5: 1.08, 0.25: 1.34},
        "bc": {1.0: 1.04, 0.5: 1.07, 0.25: 1.37},
        "sec": {1.0: 1.00, 0.5: 1.14, 0.25: 1.43},
    },
    "bitcount": {
        "umc": {1.0: 1.04, 0.5: 1.06, 0.25: 1.07},
        "dift": {1.0: 1.08, 0.5: 1.36, 0.25: 1.69},
        "bc": {1.0: 1.13, 0.5: 1.27, 0.25: 1.64},
        "sec": {1.0: 1.00, 0.5: 1.19, 0.25: 1.48},
    },
}

#: Table IV geomean row.
TABLE4_GEOMEAN = {
    "umc": {1.0: 1.02, 0.5: 1.02, 0.25: 1.05},
    "dift": {1.0: 1.05, 0.5: 1.18, 0.25: 1.43},
    "bc": {1.0: 1.07, 0.5: 1.17, 0.25: 1.44},
    "sec": {1.0: 1.00, 0.5: 1.16, 0.25: 1.40},
}

#: Section V-C — software monitoring comparison points.
SOFTWARE_SLOWDOWNS = {
    "dift": (3.6, 37.0),  # LIFT optimized .. naive taint tracking
    "umc": (1.5, 5.5),  # Purify up to 5.5x
    "bc": (1.2, 1.69),  # array bound checks up to 1.69x
}
