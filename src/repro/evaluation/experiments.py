"""Experiment runners: one function per table/figure of the paper.

Every function returns plain data structures so the benchmark harness,
the tests and the report generator can share them.  Formatting lives
in :mod:`repro.evaluation.tables`.

The simulation sweeps (Table IV, Figures 4 and 5) run through
:class:`repro.engine.sweep.SweepRunner`, so they accept ``engine=``
(fast by default; the engines are digest-identical) and ``jobs=`` to
fan grid points across a process pool.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.evaluation.config import (
    CLOCK_RATIOS,
    DEFAULT_FIFO_DEPTH,
    FIFO_SWEEP,
    FLEXCORE_RATIOS,
    experiment_system_config,
)
from repro.extensions import EXTENSION_NAMES, create_extension
from repro.fabric import fifo_area_um2
from repro.fabric.synthesis import (
    SynthesisReport,
    baseline_report,
    synthesize_asic,
    synthesize_common,
    synthesize_fabric,
)
from repro.flexcore.packet import PACKET_BITS
from repro.flexcore.system import FlexCoreSystem, RunResult
from repro.software.instrumentation import SOFTWARE_TOOLS, run_instrumented
from repro.workloads import build_workload, workload_names


def geomean(values) -> float:
    values = list(values)
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _run(
    workload,
    extension_name: str | None,
    clock_ratio: float = 0.5,
    fifo_depth: int = DEFAULT_FIFO_DEPTH,
    scaled_memory: bool = True,
    predecode: bool = True,
    engine: str | None = None,
) -> RunResult:
    config = experiment_system_config(
        clock_ratio=clock_ratio,
        fifo_depth=fifo_depth,
        scaled_memory=scaled_memory,
        predecode=predecode,
    )
    extension = (
        create_extension(extension_name) if extension_name else None
    )
    system = FlexCoreSystem(workload.build(), extension, config)
    result = system.run(engine=engine)
    if result.word(workload.checksum_symbol) != workload.expected_checksum:
        raise AssertionError(
            f"{workload.name} checksum mismatch under "
            f"{extension_name or 'baseline'}"
        )
    return result


# ---------------------------------------------------------------------------
# Table III.


@dataclass
class Table3Result:
    baseline: SynthesisReport
    asic: dict[str, SynthesisReport]
    common: SynthesisReport
    fabric: dict[str, SynthesisReport]
    #: row order; defaults to the paper's four prototypes.
    extensions: tuple[str, ...] = EXTENSION_NAMES


def run_table3(extensions=EXTENSION_NAMES) -> Table3Result:
    """Area, power, and frequency of every implementation target.

    ``extensions`` defaults to the paper's four prototypes but accepts
    any registered extension names — including MDL-compiled monitors —
    so ``repro compile --table3`` can price a single new monitor.
    """
    asic, fabric = {}, {}
    for name in extensions:
        extension = create_extension(name)
        asic[name] = synthesize_asic(extension)
        fabric[name] = synthesize_fabric(extension)
    return Table3Result(
        baseline=baseline_report(),
        asic=asic,
        common=synthesize_common(),
        fabric=fabric,
        extensions=tuple(extensions),
    )


# ---------------------------------------------------------------------------
# Table IV.


@dataclass
class Table4Cell:
    benchmark: str
    extension: str
    clock_ratio: float
    normalized_time: float
    forwarded_fraction: float
    fifo_stall_cycles: int
    meta_stall_cycles: float


@dataclass
class Table4Result:
    cells: list[Table4Cell] = field(default_factory=list)
    baseline_cycles: dict[str, int] = field(default_factory=dict)

    def cell(self, benchmark: str, extension: str, ratio: float
             ) -> Table4Cell:
        for cell in self.cells:
            if (cell.benchmark == benchmark
                    and cell.extension == extension
                    and cell.clock_ratio == ratio):
                return cell
        raise KeyError((benchmark, extension, ratio))

    def geomean(self, extension: str, ratio: float) -> float:
        return geomean(
            cell.normalized_time
            for cell in self.cells
            if cell.extension == extension and cell.clock_ratio == ratio
        )


def run_table4(
    scale: int = 1,
    benchmarks=None,
    extensions=EXTENSION_NAMES,
    ratios=CLOCK_RATIOS,
    engine: str | None = "fast",
    jobs: int = 1,
) -> Table4Result:
    """Normalized execution time per benchmark/extension/clock ratio.

    Ratio 1.0 is the full-ASIC comparison point; 0.5/0.25 are the
    FlexCore fabric clocks of Table IV.
    """
    # Imported here (not at module level): the sweep module imports
    # this package's config, so a top-level import would be circular.
    from repro.engine.sweep import SweepPoint, SweepRunner, table4_points

    benchmarks = benchmarks or workload_names()
    points = table4_points(scale, benchmarks, extensions, ratios)
    outcomes = SweepRunner(jobs=jobs, engine=engine).run(points)
    by_point = {o.point: o for o in outcomes}
    result = Table4Result()
    for bench in benchmarks:
        base = SweepPoint(workload=bench, scale=scale)
        baseline_cycles = by_point[base].cycles
        result.baseline_cycles[bench] = baseline_cycles
        for extension in extensions:
            for ratio in ratios:
                outcome = by_point[replace(base, extension=extension,
                                           clock_ratio=ratio)]
                result.cells.append(Table4Cell(
                    benchmark=bench,
                    extension=extension,
                    clock_ratio=ratio,
                    normalized_time=outcome.cycles / baseline_cycles,
                    forwarded_fraction=outcome.forwarded_fraction,
                    fifo_stall_cycles=outcome.fifo_stall_cycles,
                    meta_stall_cycles=outcome.meta_stall_cycles,
                ))
    return result


# ---------------------------------------------------------------------------
# Figure 4.


def run_figure4(
    scale: int = 1,
    benchmarks=None,
    engine: str | None = "fast",
    jobs: int = 1,
) -> dict[str, dict[str, float]]:
    """Fraction of committed instructions forwarded to the fabric.

    Returns ``{benchmark: {extension: fraction}}``.
    """
    from repro.engine.sweep import SweepPoint, SweepRunner

    benchmarks = benchmarks or workload_names()
    points = [
        SweepPoint(workload=bench, extension=extension,
                   clock_ratio=FLEXCORE_RATIOS[extension], scale=scale)
        for bench in benchmarks
        for extension in EXTENSION_NAMES
    ]
    outcomes = SweepRunner(jobs=jobs, engine=engine).run(points)
    fractions: dict[str, dict[str, float]] = {b: {} for b in benchmarks}
    for outcome in outcomes:
        point = outcome.point
        fractions[point.workload][point.extension] = (
            outcome.forwarded_fraction
        )
    return fractions


# ---------------------------------------------------------------------------
# Figure 5.


@dataclass
class Figure5Result:
    #: {extension: {fifo_depth: average normalized time}}
    times: dict[str, dict[int, float]]
    #: {fifo_depth: forward-FIFO silicon area} (the ~10% growth claim)
    fifo_area_um2: dict[int, float]


def run_figure5(
    scale: int = 1,
    depths=FIFO_SWEEP,
    benchmarks=None,
    engine: str | None = "fast",
    jobs: int = 1,
) -> Figure5Result:
    """Average normalized execution time vs forward-FIFO size.

    Each extension runs at its Table IV fabric clock (0.5X; SEC 0.25X).
    """
    from repro.engine.sweep import SweepPoint, SweepRunner

    benchmarks = benchmarks or workload_names()
    points = [SweepPoint(workload=bench, scale=scale)
              for bench in benchmarks]
    points += [
        SweepPoint(workload=bench, extension=extension,
                   clock_ratio=FLEXCORE_RATIOS[extension],
                   fifo_depth=depth, scale=scale)
        for extension in EXTENSION_NAMES
        for depth in depths
        for bench in benchmarks
    ]
    outcomes = SweepRunner(jobs=jobs, engine=engine).run(points)
    by_point = {o.point: o for o in outcomes}
    baselines = {
        b: by_point[SweepPoint(workload=b, scale=scale)].cycles
        for b in benchmarks
    }
    times: dict[str, dict[int, float]] = {}
    for extension in EXTENSION_NAMES:
        ratio = FLEXCORE_RATIOS[extension]
        times[extension] = {}
        for depth in depths:
            normalized = [
                by_point[SweepPoint(
                    workload=b, extension=extension, clock_ratio=ratio,
                    fifo_depth=depth, scale=scale,
                )].cycles / baselines[b]
                for b in benchmarks
            ]
            times[extension][depth] = geomean(normalized)
    areas = {d: fifo_area_um2(d, PACKET_BITS) for d in depths}
    return Figure5Result(times=times, fifo_area_um2=areas)


# ---------------------------------------------------------------------------
# Section V-C: software monitoring comparison.


def run_software(scale: int = 1, benchmarks=None) -> dict[str, dict[str, float]]:
    """Software-instrumentation slowdowns: {tool: {benchmark: x}}."""
    benchmarks = benchmarks or workload_names()
    config = experiment_system_config(clock_ratio=1.0)
    slowdowns: dict[str, dict[str, float]] = {}
    baselines = {}
    for bench in benchmarks:
        workload = build_workload(bench, scale)
        baselines[bench] = (workload, _run(workload, None).cycles)
    for tool, factory in SOFTWARE_TOOLS.items():
        spec = factory()
        slowdowns[tool] = {}
        for bench in benchmarks:
            workload, base_cycles = baselines[bench]
            run = run_instrumented(workload.build(), spec, config)
            slowdowns[tool][bench] = run.cycles / base_cycles
    return slowdowns


# ---------------------------------------------------------------------------
# Section III-C ablation: core-side pre-decoding.


def run_decode_ablation(
    scale: int = 1, extension: str = "dift", benchmarks=None
) -> dict[str, tuple[float, float]]:
    """Normalized time with and without core-side instruction
    decoding (the paper: DIFT runs ~30% faster with pre-decoding).

    Returns {benchmark: (with_predecode, without)}.
    """
    benchmarks = benchmarks or workload_names()
    ratio = FLEXCORE_RATIOS[extension]
    out = {}
    for bench in benchmarks:
        workload = build_workload(bench, scale)
        base = _run(workload, None).cycles
        with_decode = _run(workload, extension, clock_ratio=ratio,
                           predecode=True).cycles / base
        without = _run(workload, extension, clock_ratio=ratio,
                       predecode=False).cycles / base
        out[bench] = (with_decode, without)
    return out
