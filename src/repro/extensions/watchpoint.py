"""Watchpoint extension (extra, beyond the paper's four prototypes).

iWatcher-style debugging support (cited in the paper's Section II-B):
software registers up to N address ranges with read/write modes via
co-processor instructions; the fabric then checks every memory access
against the ranges in parallel and traps on a hit — hardware
watchpoints without debug-register limits or single-stepping.

Software interface (all through the generic flex ops):

* ``fxval %r``   — latch the watch mode (1 = read, 2 = write, 3 = both)
* ``fxtagm %lo, %hi`` — arm a watchpoint over [lo, hi)
* ``fxuntagm %lo, %g0`` — disarm the watchpoint starting at lo
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.extensions.base import MonitorExtension, PacketOutcome
from repro.fabric.logic import LogicNetwork, Prim
from repro.flexcore.cfgr import ForwardConfig, ForwardPolicy
from repro.flexcore.packet import TracePacket
from repro.isa.opcodes import MEMORY_CLASSES, FlexOpf, InstrClass

WATCH_READ = 1
WATCH_WRITE = 2
DEFAULT_SLOTS = 4


@dataclass(frozen=True)
class WatchRange:
    lo: int
    hi: int
    mode: int

    def matches(self, addr: int, is_write: bool) -> bool:
        if not self.lo <= addr < self.hi:
            return False
        wanted = WATCH_WRITE if is_write else WATCH_READ
        return bool(self.mode & wanted)


class Watchpoints(MonitorExtension):
    """Hardware watchpoints over software-armed address ranges."""

    name = "watchpoint"
    description = "debugging watchpoints over address ranges"
    register_tag_bits = 0
    memory_tag_bits = 0

    def __init__(self, slots: int = DEFAULT_SLOTS):
        super().__init__()
        self.slots = slots
        self.ranges: list[WatchRange] = []
        self.hits = 0

    def forward_config(self) -> ForwardConfig:
        config = ForwardConfig()
        config.set_classes(MEMORY_CLASSES, ForwardPolicy.ALWAYS)
        config.set(InstrClass.FLEX, ForwardPolicy.ALWAYS)
        return config

    def process(self, packet: TracePacket) -> PacketOutcome:
        if packet.opcode == InstrClass.FLEX:
            outcome = self.handle_flex(packet)
            if packet.opf == FlexOpf.TAG_SET_MEM:
                if len(self.ranges) >= self.slots:
                    self.ranges.pop(0)
                self.ranges.append(WatchRange(
                    lo=packet.srcv1, hi=packet.srcv2,
                    mode=self.tagval & 3,
                ))
            elif packet.opf == FlexOpf.TAG_CLR_MEM:
                self.ranges = [
                    r for r in self.ranges if r.lo != packet.srcv1
                ]
            return outcome

        outcome = PacketOutcome()
        is_write = packet.is_store
        for watch in self.ranges:
            if watch.matches(packet.addr, is_write):
                self.hits += 1
                kind = "write" if is_write else "read"
                outcome.trap = self.trap(
                    packet, f"watchpoint-{kind}",
                    f"{kind} of watched range "
                    f"[{watch.lo:#x}, {watch.hi:#x}) at {packet.addr:#x}",
                    addr=packet.addr,
                )
                break
        return outcome

    def status_word(self) -> int:
        return self.hits & 0xFFFFFFFF

    def extra_state(self) -> dict:
        return {
            "ranges": [
                {"lo": r.lo, "hi": r.hi, "mode": r.mode}
                for r in self.ranges
            ],
            "hits": self.hits,
        }

    def load_extra_state(self, state: dict) -> None:
        self.ranges = [
            WatchRange(lo=r["lo"], hi=r["hi"], mode=r["mode"])
            for r in state["ranges"]
        ]
        self.hits = state["hits"]

    def hardware(self) -> LogicNetwork:
        """Per-slot bound registers and magnitude comparators, all in
        parallel — the kind of bit-level parallel check a LUT fabric
        is good at."""
        net = LogicNetwork(self.name, pipeline_stages=2)
        net.add(Prim.REGISTER, width=66, count=self.slots,
                label="range bounds + mode")
        net.add(Prim.COMPARATOR_MAG, width=32, count=2 * self.slots,
                label="range compare")
        net.add(Prim.GATE, width=8 * self.slots, label="mode match")
        net.add(Prim.REDUCE, width=self.slots, label="any-hit")
        net.add(Prim.GATE, width=16, label="FIFO handshake")
        net.add(Prim.REGISTER, width=40, count=2, label="pipeline regs")
        return net
