"""Array Bound Check (BC) extension — colour-based, after Clause et al.

Table I / Section IV-C: a 4-bit colour tag per register and an 8-bit
tag per memory word (upper nibble: the colour of a *pointer stored at*
that word, lower nibble: the colour of the *location* itself).  On
allocation, software colours the pointer and the memory region with an
identical colour; on every load/store the pointer colour must match
the location colour.  Colour 0 is the wildcard for unchecked memory.

Propagation is additive: pointer arithmetic ``p + i`` keeps the
pointer's colour because integers carry colour 0, and ``p - q`` of two
same-coloured pointers cancels to 0 — the nibble arithmetic is mod 16.
"""

from __future__ import annotations

from repro.extensions.base import MonitorExtension, PacketOutcome
from repro.fabric.logic import LogicNetwork, Prim
from repro.flexcore.cfgr import ForwardConfig, ForwardPolicy
from repro.flexcore.packet import TracePacket
from repro.isa.opcodes import MEMORY_CLASSES, FlexOpf, InstrClass

COLOR_MASK = 0xF
WILDCARD = 0


class ArrayBoundCheck(MonitorExtension):
    """Colour-tag spatial memory safety checking."""

    name = "bc"
    description = "array bound checking with colour tags"
    register_tag_bits = 4
    memory_tag_bits = 8

    def forward_config(self) -> ForwardConfig:
        """Forward loads, stores, arithmetic instructions (pointer
        arithmetic) and co-processor instructions (Section IV-C).

        Logical operations are included with the arithmetic group
        because SPARC register copies are encoded as ``or %g0, rs,
        rd`` — without forwarding them a pointer's colour would be
        lost on every ``mov``.
        """
        config = ForwardConfig()
        config.set_classes(MEMORY_CLASSES, ForwardPolicy.ALWAYS)
        config.set(InstrClass.ARITH_ADD, ForwardPolicy.ALWAYS)
        config.set(InstrClass.ARITH_SUB, ForwardPolicy.ALWAYS)
        config.set(InstrClass.LOGIC, ForwardPolicy.ALWAYS)
        config.set(InstrClass.FLEX, ForwardPolicy.ALWAYS)
        return config

    # ------------------------------------------------------------------

    @staticmethod
    def _split(tag: int) -> tuple[int, int]:
        """(stored-pointer colour, location colour) of a memory tag."""
        return (tag >> 4) & COLOR_MASK, tag & COLOR_MASK

    def _nibble_mask(self, addr: int, high: bool) -> int:
        """Write-enable mask selecting one nibble of this word's 8-bit
        tag within its 32-bit meta-data word."""
        slot = (addr >> 2) % 4  # four 8-bit tags per meta word
        nibble = 0xF0 if high else 0x0F
        return (nibble << (slot * 8)) & 0xFFFFFFFF

    def _pointer_color(self, packet: TracePacket) -> int:
        """Colour of the effective address = sum of the colours of the
        address-forming registers (immediates contribute 0)."""
        c1 = self.shadow.read(packet.src1)
        c2 = self.shadow.read(packet.src2)
        return (c1 + c2) & COLOR_MASK

    def process(self, packet: TracePacket) -> PacketOutcome:
        shadow = self.shadow
        tags = self.mem_tags
        opcode = packet.opcode

        if opcode == InstrClass.FLEX:
            outcome = self.handle_flex(packet)
            opf = packet.opf
            addr = (packet.srcv1 + packet.srcv2) & 0xFFFFFFFF
            if opf in (FlexOpf.COLOR_PTR, FlexOpf.TAG_SET_REG):
                shadow.write(packet.dest, self.tagval & COLOR_MASK)
            elif opf == FlexOpf.TAG_CLR_REG:
                shadow.write(packet.dest, 0)
            elif opf == FlexOpf.COLOR_MEM:
                # Set the location-colour nibble, preserve the rest.
                ptr_color, _ = self._split(tags.read(addr))
                tags.write(addr,
                           (ptr_color << 4) | (self.tagval & COLOR_MASK))
                outcome.write(tags.meta_address(addr),
                              self._nibble_mask(addr, high=False))
            elif opf == FlexOpf.TAG_CLR_MEM:
                tags.write(addr, 0)
                outcome.write(tags.meta_address(addr), tags.write_mask(addr))
            return outcome

        outcome = PacketOutcome()

        if packet.is_load:
            # One 8-bit tag read yields both nibbles: the location
            # colour for the bound check and the stored-pointer colour
            # that becomes the destination register's colour.
            tag = tags.read(packet.addr)
            outcome.read(tags.meta_address(packet.addr))
            stored_color, location_color = self._split(tag)
            pointer_color = self._pointer_color(packet)
            if (pointer_color != WILDCARD
                    and pointer_color != location_color):
                outcome.trap = self.trap(
                    packet, "out-of-bounds-read",
                    f"pointer colour {pointer_color} != location colour "
                    f"{location_color} at {packet.addr:#x}",
                    addr=packet.addr,
                )
            shadow.write(packet.dest, stored_color)
            return outcome

        if packet.is_store:
            # Check against the location colour, then write the stored
            # data register's colour into the upper nibble.  This is a
            # read followed by a masked write: two meta-cache accesses,
            # hence the 2-cycle initiation interval.
            tag = tags.read(packet.addr)
            _, location_color = self._split(tag)
            pointer_color = self._pointer_color(packet)
            outcome.read(tags.meta_address(packet.addr))
            if (pointer_color != WILDCARD
                    and pointer_color != location_color):
                outcome.trap = self.trap(
                    packet, "out-of-bounds-write",
                    f"pointer colour {pointer_color} != location colour "
                    f"{location_color} at {packet.addr:#x}",
                    addr=packet.addr,
                )
            data_color = shadow.read(packet.dest)
            tags.write(packet.addr, (data_color << 4) | location_color)
            outcome.write(tags.meta_address(packet.addr),
                          self._nibble_mask(packet.addr, high=True))
            outcome.fabric_cycles = 2
            return outcome

        # Pointer arithmetic (and register copies, which SPARC encodes
        # as `or`): additive colour propagation; subtraction cancels.
        c1 = self.shadow.read(packet.src1)
        c2 = self.shadow.read(packet.src2)
        if opcode == InstrClass.ARITH_SUB:
            color = (c1 - c2) & COLOR_MASK
        else:
            color = (c1 + c2) & COLOR_MASK
        shadow.write(packet.dest, color)
        return outcome

    def hardware(self) -> LogicNetwork:
        """BC datapath: two 4-bit colour datapaths, nibble adders and
        match comparators, plus the read-modify path for the 8-bit
        memory tags (Table III: 252 LUTs, 229 MHz)."""
        net = LogicNetwork(self.name, pipeline_stages=5)
        net.add(Prim.ADDER, width=32, label="tag address base add")
        net.add(Prim.DECODER, width=5, label="write-mask decode")
        net.add(Prim.ADDER, width=4, count=2, label="colour adders")
        net.add(Prim.COMPARATOR_EQ, width=4, count=2, label="colour match")
        net.add(Prim.GATE, width=32, count=2, label="nibble mask generation")
        net.add(Prim.MUX, width=32, ways=4, label="meta datapath select")
        net.add(Prim.MUX, width=8, ways=8, label="tag nibble select")
        net.add(Prim.DECODER, width=4, label="flex opf decode")
        net.add(Prim.GATE, width=16, label="check/trap logic")
        net.add(Prim.GATE, width=32, label="control FSM")
        net.add(Prim.GATE, width=64, label="read-modify merge path")
        net.add(Prim.GATE, width=16, label="FIFO handshake")
        net.add(Prim.REDUCE, width=8, label="trap condition")
        net.add(Prim.REGISTER, width=64, count=5, label="pipeline regs")
        net.add(Prim.REGISTER, width=40, label="base/policy/colour regs")
        return net
