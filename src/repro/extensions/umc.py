"""Uninitialized Memory Check (UMC) extension.

Table I / Section IV-A: one 1-bit tag per memory word.  The tag is set
on a store, checked on a load (trap if clear), and cleared by software
on de-allocation.  The address-to-tag translation is a shift-and-add
against a base register, and the tag access goes through the meta-data
cache using its bit-granular write capability.
"""

from __future__ import annotations

from repro.extensions.base import MonitorExtension, PacketOutcome
from repro.fabric.logic import LogicNetwork, Prim
from repro.flexcore.cfgr import ForwardConfig, ForwardPolicy
from repro.flexcore.packet import TracePacket
from repro.isa.opcodes import MEMORY_CLASSES, FlexOpf, InstrClass


class UninitializedMemoryCheck(MonitorExtension):
    """1-bit initialized/uninitialized tag per memory word."""

    name = "umc"
    description = "uninitialized memory read checking"
    register_tag_bits = 0
    memory_tag_bits = 1

    def forward_config(self) -> ForwardConfig:
        """Forward loads/stores and co-processor instructions; ignore
        everything else (Section IV-A)."""
        config = ForwardConfig()
        config.set_classes(MEMORY_CLASSES, ForwardPolicy.ALWAYS)
        config.set(InstrClass.FLEX, ForwardPolicy.ALWAYS)
        return config

    def on_program_load(self, program, stack_top: int) -> None:
        """The loader wrote the text/data image, so those words start
        out initialized (including zero-filled .space regions)."""
        tags = self.mem_tags
        tags.fill_range(program.text_base, program.text_size, 1)
        if program.data:
            tags.fill_range(program.data_base, len(program.data), 1)

    def process(self, packet: TracePacket) -> PacketOutcome:
        tags = self.mem_tags
        if packet.opcode == InstrClass.FLEX:
            outcome = self.handle_flex(packet)
            addr = (packet.srcv1 + packet.srcv2) & 0xFFFFFFFF
            if packet.opf == FlexOpf.TAG_CLR_MEM:
                tags.write(addr, 0)
                outcome.write(tags.meta_address(addr), tags.write_mask(addr))
            elif packet.opf == FlexOpf.TAG_SET_MEM:
                tags.write(addr, 1)
                outcome.write(tags.meta_address(addr), tags.write_mask(addr))
            return outcome

        outcome = PacketOutcome()
        addr = packet.addr
        if packet.is_store:
            # A store (even sub-word) marks the containing word(s)
            # initialized; the bit-granular cache write needs no
            # read-modify-write.
            for offset in range(0, packet.access_size or 4, 4):
                tags.write(addr + offset, 1)
                outcome.write(
                    tags.meta_address(addr + offset),
                    tags.write_mask(addr + offset),
                )
            outcome.fabric_cycles = max(1, (packet.access_size or 4) // 4)
        elif packet.is_load:
            for offset in range(0, packet.access_size or 4, 4):
                outcome.read(tags.meta_address(addr + offset))
                if not tags.read(addr + offset):
                    outcome.trap = self.trap(
                        packet,
                        "uninitialized-read",
                        f"load from uninitialized word {addr + offset:#x}",
                        addr=addr + offset,
                    )
            outcome.fabric_cycles = max(1, (packet.access_size or 4) // 4)
        return outcome

    def hardware(self) -> LogicNetwork:
        """UMC datapath: address translation (constant shift is free
        wiring, then a base add), write-mask decode, a 1-bit tag check
        — the smallest extension (Table III: 112 LUTs, 266 MHz)."""
        net = LogicNetwork(self.name, pipeline_stages=4)
        net.add(Prim.ADDER, width=32, label="tag address base add")
        net.add(Prim.DECODER, width=5, label="write-mask decode")
        net.add(Prim.MUX, width=1, ways=32, label="tag bit select")
        net.add(Prim.GATE, width=24, label="control FSM")
        net.add(Prim.GATE, width=16, label="FIFO handshake")
        net.add(Prim.GATE, width=28, label="cache request mux/steer")
        net.add(Prim.COMPARATOR_EQ, width=1, label="tag check")
        net.add(Prim.REDUCE, width=8, label="trap condition")
        net.add(Prim.REGISTER, width=36, count=4, label="pipeline regs")
        net.add(Prim.REGISTER, width=33, label="base/policy registers")
        return net
