"""The co-processing model (Section II of the paper).

A monitoring extension is characterised by three things:

* *meta-data* — tags for registers (the fabric's shadow register
  file) and/or memory words (behind the meta-data cache);
* *transparent operations* — performed on every forwarded trace
  packet without software involvement (propagate, check, update);
* *software-visible operations* — explicit co-processor instructions
  (set/clear tags, set policy, read status) and the exception (TRAP).

:class:`MonitorExtension` is the public API for writing extensions;
the four prototypes of the paper (UMC, DIFT, BC, SEC) subclass it, and
`examples/custom_monitor.py` shows a fifth, user-defined one.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.flexcore.cfgr import ForwardConfig
from repro.flexcore.packet import TracePacket
from repro.flexcore.shadow import ShadowRegisterFile, TagStore
from repro.isa.opcodes import FlexOpf
from repro.telemetry.metrics import NULL_METRICS

#: Default base address of the meta-data region.  It is disjoint from
#: program text/data/stack, which is what lets the architecture skip
#: coherence between the main L1s and the meta-data L1 (Section III-D).
DEFAULT_META_BASE = 0x4000_0000


@dataclass(frozen=True)
class MonitorTrap:
    """An exception raised by the co-processor (the TRAP signal)."""

    extension: str
    kind: str
    pc: int
    addr: int = 0
    message: str = ""

    def __str__(self) -> str:
        where = f" addr={self.addr:#x}" if self.addr else ""
        return (
            f"[{self.extension}] {self.kind} at pc={self.pc:#x}{where}: "
            f"{self.message}"
        )


@dataclass(frozen=True)
class MetaAccess:
    """One meta-data cache access caused by a packet."""

    kind: str  # "read" | "write"
    addr: int  # byte address in the meta-data region
    mask: int = 0xFFFFFFFF  # 32-bit write-enable mask for writes


@dataclass
class PacketOutcome:
    """Result of processing one trace packet on the fabric."""

    #: initiation interval: fabric cycles before the next packet can
    #: be accepted (meta-data cache misses add on top of this).
    fabric_cycles: int = 1
    meta_accesses: list[MetaAccess] = field(default_factory=list)
    trap: MonitorTrap | None = None

    def read(self, addr: int) -> "PacketOutcome":
        self.meta_accesses.append(MetaAccess("read", addr))
        return self

    def write(self, addr: int, mask: int = 0xFFFFFFFF) -> "PacketOutcome":
        self.meta_accesses.append(MetaAccess("write", addr, mask))
        return self


class MonitorExtension(abc.ABC):
    """Base class for instruction-grained monitoring extensions."""

    #: short identifier ("umc", "dift", ...), set by subclasses.
    name: str = "base"
    #: human description for reports.
    description: str = ""
    #: shadow register tag width (0 = extension keeps no register tags).
    register_tag_bits: int = 0
    #: memory tag width per 32-bit word (0 = no memory meta-data).
    memory_tag_bits: int = 0

    def __init__(self, meta_base: int = DEFAULT_META_BASE):
        self.meta_base = meta_base
        self.shadow: ShadowRegisterFile | None = None
        self.mem_tags: TagStore | None = None
        if self.memory_tag_bits:
            self.mem_tags = TagStore(self.memory_tag_bits, meta_base)
        self.tagval = 1  # latch written by FlexOpf.SET_TAGVAL
        self.policy = self.default_policy()
        self.traps_seen = 0
        #: metrics sink (the system swaps in a live registry when a
        #: telemetry bundle is attached); not monitor state, so it is
        #: never part of a snapshot.
        self.metrics = NULL_METRICS

    # -- construction hooks -------------------------------------------------

    def attach(self, num_physical_registers: int) -> None:
        """Size the shadow register file to the attached core."""
        if self.register_tag_bits:
            self.shadow = ShadowRegisterFile(
                num_physical_registers, self.register_tag_bits
            )

    def default_policy(self) -> int:
        """Initial value of the extension's policy register."""
        return 0

    def on_program_load(self, program, stack_top: int) -> None:
        """Called after the loader copies the program image; lets the
        extension pre-tag loader-initialised memory (e.g. UMC)."""

    # -- the co-processing model --------------------------------------------

    @abc.abstractmethod
    def forward_config(self) -> ForwardConfig:
        """The CFGR setting this extension programs at boot."""

    @abc.abstractmethod
    def process(self, packet: TracePacket) -> PacketOutcome:
        """Transparent per-packet operation: bookkeeping + checks."""

    @abc.abstractmethod
    def hardware(self):
        """Structural description for the area/power/frequency models.

        Returns a :class:`repro.fabric.logic.LogicNetwork`.
        """

    # -- snapshot/restore (crash-safe checkpointing) ------------------------

    def snapshot_state(self) -> dict:
        """Capture the extension's full monitor state: the base-class
        latches, the shadow register file, the memory tag store, and
        whatever :meth:`extra_state` the subclass keeps."""
        return {
            "meta_base": self.meta_base,
            "tagval": self.tagval,
            "policy": self.policy,
            "traps_seen": self.traps_seen,
            "shadow": (
                self.shadow.snapshot_state()
                if self.shadow is not None else None
            ),
            "mem_tags": (
                self.mem_tags.snapshot_state()
                if self.mem_tags is not None else None
            ),
            "extra": self.extra_state(),
        }

    def restore_state(self, state: dict) -> None:
        self.meta_base = state["meta_base"]
        self.tagval = state["tagval"]
        self.policy = state["policy"]
        self.traps_seen = state["traps_seen"]
        if self.shadow is not None:
            self.shadow.restore_state(state["shadow"])
        if self.mem_tags is not None:
            self.mem_tags.restore_state(state["mem_tags"])
        self.load_extra_state(state["extra"])

    def extra_state(self) -> dict:
        """Subclass hook: additional monitor state to checkpoint (e.g.
        SEC's error counter, the shadow stack's entries).  Values must
        be plain data (ints, strs, lists, dicts, bytes)."""
        return {}

    def load_extra_state(self, state: dict) -> None:
        """Subclass hook: restore what :meth:`extra_state` captured."""

    # -- software-visible operations ----------------------------------------

    def status_word(self) -> int:
        """Value returned by the 'read from co-processor' instruction."""
        return self.traps_seen & 0xFFFFFFFF

    def handle_flex(self, packet: TracePacket) -> PacketOutcome:
        """Default handling of the extension-independent flex ops.

        Subclasses call this from :meth:`process` for FLEX packets and
        then layer their own tag ops on top.
        """
        outcome = PacketOutcome()
        opf = packet.opf
        if opf == FlexOpf.SET_BASE:
            self.meta_base = packet.srcv1
            if self.mem_tags is not None:
                self.mem_tags.base = packet.srcv1
        elif opf == FlexOpf.SET_POLICY:
            self.policy = packet.srcv1
        elif opf == FlexOpf.SET_TAGVAL:
            self.tagval = packet.srcv1
        return outcome

    def trap(
        self, packet: TracePacket, kind: str, message: str, addr: int = 0
    ) -> MonitorTrap:
        """Record and return a monitor trap for this packet."""
        self.traps_seen += 1
        self.metrics.counter(f"monitor.{self.name}.traps.{kind}").inc()
        return MonitorTrap(
            extension=self.name,
            kind=kind,
            pc=packet.pc,
            addr=addr,
            message=message,
        )
