"""Soft Error Check (SEC) extension — Argus-style ALU verification.

Table I / Section IV-D: the fabric re-executes each ALU operation
using the source values and the result forwarded in the trace packet
and raises an exception on mismatch.  Additions, subtractions, logic
and shifts are verified bit-by-bit; multiplications and divisions are
verified with modular arithmetic (mod M, a Mersenne number — the
paper uses M = 2^3 - 1 = 7), which is what the hardware model costs.

SEC keeps no meta-data: no shadow register file, no meta-data cache
traffic — which is why its ASIC overhead in Table III is negligible
while its *fabric* area is the largest (a 32-bit datapath maps poorly
onto LUTs compared with the bit-sliced tag engines).
"""

from __future__ import annotations

from repro.core.alu import DivisionByZero, execute_alu
from repro.extensions.base import MonitorExtension, PacketOutcome
from repro.fabric.logic import LogicNetwork, Prim
from repro.flexcore.cfgr import ForwardConfig, ForwardPolicy
from repro.flexcore.packet import TracePacket
from repro.isa.opcodes import ALU_CLASSES, InstrClass, Op3

MERSENNE_MOD = 7  # 2**3 - 1, Section IV-D


class SoftErrorCheck(MonitorExtension):
    """Re-execute-and-compare checking of the main core's ALU."""

    name = "sec"
    description = "soft error checking of ALU results"
    register_tag_bits = 0
    memory_tag_bits = 0

    def __init__(self, meta_base: int = 0):
        super().__init__(meta_base)
        #: test hook: fault injected into the *checker's* view of the
        #: result, simulating a transient bit flip the core missed.
        self.errors_detected = 0

    def forward_config(self) -> ForwardConfig:
        """Forward all ALU instructions with their operands and
        results (Section IV-D)."""
        config = ForwardConfig()
        config.set_classes(ALU_CLASSES, ForwardPolicy.ALWAYS)
        config.set(InstrClass.FLEX, ForwardPolicy.ALWAYS)
        return config

    def process(self, packet: TracePacket) -> PacketOutcome:
        if packet.opcode == InstrClass.FLEX:
            return self.handle_flex(packet)

        outcome = PacketOutcome()
        record = packet.record
        if record is None or record.instr.opcode is None:
            return outcome
        op3 = record.instr.opcode
        if not isinstance(op3, Op3):
            return outcome

        try:
            check = execute_alu(
                op3,
                packet.srcv1,
                packet.srcv2,
                carry=packet.carry_in,
                y=packet.extra,
            )
        except DivisionByZero:
            return outcome
        except ValueError:
            # Not a re-executable ALU op (e.g. a CFGR upset forwarded
            # a ticc/jmpl packet SEC never asked for): nothing to
            # check — the hardware checker would simply pass it by.
            return outcome

        expected = check.value
        actual = packet.res
        if packet.opcode in (InstrClass.MUL, InstrClass.DIV):
            # The hardware checker compares Mersenne-mod checksums
            # rather than recomputing the full product/quotient.
            mismatch = (expected % MERSENNE_MOD) != (actual % MERSENNE_MOD)
        else:
            mismatch = expected != actual
        if mismatch:
            self.errors_detected += 1
            outcome.trap = self.trap(
                packet, "soft-error",
                f"ALU check failed: core produced {actual:#010x}, "
                f"checker expects {expected:#010x}",
            )
        return outcome

    def status_word(self) -> int:
        return self.errors_detected & 0xFFFFFFFF

    def extra_state(self) -> dict:
        return {"errors_detected": self.errors_detected}

    def load_extra_state(self, state: dict) -> None:
        self.errors_detected = state["errors_detected"]

    def hardware(self) -> LogicNetwork:
        """SEC datapath: a full 32-bit adder/subtractor, logic unit,
        barrel shifter, mod-7 folding trees for mul/div, and wide
        comparators — the largest fabric extension (Table III: 484
        LUTs, 213 MHz)."""
        net = LogicNetwork(self.name, pipeline_stages=6)
        net.add(Prim.ADDER, width=32, count=2, label="add/sub re-execute")
        net.add(Prim.GATE, width=32, count=3, label="logic re-execute")
        net.add(Prim.SHIFTER, width=32, label="shift re-execute")
        net.add(Prim.MOD_REDUCE, width=32, count=3,
                label="mod-7 folding (two operands + result)")
        net.add(Prim.MULTIPLIER, width=3, label="mod-7 product")
        net.add(Prim.COMPARATOR_EQ, width=32, label="result compare")
        net.add(Prim.COMPARATOR_EQ, width=3, label="checksum compare")
        net.add(Prim.MUX, width=32, ways=8, label="unit select")
        net.add(Prim.DECODER, width=5, label="opcode decode")
        net.add(Prim.GATE, width=64, label="control / condition handling")
        net.add(Prim.REGISTER, width=100, count=6, label="pipeline regs")
        return net
