"""Shadow-stack extension (extra, beyond the paper's four prototypes).

Section II-B argues the co-processing model covers "various techniques
to enhance software security ... including debugging support" — this
is the classic one: a return-address shadow stack for call-stack
integrity.  Calls push the architectural return point onto a small
stack held in the fabric (a LUT-RAM, like the shadow register file);
returns pop and compare, and a mismatch — a smashed stack or a
corrupted window spill — raises TRAP.

It also demonstrates the other end of the cost spectrum: only calls
and returns are forwarded, so the CFGR filters out almost everything
and the monitoring is nearly free even at a quarter fabric clock.
"""

from __future__ import annotations

from repro.extensions.base import MonitorExtension, PacketOutcome
from repro.fabric.logic import LogicNetwork, Prim
from repro.flexcore.cfgr import ForwardConfig, ForwardPolicy
from repro.flexcore.packet import TracePacket
from repro.isa.opcodes import InstrClass

DEFAULT_DEPTH = 64


class ShadowStack(MonitorExtension):
    """Return-address protection via a fabric-resident stack."""

    name = "shadowstack"
    description = "call-stack integrity (return-address shadow stack)"
    register_tag_bits = 0
    memory_tag_bits = 0

    def __init__(self, depth: int = DEFAULT_DEPTH):
        super().__init__()
        self.depth = depth
        self._stack: list[int] = []
        #: entries silently dropped because the stack was full; calls
        #: deeper than `depth` are unchecked rather than false alarms.
        self.overflowed = 0

    def forward_config(self) -> ForwardConfig:
        config = ForwardConfig()
        config.set(InstrClass.CALL, ForwardPolicy.ALWAYS)
        config.set(InstrClass.JMPL, ForwardPolicy.ALWAYS)
        config.set(InstrClass.FLEX, ForwardPolicy.ALWAYS)
        return config

    def process(self, packet: TracePacket) -> PacketOutcome:
        if packet.opcode == InstrClass.FLEX:
            return self.handle_flex(packet)

        outcome = PacketOutcome()
        if packet.opcode == InstrClass.CALL:
            self._push(packet.pc + 8)
            return outcome

        # JMPL: a call when it links (dest != %g0), a return when the
        # link register is discarded.
        if packet.dest != 0:
            self._push(packet.pc + 8)
            return outcome

        if not self._stack:
            return outcome  # unchecked: deeper than the shadow stack
        expected = self._stack.pop()
        if packet.addr != expected:
            outcome.trap = self.trap(
                packet, "return-address-mismatch",
                f"return to {packet.addr:#x}, shadow stack expects "
                f"{expected:#x}",
                addr=packet.addr,
            )
        return outcome

    def _push(self, address: int) -> None:
        if len(self._stack) >= self.depth:
            self._stack.pop(0)
            self.overflowed += 1
        self._stack.append(address & 0xFFFFFFFF)

    def status_word(self) -> int:
        return len(self._stack) & 0xFFFFFFFF

    def extra_state(self) -> dict:
        return {"stack": list(self._stack), "overflowed": self.overflowed}

    def load_extra_state(self, state: dict) -> None:
        self._stack = list(state["stack"])
        self.overflowed = state["overflowed"]

    def hardware(self) -> LogicNetwork:
        """A LUT-RAM stack, one 32-bit comparator, and a tiny FSM."""
        net = LogicNetwork(self.name, pipeline_stages=2)
        net.add(Prim.LUTRAM, width=32, depth=self.depth,
                label="return-address stack")
        net.add(Prim.ADDER, width=8, label="stack pointer")
        net.add(Prim.COMPARATOR_EQ, width=32, label="return check")
        net.add(Prim.GATE, width=16, label="push/pop FSM")
        net.add(Prim.GATE, width=16, label="FIFO handshake")
        net.add(Prim.REGISTER, width=44, count=2, label="pipeline regs")
        return net
