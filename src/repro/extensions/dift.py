"""Dynamic Information Flow Tracking (DIFT) extension.

Table I / Section IV-B: a 1-bit taint tag per architectural register
(held in the fabric's shadow register file, indexed by physical
register number) and per memory word (behind the meta-data cache).
Tags propagate on ALU/load/store as the OR of the source tags and are
checked on indirect jumps; software sets/clears tags and the policy
register through explicit co-processor instructions.
"""

from __future__ import annotations

from repro.extensions.base import MonitorExtension, PacketOutcome
from repro.fabric.logic import LogicNetwork, Prim
from repro.flexcore.cfgr import ForwardConfig, ForwardPolicy
from repro.flexcore.packet import TracePacket
from repro.isa.opcodes import (
    ALU_CLASSES,
    MEMORY_CLASSES,
    FlexOpf,
    InstrClass,
)

#: Policy register bits (software-settable with SET_POLICY).
POLICY_CHECK_JUMP = 1 << 0  # trap on indirect jump to a tainted target
POLICY_CHECK_LOAD_ADDR = 1 << 1  # trap on load via a tainted pointer
POLICY_CHECK_STORE_ADDR = 1 << 2  # trap on store via a tainted pointer
POLICY_PROPAGATE_LOAD_ADDR = 1 << 3  # OR the pointer taint into the result

DEFAULT_POLICY = POLICY_CHECK_JUMP


class DynamicInformationFlowTracking(MonitorExtension):
    """1-bit taint propagation with a programmable check policy."""

    name = "dift"
    description = "dynamic information flow tracking (taint analysis)"
    register_tag_bits = 1
    memory_tag_bits = 1

    def default_policy(self) -> int:
        return DEFAULT_POLICY

    def forward_config(self) -> ForwardConfig:
        """Forward loads, stores, ALU instructions, indirect jumps and
        co-processor instructions (Section IV-B).  SETHI is included
        with the ALU group so immediate loads clear the destination
        taint."""
        config = ForwardConfig()
        config.set_classes(MEMORY_CLASSES, ForwardPolicy.ALWAYS)
        config.set_classes(ALU_CLASSES, ForwardPolicy.ALWAYS)
        config.set(InstrClass.SETHI, ForwardPolicy.ALWAYS)
        config.set(InstrClass.JMPL, ForwardPolicy.ALWAYS)
        config.set(InstrClass.FLEX, ForwardPolicy.ALWAYS)
        return config

    # ------------------------------------------------------------------

    def _source_taint(self, packet: TracePacket) -> int:
        """OR of the source register taints.  Immediate operands have
        physical number 0 (= %g0), which always reads as untainted."""
        return self.shadow.read(packet.src1) | self.shadow.read(packet.src2)

    def process(self, packet: TracePacket) -> PacketOutcome:
        shadow = self.shadow
        tags = self.mem_tags
        opcode = packet.opcode

        if opcode == InstrClass.FLEX:
            outcome = self.handle_flex(packet)
            opf = packet.opf
            addr = (packet.srcv1 + packet.srcv2) & 0xFFFFFFFF
            if opf == FlexOpf.TAG_SET_REG:
                shadow.write(packet.dest, self.tagval & 1)
            elif opf == FlexOpf.TAG_CLR_REG:
                shadow.write(packet.dest, 0)
            elif opf == FlexOpf.TAG_SET_MEM:
                tags.write(addr, self.tagval & 1)
                outcome.write(tags.meta_address(addr), tags.write_mask(addr))
            elif opf == FlexOpf.TAG_CLR_MEM:
                tags.write(addr, 0)
                outcome.write(tags.meta_address(addr), tags.write_mask(addr))
            return outcome

        outcome = PacketOutcome()

        if packet.is_load:
            taint = tags.read(packet.addr)
            outcome.read(tags.meta_address(packet.addr))
            pointer_taint = self._source_taint(packet)
            if self.policy & POLICY_PROPAGATE_LOAD_ADDR:
                taint |= pointer_taint
            shadow.write(packet.dest, taint)
            if pointer_taint and self.policy & POLICY_CHECK_LOAD_ADDR:
                outcome.trap = self.trap(
                    packet, "tainted-load-pointer",
                    f"load via tainted pointer to {packet.addr:#x}",
                    addr=packet.addr,
                )
            return outcome

        if packet.is_store:
            # The store's data register rides in the DEST slot.
            taint = shadow.read(packet.dest)
            tags.write(packet.addr, taint)
            outcome.write(
                tags.meta_address(packet.addr),
                tags.write_mask(packet.addr),
            )
            if (self._source_taint(packet)
                    and self.policy & POLICY_CHECK_STORE_ADDR):
                outcome.trap = self.trap(
                    packet, "tainted-store-pointer",
                    f"store via tainted pointer to {packet.addr:#x}",
                    addr=packet.addr,
                )
            return outcome

        if opcode == InstrClass.JMPL:
            if self._source_taint(packet) and self.policy & POLICY_CHECK_JUMP:
                outcome.trap = self.trap(
                    packet, "tainted-jump",
                    f"indirect jump to tainted target {packet.addr:#x}",
                    addr=packet.addr,
                )
            # The link register receives an untainted PC.
            shadow.write(packet.dest, 0)
            return outcome

        if opcode == InstrClass.SETHI:
            shadow.write(packet.dest, 0)
            return outcome

        # ALU: OR-propagate source taints to the destination.
        shadow.write(packet.dest, self._source_taint(packet))
        return outcome

    def hardware(self) -> LogicNetwork:
        """DIFT datapath: the UMC-style tag-address path plus the
        1-bit taint propagation network, policy checks and the flex
        opcode decoder (Table III: 153 LUTs, 256 MHz)."""
        net = LogicNetwork(self.name, pipeline_stages=4)
        net.add(Prim.ADDER, width=32, label="tag address base add")
        net.add(Prim.DECODER, width=5, label="write-mask decode")
        net.add(Prim.MUX, width=1, ways=32, label="tag bit select")
        net.add(Prim.GATE, width=24, label="control FSM")
        net.add(Prim.GATE, width=16, label="FIFO handshake")
        net.add(Prim.MUX, width=1, ways=4, count=2,
                label="dest tag source select")
        net.add(Prim.GATE, width=8, label="policy check logic")
        net.add(Prim.DECODER, width=4, label="flex opf decode")
        net.add(Prim.MUX, width=32, ways=4, label="meta datapath select")
        net.add(Prim.REDUCE, width=8, label="trap condition")
        net.add(Prim.REGISTER, width=48, count=4, label="pipeline regs")
        net.add(Prim.REGISTER, width=34, label="base/policy registers")
        return net
