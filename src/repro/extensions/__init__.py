"""Monitoring extensions: the co-processing model and the four
prototypes from the paper (UMC, DIFT, BC, SEC)."""

from repro.extensions.base import (
    DEFAULT_META_BASE,
    MetaAccess,
    MonitorExtension,
    MonitorTrap,
    PacketOutcome,
)
from repro.extensions.bc import ArrayBoundCheck
from repro.extensions.dift import (
    DEFAULT_POLICY,
    POLICY_CHECK_JUMP,
    POLICY_CHECK_LOAD_ADDR,
    POLICY_CHECK_STORE_ADDR,
    POLICY_PROPAGATE_LOAD_ADDR,
    DynamicInformationFlowTracking,
)
from repro.extensions.registry import (
    EXTENSION_CLASSES,
    EXTENSION_NAMES,
    EXTRA_EXTENSION_NAMES,
    create_extension,
    extension_names,
    register_extension,
    unregister_extension,
)
from repro.extensions.sec import SoftErrorCheck
from repro.extensions.shadow_stack import ShadowStack
from repro.extensions.umc import UninitializedMemoryCheck
from repro.extensions.watchpoint import Watchpoints

__all__ = [
    "ArrayBoundCheck",
    "DEFAULT_META_BASE",
    "DEFAULT_POLICY",
    "DynamicInformationFlowTracking",
    "EXTENSION_CLASSES",
    "EXTENSION_NAMES",
    "EXTRA_EXTENSION_NAMES",
    "MetaAccess",
    "MonitorExtension",
    "MonitorTrap",
    "PacketOutcome",
    "POLICY_CHECK_JUMP",
    "POLICY_CHECK_LOAD_ADDR",
    "POLICY_CHECK_STORE_ADDR",
    "POLICY_PROPAGATE_LOAD_ADDR",
    "ShadowStack",
    "SoftErrorCheck",
    "UninitializedMemoryCheck",
    "Watchpoints",
    "create_extension",
    "extension_names",
    "register_extension",
    "unregister_extension",
]
