"""Registry of monitoring extensions.

Besides the built-in classes, the registry accepts runtime
registrations via :func:`register_extension` — the hook the MDL
compiler uses to make compiled monitors available to every consumer
of :func:`create_extension` (the CLI's ``run``/``trace``/``inject``,
fault-injection campaigns, the evaluation tables).  Lookup is
case-insensitive.
"""

from __future__ import annotations

from typing import Callable

from repro.extensions.base import MonitorExtension
from repro.extensions.bc import ArrayBoundCheck
from repro.extensions.dift import DynamicInformationFlowTracking
from repro.extensions.sec import SoftErrorCheck
from repro.extensions.shadow_stack import ShadowStack
from repro.extensions.umc import UninitializedMemoryCheck
from repro.extensions.watchpoint import Watchpoints

EXTENSION_CLASSES = {
    "umc": UninitializedMemoryCheck,
    "dift": DynamicInformationFlowTracking,
    "bc": ArrayBoundCheck,
    "sec": SoftErrorCheck,
    "shadowstack": ShadowStack,
    "watchpoint": Watchpoints,
}

#: The paper's four prototypes, in table order (the evaluation tables
#: iterate exactly these).
EXTENSION_NAMES = ("umc", "dift", "bc", "sec")

#: Extensions this repository adds beyond the paper's prototypes.
EXTRA_EXTENSION_NAMES = ("shadowstack", "watchpoint")

#: The live factory table: built-ins plus runtime registrations, keyed
#: by lowercase name.
_FACTORIES: dict[str, Callable[[], MonitorExtension]] = dict(
    EXTENSION_CLASSES
)


def register_extension(
    name: str,
    factory: Callable[[], MonitorExtension],
    *,
    replace: bool = False,
) -> Callable[[], MonitorExtension]:
    """Register ``factory`` under ``name`` (case-insensitive).

    ``factory`` is any zero-argument callable returning a
    :class:`MonitorExtension` — a subclass, or a compiled MDL
    program's ``create``.  Registering an existing name raises unless
    ``replace=True``.  Returns the factory, so it can be used as a
    class decorator.
    """
    key = name.lower()
    if not key:
        raise ValueError("extension name must be non-empty")
    if not replace and key in _FACTORIES:
        raise ValueError(
            f"extension {key!r} is already registered "
            f"(pass replace=True to override)"
        )
    _FACTORIES[key] = factory
    return factory


def unregister_extension(name: str) -> None:
    """Remove a runtime registration; built-in names revert to their
    built-in class instead of disappearing."""
    key = name.lower()
    if key in EXTENSION_CLASSES:
        _FACTORIES[key] = EXTENSION_CLASSES[key]
    else:
        _FACTORIES.pop(key, None)


def extension_names() -> tuple[str, ...]:
    """Every currently creatable extension name, sorted."""
    return tuple(sorted(_FACTORIES))


def create_extension(name: str) -> MonitorExtension:
    """Instantiate a registered extension by (case-insensitive) name."""
    try:
        factory = _FACTORIES[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_FACTORIES))
        raise ValueError(
            f"unknown extension {name!r} (known: {known})"
        ) from None
    return factory()
