"""Registry of the built-in monitoring extensions."""

from __future__ import annotations

from repro.extensions.base import MonitorExtension
from repro.extensions.bc import ArrayBoundCheck
from repro.extensions.dift import DynamicInformationFlowTracking
from repro.extensions.sec import SoftErrorCheck
from repro.extensions.shadow_stack import ShadowStack
from repro.extensions.umc import UninitializedMemoryCheck
from repro.extensions.watchpoint import Watchpoints

EXTENSION_CLASSES = {
    "umc": UninitializedMemoryCheck,
    "dift": DynamicInformationFlowTracking,
    "bc": ArrayBoundCheck,
    "sec": SoftErrorCheck,
    "shadowstack": ShadowStack,
    "watchpoint": Watchpoints,
}

#: The paper's four prototypes, in table order (the evaluation tables
#: iterate exactly these).
EXTENSION_NAMES = ("umc", "dift", "bc", "sec")

#: Extensions this repository adds beyond the paper's prototypes.
EXTRA_EXTENSION_NAMES = ("shadowstack", "watchpoint")


def create_extension(name: str) -> MonitorExtension:
    """Instantiate a built-in extension by name."""
    try:
        return EXTENSION_CLASSES[name]()
    except KeyError:
        known = ", ".join(sorted(EXTENSION_CLASSES))
        raise ValueError(f"unknown extension {name!r} (known: {known})")
