"""Integer ALU with SPARC V8 condition-code semantics.

The ALU is used twice in the reproduction: by the main core's
functional executor, and by the SEC (soft-error check) extension,
which re-executes ALU results on the fabric the way Argus does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.opcodes import Op3, sets_condition_codes

MASK32 = 0xFFFFFFFF


class DivisionByZero(Exception):
    """SPARC raises a divide-by-zero trap; we surface it as an error."""


@dataclass(frozen=True)
class ConditionCodes:
    """The integer condition codes (icc): negative, zero, overflow,
    carry.  Packed as the 4-bit N|Z|V|C field of the trace packet."""

    n: bool = False
    z: bool = False
    v: bool = False
    c: bool = False

    def pack(self) -> int:
        return (self.n << 3) | (self.z << 2) | (self.v << 1) | int(self.c)

    @classmethod
    def unpack(cls, bits: int) -> "ConditionCodes":
        return cls(
            n=bool(bits & 8), z=bool(bits & 4),
            v=bool(bits & 2), c=bool(bits & 1),
        )


@dataclass(frozen=True)
class AluResult:
    """Result of one ALU operation."""

    value: int
    codes: ConditionCodes | None  # None if the op does not set icc
    y: int | None = None  # new value of the Y register, if written


def _signed(value: int) -> int:
    return (value & MASK32) - ((value & 0x80000000) << 1)


def _nz(value: int) -> tuple[bool, bool]:
    return bool(value & 0x80000000), value == 0


def _add(a: int, b: int, carry_in: int) -> tuple[int, ConditionCodes]:
    total = a + b + carry_in
    value = total & MASK32
    n, z = _nz(value)
    c = total > MASK32
    v = (~(a ^ b) & (a ^ value) & 0x80000000) != 0
    return value, ConditionCodes(n=n, z=z, v=v, c=c)


def _sub(a: int, b: int, borrow_in: int) -> tuple[int, ConditionCodes]:
    total = a - b - borrow_in
    value = total & MASK32
    n, z = _nz(value)
    c = total < 0  # SPARC subcc sets C on borrow
    v = ((a ^ b) & (a ^ value) & 0x80000000) != 0
    return value, ConditionCodes(n=n, z=z, v=v, c=c)


def _logic(value: int) -> tuple[int, ConditionCodes]:
    value &= MASK32
    n, z = _nz(value)
    return value, ConditionCodes(n=n, z=z, v=False, c=False)


def execute_alu(
    op3: Op3, a: int, b: int, carry: bool = False, y: int = 0
) -> AluResult:
    """Execute one integer ALU operation.

    ``a``/``b`` are the 32-bit source operands, ``carry`` the incoming
    carry flag (for addx/subx) and ``y`` the Y register (for division
    and as the destination of multiplication high bits).
    """
    a &= MASK32
    b &= MASK32
    base = Op3(op3)
    new_y: int | None = None

    if base in (Op3.ADD, Op3.ADDCC):
        value, codes = _add(a, b, 0)
    elif base in (Op3.ADDX, Op3.ADDXCC):
        value, codes = _add(a, b, int(carry))
    elif base in (Op3.SUB, Op3.SUBCC):
        value, codes = _sub(a, b, 0)
    elif base in (Op3.SUBX, Op3.SUBXCC):
        value, codes = _sub(a, b, int(carry))
    elif base in (Op3.AND, Op3.ANDCC):
        value, codes = _logic(a & b)
    elif base in (Op3.ANDN, Op3.ANDNCC):
        value, codes = _logic(a & ~b)
    elif base in (Op3.OR, Op3.ORCC):
        value, codes = _logic(a | b)
    elif base in (Op3.ORN, Op3.ORNCC):
        value, codes = _logic(a | ~b)
    elif base in (Op3.XOR, Op3.XORCC):
        value, codes = _logic(a ^ b)
    elif base in (Op3.XNOR, Op3.XNORCC):
        value, codes = _logic(~(a ^ b))
    elif base == Op3.SLL:
        value, codes = (a << (b & 31)) & MASK32, None
    elif base == Op3.SRL:
        value, codes = (a >> (b & 31)) & MASK32, None
    elif base == Op3.SRA:
        value, codes = (_signed(a) >> (b & 31)) & MASK32, None
    elif base in (Op3.UMUL, Op3.UMULCC):
        product = a * b
        value = product & MASK32
        new_y = (product >> 32) & MASK32
        codes = ConditionCodes(*_nz(value)) if base == Op3.UMULCC else None
    elif base in (Op3.SMUL, Op3.SMULCC):
        product = _signed(a) * _signed(b)
        value = product & MASK32
        new_y = (product >> 32) & MASK32
        codes = ConditionCodes(*_nz(value)) if base == Op3.SMULCC else None
    elif base in (Op3.UDIV, Op3.UDIVCC):
        if b == 0:
            raise DivisionByZero("udiv by zero")
        dividend = (y << 32) | a
        quotient = dividend // b
        overflow = quotient > MASK32
        value = MASK32 if overflow else quotient
        codes = None
        if base == Op3.UDIVCC:
            n, z = _nz(value)
            codes = ConditionCodes(n=n, z=z, v=overflow, c=False)
    elif base in (Op3.SDIV, Op3.SDIVCC):
        if b == 0:
            raise DivisionByZero("sdiv by zero")
        dividend = _signed_64((y << 32) | a)
        quotient = int(dividend / _signed(b))
        overflow = not -(1 << 31) <= quotient <= (1 << 31) - 1
        if overflow:
            quotient = (1 << 31) - 1 if quotient > 0 else -(1 << 31)
        value = quotient & MASK32
        codes = None
        if base == Op3.SDIVCC:
            n, z = _nz(value)
            codes = ConditionCodes(n=n, z=z, v=overflow, c=False)
    else:
        raise ValueError(f"not an ALU operation: {op3!r}")

    if codes is not None and not sets_condition_codes(base):
        codes = None
    return AluResult(value=value, codes=codes, y=new_y)


def _signed_64(value: int) -> int:
    value &= (1 << 64) - 1
    return value - ((value & (1 << 63)) << 1)
