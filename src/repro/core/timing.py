"""Timing model of the Leon3-like main core.

Leon3 is a single-issue, in-order, 7-stage pipeline.  For a simulator
whose outputs are *normalized execution times*, the pipeline can be
modelled as a per-instruction issue cost (Leon3's documented cycle
counts) plus event-driven stalls from the memory system:

========================  =============
instruction               cycles
========================  =============
ALU / logical / sethi      1
load (ld)                  2   (ldd 3)
store (st)                 3   (std 4)
branch                     1   (+1 for an annulled delay slot)
call                       1
jmpl / indirect jump       3
mul                        4
div                        35
save / restore / flex      1
========================  =============

Cache misses, write-through store traffic and bus contention are
resolved against :class:`~repro.memory.bus.SharedBus`, which the
FlexCore meta-data cache also competes for.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.executor import CommitRecord
from repro.isa.opcodes import InstrClass, Op3Mem
from repro.memory.bus import BusConfig, SharedBus, StoreBuffer
from repro.memory.cache import Cache, CacheConfig


@dataclass
class CoreTimingConfig:
    """Timing knobs for the main core."""

    icache: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 * 1024, 32, 4)
    )
    dcache: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 * 1024, 32, 4)
    )
    bus: BusConfig = field(default_factory=BusConfig)
    store_buffer_depth: int = 8
    latency: dict[InstrClass, int] = field(default_factory=dict)

    def __post_init__(self):
        defaults = {
            InstrClass.LOAD_WORD: 2,
            InstrClass.LOAD_BYTE: 2,
            InstrClass.LOAD_HALF: 2,
            InstrClass.LOAD_DOUBLE: 3,
            InstrClass.STORE_WORD: 3,
            InstrClass.STORE_BYTE: 3,
            InstrClass.STORE_HALF: 3,
            InstrClass.STORE_DOUBLE: 4,
            InstrClass.MUL: 4,
            InstrClass.DIV: 35,
            InstrClass.JMPL: 3,
            InstrClass.RETT: 3,
        }
        for key, value in defaults.items():
            self.latency.setdefault(key, value)

    def base_latency(self, instr_class: InstrClass) -> int:
        return self.latency.get(instr_class, 1)


@dataclass
class CoreTimingStats:
    """Where the cycles of a run went."""

    cycles: int = 0
    instructions: int = 0
    base_cycles: int = 0
    icache_stall: int = 0
    dcache_stall: int = 0
    store_stall: int = 0
    interlock_stall: int = 0  # load-use hazard cycles
    fifo_stall: int = 0  # filled in by the FlexCore system

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0


class CoreTiming:
    """Event-driven timing for the main core.

    ``advance(record, now)`` returns the cycle at which the instruction
    commits, charging base latency plus any memory stalls.  FIFO
    backpressure from the FlexCore interface is applied afterwards by
    the system (it needs fabric state).
    """

    def __init__(self, config: CoreTimingConfig, bus: SharedBus,
                 telemetry=None):
        self.config = config
        self.bus = bus
        self.icache = Cache(config.icache)
        self.dcache = Cache(config.dcache)
        self.store_buffer = StoreBuffer(
            bus, depth=config.store_buffer_depth, who="core-store"
        )
        self.stats = CoreTimingStats()
        # Destination of the immediately preceding load, for the
        # load-use interlock (the data cache delivers in the memory
        # stage, one stage after the ALU consumes operands).
        self._pending_load_dest = -1
        # Telemetry sinks, resolved once so the hot path pays only a
        # None check (and nothing at all on the hit path).
        self._tracer = telemetry.tracer if telemetry is not None else None
        metrics = (telemetry.metrics
                   if telemetry is not None and telemetry.metrics.enabled
                   else None)
        if metrics is not None:
            self._m_instructions = metrics.counter("core.instructions")
            self._m_icache_refill = metrics.counter(
                "core.icache_refill_cycles"
            )
            self._m_dcache_refill = metrics.counter(
                "core.dcache_refill_cycles"
            )
            self._m_store_stall = metrics.counter(
                "core.store_stall_cycles"
            )
            self._m_interlock = metrics.counter("core.interlock_stalls")
        else:
            self._m_instructions = None
            self._m_icache_refill = None
            self._m_dcache_refill = None
            self._m_store_stall = None
            self._m_interlock = None

    # ------------------------------------------------------------------
    # Snapshot/restore (crash-safe checkpointing).  The shared bus is
    # owned by the system and snapshotted there.

    def snapshot_state(self) -> dict:
        return {
            "stats": vars(self.stats).copy(),
            "icache": self.icache.snapshot_state(),
            "dcache": self.dcache.snapshot_state(),
            "store_buffer": self.store_buffer.snapshot_state(),
            "pending_load_dest": self._pending_load_dest,
        }

    def restore_state(self, state: dict) -> None:
        self.stats = CoreTimingStats(**state["stats"])
        self.icache.restore_state(state["icache"])
        self.dcache.restore_state(state["dcache"])
        self.store_buffer.restore_state(state["store_buffer"])
        self._pending_load_dest = state["pending_load_dest"]

    def advance(self, record: CommitRecord, now: int) -> int:
        """Charge one committed instruction starting at time ``now``."""
        stats = self.stats
        stats.instructions += 1
        if self._m_instructions is not None:
            self._m_instructions.inc()

        # Instruction fetch.
        if not self.icache.read(record.pc):
            done = self.bus.line_refill(now, "core-ifetch")
            stats.icache_stall += done - now
            if self._tracer is not None:
                self._tracer.span(now, done - now, "core",
                                  "stall.icache_refill", pc=record.pc)
            if self._m_icache_refill is not None:
                self._m_icache_refill.inc(done - now)
            now = done

        if record.annulled:
            stats.base_cycles += 1
            now += 1
            stats.cycles = now
            self._pending_load_dest = -1
            return now

        base = self.config.base_latency(record.instr_class)

        # Load-use interlock: an instruction consuming the previous
        # load's destination stalls one cycle.
        if self._pending_load_dest > 0:
            dest = self._pending_load_dest
            uses = record.src1_phys == dest or record.src2_phys == dest
            if record.is_store and record.dest_phys == dest:
                uses = True
            if uses:
                base += 1
                stats.interlock_stall += 1
                if self._m_interlock is not None:
                    self._m_interlock.inc()
        self._pending_load_dest = record.dest_phys if record.is_load else -1

        stats.base_cycles += base
        now += base

        if record.is_load:
            if not self.dcache.read(record.addr):
                done = self.bus.line_refill(now, "core-dcache")
                stats.dcache_stall += done - now
                if self._tracer is not None:
                    self._tracer.span(now, done - now, "core",
                                      "stall.dcache_refill",
                                      pc=record.pc, addr=record.addr)
                if self._m_dcache_refill is not None:
                    self._m_dcache_refill.inc(done - now)
                now = done
            if record.instr.opcode == Op3Mem.LDD:
                self.dcache.read(record.addr + 4)
        elif record.is_store:
            self.dcache.write(record.addr)
            proceed = self.store_buffer.push(now)
            stats.store_stall += proceed - now
            if proceed > now:
                if self._tracer is not None:
                    self._tracer.span(now, proceed - now, "core",
                                      "stall.store_buffer",
                                      pc=record.pc)
                if self._m_store_stall is not None:
                    self._m_store_stall.inc(proceed - now)
            now = proceed
            if record.instr.opcode == Op3Mem.STD:
                self.dcache.write(record.addr + 4)
                proceed = self.store_buffer.push(now)
                stats.store_stall += proceed - now
                if proceed > now and self._m_store_stall is not None:
                    self._m_store_stall.inc(proceed - now)
                now = proceed

        stats.cycles = now
        return now
