"""Functional executor for the SPARC V8 subset.

Executes one instruction per :meth:`CpuState.step` using the classic
PC/nPC model (which gives correct delay-slot and annulling semantics),
and emits a :class:`CommitRecord` per committed instruction.  The
commit record carries everything the FlexCore trace packet needs
(Table II): PC, raw instruction word, effective address, result,
source operand values, condition codes, branch direction, and decoded
physical register numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.alu import ConditionCodes, execute_alu
from repro.isa.encoding import decode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Cond, FlexOpf, InstrClass, Op, Op2, Op3, Op3Mem
from repro.isa.registers import (
    RegisterFile,
    WindowOverflow,
    WindowUnderflow,
)
from repro.memory.backing import MemoryFault, SparseMemory

MASK32 = 0xFFFFFFFF


class SimulationError(Exception):
    """Fatal error in the simulated program (bad opcode, trap, ...).

    Carries structured context for crash triage: the PC and
    disassembled instruction that faulted, the dynamic instruction
    count (``instret``) and, once the timing model has seen the error,
    the cycle count.  Fields are ``None`` when unknown.
    """

    def __init__(
        self,
        message: str,
        *,
        pc: int | None = None,
        instruction: str | None = None,
        instret: int | None = None,
        cycle: int | None = None,
    ):
        super().__init__(message)
        self.pc = pc
        self.instruction = instruction
        self.instret = instret
        self.cycle = cycle

    def diagnosis(self) -> str:
        """One-line human summary for CLI error paths and reports."""
        parts = [str(self)]
        if self.pc is not None:
            parts.append(f"pc={self.pc:#x}")
        if self.instruction is not None:
            parts.append(f"instr='{self.instruction}'")
        if self.instret is not None:
            parts.append(f"instret={self.instret}")
        if self.cycle is not None:
            parts.append(f"cycle={self.cycle}")
        return " | ".join(parts)

    def __reduce__(self):
        # Preserve the structured context across pickling (the
        # fault-injection campaign ships errors between processes).
        return (
            _rebuild_simulation_error,
            (self.args[0] if self.args else "", self.pc,
             self.instruction, self.instret, self.cycle),
        )


def _rebuild_simulation_error(message, pc, instruction, instret, cycle):
    return SimulationError(
        message, pc=pc, instruction=instruction, instret=instret,
        cycle=cycle,
    )


@dataclass
class CommitRecord:
    """One committed instruction, as seen by the commit stage."""

    pc: int
    word: int  # raw 32-bit instruction (INST field)
    instr: Instruction
    instr_class: InstrClass
    addr: int = 0  # effective address (ADDR field)
    result: int = 0  # instruction result (RES field)
    srcv1: int = 0  # source operand 1 value (SRCV1)
    srcv2: int = 0  # source operand 2 value (SRCV2)
    cond: int = 0  # packed icc after the instruction (COND)
    branch_taken: bool = False  # BRANCH field
    src1_phys: int = 0  # decoded physical register numbers (9 bits)
    src2_phys: int = 0
    dest_phys: int = 0
    carry_before: bool = False  # incoming carry flag (for addx/subx checks)
    y_before: int = 0  # incoming Y register (for division checks)
    annulled: bool = False
    halted: bool = False

    @property
    def is_load(self) -> bool:
        return self.instr.is_load and not self.annulled

    @property
    def is_store(self) -> bool:
        return self.instr.is_store and not self.annulled


def evaluate_condition(cond: Cond, codes: ConditionCodes) -> bool:
    """Evaluate a Bicc condition against the integer condition codes."""
    n, z, v, c = codes.n, codes.z, codes.v, codes.c
    table = {
        Cond.BA: True,
        Cond.BN: False,
        Cond.BE: z,
        Cond.BNE: not z,
        Cond.BG: not (z or (n != v)),
        Cond.BLE: z or (n != v),
        Cond.BGE: n == v,
        Cond.BL: n != v,
        Cond.BGU: not (c or z),
        Cond.BLEU: c or z,
        Cond.BCC: not c,
        Cond.BCS: c,
        Cond.BPOS: not n,
        Cond.BNEG: n,
        Cond.BVC: not v,
        Cond.BVS: v,
    }
    return table[cond]


class CpuState:
    """Architectural state plus the functional step function."""

    def __init__(
        self,
        memory: SparseMemory,
        entry: int,
        nwindows: int = 8,
        stack_top: int = 0x7FFFF0,
    ):
        self.memory = memory
        self.regs = RegisterFile(nwindows)
        self.pc = entry
        self.npc = entry + 4
        self.codes = ConditionCodes()
        self.y = 0
        self.halted = False
        self.instret = 0
        self._annul_next = False
        # Called for FlexOpf.READ_STATUS; wired up by the system so the
        # "read from co-processor" instruction returns the BFIFO value.
        self.coprocessor_read = lambda: 0
        # %sp and %fp start at the top of the stack region.
        self.regs.write(14, stack_top)
        self.regs.write(30, stack_top)
        self._decode_cache: dict[int, Instruction] = {}
        # Telemetry counters (attach_telemetry); None = disabled, and
        # both guards live off the per-instruction fast path.
        self._m_decode_miss = None
        self._m_annulled = None

    def attach_telemetry(self, telemetry) -> None:
        """Wire a :class:`repro.telemetry.Telemetry` bundle in."""
        if telemetry.metrics.enabled:
            self._m_decode_miss = telemetry.metrics.counter(
                "core.decode_cache_misses"
            )
            self._m_annulled = telemetry.metrics.counter(
                "core.annulled_slots"
            )

    # ------------------------------------------------------------------
    # Snapshot/restore (crash-safe checkpointing).  The decode cache is
    # pure memoisation keyed by instruction words and is deliberately
    # not part of the architectural state.

    def snapshot_state(self) -> dict:
        """Architectural state: PC/nPC, icc, Y, windowed registers."""
        return {
            "pc": self.pc,
            "npc": self.npc,
            "cond": self.codes.pack(),
            "y": self.y,
            "halted": self.halted,
            "instret": self.instret,
            "annul": self._annul_next,
            "regs": self.regs.snapshot_state(),
        }

    def restore_state(self, state: dict) -> None:
        self.pc = state["pc"]
        self.npc = state["npc"]
        self.codes = ConditionCodes.unpack(state["cond"])
        self.y = state["y"]
        self.halted = state["halted"]
        self.instret = state["instret"]
        self._annul_next = state["annul"]
        self.regs.restore_state(state["regs"])

    # ------------------------------------------------------------------

    def step(self) -> CommitRecord:
        """Execute the instruction at PC and return its commit record.

        Any fatal error — a bad opcode, a misaligned access, a window
        overflow — surfaces as a :class:`SimulationError` annotated
        with the faulting PC, its disassembly and the instruction
        count, so callers can triage crashes without a traceback.
        """
        if self.halted:
            raise SimulationError(
                "stepping a halted CPU", pc=self.pc, instret=self.instret
            )
        pc = self.pc
        try:
            word = self.memory.read_word(pc)
            instr = self._decode_cache.get(word)
            if instr is None:
                instr = decode(word)
                self._decode_cache[word] = instr
                if self._m_decode_miss is not None:
                    self._m_decode_miss.inc()

            if self._annul_next:
                self._annul_next = False
                if self._m_annulled is not None:
                    self._m_annulled.inc()
                record = CommitRecord(
                    pc=pc, word=word, instr=instr,
                    instr_class=instr.instr_class, annulled=True,
                    cond=self.codes.pack(),
                )
                self._advance(self.npc + 4)
                self.instret += 1
                return record

            record = self._execute(pc, word, instr)
        except SimulationError as err:
            self._attach_context(err, pc)
            raise
        except (MemoryFault, WindowOverflow, WindowUnderflow) as err:
            wrapped = SimulationError(str(err))
            self._attach_context(wrapped, pc)
            raise wrapped from err
        self.instret += 1
        return record

    def _attach_context(self, err: SimulationError, pc: int) -> None:
        """Fill in crash-triage fields an error site left unset."""
        if err.pc is None:
            err.pc = pc
        if err.instret is None:
            err.instret = self.instret
        if err.instruction is None:
            try:
                from repro.isa.disasm import disassemble
                err.instruction = disassemble(
                    self.memory.read_word(err.pc), err.pc
                )
            except Exception:
                err.instruction = "<undecodable>"

    def _advance(self, new_npc: int) -> None:
        self.pc = self.npc
        self.npc = new_npc & MASK32

    # ------------------------------------------------------------------

    def _operands(self, instr: Instruction) -> tuple[int, int]:
        a = self.regs.read(instr.rs1)
        if instr.use_imm:
            b = instr.imm & MASK32
        else:
            b = self.regs.read(instr.rs2)
        return a, b

    def _phys(self, arch_index: int) -> int:
        return self.regs.physical_index(arch_index)

    def _execute(
        self, pc: int, word: int, instr: Instruction
    ) -> CommitRecord:
        record = CommitRecord(
            pc=pc, word=word, instr=instr, instr_class=instr.instr_class,
            carry_before=self.codes.c, y_before=self.y,
        )

        if instr.op == Op.CALL:
            target = (pc + 4 * instr.disp) & MASK32
            self.regs.write(15, pc)  # %o7 <- address of the call
            record.addr = target
            record.result = pc
            record.dest_phys = self._phys(15)
            record.branch_taken = True
            self._advance(target)
            record.cond = self.codes.pack()
            return record

        if instr.op == Op.FORMAT2:
            if instr.opcode == Op2.SETHI:
                value = (instr.imm << 10) & MASK32
                self.regs.write(instr.rd, value)
                record.result = value
                record.dest_phys = self._phys(instr.rd)
                self._advance(self.npc + 4)
                record.cond = self.codes.pack()
                return record
            # Bicc
            taken = evaluate_condition(instr.cond, self.codes)
            target = (pc + 4 * instr.disp) & MASK32
            record.addr = target
            record.branch_taken = taken
            record.cond = self.codes.pack()
            if taken:
                # `ba,a` annuls its delay slot even though taken.
                if instr.annul and instr.cond == Cond.BA:
                    self._annul_next = True
                self._advance(target)
            else:
                if instr.annul:
                    self._annul_next = True
                self._advance(self.npc + 4)
            return record

        if instr.op == Op.FORMAT3_MEM:
            return self._execute_memory(record, instr)

        return self._execute_alu_format(record, instr)

    def _execute_memory(
        self, record: CommitRecord, instr: Instruction
    ) -> CommitRecord:
        a, b = self._operands(instr)
        addr = (a + b) & MASK32
        record.addr = addr
        record.srcv1 = a
        record.srcv2 = b
        record.src1_phys = self._phys(instr.rs1)
        if not instr.use_imm:
            record.src2_phys = self._phys(instr.rs2)
        mem = self.memory
        op3 = instr.opcode

        if instr.is_load:
            if op3 == Op3Mem.LD:
                value = mem.read_word(addr)
            elif op3 == Op3Mem.LDUB:
                value = mem.read_byte(addr)
            elif op3 == Op3Mem.LDSB:
                raw = mem.read_byte(addr)
                value = (raw - 0x100 if raw & 0x80 else raw) & MASK32
            elif op3 == Op3Mem.LDUH:
                value = mem.read_half(addr)
            elif op3 == Op3Mem.LDSH:
                raw = mem.read_half(addr)
                value = (raw - 0x10000 if raw & 0x8000 else raw) & MASK32
            elif op3 == Op3Mem.LDD:
                if instr.rd & 1:
                    raise SimulationError("ldd needs an even rd")
                value = mem.read_word(addr)
                self.regs.write(instr.rd + 1, mem.read_word(addr + 4))
            else:  # pragma: no cover - decode prevents this
                raise SimulationError(f"bad load {op3!r}")
            self.regs.write(instr.rd, value)
            record.result = value
            record.dest_phys = self._phys(instr.rd)
        else:
            value = self.regs.read(instr.rd)
            record.result = value
            # For stores, the value register is a *source*; expose its
            # physical number so tag engines can read its shadow tag.
            record.dest_phys = self._phys(instr.rd)
            if op3 == Op3Mem.ST:
                mem.write_word(addr, value)
            elif op3 == Op3Mem.STB:
                mem.write_byte(addr, value)
            elif op3 == Op3Mem.STH:
                mem.write_half(addr, value)
            elif op3 == Op3Mem.STD:
                if instr.rd & 1:
                    raise SimulationError("std needs an even rd")
                mem.write_word(addr, value)
                mem.write_word(addr + 4, self.regs.read(instr.rd + 1))
            else:  # pragma: no cover
                raise SimulationError(f"bad store {op3!r}")

        self._advance(self.npc + 4)
        record.cond = self.codes.pack()
        return record

    def _execute_alu_format(
        self, record: CommitRecord, instr: Instruction
    ) -> CommitRecord:
        op3 = instr.opcode

        if op3 == Op3.FLEXOP:
            record.srcv1 = self.regs.read(instr.rs1)
            record.srcv2 = self.regs.read(instr.rs2)
            record.src1_phys = self._phys(instr.rs1)
            record.src2_phys = self._phys(instr.rs2)
            record.dest_phys = self._phys(instr.rd)
            record.addr = (record.srcv1 + record.srcv2) & MASK32
            if instr.opf == FlexOpf.READ_STATUS:
                value = self.coprocessor_read() & MASK32
                self.regs.write(instr.rd, value)
                record.result = value
            self._advance(self.npc + 4)
            record.cond = self.codes.pack()
            return record

        if op3 == Op3.JMPL:
            a, b = self._operands(instr)
            target = (a + b) & MASK32
            if target & 3:
                raise SimulationError(f"jmpl to misaligned {target:#x}")
            self.regs.write(instr.rd, record.pc)
            record.addr = target
            record.result = record.pc
            record.srcv1 = a
            record.srcv2 = b
            record.src1_phys = self._phys(instr.rs1)
            if not instr.use_imm:
                record.src2_phys = self._phys(instr.rs2)
            record.dest_phys = self._phys(instr.rd)
            record.branch_taken = True
            self._advance(target)
            record.cond = self.codes.pack()
            return record

        if op3 == Op3.TICC:
            taken = evaluate_condition(instr.cond, self.codes)
            record.cond = self.codes.pack()
            if taken:
                trap_number = instr.imm & 0x7F
                record.result = trap_number
                if trap_number == 0:
                    self.halted = True
                    record.halted = True
                else:
                    raise SimulationError(
                        f"software trap {trap_number} at {record.pc:#x}"
                    )
            self._advance(self.npc + 4)
            return record

        if op3 == Op3.SAVE or op3 == Op3.RESTORE:
            # Operands are read in the *old* window, the destination is
            # written in the *new* window.
            a, b = self._operands(instr)
            record.srcv1 = a
            record.srcv2 = b
            record.src1_phys = self._phys(instr.rs1)
            if not instr.use_imm:
                record.src2_phys = self._phys(instr.rs2)
            if op3 == Op3.SAVE:
                self.regs.save()
            else:
                self.regs.restore()
            value = (a + b) & MASK32
            self.regs.write(instr.rd, value)
            record.result = value
            record.dest_phys = self._phys(instr.rd)
            self._advance(self.npc + 4)
            record.cond = self.codes.pack()
            return record

        if op3 == Op3.RDY:
            self.regs.write(instr.rd, self.y)
            record.result = self.y
            record.dest_phys = self._phys(instr.rd)
            self._advance(self.npc + 4)
            record.cond = self.codes.pack()
            return record

        if op3 == Op3.WRY:
            a, b = self._operands(instr)
            self.y = (a ^ b) & MASK32  # SPARC wr: xor of operands
            record.srcv1 = a
            record.srcv2 = b
            record.src1_phys = self._phys(instr.rs1)
            self._advance(self.npc + 4)
            record.cond = self.codes.pack()
            return record

        if op3 == Op3.RETT:
            raise SimulationError("rett is not supported (no trap mode)")

        # Plain ALU operation.
        a, b = self._operands(instr)
        alu = execute_alu(op3, a, b, carry=self.codes.c, y=self.y)
        self.regs.write(instr.rd, alu.value)
        if alu.codes is not None:
            self.codes = alu.codes
        if alu.y is not None:
            self.y = alu.y
        record.srcv1 = a
        record.srcv2 = b
        record.result = alu.value
        record.src1_phys = self._phys(instr.rs1)
        if not instr.use_imm:
            record.src2_phys = self._phys(instr.rs2)
        record.dest_phys = self._phys(instr.rd)
        self._advance(self.npc + 4)
        record.cond = self.codes.pack()
        return record
