"""Leon3-like main core: functional executor and timing model."""

from repro.core.alu import (
    AluResult,
    ConditionCodes,
    DivisionByZero,
    execute_alu,
)
from repro.core.executor import (
    CommitRecord,
    CpuState,
    SimulationError,
    evaluate_condition,
)
from repro.core.timing import CoreTiming, CoreTimingConfig, CoreTimingStats

__all__ = [
    "AluResult",
    "CommitRecord",
    "ConditionCodes",
    "CoreTiming",
    "CoreTimingConfig",
    "CoreTimingStats",
    "CpuState",
    "DivisionByZero",
    "SimulationError",
    "evaluate_condition",
    "execute_alu",
]
