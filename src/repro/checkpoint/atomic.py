"""Crash-safe file writes: temp file + fsync + rename.

POSIX ``rename(2)`` is atomic within a filesystem, so a reader (or a
process resuming after a ``kill -9``) either sees the complete old
file, the complete new file, or no file — never a truncated hybrid.
Every report, checkpoint and cache file in the repository goes through
these helpers so an interrupt can never leave a half-written artifact
on disk.
"""

from __future__ import annotations

import os
import tempfile


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (temp + fsync + rename)."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        # Never leave the temp file behind, even on KeyboardInterrupt.
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    _fsync_directory(directory)


def atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` (UTF-8) to ``path`` atomically."""
    atomic_write_bytes(path, text.encode("utf-8"))


def _fsync_directory(directory: str) -> None:
    """Persist the rename itself (best-effort: not every filesystem
    supports fsync on a directory fd)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def fsync_file(handle) -> None:
    """Flush and fsync an open file object (journal appends)."""
    handle.flush()
    os.fsync(handle.fileno())
