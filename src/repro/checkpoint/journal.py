"""Append-only, crash-tolerant journals (JSONL).

:class:`EventJournal` is the generic machinery: a header frame pinning
an identity, followed by arbitrary ``kind``-tagged record frames, each
durably flushed before the caller moves on.  :class:`ResultsJournal`
specialises it for fault-injection campaigns (``result`` and ``infra``
records); the service layer's job-state journal
(:class:`repro.service.jobs.JobStore`) reuses the same machinery for
accepted jobs and their state transitions, which is what makes a
``kill -9`` of the job server recoverable.

Each line is a self-checking frame::

    {"crc":<crc32>,"body":{...}}\n

where ``crc`` is the CRC-32 of the canonical JSON encoding of
``body`` (sorted keys, no whitespace).  The first frame is a header
carrying the campaign identity; result frames follow.  On read:

* a defective **final** line (missing newline, unparseable JSON, or a
  CRC mismatch) is a torn tail from a crash mid-append — it is
  dropped and the journal is usable;
* a journal with **no** surviving frame at all (a zero-byte file, or
  a single torn line: the very first write was cut short) reads as an
  *empty* journal — ``(None, [])`` — so ``--resume`` restarts it
  cleanly instead of erroring;
* a defective line **anywhere else** means real corruption and raises
  :class:`JournalCorruptError` — resuming from a silently-mangled
  journal would poison the final report.

Journal writes degrade rather than crash: the first ``OSError``
(ENOSPC, EROFS, EACCES...) disables the journal with
:attr:`ResultsJournal.disabled_reason` set, and the campaign keeps
running un-journaled behind a structured warning — losing
resumability is strictly better than losing the run.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path

from repro.checkpoint.atomic import fsync_file


class JournalError(Exception):
    """Base class for journal problems."""


class JournalCorruptError(JournalError):
    """A non-final journal line failed validation."""


class JournalMismatchError(JournalError):
    """The journal belongs to a different campaign configuration."""


def canonical_json(obj) -> str:
    """The byte-stable JSON encoding the CRCs are computed over."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _frame(body: dict) -> str:
    payload = canonical_json(body)
    crc = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
    return f'{{"crc":{crc},"body":{payload}}}\n'


def _check_line(line: str) -> dict | None:
    """Validate one frame; return its body, or None if defective."""
    try:
        wrapper = json.loads(line)
    except ValueError:
        return None
    if (not isinstance(wrapper, dict)
            or set(wrapper) != {"crc", "body"}):
        return None
    payload = canonical_json(wrapper["body"])
    if zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF != wrapper["crc"]:
        return None
    return wrapper["body"]


class EventJournal:
    """A generic append-only journal: one header, then record frames.

    Subclasses and callers tag every record with a ``kind`` field and
    filter on read; the durability and torn-tail semantics are shared
    (see the module docstring).
    """

    def __init__(self, path):
        self.path = Path(path)
        self._handle = None
        #: set the first time a write fails with an environment error;
        #: further writes become no-ops (see the module docstring).
        self.disabled_reason: str | None = None

    # -- reading -----------------------------------------------------------

    def exists(self) -> bool:
        return self.path.exists()

    def read_events(self) -> tuple[dict | None, list[dict]]:
        """Replay the journal: ``(identity, records)`` with every
        surviving record frame, in append order.

        Tolerates a torn final line; a journal with no surviving
        frame at all (zero bytes, or one torn line — the very first
        append was cut short) reads as empty: ``(None, [])``.
        Raises :class:`JournalCorruptError` for anything else.
        """
        raw = self.path.read_bytes().decode("utf-8")
        lines = raw.split("\n")
        # split() leaves a trailing "" when the file ends in \n; a
        # non-empty final element is a line the crash cut short.
        complete, tail = lines[:-1], lines[-1]
        bodies: list[dict] = []
        for lineno, line in enumerate(complete, start=1):
            body = _check_line(line)
            if body is None:
                if lineno == len(complete) and not tail:
                    break  # torn tail that still got its newline
                raise JournalCorruptError(
                    f"{self.path}: line {lineno} failed CRC/parse "
                    f"validation — journal is corrupt, not merely "
                    f"truncated; delete it to start over"
                )
            bodies.append(body)
        if not bodies:
            # Nothing survived: a just-created file whose first write
            # tore.  Resuming from "empty" is always safe.
            return None, []
        if bodies[0].get("kind") != "header":
            raise JournalCorruptError(
                f"{self.path}: missing campaign header record"
            )
        header = bodies[0]
        return header["identity"], bodies[1:]

    # -- writing -----------------------------------------------------------

    def start(self, identity: dict) -> None:
        """Create a fresh journal (truncating any old one) whose first
        frame pins the identity."""
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "w", encoding="utf-8")
        except OSError as err:
            self._disable("create", err)
            return
        self._write_frame({"kind": "header", "identity": identity})

    def open_append(self) -> None:
        """Re-open an existing journal for appending (resume)."""
        try:
            self._handle = open(self.path, "a", encoding="utf-8")
        except OSError as err:
            self._disable("reopen", err)

    def append_event(self, kind: str, record: dict) -> None:
        """Durably append one ``kind``-tagged record (flushed and
        fsynced — once this returns, a crash cannot lose it)."""
        self._write_frame({"kind": kind, **record})

    def _disable(self, verb: str, err: OSError) -> None:
        self.disabled_reason = (
            f"journal disabled: cannot {verb} {self.path} "
            f"({type(err).__name__}: {err}); campaign continues "
            f"un-journaled (results will not be resumable)"
        )
        self.close()

    def _write_frame(self, body: dict) -> None:
        if self.disabled_reason is not None:
            return
        if self._handle is None:
            raise JournalError("journal is not open for writing")
        try:
            self._handle.write(_frame(body))
            self._handle.flush()
            fsync_file(self._handle)
        except OSError as err:
            self._disable("append to", err)

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass  # flush-on-close of a dead filesystem
            self._handle = None

    def __enter__(self) -> "EventJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def remove(self) -> None:
        """Delete the journal (after a campaign completes cleanly)."""
        self.close()
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass


class ResultsJournal(EventJournal):
    """One campaign's append-only journal file.

    Carries two record kinds: ``result`` (one classified faulted run,
    replayed on ``--resume``) and ``infra`` (one session's supervised
    pool counters, accumulated into the report's ``infra.*`` metrics
    so infrastructure health survives resumes).
    """

    def read(self) -> tuple[dict | None, list[dict]]:
        """Replay the journal: ``(identity, result_records)``."""
        identity, records, _infra = self.read_full()
        return identity, records

    def read_full(self) -> tuple[dict | None, list[dict], list[dict]]:
        """Replay the journal:
        ``(identity, result_records, infra_records)``."""
        identity, bodies = self.read_events()
        results = [b for b in bodies if b.get("kind") == "result"]
        infra = [b for b in bodies if b.get("kind") == "infra"]
        return identity, results, infra

    def append_result(self, record: dict) -> None:
        """Durably append one result record."""
        self.append_event("result", record)

    def append_infra(self, counters: dict) -> None:
        """Durably append one session's pool infra counters."""
        self.append_event("infra", counters)
