"""Versioned, integrity-checked checkpoint container.

On-disk layout (all integers big-endian)::

    offset  size  field
    ------  ----  -----------------------------------------
    0       8     magic  b"FLEXCKPT"
    8       2     schema version (u16)
    10      4     section count (u32)
    ...           per section:
                    u16  name length, then name (UTF-8)
                    u32  payload length
                    u32  CRC32 of the payload
                    payload bytes

Every section carries its own CRC32, so corruption is pinpointed to a
section instead of silently restoring garbage state.  Files are
written atomically (temp + fsync + rename); a reader therefore only
ever sees a complete container, and anything else — truncation, a bad
magic, a flipped bit — is rejected with a specific error:

* :class:`CheckpointFormatError`  — not a checkpoint / truncated
* :class:`CheckpointVersionError` — schema version mismatch
* :class:`CheckpointCorruptError` — CRC failure in a section
"""

from __future__ import annotations

import struct
import zlib

from repro.checkpoint.atomic import atomic_write_bytes

MAGIC = b"FLEXCKPT"
SCHEMA_VERSION = 1


class CheckpointError(Exception):
    """Base class for checkpoint subsystem failures."""


class CheckpointFormatError(CheckpointError):
    """The file is not a checkpoint container (bad magic, truncated)."""


class CheckpointVersionError(CheckpointError):
    """The container uses an unsupported schema version."""


class CheckpointCorruptError(CheckpointError):
    """A section's CRC32 does not match its payload."""


def dump_container(
    sections: dict[str, bytes], version: int = SCHEMA_VERSION
) -> bytes:
    """Serialize named sections into one container byte string."""
    out = bytearray()
    out += MAGIC
    out += struct.pack(">HI", version, len(sections))
    for name, payload in sections.items():
        raw_name = name.encode("utf-8")
        out += struct.pack(">H", len(raw_name))
        out += raw_name
        out += struct.pack(">II", len(payload), zlib.crc32(payload))
        out += payload
    return bytes(out)


def load_container(
    data: bytes, expected_version: int = SCHEMA_VERSION
) -> dict[str, bytes]:
    """Parse and verify a container; returns {section name: payload}."""
    if len(data) < len(MAGIC) + 6:
        raise CheckpointFormatError(
            f"truncated checkpoint: {len(data)} bytes is smaller than "
            f"the container header"
        )
    if data[:len(MAGIC)] != MAGIC:
        raise CheckpointFormatError(
            "not a checkpoint file (bad magic bytes)"
        )
    version, count = struct.unpack_from(">HI", data, len(MAGIC))
    if version != expected_version:
        raise CheckpointVersionError(
            f"checkpoint schema version {version} is not supported "
            f"(this build reads version {expected_version})"
        )
    pos = len(MAGIC) + 6
    sections: dict[str, bytes] = {}
    for index in range(count):
        try:
            (name_len,) = struct.unpack_from(">H", data, pos)
            pos += 2
            if len(data) < pos + name_len:
                raise struct.error("name")
            name = data[pos:pos + name_len].decode("utf-8")
            pos += name_len
            payload_len, crc = struct.unpack_from(">II", data, pos)
            pos += 8
            payload = data[pos:pos + payload_len]
            if len(payload) != payload_len:
                raise struct.error("payload")
            pos += payload_len
        except struct.error:
            raise CheckpointFormatError(
                f"truncated checkpoint: section {index} ends past the "
                f"end of the file"
            ) from None
        if zlib.crc32(payload) != crc:
            raise CheckpointCorruptError(
                f"section {name!r} failed its CRC32 check — the "
                f"checkpoint is corrupt"
            )
        sections[name] = payload
    if pos != len(data):
        raise CheckpointFormatError(
            f"{len(data) - pos} trailing bytes after the last section"
        )
    return sections


def write_container(
    path: str, sections: dict[str, bytes],
    version: int = SCHEMA_VERSION,
) -> None:
    """Atomically write a container file (temp + fsync + rename)."""
    atomic_write_bytes(path, dump_container(sections, version))


def read_container(
    path: str, expected_version: int = SCHEMA_VERSION
) -> dict[str, bytes]:
    """Read and verify a container file."""
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as err:
        raise CheckpointFormatError(
            f"cannot read checkpoint {path}: {err}"
        ) from err
    return load_container(data, expected_version)
