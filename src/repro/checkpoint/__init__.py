"""Crash-safe checkpoint/restore for FlexCore simulations.

The subsystem has four layers, each usable on its own:

* :mod:`repro.checkpoint.atomic` — torn-write-free file replacement
  (temp file + fsync + rename), used by every on-disk artifact;
* :mod:`repro.checkpoint.codec` — a deterministic tagged binary
  encoding of plain Python data (bit-exact floats included);
* :mod:`repro.checkpoint.container` — the versioned, per-section
  CRC-checked ``.ckpt`` file format;
* :class:`SystemSnapshot` — capture/restore of a complete
  :class:`~repro.flexcore.system.FlexCoreSystem`, identity-checked
  against the program image and extension.

On top of those sit :class:`ResultsJournal` (append-only, resumable
fault-campaign journals) and :class:`GoldenCache` (memoised golden-run
profiles).
"""

from repro.checkpoint.atomic import (
    atomic_write_bytes,
    atomic_write_text,
    fsync_file,
)
from repro.checkpoint.codec import CodecError, decode_obj, encode_obj
from repro.checkpoint.container import (
    SCHEMA_VERSION,
    CheckpointCorruptError,
    CheckpointError,
    CheckpointFormatError,
    CheckpointVersionError,
    read_container,
    write_container,
)
from repro.checkpoint.golden_cache import (
    GoldenCache,
    IdentityCache,
    golden_identity,
)
from repro.checkpoint.journal import (
    EventJournal,
    JournalCorruptError,
    JournalError,
    JournalMismatchError,
    ResultsJournal,
    canonical_json,
)
from repro.checkpoint.snapshot import (
    CheckpointMismatchError,
    SystemSnapshot,
    program_digest,
)

__all__ = [
    "SCHEMA_VERSION",
    "CheckpointCorruptError",
    "CheckpointError",
    "CheckpointFormatError",
    "CheckpointMismatchError",
    "CheckpointVersionError",
    "CodecError",
    "EventJournal",
    "GoldenCache",
    "IdentityCache",
    "JournalCorruptError",
    "JournalError",
    "JournalMismatchError",
    "ResultsJournal",
    "SystemSnapshot",
    "atomic_write_bytes",
    "atomic_write_text",
    "canonical_json",
    "decode_obj",
    "encode_obj",
    "fsync_file",
    "golden_identity",
    "program_digest",
    "read_container",
    "write_container",
]
