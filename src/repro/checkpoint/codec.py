"""Deterministic binary codec for snapshot state.

Snapshots must be *bit-reproducible*: encoding the same state twice —
on any platform, in any process — yields the same bytes, so checkpoint
files can be compared, checksummed and diffed.  ``pickle`` gives no
such guarantee (memoisation, protocol drift) and JSON cannot carry
``bytes`` or distinguish ``1`` from ``1.0``, so the checkpoint format
uses its own small tagged encoding:

=====  ======================================================
tag    payload
=====  ======================================================
``N``  None
``T``  True
``F``  False
``i``  int     — zig-zag LEB128 varint (arbitrary precision)
``f``  float   — 8-byte big-endian IEEE-754 double (exact)
``s``  str     — varint byte length + UTF-8 bytes
``b``  bytes   — varint length + raw bytes
``l``  list    — varint count + encoded items (tuples too)
``d``  dict    — varint count + encoded key/value pairs
=====  ======================================================

Container order is preserved (Python dicts are insertion-ordered), so
determinism follows from the capture code being deterministic.  Floats
round-trip exactly (``struct`` packs the IEEE bits), which is what
makes restored fabric timestamps bit-identical to the originals.
"""

from __future__ import annotations

import struct
from typing import Any


class CodecError(ValueError):
    """Unencodable object or malformed encoded stream."""


# ----------------------------------------------------------------------
# varints

def _encode_uvarint(value: int, out: bytearray) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _decode_uvarint(data: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise CodecError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _encode_int(value: int, out: bytearray) -> None:
    # Plain zig-zag, defined for arbitrary precision.
    encoded = (value << 1) if value >= 0 else ((-value << 1) - 1)
    _encode_uvarint(encoded, out)


def _decode_int(data: bytes, pos: int) -> tuple[int, int]:
    encoded, pos = _decode_uvarint(data, pos)
    value = encoded >> 1
    if encoded & 1:
        value = -value - 1
    return value, pos


# ----------------------------------------------------------------------
# objects

def _encode(obj: Any, out: bytearray) -> None:
    if obj is None:
        out.append(ord("N"))
    elif obj is True:
        out.append(ord("T"))
    elif obj is False:
        out.append(ord("F"))
    elif isinstance(obj, int):
        out.append(ord("i"))
        _encode_int(obj, out)
    elif isinstance(obj, float):
        out.append(ord("f"))
        out += struct.pack(">d", obj)
    elif isinstance(obj, str):
        out.append(ord("s"))
        raw = obj.encode("utf-8")
        _encode_uvarint(len(raw), out)
        out += raw
    elif isinstance(obj, (bytes, bytearray, memoryview)):
        out.append(ord("b"))
        raw = bytes(obj)
        _encode_uvarint(len(raw), out)
        out += raw
    elif isinstance(obj, (list, tuple)):
        out.append(ord("l"))
        _encode_uvarint(len(obj), out)
        for item in obj:
            _encode(item, out)
    elif isinstance(obj, dict):
        out.append(ord("d"))
        _encode_uvarint(len(obj), out)
        for key, value in obj.items():
            _encode(key, out)
            _encode(value, out)
    else:
        raise CodecError(
            f"cannot encode {type(obj).__name__} in a snapshot"
        )


def _decode(data: bytes, pos: int) -> tuple[Any, int]:
    if pos >= len(data):
        raise CodecError("truncated stream")
    tag = data[pos]
    pos += 1
    if tag == ord("N"):
        return None, pos
    if tag == ord("T"):
        return True, pos
    if tag == ord("F"):
        return False, pos
    if tag == ord("i"):
        return _decode_int(data, pos)
    if tag == ord("f"):
        if pos + 8 > len(data):
            raise CodecError("truncated float")
        return struct.unpack(">d", data[pos:pos + 8])[0], pos + 8
    if tag in (ord("s"), ord("b")):
        length, pos = _decode_uvarint(data, pos)
        if pos + length > len(data):
            raise CodecError("truncated string/bytes")
        raw = data[pos:pos + length]
        pos += length
        return (raw.decode("utf-8") if tag == ord("s") else raw), pos
    if tag == ord("l"):
        count, pos = _decode_uvarint(data, pos)
        items = []
        for _ in range(count):
            item, pos = _decode(data, pos)
            items.append(item)
        return items, pos
    if tag == ord("d"):
        count, pos = _decode_uvarint(data, pos)
        result: dict = {}
        for _ in range(count):
            key, pos = _decode(data, pos)
            value, pos = _decode(data, pos)
            result[key] = value
        return result, pos
    raise CodecError(f"unknown tag byte {tag:#04x}")


def encode_obj(obj: Any) -> bytes:
    """Encode a state object to deterministic bytes."""
    out = bytearray()
    _encode(obj, out)
    return bytes(out)


def decode_obj(data: bytes) -> Any:
    """Decode bytes produced by :func:`encode_obj`.

    Tuples come back as lists — restore code must accept either.
    """
    obj, pos = _decode(data, 0)
    if pos != len(data):
        raise CodecError(f"{len(data) - pos} trailing bytes after object")
    return obj
