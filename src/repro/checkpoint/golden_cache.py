"""On-disk cache of golden-run profiles for fault campaigns.

The golden run is the serial prefix of every campaign: it must finish
before any fault can be planned, and for the larger workloads it
dominates campaign start-up — once per campaign *and once more per
worker process*.  Its result, the
:class:`~repro.faultinject.models.GoldenProfile`, depends only on the
(workload, extension, simulator configuration) triple, so it is safe
to memoise on disk.

Entries are checkpoint containers (CRC-checked, atomically written)
named ``<workload>-<extension>-<hash12>.ckpt`` where ``hash12``
prefixes the SHA-256 of the canonical identity JSON.  Loading
re-verifies the *full* identity stored inside the entry; any mismatch
or corruption is reported as a human-readable invalidation diagnostic
and treated as a miss (the profile is recomputed and the entry
rewritten) — the cache can slow a campaign down, never poison it.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import TYPE_CHECKING

from repro.checkpoint.codec import decode_obj, encode_obj
from repro.checkpoint.container import (
    CheckpointError,
    read_container,
    write_container,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faultinject.campaign import CampaignConfig
    from repro.faultinject.models import GoldenProfile

IDENTITY_SECTION = "identity"
PROFILE_SECTION = "profile"


def golden_identity(config: "CampaignConfig") -> dict:
    """The fields the golden run's outcome depends on — and nothing
    else (``jobs``, ``faults``, ``seed`` etc. must not fragment the
    cache)."""
    return {
        "workload": config.workload,
        "source": config.source,
        "entry": config.entry,
        "scale": config.scale,
        "extension": config.extension,
        "clock_ratio": config.clock_ratio,
        "fifo_depth": config.fifo_depth,
        "max_instructions": config.max_instructions,
    }


def _identity_key(identity: dict) -> str:
    payload = json.dumps(identity, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class GoldenCache:
    """A directory of memoised golden-run profiles."""

    def __init__(self, root):
        self.root = Path(root)

    def path_for(self, config: "CampaignConfig") -> Path:
        identity = golden_identity(config)
        workload = config.workload or "inline"
        return self.root / (
            f"{workload}-{config.extension}-"
            f"{_identity_key(identity)[:12]}.ckpt"
        )

    def load(
        self, config: "CampaignConfig"
    ) -> tuple["GoldenProfile | None", str | None]:
        """Look the profile up: ``(profile, diagnostic)``.

        Exactly one of the pair is ``None``: a hit returns the
        profile; a miss returns a diagnostic explaining *why* the
        entry was unusable (absent, corrupt, or stale identity).
        """
        from repro.faultinject.models import GoldenProfile

        path = self.path_for(config)
        if not path.exists():
            return None, f"golden cache miss: no entry at {path}"
        try:
            sections = read_container(path)
            stored = decode_obj(sections[IDENTITY_SECTION])
            fields = decode_obj(sections[PROFILE_SECTION])
        except (CheckpointError, KeyError) as err:
            return None, (
                f"golden cache entry {path} is unusable "
                f"({type(err).__name__}: {err}); recomputing"
            )
        wanted = golden_identity(config)
        if stored != wanted:
            stale = sorted(
                key for key in set(stored) | set(wanted)
                if stored.get(key) != wanted.get(key)
            )
            return None, (
                f"golden cache entry {path} was built for a different "
                f"configuration (stale fields: {', '.join(stale)}); "
                f"recomputing"
            )
        fields["store_addresses"] = tuple(fields["store_addresses"])
        return GoldenProfile(**fields), None

    def store(self, config: "CampaignConfig",
              profile: "GoldenProfile") -> Path:
        """Atomically (re)write the entry for this configuration."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(config)
        write_container(path, {
            IDENTITY_SECTION: encode_obj(golden_identity(config)),
            PROFILE_SECTION: encode_obj(vars(profile).copy()),
        })
        return path
