"""On-disk identity-keyed caches (golden-run profiles, sweep results).

:class:`IdentityCache` is the generic machinery: entries are
checkpoint containers (CRC-checked, atomically written) named
``<stem>-<hash12>.ckpt`` where ``hash12`` prefixes the SHA-256 of the
canonical identity JSON.  Loading re-verifies the *full* identity
stored inside the entry; any mismatch or corruption is reported as a
human-readable invalidation diagnostic and treated as a miss (the
payload is recomputed and the entry rewritten) — a cache can slow a
run down, never poison it.

:class:`GoldenCache` specialises it for fault campaigns.  The golden
run is the serial prefix of every campaign: it must finish before any
fault can be planned, and for the larger workloads it dominates
campaign start-up — once per campaign *and once more per worker
process*.  Its result, the
:class:`~repro.faultinject.models.GoldenProfile`, depends only on the
(workload, extension, simulator configuration) triple, so it is safe
to memoise on disk.  :class:`repro.engine.sweep.SweepRunner` reuses
the same machinery for table/figure sweep points.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import TYPE_CHECKING

from repro.checkpoint.codec import decode_obj, encode_obj
from repro.checkpoint.container import (
    CheckpointError,
    read_container,
    write_container,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faultinject.campaign import CampaignConfig
    from repro.faultinject.models import GoldenProfile

IDENTITY_SECTION = "identity"
PROFILE_SECTION = "profile"


def golden_identity(config: "CampaignConfig") -> dict:
    """The fields the golden run's outcome depends on — and nothing
    else (``jobs``, ``faults``, ``seed`` etc. must not fragment the
    cache)."""
    return {
        "workload": config.workload,
        "source": config.source,
        "entry": config.entry,
        "scale": config.scale,
        "extension": config.extension,
        "clock_ratio": config.clock_ratio,
        "fifo_depth": config.fifo_depth,
        "max_instructions": config.max_instructions,
    }


def _identity_key(identity: dict) -> str:
    payload = json.dumps(identity, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class IdentityCache:
    """A directory of identity-keyed, CRC-checked cache entries.

    ``label`` names the cache in diagnostics ("golden cache", "sweep
    cache"); ``section`` names the payload section inside each
    container.  Payloads are plain JSON-able dicts.
    """

    def __init__(self, root, *, label: str, section: str):
        self.root = Path(root)
        self.label = label
        self.section = section
        #: set the first time a write fails with an environment error
        #: (ENOSPC, EROFS, EACCES, ...).  A cache is a pure
        #: accelerant: once it proves unwritable, further stores
        #: become no-ops and the run continues uncached — a full disk
        #: must never abort a multi-hour sweep.  Callers surface this
        #: as a one-shot structured warning.
        self.disabled_reason: str | None = None

    def path_for(self, identity: dict, stem: str) -> Path:
        return self.root / (
            f"{stem}-{_identity_key(identity)[:12]}.ckpt"
        )

    def load(self, identity: dict, stem: str
             ) -> tuple[dict | None, str | None]:
        """Look a payload up: ``(payload, diagnostic)``.

        Exactly one of the pair is ``None``: a hit returns the stored
        payload; a miss returns a diagnostic explaining *why* the
        entry was unusable (absent, corrupt, or stale identity).
        """
        path = self.path_for(identity, stem)
        try:
            if not path.exists():
                return None, f"{self.label} miss: no entry at {path}"
            sections = read_container(path)
            stored = decode_obj(sections[IDENTITY_SECTION])
            payload = decode_obj(sections[self.section])
        except (CheckpointError, KeyError, OSError) as err:
            # OSError covers unreadable entries (EACCES, EIO): a
            # broken cache degrades to a miss, never to a crash.
            return None, (
                f"{self.label} entry {path} is unusable "
                f"({type(err).__name__}: {err}); recomputing"
            )
        if stored != identity:
            stale = sorted(
                key for key in set(stored) | set(identity)
                if stored.get(key) != identity.get(key)
            )
            return None, (
                f"{self.label} entry {path} was built for a different "
                f"configuration (stale fields: {', '.join(stale)}); "
                f"recomputing"
            )
        return payload, None

    def store(self, identity: dict, stem: str,
              payload: dict) -> Path | None:
        """Atomically (re)write the entry for this identity.

        Returns the entry path, or ``None`` when the cache directory
        is unwritable (full disk, read-only mount, no permission) —
        the cache disables itself with :attr:`disabled_reason` set
        and the caller continues uncached.
        """
        if self.disabled_reason is not None:
            return None
        path = self.path_for(identity, stem)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            write_container(path, {
                IDENTITY_SECTION: encode_obj(identity),
                self.section: encode_obj(payload),
            })
        except OSError as err:
            self.disabled_reason = (
                f"{self.label} disabled: cannot write {path} "
                f"({type(err).__name__}: {err}); continuing uncached"
            )
            return None
        return path


class GoldenCache:
    """A directory of memoised golden-run profiles."""

    def __init__(self, root):
        self._cache = IdentityCache(
            root, label="golden cache", section=PROFILE_SECTION
        )

    @property
    def root(self) -> Path:
        return self._cache.root

    @property
    def disabled_reason(self) -> str | None:
        """Why writes are disabled (``None`` while healthy)."""
        return self._cache.disabled_reason

    def _stem(self, config: "CampaignConfig") -> str:
        workload = config.workload or "inline"
        return f"{workload}-{config.extension}"

    def path_for(self, config: "CampaignConfig") -> Path:
        return self._cache.path_for(golden_identity(config),
                                    self._stem(config))

    def load(
        self, config: "CampaignConfig"
    ) -> tuple["GoldenProfile | None", str | None]:
        """Look the profile up: ``(profile, diagnostic)``.

        Exactly one of the pair is ``None``: a hit returns the
        profile; a miss returns a diagnostic explaining *why* the
        entry was unusable (absent, corrupt, or stale identity).
        """
        from repro.faultinject.models import GoldenProfile, ProfileMark

        fields, diagnostic = self._cache.load(golden_identity(config),
                                              self._stem(config))
        if fields is None:
            return None, diagnostic
        fields["store_addresses"] = tuple(fields["store_addresses"])
        # Entries written before warm-start landmarks existed load
        # with no marks: those campaigns simply run every fault cold.
        fields["marks"] = tuple(
            ProfileMark(*mark) for mark in fields.get("marks", ())
        )
        return GoldenProfile(**fields), None

    def store(self, config: "CampaignConfig",
              profile: "GoldenProfile") -> Path | None:
        """Atomically (re)write the entry for this configuration
        (``None`` when the cache directory is unwritable)."""
        return self._cache.store(golden_identity(config),
                                 self._stem(config),
                                 vars(profile).copy())
