"""Whole-system snapshots and the ``.ckpt`` on-disk format.

:class:`SystemSnapshot` is the user-facing object: it captures a
:class:`~repro.flexcore.system.FlexCoreSystem`'s complete state (via
the ``snapshot_state``/``restore_state`` protocol every stateful
component implements), remembers enough identity to refuse a restore
into the *wrong* system, and round-trips through the checkpoint
container format losslessly.

A snapshot is only meaningful against the program image and extension
it was captured from — the memory section is a sparse delta against
the program image, and the monitor state is extension-shaped.  Restore
therefore verifies a SHA-256 digest of the program image and the
extension name, raising :class:`CheckpointMismatchError` rather than
silently producing a franken-machine.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING

from repro.checkpoint.codec import decode_obj, encode_obj
from repro.checkpoint.container import (
    CheckpointError,
    CheckpointFormatError,
    read_container,
    write_container,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.flexcore.system import FlexCoreSystem
    from repro.isa.assembler import Program

#: sections every checkpoint file must carry.
META_SECTION = "meta"
STATE_SECTION = "state"


class CheckpointMismatchError(CheckpointError):
    """Snapshot does not belong to the system it is restored into."""


def program_digest(program: "Program") -> str:
    """SHA-256 over the full program image (layout, text, data,
    entry) — the identity a memory-delta snapshot is relative to."""
    hasher = hashlib.sha256()
    hasher.update(
        f"{program.text_base}:{program.data_base}:{program.entry}"
        .encode("ascii")
    )
    for word in program.text:
        hasher.update(word.to_bytes(4, "big"))
    hasher.update(b"/")
    hasher.update(bytes(program.data))
    return hasher.hexdigest()


class SystemSnapshot:
    """One captured machine state plus the identity it belongs to."""

    def __init__(self, meta: dict, state: dict):
        self.meta = meta
        self.state = state

    # -- capture / restore -------------------------------------------------

    @classmethod
    def capture(cls, system: "FlexCoreSystem") -> "SystemSnapshot":
        """Snapshot a (possibly mid-run) system."""
        state = system.snapshot_state()
        extension = system.extension
        meta = {
            "program_sha256": program_digest(system.program),
            "extension": extension.name if extension else None,
            "instructions": state["cpu"]["instret"],
            "now": state["now"],
        }
        return cls(meta, state)

    @classmethod
    def from_state(
        cls, system: "FlexCoreSystem", state: dict
    ) -> "SystemSnapshot":
        """Wrap a state dict already captured from ``system`` (e.g. by
        the ``on_checkpoint`` callback of ``run_bounded``)."""
        extension = system.extension
        meta = {
            "program_sha256": program_digest(system.program),
            "extension": extension.name if extension else None,
            "instructions": state["cpu"]["instret"],
            "now": state["now"],
        }
        return cls(meta, state)

    def restore_into(self, system: "FlexCoreSystem") -> None:
        """Restore this snapshot into ``system``, verifying identity."""
        digest = program_digest(system.program)
        if digest != self.meta["program_sha256"]:
            raise CheckpointMismatchError(
                "checkpoint was captured from a different program image "
                f"(checkpoint {self.meta['program_sha256'][:12]}…, "
                f"system {digest[:12]}…)"
            )
        have = system.extension.name if system.extension else None
        want = self.meta["extension"]
        if have != want:
            raise CheckpointMismatchError(
                f"checkpoint was captured with extension {want!r}, "
                f"but the system has {have!r}"
            )
        system.restore_state(self.state)

    # -- convenience accessors ---------------------------------------------

    @property
    def instructions(self) -> int:
        return self.meta["instructions"]

    @property
    def now(self) -> float:
        return self.meta["now"]

    # -- serialisation -----------------------------------------------------

    def to_sections(self) -> dict[str, bytes]:
        return {
            META_SECTION: encode_obj(self.meta),
            STATE_SECTION: encode_obj(self.state),
        }

    @classmethod
    def from_sections(cls, sections: dict[str, bytes]) -> "SystemSnapshot":
        for name in (META_SECTION, STATE_SECTION):
            if name not in sections:
                raise CheckpointFormatError(
                    f"checkpoint is missing the {name!r} section"
                )
        return cls(
            meta=decode_obj(sections[META_SECTION]),
            state=decode_obj(sections[STATE_SECTION]),
        )

    def save(self, path) -> None:
        """Write atomically: the file is either the complete previous
        checkpoint or the complete new one, never a torn mix."""
        write_container(path, self.to_sections())

    @classmethod
    def load(cls, path) -> "SystemSnapshot":
        """Read and verify (magic, schema version, per-section CRC)."""
        return cls.from_sections(read_container(path))
