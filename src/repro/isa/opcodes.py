"""SPARC V8 subset opcode definitions.

The FlexCore prototype is built on Leon3, a SPARC V8 processor.  This
module defines the instruction subset the reproduction implements:
format-1 CALL, format-2 SETHI/Bicc, and format-3 integer/memory/flex
operations, together with the 32 *instruction types* that the forward
configuration register (CFGR, Table II of the paper) uses to decide,
per type, whether a committed instruction is forwarded to the fabric.
"""

from __future__ import annotations

import enum


class Op(enum.IntEnum):
    """Top-level 2-bit opcode field (bits 31:30)."""

    FORMAT2 = 0  # SETHI / Bicc
    CALL = 1
    FORMAT3_ALU = 2  # arithmetic / logical / shift / jmpl / save / flex
    FORMAT3_MEM = 3  # loads and stores


class Op2(enum.IntEnum):
    """Format-2 op2 field (bits 24:22)."""

    UNIMP = 0b000
    BICC = 0b010
    SETHI = 0b100


class Op3(enum.IntEnum):
    """Format-3 op3 field (bits 24:19) for ``Op.FORMAT3_ALU``."""

    ADD = 0x00
    AND = 0x01
    OR = 0x02
    XOR = 0x03
    SUB = 0x04
    ANDN = 0x05
    ORN = 0x06
    XNOR = 0x07
    ADDX = 0x08
    UMUL = 0x0A
    SMUL = 0x0B
    SUBX = 0x0C
    UDIV = 0x0E
    SDIV = 0x0F
    ADDCC = 0x10
    ANDCC = 0x11
    ORCC = 0x12
    XORCC = 0x13
    SUBCC = 0x14
    ANDNCC = 0x15
    ORNCC = 0x16
    XNORCC = 0x17
    ADDXCC = 0x18
    UMULCC = 0x1A
    SMULCC = 0x1B
    SUBXCC = 0x1C
    UDIVCC = 0x1E
    SDIVCC = 0x1F
    SLL = 0x25
    SRL = 0x26
    SRA = 0x27
    RDY = 0x28
    WRY = 0x30
    FLEXOP = 0x36  # CPop1 encoding space, used for FlexCore co-processor ops
    JMPL = 0x38
    RETT = 0x39
    TICC = 0x3A
    SAVE = 0x3C
    RESTORE = 0x3D


class Op3Mem(enum.IntEnum):
    """Format-3 op3 field for ``Op.FORMAT3_MEM``."""

    LD = 0x00
    LDUB = 0x01
    LDUH = 0x02
    LDD = 0x03
    ST = 0x04
    STB = 0x05
    STH = 0x06
    STD = 0x07
    LDSB = 0x09
    LDSH = 0x0A


class Cond(enum.IntEnum):
    """Bicc condition field (bits 28:25)."""

    BN = 0b0000
    BE = 0b0001
    BLE = 0b0010
    BL = 0b0011
    BLEU = 0b0100
    BCS = 0b0101  # also BLU
    BNEG = 0b0110
    BVS = 0b0111
    BA = 0b1000
    BNE = 0b1001
    BG = 0b1010
    BGE = 0b1011
    BGU = 0b1100
    BCC = 0b1101  # also BGEU
    BPOS = 0b1110
    BVC = 0b1111


class FlexOpf(enum.IntEnum):
    """Sub-opcode (``opf`` field, bits 13:5) for FlexCore co-processor
    instructions (``Op3.FLEXOP``).

    The interface merely forwards these packets; each monitoring
    extension interprets the ones it cares about (Section III-C of the
    paper: "the fabric can be programmed to update the register on a
    particular instruction encoding").
    """

    NOPF = 0x00
    SET_BASE = 0x01  # meta-data base address <- rs1 value
    SET_POLICY = 0x02  # extension policy register <- rs1 value
    READ_STATUS = 0x03  # rd <- co-processor status word (blocks via BFIFO)
    TAG_SET_REG = 0x10  # tag[rd] <- low bits of rs1 value (or imm)
    TAG_CLR_REG = 0x11  # tag[rd] <- 0
    TAG_SET_MEM = 0x12  # mem tag at address (rs1 + rs2/imm) <- tag value in Y
    TAG_CLR_MEM = 0x13  # mem tag at address (rs1 + rs2/imm) <- 0
    SET_TAGVAL = 0x14  # latch the tag value used by TAG_SET_MEM / colour ops
    COLOR_PTR = 0x15  # BC: colour the pointer register rd
    COLOR_MEM = 0x16  # BC: colour the memory word at (rs1 + rs2/imm)


class InstrClass(enum.IntEnum):
    """The 32 instruction types used by the forward configuration
    register (Table II: "2 bits for each of the main 32 instruction
    types").

    Values 26..31 are reserved to keep the CFGR's 64-bit layout exact.
    """

    LOAD_WORD = 0
    LOAD_BYTE = 1
    LOAD_HALF = 2
    LOAD_DOUBLE = 3
    STORE_WORD = 4
    STORE_BYTE = 5
    STORE_HALF = 6
    STORE_DOUBLE = 7
    ARITH_ADD = 8
    ARITH_SUB = 9
    LOGIC = 10
    SHIFT = 11
    MUL = 12
    DIV = 13
    SETHI = 14
    BRANCH = 15
    CALL = 16
    JMPL = 17  # indirect jumps (incl. returns)
    RETT = 18
    SAVE = 19
    RESTORE = 20
    RDSR = 21
    WRSR = 22
    FLEX = 23  # FlexCore co-processor instructions
    NOP = 24
    TRAP = 25
    RESERVED26 = 26
    RESERVED27 = 27
    RESERVED28 = 28
    RESERVED29 = 29
    RESERVED30 = 30
    RESERVED31 = 31


NUM_INSTR_CLASSES = 32

#: Instruction classes that read or write data memory.
MEMORY_CLASSES = frozenset(
    {
        InstrClass.LOAD_WORD,
        InstrClass.LOAD_BYTE,
        InstrClass.LOAD_HALF,
        InstrClass.LOAD_DOUBLE,
        InstrClass.STORE_WORD,
        InstrClass.STORE_BYTE,
        InstrClass.STORE_HALF,
        InstrClass.STORE_DOUBLE,
    }
)

#: Load classes only.
LOAD_CLASSES = frozenset(
    {
        InstrClass.LOAD_WORD,
        InstrClass.LOAD_BYTE,
        InstrClass.LOAD_HALF,
        InstrClass.LOAD_DOUBLE,
    }
)

#: Store classes only.
STORE_CLASSES = frozenset(
    {
        InstrClass.STORE_WORD,
        InstrClass.STORE_BYTE,
        InstrClass.STORE_HALF,
        InstrClass.STORE_DOUBLE,
    }
)

#: Classes whose result is produced by the integer ALU datapath.
ALU_CLASSES = frozenset(
    {
        InstrClass.ARITH_ADD,
        InstrClass.ARITH_SUB,
        InstrClass.LOGIC,
        InstrClass.SHIFT,
        InstrClass.MUL,
        InstrClass.DIV,
    }
)

_CC_OPS = frozenset(
    {
        Op3.ADDCC,
        Op3.ANDCC,
        Op3.ORCC,
        Op3.XORCC,
        Op3.SUBCC,
        Op3.ANDNCC,
        Op3.ORNCC,
        Op3.XNORCC,
        Op3.ADDXCC,
        Op3.UMULCC,
        Op3.SMULCC,
        Op3.SUBXCC,
        Op3.UDIVCC,
        Op3.SDIVCC,
    }
)


def sets_condition_codes(op3: Op3) -> bool:
    """Return True if the ALU op updates the integer condition codes."""
    return op3 in _CC_OPS


_ALU_CLASS_BY_OP3 = {
    Op3.ADD: InstrClass.ARITH_ADD,
    Op3.ADDCC: InstrClass.ARITH_ADD,
    Op3.ADDX: InstrClass.ARITH_ADD,
    Op3.ADDXCC: InstrClass.ARITH_ADD,
    Op3.SUB: InstrClass.ARITH_SUB,
    Op3.SUBCC: InstrClass.ARITH_SUB,
    Op3.SUBX: InstrClass.ARITH_SUB,
    Op3.SUBXCC: InstrClass.ARITH_SUB,
    Op3.AND: InstrClass.LOGIC,
    Op3.ANDCC: InstrClass.LOGIC,
    Op3.ANDN: InstrClass.LOGIC,
    Op3.ANDNCC: InstrClass.LOGIC,
    Op3.OR: InstrClass.LOGIC,
    Op3.ORCC: InstrClass.LOGIC,
    Op3.ORN: InstrClass.LOGIC,
    Op3.ORNCC: InstrClass.LOGIC,
    Op3.XOR: InstrClass.LOGIC,
    Op3.XORCC: InstrClass.LOGIC,
    Op3.XNOR: InstrClass.LOGIC,
    Op3.XNORCC: InstrClass.LOGIC,
    Op3.SLL: InstrClass.SHIFT,
    Op3.SRL: InstrClass.SHIFT,
    Op3.SRA: InstrClass.SHIFT,
    Op3.UMUL: InstrClass.MUL,
    Op3.UMULCC: InstrClass.MUL,
    Op3.SMUL: InstrClass.MUL,
    Op3.SMULCC: InstrClass.MUL,
    Op3.UDIV: InstrClass.DIV,
    Op3.UDIVCC: InstrClass.DIV,
    Op3.SDIV: InstrClass.DIV,
    Op3.SDIVCC: InstrClass.DIV,
    Op3.RDY: InstrClass.RDSR,
    Op3.WRY: InstrClass.WRSR,
    Op3.FLEXOP: InstrClass.FLEX,
    Op3.JMPL: InstrClass.JMPL,
    Op3.RETT: InstrClass.RETT,
    Op3.TICC: InstrClass.TRAP,
    Op3.SAVE: InstrClass.SAVE,
    Op3.RESTORE: InstrClass.RESTORE,
}

_MEM_CLASS_BY_OP3 = {
    Op3Mem.LD: InstrClass.LOAD_WORD,
    Op3Mem.LDUB: InstrClass.LOAD_BYTE,
    Op3Mem.LDSB: InstrClass.LOAD_BYTE,
    Op3Mem.LDUH: InstrClass.LOAD_HALF,
    Op3Mem.LDSH: InstrClass.LOAD_HALF,
    Op3Mem.LDD: InstrClass.LOAD_DOUBLE,
    Op3Mem.ST: InstrClass.STORE_WORD,
    Op3Mem.STB: InstrClass.STORE_BYTE,
    Op3Mem.STH: InstrClass.STORE_HALF,
    Op3Mem.STD: InstrClass.STORE_DOUBLE,
}


def alu_class(op3: Op3) -> InstrClass:
    """Map a format-3 ALU op3 to its CFGR instruction class."""
    return _ALU_CLASS_BY_OP3[op3]


def mem_class(op3: Op3Mem) -> InstrClass:
    """Map a format-3 memory op3 to its CFGR instruction class."""
    return _MEM_CLASS_BY_OP3[op3]
