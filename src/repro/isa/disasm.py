"""Disassembler for the SPARC V8 subset.

Produces assembler-compatible text: ``assemble(disassemble(word))``
round-trips to the same encoding (modulo label-relative branch and
call targets, which render as absolute hex with the instruction's own
address taken into account).
"""

from __future__ import annotations

from repro.isa.encoding import decode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Cond, FlexOpf, Op, Op2, Op3, Op3Mem
from repro.isa.registers import register_name

_BRANCH_NAMES = {
    Cond.BA: "ba", Cond.BN: "bn", Cond.BE: "be", Cond.BNE: "bne",
    Cond.BG: "bg", Cond.BLE: "ble", Cond.BGE: "bge", Cond.BL: "bl",
    Cond.BGU: "bgu", Cond.BLEU: "bleu", Cond.BCC: "bcc",
    Cond.BCS: "bcs", Cond.BPOS: "bpos", Cond.BNEG: "bneg",
    Cond.BVC: "bvc", Cond.BVS: "bvs",
}

_ALU_NAMES = {
    Op3.ADD: "add", Op3.ADDCC: "addcc", Op3.ADDX: "addx",
    Op3.ADDXCC: "addxcc", Op3.SUB: "sub", Op3.SUBCC: "subcc",
    Op3.SUBX: "subx", Op3.SUBXCC: "subxcc", Op3.AND: "and",
    Op3.ANDCC: "andcc", Op3.ANDN: "andn", Op3.ANDNCC: "andncc",
    Op3.OR: "or", Op3.ORCC: "orcc", Op3.ORN: "orn", Op3.ORNCC: "orncc",
    Op3.XOR: "xor", Op3.XORCC: "xorcc", Op3.XNOR: "xnor",
    Op3.XNORCC: "xnorcc", Op3.SLL: "sll", Op3.SRL: "srl",
    Op3.SRA: "sra", Op3.UMUL: "umul", Op3.UMULCC: "umulcc",
    Op3.SMUL: "smul", Op3.SMULCC: "smulcc", Op3.UDIV: "udiv",
    Op3.UDIVCC: "udivcc", Op3.SDIV: "sdiv", Op3.SDIVCC: "sdivcc",
    Op3.SAVE: "save", Op3.RESTORE: "restore",
}

_MEM_NAMES = {
    Op3Mem.LD: "ld", Op3Mem.LDUB: "ldub", Op3Mem.LDSB: "ldsb",
    Op3Mem.LDUH: "lduh", Op3Mem.LDSH: "ldsh", Op3Mem.LDD: "ldd",
    Op3Mem.ST: "st", Op3Mem.STB: "stb", Op3Mem.STH: "sth",
    Op3Mem.STD: "std",
}

_FLEX_NAMES = {
    int(FlexOpf.NOPF): "fxnop",
    int(FlexOpf.SET_BASE): "fxbase",
    int(FlexOpf.SET_POLICY): "fxpolicy",
    int(FlexOpf.READ_STATUS): "fxstatus",
    int(FlexOpf.SET_TAGVAL): "fxval",
    int(FlexOpf.TAG_SET_REG): "fxtagr",
    int(FlexOpf.TAG_CLR_REG): "fxuntagr",
    int(FlexOpf.TAG_SET_MEM): "fxtagm",
    int(FlexOpf.TAG_CLR_MEM): "fxuntagm",
    int(FlexOpf.COLOR_PTR): "fxcolorp",
    int(FlexOpf.COLOR_MEM): "fxcolorm",
}


def _src2(instr: Instruction) -> str:
    if instr.use_imm:
        return str(instr.imm)
    return register_name(instr.rs2)


def disassemble(word: int, pc: int = 0) -> str:
    """Render one instruction word as assembly text."""
    instr = decode(word)

    if instr.op == Op.CALL:
        return f"call {pc + 4 * instr.disp:#x}"

    if instr.op == Op.FORMAT2:
        if instr.opcode == Op2.SETHI:
            if instr.rd == 0 and instr.imm == 0:
                return "nop"
            return f"sethi {instr.imm:#x}, {register_name(instr.rd)}"
        name = _BRANCH_NAMES[instr.cond] + (",a" if instr.annul else "")
        return f"{name} {pc + 4 * instr.disp:#x}"

    if instr.op == Op.FORMAT3_MEM:
        name = _MEM_NAMES[instr.opcode]
        if instr.use_imm and instr.imm:
            sign = "+" if instr.imm >= 0 else "-"
            address = (f"[{register_name(instr.rs1)} {sign} "
                       f"{abs(instr.imm)}]")
        elif not instr.use_imm and instr.rs2:
            address = (f"[{register_name(instr.rs1)} + "
                       f"{register_name(instr.rs2)}]")
        else:
            address = f"[{register_name(instr.rs1)}]"
        rd = register_name(instr.rd)
        if instr.is_load:
            return f"{name} {address}, {rd}"
        return f"{name} {rd}, {address}"

    op3 = instr.opcode
    if op3 == Op3.FLEXOP:
        name = _FLEX_NAMES.get(instr.opf)
        if name is None:
            return (f"flex {instr.opf:#x}, {register_name(instr.rs1)}, "
                    f"{register_name(instr.rs2)}, "
                    f"{register_name(instr.rd)}")
        operands = {
            "fxnop": "",
            "fxbase": f" {register_name(instr.rs1)}",
            "fxpolicy": f" {register_name(instr.rs1)}",
            "fxval": f" {register_name(instr.rs1)}",
            "fxstatus": f" {register_name(instr.rd)}",
            "fxtagr": f" {register_name(instr.rd)}",
            "fxuntagr": f" {register_name(instr.rd)}",
            "fxcolorp": f" {register_name(instr.rd)}",
            "fxtagm": (f" {register_name(instr.rs1)}, "
                       f"{register_name(instr.rs2)}"),
            "fxuntagm": (f" {register_name(instr.rs1)}, "
                         f"{register_name(instr.rs2)}"),
            "fxcolorm": (f" {register_name(instr.rs1)}, "
                         f"{register_name(instr.rs2)}"),
        }[name]
        return name + operands
    if op3 == Op3.JMPL:
        base = register_name(instr.rs1)
        offset = _src2(instr)
        if instr.rd == 0 and instr.rs1 == 31 and instr.imm == 8:
            return "ret"
        if instr.rd == 0 and instr.rs1 == 15 and instr.imm == 8:
            return "retl"
        return f"jmpl {base} + {offset}, {register_name(instr.rd)}"
    if op3 == Op3.TICC:
        cond = _BRANCH_NAMES[instr.cond][1:] or "a"
        return f"t{cond} {instr.imm}"
    if op3 == Op3.RDY:
        return f"rd %y, {register_name(instr.rd)}"
    if op3 == Op3.WRY:
        return f"wr {register_name(instr.rs1)}, %y"
    if op3 == Op3.RETT:
        return f"rett {register_name(instr.rs1)} + {_src2(instr)}"

    name = _ALU_NAMES[op3]
    return (f"{name} {register_name(instr.rs1)}, {_src2(instr)}, "
            f"{register_name(instr.rd)}")


def disassemble_program(program, limit: int | None = None) -> str:
    """Disassemble an assembled Program's text section, with
    addresses and raw words."""
    lines = []
    words = program.text if limit is None else program.text[:limit]
    for i, word in enumerate(words):
        pc = program.text_base + 4 * i
        lines.append(f"{pc:08x}:  {word:08x}  {disassemble(word, pc)}")
    return "\n".join(lines)
