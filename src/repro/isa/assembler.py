"""Two-pass assembler for the SPARC V8 subset.

The workload kernels (`repro.workloads`) are written in this assembly
dialect, assembled to real binary encodings, and executed by the
functional/timing core model.  Supported syntax:

* sections ``.text`` / ``.data``, labels, ``!`` and ``;`` comments
* data directives ``.word .half .byte .space .align .ascii .equ``
* expressions: decimal/hex literals, symbols, ``+``/``-``,
  ``%hi(expr)`` / ``%lo(expr)``
* the full instruction subset plus the usual SPARC pseudo-instructions
  (``set mov cmp tst clr nop ret retl b jmp inc dec neg not``)
* FlexCore co-processor pseudo-instructions (``fxbase fxval fxpolicy
  fxstatus fxtagr fxuntagr fxtagm fxuntagm fxcolorp fxcolorm fxnop``)
* ``ta N`` software trap; ``ta 0`` is the exit convention.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.isa.encoding import encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Cond, FlexOpf, Op, Op2, Op3, Op3Mem
from repro.isa.registers import parse_register


class AssemblyError(ValueError):
    """Raised on any syntax or range error, with line context."""


@dataclass
class Program:
    """An assembled program image."""

    text_base: int
    data_base: int
    text: list[int] = field(default_factory=list)  # 32-bit words
    data: bytes = b""
    symbols: dict[str, int] = field(default_factory=dict)
    entry: int = 0

    @property
    def text_size(self) -> int:
        return 4 * len(self.text)

    def symbol(self, name: str) -> int:
        if name not in self.symbols:
            raise KeyError(f"no such symbol: {name}")
        return self.symbols[name]


_BRANCHES = {
    "ba": Cond.BA, "bn": Cond.BN, "be": Cond.BE, "bz": Cond.BE,
    "bne": Cond.BNE, "bnz": Cond.BNE, "bg": Cond.BG, "ble": Cond.BLE,
    "bge": Cond.BGE, "bl": Cond.BL, "bgu": Cond.BGU, "bleu": Cond.BLEU,
    "bcc": Cond.BCC, "bgeu": Cond.BCC, "bcs": Cond.BCS, "blu": Cond.BCS,
    "bpos": Cond.BPOS, "bneg": Cond.BNEG, "bvc": Cond.BVC, "bvs": Cond.BVS,
}

_ALU_OPS = {
    "add": Op3.ADD, "addcc": Op3.ADDCC, "addx": Op3.ADDX,
    "addxcc": Op3.ADDXCC, "sub": Op3.SUB, "subcc": Op3.SUBCC,
    "subx": Op3.SUBX, "subxcc": Op3.SUBXCC, "and": Op3.AND,
    "andcc": Op3.ANDCC, "andn": Op3.ANDN, "andncc": Op3.ANDNCC,
    "or": Op3.OR, "orcc": Op3.ORCC, "orn": Op3.ORN, "orncc": Op3.ORNCC,
    "xor": Op3.XOR, "xorcc": Op3.XORCC, "xnor": Op3.XNOR,
    "xnorcc": Op3.XNORCC, "sll": Op3.SLL, "srl": Op3.SRL, "sra": Op3.SRA,
    "umul": Op3.UMUL, "smul": Op3.SMUL, "umulcc": Op3.UMULCC,
    "smulcc": Op3.SMULCC, "udiv": Op3.UDIV, "sdiv": Op3.SDIV,
    "udivcc": Op3.UDIVCC, "sdivcc": Op3.SDIVCC,
    "save": Op3.SAVE, "restore": Op3.RESTORE,
}

_MEM_OPS = {
    "ld": Op3Mem.LD, "ldub": Op3Mem.LDUB, "ldsb": Op3Mem.LDSB,
    "lduh": Op3Mem.LDUH, "ldsh": Op3Mem.LDSH, "ldd": Op3Mem.LDD,
    "st": Op3Mem.ST, "stb": Op3Mem.STB, "sth": Op3Mem.STH,
    "std": Op3Mem.STD,
}

#: FlexCore pseudo-instruction name -> (opf, operand spec).
#: Operand specs: "rs1", "rd", "rs1 rs2", or "".
_FLEX_OPS = {
    "fxnop": (FlexOpf.NOPF, ""),
    "fxbase": (FlexOpf.SET_BASE, "rs1"),
    "fxpolicy": (FlexOpf.SET_POLICY, "rs1"),
    "fxstatus": (FlexOpf.READ_STATUS, "rd"),
    "fxval": (FlexOpf.SET_TAGVAL, "rs1"),
    "fxtagr": (FlexOpf.TAG_SET_REG, "rd"),
    "fxuntagr": (FlexOpf.TAG_CLR_REG, "rd"),
    "fxtagm": (FlexOpf.TAG_SET_MEM, "rs1 rs2"),
    "fxuntagm": (FlexOpf.TAG_CLR_MEM, "rs1 rs2"),
    "fxcolorp": (FlexOpf.COLOR_PTR, "rd"),
    "fxcolorm": (FlexOpf.COLOR_MEM, "rs1 rs2"),
}

_HI_LO_RE = re.compile(r"%(hi|lo)\(([^)]*)\)")


def _split_operands(text: str) -> list[str]:
    """Split an operand string on commas that are outside brackets."""
    parts, depth, current = [], 0, []
    for char in text:
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


class Assembler:
    """Two-pass assembler producing a :class:`Program`."""

    def __init__(self, text_base: int = 0x1000, data_base: int = 0x10000):
        self.text_base = text_base
        self.data_base = data_base

    def assemble(self, source: str, entry: str | None = None) -> Program:
        """Assemble ``source`` into a program image.

        ``entry`` names the start label; defaults to the text base.
        """
        statements = self._parse(source)
        symbols = self._layout(statements)
        program = self._emit(statements, symbols)
        if entry is not None:
            program.entry = program.symbol(entry)
        else:
            program.entry = self.text_base
        return program

    # ------------------------------------------------------------------
    # Pass 0: parse lines into (section, label|directive|instruction).

    def _parse(self, source: str) -> list[dict]:
        statements = []
        section = "text"
        for lineno, raw in enumerate(source.splitlines(), start=1):
            line = re.split(r"[!;]", raw, maxsplit=1)[0].rstrip()
            if not line.strip():
                continue
            # Peel off any leading labels.
            while True:
                match = re.match(r"\s*([A-Za-z_.$][\w.$]*):", line)
                if not match:
                    break
                statements.append(
                    {"kind": "label", "name": match.group(1),
                     "section": section, "line": lineno}
                )
                line = line[match.end():]
            body = line.strip()
            if not body:
                continue
            if body.startswith("."):
                parts = body.split(None, 1)
                name = parts[0][1:].lower()
                args = parts[1] if len(parts) > 1 else ""
                if name in ("text", "data"):
                    section = name
                    continue
                statements.append(
                    {"kind": "directive", "name": name, "args": args,
                     "section": section, "line": lineno}
                )
            else:
                parts = body.split(None, 1)
                mnemonic = parts[0].lower()
                operands = parts[1] if len(parts) > 1 else ""
                statements.append(
                    {"kind": "instr", "mnemonic": mnemonic,
                     "operands": operands, "section": section,
                     "line": lineno}
                )
        return statements

    # ------------------------------------------------------------------
    # Pass 1: compute addresses for every label.

    def _statement_size(self, stmt: dict, pc: int, symbols: dict) -> int:
        if stmt["kind"] == "instr":
            if stmt["mnemonic"] == "set":
                return 8  # sethi + or, always two words for simplicity
            return 4
        name, args = stmt["name"], stmt["args"]
        if name == "word":
            return 4 * len(_split_operands(args))
        if name == "half":
            return 2 * len(_split_operands(args))
        if name == "byte":
            return len(_split_operands(args))
        if name == "space":
            return self._eval(args, symbols, stmt)
        if name == "align":
            align = self._eval(args, symbols, stmt)
            return (-pc) % align
        if name == "ascii":
            return len(self._parse_string(args, stmt))
        if name == "equ":
            return 0
        raise AssemblyError(
            f"line {stmt['line']}: unknown directive .{name}"
        )

    def _layout(self, statements: list[dict]) -> dict[str, int]:
        symbols: dict[str, int] = {}
        # .equ symbols first so sizes that depend on them resolve.
        for stmt in statements:
            if stmt["kind"] == "directive" and stmt["name"] == "equ":
                name, expr = _split_operands(stmt["args"])
                symbols[name] = self._eval(expr, symbols, stmt)
        counters = {"text": self.text_base, "data": self.data_base}
        for stmt in statements:
            section = stmt["section"]
            if stmt["kind"] == "label":
                symbols[stmt["name"]] = counters[section]
                continue
            counters[section] += self._statement_size(
                stmt, counters[section], symbols
            )
        return symbols

    # ------------------------------------------------------------------
    # Pass 2: emit binary.

    def _emit(self, statements: list[dict], symbols: dict) -> Program:
        text: list[int] = []
        data = bytearray()
        counters = {"text": self.text_base, "data": self.data_base}

        def emit_word(word: int, section: str) -> None:
            if section == "text":
                text.append(word & 0xFFFFFFFF)
            else:
                data.extend((word & 0xFFFFFFFF).to_bytes(4, "big"))
            counters[section] += 4

        for stmt in statements:
            section = stmt["section"]
            if stmt["kind"] == "label":
                continue
            if stmt["kind"] == "directive":
                self._emit_directive(stmt, symbols, counters, data, text)
                continue
            pc = counters[section]
            if section != "text":
                raise AssemblyError(
                    f"line {stmt['line']}: instruction outside .text"
                )
            for instr in self._translate(stmt, pc, symbols):
                emit_word(encode(instr), section)

        return Program(
            text_base=self.text_base,
            data_base=self.data_base,
            text=text,
            data=bytes(data),
            symbols=dict(symbols),
        )

    def _emit_directive(
        self,
        stmt: dict,
        symbols: dict,
        counters: dict,
        data: bytearray,
        text: list[int],
    ) -> None:
        section = stmt["section"]
        name, args = stmt["name"], stmt["args"]
        if name == "equ":
            return

        def put(chunk: bytes) -> None:
            if section == "text":
                if len(chunk) % 4:
                    raise AssemblyError(
                        f"line {stmt['line']}: unaligned data in .text"
                    )
                for i in range(0, len(chunk), 4):
                    text.append(int.from_bytes(chunk[i : i + 4], "big"))
            else:
                data.extend(chunk)
            counters[section] += len(chunk)

        if name == "word":
            for expr in _split_operands(args):
                put((self._eval(expr, symbols, stmt) & 0xFFFFFFFF)
                    .to_bytes(4, "big"))
        elif name == "half":
            for expr in _split_operands(args):
                put((self._eval(expr, symbols, stmt) & 0xFFFF)
                    .to_bytes(2, "big"))
        elif name == "byte":
            for expr in _split_operands(args):
                put(bytes([self._eval(expr, symbols, stmt) & 0xFF]))
        elif name == "space":
            put(bytes(self._eval(args, symbols, stmt)))
        elif name == "align":
            align = self._eval(args, symbols, stmt)
            put(bytes((-counters[section]) % align))
        elif name == "ascii":
            put(self._parse_string(args, stmt))
        else:
            raise AssemblyError(
                f"line {stmt['line']}: unknown directive .{name}"
            )

    # ------------------------------------------------------------------
    # Expression evaluation.

    def _parse_string(self, args: str, stmt: dict) -> bytes:
        text = args.strip()
        if len(text) < 2 or text[0] != '"' or text[-1] != '"':
            raise AssemblyError(f"line {stmt['line']}: expected string")
        return text[1:-1].encode().decode("unicode_escape").encode("latin1")

    def _eval(self, expr: str, symbols: dict, stmt: dict) -> int:
        expr = expr.strip()

        def hi_lo(match: re.Match) -> str:
            inner = self._eval(match.group(2), symbols, stmt)
            if match.group(1) == "hi":
                return str((inner >> 10) & 0x3FFFFF)
            return str(inner & 0x3FF)

        expr = _HI_LO_RE.sub(hi_lo, expr)
        tokens = re.findall(r"[+-]|[^+-]+", expr.replace(" ", ""))
        total, sign, expect_term = 0, 1, True
        for token in tokens:
            if token in "+-":
                if expect_term and token == "-":
                    sign = -sign
                    continue
                sign = 1 if token == "+" else -1
                expect_term = True
                continue
            total += sign * self._term(token, symbols, stmt)
            sign, expect_term = 1, False
        return total

    def _term(self, term: str, symbols: dict, stmt: dict) -> int:
        """A product of atoms: ``a*b*c`` (higher precedence than +/-)."""
        product = 1
        for factor in term.split("*"):
            product *= self._atom(factor, symbols, stmt)
        return product

    def _atom(self, token: str, symbols: dict, stmt: dict) -> int:
        try:
            return int(token, 0)
        except ValueError:
            pass
        if token in symbols:
            return symbols[token]
        raise AssemblyError(
            f"line {stmt['line']}: cannot evaluate {token!r}"
        )

    # ------------------------------------------------------------------
    # Instruction translation.

    def _translate(
        self, stmt: dict, pc: int, symbols: dict
    ) -> list[Instruction]:
        mnemonic = stmt["mnemonic"]
        line = stmt["line"]
        annul = False
        if mnemonic.endswith(",a"):
            mnemonic, annul = mnemonic[:-2], True
        operands = _split_operands(stmt["operands"])

        def err(message: str) -> AssemblyError:
            return AssemblyError(f"line {line}: {message}")

        def reg(text: str) -> int:
            try:
                return parse_register(text)
            except ValueError as exc:
                raise err(str(exc)) from exc

        def reg_or_imm(text: str) -> tuple[bool, int]:
            """Return (use_imm, value) for the rs2-or-simm13 slot."""
            if text.lstrip().startswith("%") and not text.lstrip().startswith(
                ("%hi", "%lo")
            ):
                return False, reg(text)
            return True, self._eval(text, symbols, stmt)

        def parse_address(text: str) -> tuple[int, bool, int]:
            """Parse ``[%r1 + %r2]`` / ``[%r1 + imm]`` / ``[%r1]`` /
            ``[imm]`` into (rs1, use_imm, rs2_or_imm)."""
            body = text.strip()
            if not (body.startswith("[") and body.endswith("]")):
                raise err(f"expected memory operand, got {text!r}")
            body = body[1:-1].strip()
            match = re.match(r"(%\w+)\s*([+-])\s*(.+)$", body)
            if match:
                rs1 = reg(match.group(1))
                rest = match.group(3).strip()
                if rest.startswith("%") and not rest.startswith(("%hi", "%lo")):
                    if match.group(2) == "-":
                        raise err("cannot subtract a register in address")
                    return rs1, False, reg(rest)
                value = self._eval(rest, symbols, stmt)
                if match.group(2) == "-":
                    value = -value
                return rs1, True, value
            if body.startswith("%"):
                return reg(body), True, 0
            return 0, True, self._eval(body, symbols, stmt)

        def alu(op3: Op3, rs1: int, src2: str, rd: int) -> Instruction:
            use_imm, value = reg_or_imm(src2)
            if use_imm:
                return Instruction(
                    op=Op.FORMAT3_ALU, opcode=op3, rd=rd, rs1=rs1,
                    use_imm=True, imm=value,
                )
            return Instruction(
                op=Op.FORMAT3_ALU, opcode=op3, rd=rd, rs1=rs1, rs2=value
            )

        # --- branches -------------------------------------------------
        if mnemonic in _BRANCHES:
            if len(operands) != 1:
                raise err(f"{mnemonic} takes one target")
            target = self._eval(operands[0], symbols, stmt)
            disp = (target - pc) // 4
            return [Instruction(
                op=Op.FORMAT2, opcode=Op2.BICC,
                cond=_BRANCHES[mnemonic], annul=annul, disp=disp,
            )]
        if mnemonic == "b":
            return self._translate(
                {**stmt, "mnemonic": "ba" + (",a" if annul else "")},
                pc, symbols,
            )

        # --- ALU ------------------------------------------------------
        if mnemonic in _ALU_OPS:
            op3 = _ALU_OPS[mnemonic]
            if mnemonic == "restore" and not operands:
                return [Instruction(op=Op.FORMAT3_ALU, opcode=Op3.RESTORE,
                                    rd=0, rs1=0, rs2=0)]
            if len(operands) != 3:
                raise err(f"{mnemonic} needs 3 operands")
            return [alu(op3, reg(operands[0]), operands[1],
                        reg(operands[2]))]

        # --- memory ---------------------------------------------------
        if mnemonic in _MEM_OPS:
            op3 = _MEM_OPS[mnemonic]
            if len(operands) != 2:
                raise err(f"{mnemonic} needs 2 operands")
            if mnemonic.startswith("ld"):
                addr, rd_text = operands
            else:
                rd_text, addr = operands
            rs1, use_imm, value = parse_address(addr)
            common = dict(op=Op.FORMAT3_MEM, opcode=op3,
                          rd=reg(rd_text), rs1=rs1)
            if use_imm:
                return [Instruction(use_imm=True, imm=value, **common)]
            return [Instruction(rs2=value, **common)]

        # --- control --------------------------------------------------
        if mnemonic == "call":
            target = self._eval(operands[0], symbols, stmt)
            return [Instruction(op=Op.CALL, rd=15,
                                disp=(target - pc) // 4)]
        if mnemonic == "jmpl":
            if len(operands) != 2:
                raise err("jmpl needs address and link register")
            rs1, use_imm, value = self._parse_jmpl_address(
                operands[0], symbols, stmt
            )
            common = dict(op=Op.FORMAT3_ALU, opcode=Op3.JMPL,
                          rd=reg(operands[1]), rs1=rs1)
            if use_imm:
                return [Instruction(use_imm=True, imm=value, **common)]
            return [Instruction(rs2=value, **common)]
        if mnemonic == "jmp":
            rs1, use_imm, value = self._parse_jmpl_address(
                operands[0], symbols, stmt
            )
            return [Instruction(op=Op.FORMAT3_ALU, opcode=Op3.JMPL,
                                rd=0, rs1=rs1, use_imm=use_imm,
                                imm=value if use_imm else 0,
                                rs2=0 if use_imm else value)]
        if mnemonic == "ret":
            return [Instruction(op=Op.FORMAT3_ALU, opcode=Op3.JMPL,
                                rd=0, rs1=31, use_imm=True, imm=8)]
        if mnemonic == "retl":
            return [Instruction(op=Op.FORMAT3_ALU, opcode=Op3.JMPL,
                                rd=0, rs1=15, use_imm=True, imm=8)]
        if mnemonic == "ta":
            value = self._eval(operands[0], symbols, stmt)
            return [Instruction(op=Op.FORMAT3_ALU, opcode=Op3.TICC,
                                cond=Cond.BA, use_imm=True, imm=value)]

        # --- sethi / pseudo-ops ----------------------------------------
        if mnemonic == "sethi":
            value = self._eval(operands[0], symbols, stmt)
            return [Instruction(op=Op.FORMAT2, opcode=Op2.SETHI,
                                rd=reg(operands[1]), imm=value & 0x3FFFFF)]
        if mnemonic == "set":
            value = self._eval(operands[0], symbols, stmt) & 0xFFFFFFFF
            rd = reg(operands[1])
            return [
                Instruction(op=Op.FORMAT2, opcode=Op2.SETHI, rd=rd,
                            imm=(value >> 10) & 0x3FFFFF),
                Instruction(op=Op.FORMAT3_ALU, opcode=Op3.OR, rd=rd,
                            rs1=rd, use_imm=True, imm=value & 0x3FF),
            ]
        if mnemonic == "rd":
            if operands[0].strip() != "%y":
                raise err("only 'rd %y, %rd' is supported")
            return [Instruction(op=Op.FORMAT3_ALU, opcode=Op3.RDY,
                                rd=reg(operands[1]))]
        if mnemonic == "wr":
            if operands[-1].strip() != "%y":
                raise err("only 'wr %rs1[, %rs2], %y' is supported")
            rs1 = reg(operands[0])
            rs2 = reg(operands[1]) if len(operands) == 3 else 0
            return [Instruction(op=Op.FORMAT3_ALU, opcode=Op3.WRY,
                                rs1=rs1, rs2=rs2)]
        if mnemonic == "mov":
            if operands[1].strip() == "%y":
                return [Instruction(op=Op.FORMAT3_ALU, opcode=Op3.WRY,
                                    rs1=reg(operands[0]))]
            if operands[0].strip() == "%y":
                return [Instruction(op=Op.FORMAT3_ALU, opcode=Op3.RDY,
                                    rd=reg(operands[1]))]
            return [alu(Op3.OR, 0, operands[0], reg(operands[1]))]
        if mnemonic == "cmp":
            return [alu(Op3.SUBCC, reg(operands[0]), operands[1], 0)]
        if mnemonic == "tst":
            return [Instruction(op=Op.FORMAT3_ALU, opcode=Op3.ORCC,
                                rd=0, rs1=0, rs2=reg(operands[0]))]
        if mnemonic == "clr":
            return [Instruction(op=Op.FORMAT3_ALU, opcode=Op3.OR,
                                rd=reg(operands[0]), rs1=0, rs2=0)]
        if mnemonic == "inc":
            rd = reg(operands[-1])
            amount = "1" if len(operands) == 1 else operands[0]
            return [alu(Op3.ADD, rd, amount, rd)]
        if mnemonic == "dec":
            rd = reg(operands[-1])
            amount = "1" if len(operands) == 1 else operands[0]
            return [alu(Op3.SUB, rd, amount, rd)]
        if mnemonic == "neg":
            rd = reg(operands[-1])
            rs = reg(operands[0])
            return [Instruction(op=Op.FORMAT3_ALU, opcode=Op3.SUB,
                                rd=rd, rs1=0, rs2=rs)]
        if mnemonic == "not":
            rd = reg(operands[-1])
            rs = reg(operands[0])
            return [Instruction(op=Op.FORMAT3_ALU, opcode=Op3.XNOR,
                                rd=rd, rs1=rs, rs2=0)]
        if mnemonic == "nop":
            return [Instruction(op=Op.FORMAT2, opcode=Op2.SETHI,
                                rd=0, imm=0)]

        # --- FlexCore co-processor ops ----------------------------------
        if mnemonic in _FLEX_OPS:
            opf, spec = _FLEX_OPS[mnemonic]
            fields = dict(op=Op.FORMAT3_ALU, opcode=Op3.FLEXOP,
                          opf=int(opf))
            wanted = spec.split()
            if len(operands) != len(wanted):
                raise err(f"{mnemonic} needs {len(wanted)} operand(s)")
            for slot, text in zip(wanted, operands):
                fields[slot] = reg(text)
            return [Instruction(**fields)]
        if mnemonic == "flex":
            opf = self._eval(operands[0], symbols, stmt)
            regs = [reg(op_) for op_ in operands[1:]] + [0, 0, 0]
            return [Instruction(op=Op.FORMAT3_ALU, opcode=Op3.FLEXOP,
                                opf=opf, rs1=regs[0], rs2=regs[1],
                                rd=regs[2])]

        raise err(f"unknown mnemonic {mnemonic!r}")

    def _parse_jmpl_address(
        self, text: str, symbols: dict, stmt: dict
    ) -> tuple[int, bool, int]:
        """jmpl addresses use ``%r + imm`` without brackets."""
        body = text.strip()
        match = re.match(r"(%\w+)\s*\+\s*(.+)$", body)
        if match:
            rs1 = parse_register(match.group(1))
            rest = match.group(2).strip()
            if rest.startswith("%") and not rest.startswith(("%hi", "%lo")):
                return rs1, False, parse_register(rest)
            return rs1, True, self._eval(rest, symbols, stmt)
        if body.startswith("%"):
            return parse_register(body), True, 0
        return 0, True, self._eval(body, symbols, stmt)


def assemble(
    source: str,
    entry: str | None = None,
    text_base: int = 0x1000,
    data_base: int = 0x10000,
) -> Program:
    """Convenience wrapper: assemble ``source`` in one call."""
    return Assembler(text_base, data_base).assemble(source, entry=entry)
