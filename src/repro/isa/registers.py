"""SPARC V8 windowed register file.

Leon3 implements the SPARC register-window scheme: 8 global registers
plus a sliding window of 24 registers (8 *in*, 8 *local*, 8 *out*) over
a circular bank of ``NWINDOWS * 16`` physical registers.  ``save``
decrements the current window pointer (CWP), ``restore`` increments it.

The FlexCore trace packet (Table II) carries 9-bit *physical* register
numbers so the fabric-side shadow register file can mirror every
physical register without tracking CWP itself; :meth:`RegisterFile.
physical_index` performs that translation.
"""

from __future__ import annotations

DEFAULT_NWINDOWS = 8

#: Architectural register-name aliases -> architectural index 0..31.
REGISTER_ALIASES = {}
for _i in range(8):
    REGISTER_ALIASES[f"g{_i}"] = _i
    REGISTER_ALIASES[f"o{_i}"] = 8 + _i
    REGISTER_ALIASES[f"l{_i}"] = 16 + _i
    REGISTER_ALIASES[f"i{_i}"] = 24 + _i
for _i in range(32):
    REGISTER_ALIASES[f"r{_i}"] = _i
REGISTER_ALIASES["sp"] = 14  # %o6
REGISTER_ALIASES["fp"] = 30  # %i6


def parse_register(name: str) -> int:
    """Parse an assembly register name like ``%o3`` or ``%sp``."""
    text = name.strip().lstrip("%").lower()
    if text not in REGISTER_ALIASES:
        raise ValueError(f"unknown register name: {name!r}")
    return REGISTER_ALIASES[text]


def register_name(index: int) -> str:
    """Render an architectural register index as its canonical name."""
    if not 0 <= index < 32:
        raise ValueError(f"register index out of range: {index}")
    bank = "goli"[index // 8]
    return f"%{bank}{index % 8}"


class WindowOverflow(Exception):
    """Raised when ``save`` runs out of register windows."""


class WindowUnderflow(Exception):
    """Raised when ``restore`` returns past the last valid window."""


class RegisterFile:
    """Windowed integer register file.

    Physical layout: indices ``0..7`` are the globals; window ``w``
    owns physical registers ``8 + w*16 .. 8 + w*16 + 15`` for its
    *outs* and *locals*; its *ins* alias the next window's *outs*,
    which implements the caller-outs == callee-ins overlap of `save`.
    """

    def __init__(self, nwindows: int = DEFAULT_NWINDOWS):
        if nwindows < 2:
            raise ValueError("need at least 2 register windows")
        self.nwindows = nwindows
        self.cwp = 0
        self._phys = [0] * (8 + 16 * nwindows)
        # Depth of nested `save`s relative to the start window; used to
        # detect overflow/underflow without modelling the WIM register.
        self._depth = 0

    @property
    def num_physical(self) -> int:
        """Total number of physical registers (globals + window bank)."""
        return len(self._phys)

    def physical_index(self, arch_index: int, cwp: int | None = None) -> int:
        """Translate an architectural register index (0..31) under the
        given (default current) window pointer to a physical index."""
        if not 0 <= arch_index < 32:
            raise ValueError(f"register index out of range: {arch_index}")
        if arch_index < 8:
            return arch_index
        window = self.cwp if cwp is None else cwp
        # Window w owns slot w for its outs (offsets 0..7) and locals
        # (offsets 8..15); its ins alias slot w+1's outs — which is
        # exactly the caller's out registers, since `save` decrements
        # the CWP.
        if arch_index < 16:  # outs
            slot = window
            offset = arch_index - 8
        elif arch_index < 24:  # locals
            slot = window
            offset = 8 + (arch_index - 16)
        else:  # ins
            slot = (window + 1) % self.nwindows
            offset = arch_index - 24
        return 8 + slot * 16 + offset

    def read(self, arch_index: int) -> int:
        """Read an architectural register; %g0 always reads zero."""
        if arch_index == 0:
            return 0
        return self._phys[self.physical_index(arch_index)]

    def write(self, arch_index: int, value: int) -> None:
        """Write an architectural register; writes to %g0 are ignored."""
        if arch_index == 0:
            return
        self._phys[self.physical_index(arch_index)] = value & 0xFFFFFFFF

    def read_physical(self, phys_index: int) -> int:
        """Direct physical read (used by tests and the shadow file)."""
        return self._phys[phys_index]

    def save(self) -> None:
        """Execute the window rotation of a ``save`` instruction."""
        if self._depth + 1 >= self.nwindows - 1:
            raise WindowOverflow(f"save beyond {self.nwindows} windows")
        self.cwp = (self.cwp - 1) % self.nwindows
        self._depth += 1

    def restore(self) -> None:
        """Execute the window rotation of a ``restore`` instruction."""
        if self._depth == 0:
            raise WindowUnderflow("restore past the initial window")
        self.cwp = (self.cwp + 1) % self.nwindows
        self._depth -= 1

    def snapshot(self) -> list[int]:
        """Copy of the current architectural registers 0..31."""
        return [self.read(i) for i in range(32)]

    # ------------------------------------------------------------------
    # Snapshot/restore (crash-safe checkpointing).

    def snapshot_state(self) -> dict:
        """Full physical state: window pointer, save depth, bank."""
        return {
            "cwp": self.cwp,
            "depth": self._depth,
            "phys": list(self._phys),
        }

    def restore_state(self, state: dict) -> None:
        phys = state["phys"]
        if len(phys) != len(self._phys):
            raise ValueError(
                f"register snapshot holds {len(phys)} physical "
                f"registers, this file has {len(self._phys)}"
            )
        self.cwp = state["cwp"]
        self._depth = state["depth"]
        self._phys[:] = phys
