"""Binary encoder/decoder for the SPARC V8 subset.

Encodings follow the SPARC Architecture Manual V8:

* format 1 (``op=1``): ``op[31:30] disp30[29:0]`` — CALL
* format 2 (``op=0``): ``op rd[29:25] op2[24:22] imm22[21:0]`` — SETHI;
  ``op a[29] cond[28:25] op2 disp22[21:0]`` — Bicc
* format 3 (``op=2,3``): ``op rd[29:25] op3[24:19] rs1[18:14] i[13]
  (simm13[12:0] | asi/opf rs2[4:0])``

FlexCore co-processor instructions reuse the CPop1 space
(``op=2, op3=0x36``) with the 9-bit ``opf`` field in bits 13:5.
"""

from __future__ import annotations

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Cond, Op, Op2, Op3, Op3Mem


class EncodingError(ValueError):
    """Raised when an instruction cannot be encoded or decoded."""


def _check_range(name: str, value: int, bits: int, signed: bool) -> int:
    if signed:
        lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    else:
        lo, hi = 0, (1 << bits) - 1
    if not lo <= value <= hi:
        raise EncodingError(f"{name}={value} does not fit in {bits} bits")
    return value & ((1 << bits) - 1)


def _sign_extend(value: int, bits: int) -> int:
    mask = 1 << (bits - 1)
    return (value & (mask - 1)) - (value & mask)


def encode(instr: Instruction) -> int:
    """Encode a decoded instruction into its 32-bit binary word."""
    if instr.op == Op.CALL:
        disp = _check_range("disp30", instr.disp, 30, signed=True)
        return (1 << 30) | disp

    if instr.op == Op.FORMAT2:
        if instr.opcode == Op2.SETHI:
            imm = _check_range("imm22", instr.imm, 22, signed=False)
            rd = _check_range("rd", instr.rd, 5, signed=False)
            return (rd << 25) | (int(Op2.SETHI) << 22) | imm
        if instr.opcode == Op2.BICC:
            disp = _check_range("disp22", instr.disp, 22, signed=True)
            word = (int(instr.cond) << 25) | (int(Op2.BICC) << 22) | disp
            if instr.annul:
                word |= 1 << 29
            return word
        raise EncodingError(f"unsupported format-2 opcode {instr.opcode}")

    # Format 3.  Ticc keeps its condition code in bits 28:25 (the low
    # bits of the rd field slot).
    if instr.op == Op.FORMAT3_ALU and instr.opcode == Op3.TICC:
        rd = int(instr.cond)
    else:
        rd = _check_range("rd", instr.rd, 5, signed=False)
    rs1 = _check_range("rs1", instr.rs1, 5, signed=False)
    op3 = int(instr.opcode)
    word = (int(instr.op) << 30) | (rd << 25) | (op3 << 19) | (rs1 << 14)
    if instr.op == Op.FORMAT3_ALU and instr.opcode == Op3.FLEXOP:
        opf = _check_range("opf", instr.opf, 9, signed=False)
        rs2 = _check_range("rs2", instr.rs2, 5, signed=False)
        return word | (opf << 5) | rs2
    if instr.use_imm:
        simm = _check_range("simm13", instr.imm, 13, signed=True)
        return word | (1 << 13) | simm
    rs2 = _check_range("rs2", instr.rs2, 5, signed=False)
    return word | rs2


def decode(word: int) -> Instruction:
    """Decode a 32-bit binary word into an :class:`Instruction`."""
    if not 0 <= word <= 0xFFFFFFFF:
        raise EncodingError(f"not a 32-bit word: {word:#x}")
    op = (word >> 30) & 0x3

    if op == Op.CALL:
        return Instruction(
            op=Op.CALL, disp=_sign_extend(word & 0x3FFFFFFF, 30), rd=15
        )

    if op == Op.FORMAT2:
        op2 = (word >> 22) & 0x7
        if op2 == Op2.SETHI:
            return Instruction(
                op=Op.FORMAT2,
                opcode=Op2.SETHI,
                rd=(word >> 25) & 0x1F,
                imm=word & 0x3FFFFF,
            )
        if op2 == Op2.BICC:
            return Instruction(
                op=Op.FORMAT2,
                opcode=Op2.BICC,
                cond=Cond((word >> 25) & 0xF),
                annul=bool((word >> 29) & 1),
                disp=_sign_extend(word & 0x3FFFFF, 22),
            )
        raise EncodingError(f"unsupported format-2 op2={op2:#o}")

    op3_raw = (word >> 19) & 0x3F
    rd = (word >> 25) & 0x1F
    rs1 = (word >> 14) & 0x1F
    i_bit = (word >> 13) & 1

    if op == Op.FORMAT3_MEM:
        try:
            op3 = Op3Mem(op3_raw)
        except ValueError as exc:
            raise EncodingError(f"unknown memory op3={op3_raw:#x}") from exc
        common = dict(op=Op.FORMAT3_MEM, opcode=op3, rd=rd, rs1=rs1)
        if i_bit:
            return Instruction(
                use_imm=True, imm=_sign_extend(word & 0x1FFF, 13), **common
            )
        return Instruction(rs2=word & 0x1F, **common)

    try:
        op3 = Op3(op3_raw)
    except ValueError as exc:
        raise EncodingError(f"unknown ALU op3={op3_raw:#x}") from exc
    if op3 == Op3.FLEXOP:
        return Instruction(
            op=Op.FORMAT3_ALU,
            opcode=Op3.FLEXOP,
            rd=rd,
            rs1=rs1,
            rs2=word & 0x1F,
            opf=(word >> 5) & 0x1FF,
        )
    if op3 == Op3.TICC:
        return Instruction(
            op=Op.FORMAT3_ALU,
            opcode=Op3.TICC,
            cond=Cond(rd & 0xF),
            rs1=rs1,
            use_imm=bool(i_bit),
            imm=_sign_extend(word & 0x7F, 7) if i_bit else 0,
            rs2=0 if i_bit else word & 0x1F,
        )
    common = dict(op=Op.FORMAT3_ALU, opcode=op3, rd=rd, rs1=rs1)
    if i_bit:
        return Instruction(
            use_imm=True, imm=_sign_extend(word & 0x1FFF, 13), **common
        )
    return Instruction(rs2=word & 0x1F, **common)
