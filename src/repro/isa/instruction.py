"""Decoded instruction representation.

An :class:`Instruction` is the output of the decoder and the input to
both the functional executor and the assembler's encoder.  It carries
the raw fields of the three SPARC instruction formats plus the derived
:class:`~repro.isa.opcodes.InstrClass` used by the CFGR filter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.opcodes import (
    Cond,
    InstrClass,
    Op,
    Op2,
    Op3,
    Op3Mem,
    alu_class,
    mem_class,
)


@dataclass(frozen=True)
class Instruction:
    """One decoded 32-bit SPARC instruction."""

    op: Op
    #: op3 for format-3 (Op3 or Op3Mem), op2 for format-2, None for CALL.
    opcode: object | None = None
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    #: True when the second operand is the sign-extended 13-bit immediate.
    use_imm: bool = False
    imm: int = 0  # simm13 (sign-extended) or imm22 for SETHI
    cond: Cond = Cond.BN
    annul: bool = False
    disp: int = 0  # disp22 (branches) or disp30 (call), in instructions
    opf: int = 0  # flex sub-opcode for Op3.FLEXOP

    @property
    def instr_class(self) -> InstrClass:
        """The CFGR instruction type of this instruction."""
        if self.op == Op.CALL:
            return InstrClass.CALL
        if self.op == Op.FORMAT2:
            if self.opcode == Op2.SETHI:
                # `sethi 0, %g0` is the canonical NOP encoding.
                if self.rd == 0 and self.imm == 0:
                    return InstrClass.NOP
                return InstrClass.SETHI
            return InstrClass.BRANCH
        if self.op == Op.FORMAT3_MEM:
            return mem_class(self.opcode)
        return alu_class(self.opcode)

    @property
    def is_load(self) -> bool:
        return self.op == Op.FORMAT3_MEM and self.opcode in (
            Op3Mem.LD,
            Op3Mem.LDUB,
            Op3Mem.LDSB,
            Op3Mem.LDUH,
            Op3Mem.LDSH,
            Op3Mem.LDD,
        )

    @property
    def is_store(self) -> bool:
        return self.op == Op.FORMAT3_MEM and not self.is_load

    @property
    def is_branch(self) -> bool:
        return self.op == Op.FORMAT2 and self.opcode == Op2.BICC

    @property
    def is_flex(self) -> bool:
        return self.op == Op.FORMAT3_ALU and self.opcode == Op3.FLEXOP

    def access_size(self) -> int:
        """Size in bytes of the memory access (loads/stores only)."""
        sizes = {
            Op3Mem.LD: 4,
            Op3Mem.ST: 4,
            Op3Mem.LDD: 8,
            Op3Mem.STD: 8,
            Op3Mem.LDUB: 1,
            Op3Mem.LDSB: 1,
            Op3Mem.STB: 1,
            Op3Mem.LDUH: 2,
            Op3Mem.LDSH: 2,
            Op3Mem.STH: 2,
        }
        return sizes[self.opcode]
