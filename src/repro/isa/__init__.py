"""SPARC V8 subset ISA: opcodes, encodings, registers, assembler."""

from repro.isa.assembler import Assembler, AssemblyError, Program, assemble
from repro.isa.disasm import disassemble, disassemble_program
from repro.isa.encoding import EncodingError, decode, encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import (
    ALU_CLASSES,
    LOAD_CLASSES,
    MEMORY_CLASSES,
    NUM_INSTR_CLASSES,
    STORE_CLASSES,
    Cond,
    FlexOpf,
    InstrClass,
    Op,
    Op2,
    Op3,
    Op3Mem,
)
from repro.isa.registers import (
    RegisterFile,
    WindowOverflow,
    WindowUnderflow,
    parse_register,
    register_name,
)

__all__ = [
    "ALU_CLASSES",
    "Assembler",
    "AssemblyError",
    "Cond",
    "EncodingError",
    "FlexOpf",
    "Instruction",
    "InstrClass",
    "LOAD_CLASSES",
    "MEMORY_CLASSES",
    "NUM_INSTR_CLASSES",
    "Op",
    "Op2",
    "Op3",
    "Op3Mem",
    "Program",
    "RegisterFile",
    "STORE_CLASSES",
    "WindowOverflow",
    "WindowUnderflow",
    "assemble",
    "decode",
    "disassemble",
    "disassemble_program",
    "encode",
    "parse_register",
    "register_name",
]
