"""Command-line interface: ``python -m repro <command>``.

Commands
--------
run      assemble and simulate a .s file, optionally with a monitor
disasm   assemble a .s file and print the disassembly listing
table3   print the Table III area/power/frequency report
synth    synthesize one extension for the fabric and the ASIC flow

Examples::

    python -m repro run prog.s --extension dift --ratio 0.5
    python -m repro disasm prog.s
    python -m repro table3
    python -m repro synth umc
"""

from __future__ import annotations

import argparse
import sys

from repro.extensions import EXTENSION_CLASSES, create_extension
from repro.flexcore import run_program
from repro.isa import assemble, disassemble_program


def _load(path: str, entry: str):
    with open(path) as handle:
        source = handle.read()
    return assemble(source, entry=entry)


def cmd_run(args: argparse.Namespace) -> int:
    program = _load(args.source, args.entry)
    extension = (create_extension(args.extension)
                 if args.extension else None)
    result = run_program(
        program,
        extension,
        clock_ratio=args.ratio,
        fifo_depth=args.fifo,
        max_instructions=args.max_instructions,
    )
    print(f"instructions : {result.instructions}")
    print(f"cycles       : {result.cycles}")
    print(f"CPI          : {result.cpi:.2f}")
    print(f"halted       : {result.halted}")
    if result.interface_stats is not None:
        stats = result.interface_stats
        print(f"forwarded    : {stats.forwarded} "
              f"({stats.forwarded_fraction:.1%} of commits)")
        print(f"fifo stalls  : {stats.fifo_stall_cycles} cycles")
        print(f"meta stalls  : {stats.meta_stall_cycles:.0f} cycles")
    if result.trap is not None:
        print(f"TRAP         : {result.trap}")
        return 2
    return 0


def cmd_disasm(args: argparse.Namespace) -> int:
    program = _load(args.source, args.entry)
    print(disassemble_program(program))
    return 0


def cmd_table3(args: argparse.Namespace) -> int:
    from repro.evaluation import format_table3, run_table3
    print(format_table3(run_table3(), compare=not args.no_compare))
    return 0


def cmd_synth(args: argparse.Namespace) -> int:
    from repro.fabric import synthesize_asic, synthesize_fabric
    extension = create_extension(args.extension)
    fabric = synthesize_fabric(extension)
    asic = synthesize_asic(extension)
    print(f"{extension.name}: {extension.description}")
    print(f"  fabric: {fabric.luts} LUTs, {fabric.area_um2:,.0f} um^2, "
          f"{fabric.power_mw:.0f} mW, {fabric.fmax_mhz:.0f} MHz "
          f"(sustains a {fabric.clock_ratio}x fabric clock)")
    print(f"  ASIC:   {asic.area_um2 - 835_525:,.0f} um^2 over the "
          f"baseline, {asic.power_mw:.0f} mW total, "
          f"{asic.fmax_mhz:.0f} MHz")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="FlexCore reproduction command-line interface",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run_cmd = commands.add_parser("run", help="simulate a .s program")
    run_cmd.add_argument("source", help="assembly source file")
    run_cmd.add_argument("--entry", default="start")
    run_cmd.add_argument(
        "--extension", choices=sorted(EXTENSION_CLASSES), default=None,
        help="monitoring extension to attach",
    )
    run_cmd.add_argument("--ratio", type=float, default=0.5,
                         help="fabric:core clock ratio")
    run_cmd.add_argument("--fifo", type=int, default=64,
                         help="forward FIFO depth")
    run_cmd.add_argument("--max-instructions", type=int, default=None)
    run_cmd.set_defaults(handler=cmd_run)

    disasm_cmd = commands.add_parser("disasm",
                                     help="disassemble a .s program")
    disasm_cmd.add_argument("source")
    disasm_cmd.add_argument("--entry", default="start")
    disasm_cmd.set_defaults(handler=cmd_disasm)

    table3_cmd = commands.add_parser("table3",
                                     help="print the Table III report")
    table3_cmd.add_argument("--no-compare", action="store_true",
                            help="omit the paper's reference numbers")
    table3_cmd.set_defaults(handler=cmd_table3)

    synth_cmd = commands.add_parser(
        "synth", help="synthesize one extension (fabric + ASIC)"
    )
    synth_cmd.add_argument("extension",
                           choices=sorted(EXTENSION_CLASSES))
    synth_cmd.set_defaults(handler=cmd_synth)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
