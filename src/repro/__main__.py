"""Command-line interface: ``python -m repro <command>``.

Commands
--------
run      assemble and simulate a .s file, optionally with a monitor
trace    simulate with full telemetry; export a Perfetto trace
inject   run a fault-injection campaign against a monitor
sweep    run an evaluation sweep grid across the worker pool
bench    time the fast engine against the reference loop
compile  compile an MDL monitor spec; synthesize or run it
disasm   assemble a .s file and print the disassembly listing
table3   print the Table III area/power/frequency report
synth    synthesize one extension for the fabric and the ASIC flow
serve    run the crash-safe campaign job server
submit   submit a job to a running job server
tail     stream a job's state transitions from the server
status   show server/job status; fetch result documents

``run``/``trace``/``inject``/``synth`` accept ``--mdl SPEC.mdl``
(repeatable): each spec is compiled and registered, making its
monitor a valid ``--extension`` name for that invocation.

Examples::

    python -m repro run prog.s --extension dift --ratio 0.5 --stats
    python -m repro run prog.s --mdl examples/redzone.mdl \\
        --extension redzone
    python -m repro trace prog.s --extension dift --perfetto out.json
    python -m repro trace --workload crc32 --extension sec \\
        --perfetto crc32.json
    python -m repro inject --extension sec --workload crc32 \\
        --faults 200 --seed 1 --metrics
    python -m repro bench --quick --json BENCH_perf.json
    python -m repro compile examples/redzone.mdl --table3
    python -m repro compile umc --run sha --scale 0.125
    python -m repro disasm prog.s
    python -m repro table3
    python -m repro synth umc
"""

from __future__ import annotations

import argparse
import sys

from repro.core.executor import SimulationError
from repro.extensions import create_extension
from repro.flexcore import run_program
from repro.isa import assemble, disassemble_program

#: exit codes: 0 ok, 2 monitor trap / usage error (argparse's own
#: convention), 3 simulation error, 130 campaign interrupted
#: (128 + SIGINT, shell convention).
EXIT_TRAP = 2
EXIT_USAGE = 2
EXIT_SIMULATION_ERROR = 3
#: ``repro inject`` measured nothing: every non-masked run was an
#: infrastructure failure, so the detection-coverage denominator is
#: empty and the printed 100.0% is vacuous.  Shares the "the tool ran
#: but the answer is unusable" exit space with simulation errors.
EXIT_NO_COVERAGE = 3
EXIT_INTERRUPTED = 130


class _UsageError(Exception):
    """A CLI-level mistake (unknown extension, bad spec path).  The
    message is printed to stderr and the process exits 2 — never a
    raw traceback."""


def _load(path: str, entry: str):
    with open(path) as handle:
        source = handle.read()
    return assemble(source, entry=entry)


def _register_mdl(paths) -> None:
    """Compile and register every ``--mdl`` spec for this invocation.

    Diagnostics (syntax errors, unknown fields, width mismatches) are
    rendered with source locations; a bad spec exits 2."""
    if not paths:
        return
    from repro.mdl import MdlError, load_spec, register_program

    for path in paths:
        try:
            register_program(load_spec(path), replace=True)
        except OSError as err:
            raise _UsageError(f"mdl error: {err}") from None
        except MdlError as err:
            raise _UsageError(str(err)) from None


def _make_extension(name: str | None):
    """``create_extension`` under the CLI contract: an unknown name
    prints the known-name list (including any monitors registered via
    ``--mdl``) and exits 2."""
    if name is None:
        return None
    try:
        return create_extension(name)
    except ValueError as err:
        raise _UsageError(f"error: {err}") from None


def _build_workload(name: str, scale: float):
    """``build_workload`` under the same CLI contract as
    ``--extension``: an unknown name prints the known-name list and
    exits 2 instead of raising a traceback."""
    from repro.workloads import build_workload

    try:
        return build_workload(name, scale)
    except ValueError as err:
        raise _UsageError(f"error: {err}") from None


def cmd_run(args: argparse.Namespace) -> int:
    from repro.telemetry import (
        Telemetry,
        format_run_summary,
        run_digest,
    )

    if (args.source is None) == (args.workload is None):
        print("run error: give exactly one of SOURCE or --workload",
              file=sys.stderr)
        return 1
    if args.workload is not None:
        program = _build_workload(args.workload, args.scale).build()
    else:
        program = _load(args.source, args.entry)
    _register_mdl(args.mdl)
    extension = _make_extension(args.extension)
    telemetry = Telemetry.enabled() if args.metrics else None
    try:
        result = run_program(
            program,
            extension,
            clock_ratio=args.ratio,
            fifo_depth=args.fifo,
            max_instructions=args.max_instructions,
            checkpoint_every=args.checkpoint_every,
            recover=args.recover,
            telemetry=telemetry,
            engine=args.engine,
        )
    except SimulationError as err:
        # One-line triage instead of a traceback: the structured
        # context pinpoints the faulting instruction.
        print(f"simulation error: {err.diagnosis()}", file=sys.stderr)
        return EXIT_SIMULATION_ERROR
    if args.stats:
        print(format_run_summary(result))
    else:
        print(f"instructions : {result.instructions}")
        print(f"cycles       : {result.cycles}")
        print(f"CPI          : {result.cpi:.2f}")
        print(f"halted       : {result.halted}")
        if result.recoveries:
            print(f"recoveries   : {result.recoveries} rollback(s), "
                  f"{result.recovery_cycles} cycles")
        if result.interface_stats is not None:
            stats = result.interface_stats
            print(f"forwarded    : {stats.forwarded} "
                  f"({stats.forwarded_fraction:.1%} of commits)")
            print(f"fifo stalls  : {stats.fifo_stall_cycles} cycles")
            print(f"meta stalls  : {stats.meta_stall_cycles:.0f} cycles")
    if telemetry is not None:
        dump = telemetry.metrics.format()
        if dump:
            print()
            print(dump)
    if args.digest:
        print(f"digest       : {run_digest(result)}")
    if result.trap is not None:
        print(f"TRAP         : {result.trap}")
        return EXIT_TRAP
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Fully-telemetered run: metrics + cycle trace + exports."""
    from repro.telemetry import (
        Telemetry,
        format_run_summary,
        run_digest,
    )

    if (args.source is None) == (args.workload is None):
        print("trace error: give exactly one of SOURCE or --workload",
              file=sys.stderr)
        return 1
    telemetry = Telemetry.enabled(trace=True, capacity=args.buffer)
    with telemetry.profiler.phase("assemble"):
        if args.workload is not None:
            program = _build_workload(args.workload, args.scale).build()
        else:
            program = _load(args.source, args.entry)
    _register_mdl(args.mdl)
    extension = _make_extension(args.extension)
    try:
        with telemetry.profiler.phase("run"):
            result = run_program(
                program,
                extension,
                clock_ratio=args.ratio,
                fifo_depth=args.fifo,
                max_instructions=args.max_instructions,
                telemetry=telemetry,
                engine=args.engine,
            )
    except SimulationError as err:
        print(f"simulation error: {err.diagnosis()}", file=sys.stderr)
        return EXIT_SIMULATION_ERROR

    tracer = telemetry.tracer
    with telemetry.profiler.phase("export"):
        if args.perfetto is not None:
            tracer.write_perfetto(args.perfetto)
        if args.jsonl is not None:
            tracer.write_jsonl(args.jsonl)

    if args.stats:
        print(format_run_summary(result))
        print()
    note = (f" ({tracer.overwritten} older events overwritten)"
            if tracer.overwritten else "")
    print(f"trace        : {len(tracer)} events{note}")
    if args.perfetto is not None:
        print(f"perfetto     : {args.perfetto} "
              f"(open in ui.perfetto.dev)")
    if args.jsonl is not None:
        print(f"jsonl        : {args.jsonl}")
    print(f"digest       : {run_digest(result)}")
    print(telemetry.profiler.format(), file=sys.stderr)
    if result.trap is not None:
        print(f"TRAP         : {result.trap}")
        return EXIT_TRAP
    return 0


def _print_campaign_health(campaign) -> None:
    """Surface degradation warnings and infra counters on stderr
    (never on stdout: the report there must stay bit-reproducible)."""
    for warning in campaign.warnings:
        print(f"warning: {warning}", file=sys.stderr)
    if campaign.pool_stats.interesting():
        print(f"pool: {campaign.pool_stats.summary()}", file=sys.stderr)


def cmd_inject(args: argparse.Namespace) -> int:
    from repro.checkpoint import JournalError
    from repro.faultinject import (
        Campaign,
        CampaignConfig,
        CampaignError,
        CampaignInterrupted,
    )

    source = None
    if args.source is not None:
        with open(args.source) as handle:
            source = handle.read()
    if args.resume and args.journal is None:
        print("campaign error: --resume requires --journal",
              file=sys.stderr)
        return 1
    # MDL specs travel into the config as (filename, source) pairs so
    # worker processes and journal replays see the same monitors.
    mdl_pairs = []
    for path in args.mdl or ():
        try:
            with open(path) as handle:
                mdl_pairs.append((path, handle.read()))
        except OSError as err:
            raise _UsageError(f"mdl error: {err}") from None
    _register_mdl(args.mdl)
    _make_extension(args.extension)  # unknown names exit 2 with the list
    try:
        config = CampaignConfig(
            extension=args.extension,
            workload=args.workload,
            source=source,
            entry=args.entry,
            scale=args.scale,
            faults=args.faults,
            seed=args.seed,
            models=tuple(args.models.split(",")) if args.models else None,
            clock_ratio=args.ratio,
            fifo_depth=args.fifo,
            jobs=args.jobs,
            warm_start=not args.no_warm_start,
            batch_size=args.batch_size,
            checkpoint_every=args.checkpoint_every,
            recover=args.recover,
            cache_dir=args.cache_dir,
            mdl=tuple(mdl_pairs),
            task_timeout=args.task_timeout,
            max_retries=args.max_retries,
            serial_fallback=args.serial_fallback,
        )
        campaign = Campaign(config)
    except (CampaignError, ValueError) as err:
        print(f"campaign error: {err}", file=sys.stderr)
        return 1
    if campaign.cache_diagnostic is not None:
        print(campaign.cache_diagnostic, file=sys.stderr)
    progress = None
    if args.progress:
        def progress(done: int, total: int) -> None:
            print(f"\r  {done}/{total} runs", end="", file=sys.stderr,
                  flush=True)
    try:
        report = campaign.run(progress=progress,
                              journal_path=args.journal,
                              resume=args.resume)
    except JournalError as err:
        print(f"\ncampaign error: {err}", file=sys.stderr)
        return 1
    except CampaignInterrupted as stop:
        if args.progress:
            print(file=sys.stderr)
        _print_campaign_health(campaign)
        partial = stop.partial_report()
        print(partial.format(details=args.details,
                             metrics=args.metrics))
        print(
            f"\ninterrupted after {len(stop.results)}/"
            f"{config.faults} runs", file=sys.stderr,
        )
        if args.journal is not None:
            print(
                f"resume with: --journal {args.journal} --resume",
                file=sys.stderr,
            )
        else:
            print(
                "(re-run with --journal PATH to make campaigns "
                "resumable)", file=sys.stderr,
            )
        return EXIT_INTERRUPTED
    if args.progress:
        print(file=sys.stderr)
    _print_campaign_health(campaign)
    print(report.format(details=args.details, metrics=args.metrics))
    if args.metrics:
        print(campaign.profiler.format(), file=sys.stderr)
    if args.json is not None:
        report.write_json(args.json)
        print(f"\nJSON report written to {args.json}")
    if report.no_coverage:
        from repro.faultinject.campaign import Outcome
        counts = report.counts()
        print(
            f"campaign error: no coverage measured — all "
            f"{counts[Outcome.INFRA_FAILED]}/{report.total} non-masked "
            f"run(s) were quarantined infrastructure failures "
            f"(pool: {campaign.pool_stats.summary()}); "
            f"resume with --journal/--resume to retry them",
            file=sys.stderr,
        )
        return EXIT_NO_COVERAGE
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Run an evaluation sweep grid across the supervised pool.

    Prints one deterministic line per grid point — stable ordering and
    content, so two sweeps of the same grid can be compared with
    ``cmp``/``diff`` regardless of ``--jobs``, caching, chaos or
    serial fallback.  Interrupts (SIGINT/SIGTERM) tear the pool down
    cleanly and exit 130; everything already cached stays cached.
    """
    import signal as signal_module

    from repro.engine.pool import PoolPolicy, Quarantined
    from repro.engine.sweep import SweepRunner, table4_points
    from repro.evaluation.config import CLOCK_RATIOS
    from repro.extensions import EXTENSION_NAMES
    from repro.workloads import workload_names

    benchmarks = (
        args.benchmarks.split(",") if args.benchmarks
        else list(workload_names())
    )
    known_workloads = workload_names(include_extras=True)
    for bench in benchmarks:
        if bench not in known_workloads:
            known = ", ".join(known_workloads)
            raise _UsageError(
                f"sweep error: unknown workload {bench!r} "
                f"(known: {known})"
            )
    extensions = (
        tuple(args.extensions.split(",")) if args.extensions
        else EXTENSION_NAMES
    )
    for name in extensions:
        if name not in EXTENSION_NAMES:
            known = ", ".join(EXTENSION_NAMES)
            raise _UsageError(
                f"sweep error: unknown extension {name!r} "
                f"(known: {known})"
            )
    ratios = (
        tuple(float(r) for r in args.ratios.split(","))
        if args.ratios else CLOCK_RATIOS
    )
    points = table4_points(scale=args.scale, benchmarks=benchmarks,
                           extensions=extensions, ratios=ratios)
    policy = PoolPolicy(
        task_timeout=args.task_timeout,
        max_retries=args.max_retries,
        fallback=args.serial_fallback,
    )
    runner = SweepRunner(jobs=args.jobs, engine=args.engine,
                         cache_dir=args.cache_dir, policy=policy)

    def diagnostics(message: str) -> None:
        if args.verbose:
            print(message, file=sys.stderr)

    on_infra = None
    if args.skip_infra_failures:
        def on_infra(point, error) -> None:
            print(f"sweep: quarantined {point.stem()} "
                  f"ratio={point.clock_ratio} — {error}",
                  file=sys.stderr)

    def _sigterm(signum, frame):
        raise KeyboardInterrupt

    previous_sigterm = None
    try:
        previous_sigterm = signal_module.signal(
            signal_module.SIGTERM, _sigterm)
    except ValueError:
        pass
    try:
        outcomes = runner.run(points, diagnostics=diagnostics,
                              on_infra_failure=on_infra)
    except Quarantined as err:
        print(f"sweep error: {err} (use --skip-infra-failures to "
              f"report-and-continue)", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print("\nsweep interrupted; completed points are cached — "
              "re-run the same command to continue", file=sys.stderr)
        return EXIT_INTERRUPTED
    finally:
        if previous_sigterm is not None:
            signal_module.signal(signal_module.SIGTERM,
                                 previous_sigterm)

    for point, outcome in zip(points, outcomes):
        label = (f"{point.workload:<10} "
                 f"{point.extension or 'baseline':<10} "
                 f"ratio={point.clock_ratio:<5} "
                 f"fifo={point.fifo_depth}")
        if outcome is None:
            print(f"{label} INFRA-FAILED")
        else:
            print(f"{label} cycles={outcome.cycles} "
                  f"digest={outcome.digest}")
    if runner.stats.interesting():
        print(f"pool: {runner.stats.summary()}", file=sys.stderr)
    for point, reason in runner.failures:
        print(f"quarantined: {point.stem()} "
              f"ratio={point.clock_ratio} — {reason}", file=sys.stderr)
    return 0


def cmd_explore(args: argparse.Namespace) -> int:
    """Search the design space for Pareto-optimal monitor configs.

    Deterministic end to end: the same space/seed/budgets print the
    identical report and JSON whether run cold, resumed after kill -9
    (``--journal DIR --resume``), or as a served ``explore`` job.
    """
    import signal as signal_module

    from repro.checkpoint import JournalError
    from repro.engine.pool import PoolPolicy
    from repro.explore import (
        AdaptiveConfig,
        EvolveConfig,
        ExplorationReport,
        PointEvaluator,
        evolve,
        fractional_factorial,
        full_factorial,
        load_space,
    )
    from repro.explore.space import SpaceError
    from repro.faultinject.campaign import (
        CampaignError,
        CampaignInterrupted,
    )

    try:
        space = load_space(args.space)
    except SpaceError as err:
        raise _UsageError(f"explore error: {err}") from None
    if args.resume and args.journal is None:
        raise _UsageError("explore error: --resume requires --journal")
    if args.faults and args.ci_target is not None:
        raise _UsageError(
            "explore error: --faults (fixed-size campaigns) and "
            "--ci-target (adaptive campaigns) are mutually exclusive")
    adaptive = None
    if args.ci_target is not None:
        try:
            adaptive = AdaptiveConfig(
                batch=args.batch,
                min_faults=args.min_faults,
                max_faults=args.budget,
                target_half_width=args.ci_target,
            )
        except ValueError as err:
            raise _UsageError(f"explore error: {err}") from None
    if args.evolve:
        mode = "evolve"
    elif args.max_points is not None:
        mode = "fractional"
    else:
        mode = "factorial"
        if space.size > 512:
            raise _UsageError(
                f"explore error: full factorial over {space.size} "
                f"points is unreasonable; cap it with --max-points "
                f"or search with --evolve")

    def log(message: str) -> None:
        if args.verbose:
            print(message, file=sys.stderr)

    policy = PoolPolicy(
        task_timeout=args.task_timeout,
        max_retries=args.max_retries,
        fallback=args.serial_fallback,
    )
    evaluator = PointEvaluator(
        space,
        jobs=args.jobs,
        engine=args.engine,
        state_dir=args.journal,
        seed=args.seed,
        faults=args.faults,
        adaptive=adaptive,
        resume=args.resume,
        policy=policy,
        diagnostics=log,
        log=log,
    )

    def _sigterm(signum, frame):
        raise KeyboardInterrupt

    previous_sigterm = None
    try:
        previous_sigterm = signal_module.signal(
            signal_module.SIGTERM, _sigterm)
    except ValueError:
        pass
    try:
        if mode == "evolve":
            try:
                evolve_config = EvolveConfig(
                    population=args.population,
                    generations=args.generations,
                )
            except ValueError as err:
                raise _UsageError(
                    f"explore error: {err}") from None
            coverage = evaluator.coverage_enabled

            def objective_key(evaluation):
                if (not evaluation.feasible
                        or evaluation.slowdown is None
                        or (coverage and evaluation.coverage is None)):
                    return None
                return evaluation.objectives(coverage)

            evaluations = list(evolve(
                space, evaluator.evaluate, evolve_config,
                objective_key, seed=args.seed, log=log,
            ).values())
        else:
            if mode == "fractional":
                points = fractional_factorial(
                    space, args.max_points, seed=args.seed)
            else:
                points = full_factorial(space)
            log(f"{mode}: {len(points)} of {space.size} point(s)")
            evaluations = evaluator.evaluate(points)
    except (CampaignError, JournalError) as err:
        print(f"explore error: {err}", file=sys.stderr)
        return 1
    except (KeyboardInterrupt, CampaignInterrupted):
        print("\nexplore interrupted; completed work is cached"
              + (f" under {args.journal} — re-run with --resume to "
                 f"continue" if args.journal else
                 " in memory only — re-run with --journal DIR to "
                 "make exploration resumable"),
              file=sys.stderr)
        return EXIT_INTERRUPTED
    finally:
        if previous_sigterm is not None:
            signal_module.signal(signal_module.SIGTERM,
                                 previous_sigterm)

    report = ExplorationReport.build(
        space, mode, evaluations, evaluator.coverage_enabled)
    print(report.format(details=args.details))
    if evaluator.runner.stats.interesting():
        print(f"pool: {evaluator.runner.stats.summary()}",
              file=sys.stderr)
    if args.json is not None:
        report.write_json(args.json)
        print(f"\nJSON report written to {args.json}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Time the fast and superblock engines against the reference loop
    (and, with --campaign, a warm fault campaign against the cold
    baseline) and verify every digest is bit-identical; nonzero exit
    on divergence."""
    import json

    from repro.engine.bench import format_bench, run_bench

    scale = args.scale
    if scale is None:
        scale = 0.125 if args.quick else 1.0
    benchmarks = (
        tuple(args.benchmarks.split(",")) if args.benchmarks else None
    )
    payload = run_bench(scale=scale, quick=args.quick, jobs=args.jobs,
                        benchmarks=benchmarks, campaign=args.campaign)
    print(format_bench(payload))
    if args.json is not None:
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"payload      : {args.json}")
    return 0 if payload["digests_match"] else 1


def cmd_disasm(args: argparse.Namespace) -> int:
    program = _load(args.source, args.entry)
    print(disassemble_program(program))
    return 0


def cmd_table3(args: argparse.Namespace) -> int:
    from repro.evaluation import format_table3, run_table3
    print(format_table3(run_table3(), compare=not args.no_compare))
    return 0


def cmd_synth(args: argparse.Namespace) -> int:
    from repro.fabric import synthesize_asic, synthesize_fabric
    _register_mdl(args.mdl)
    extension = _make_extension(args.extension)
    fabric = synthesize_fabric(extension)
    asic = synthesize_asic(extension)
    print(f"{extension.name}: {extension.description}")
    print(f"  fabric: {fabric.luts} LUTs, {fabric.area_um2:,.0f} um^2, "
          f"{fabric.power_mw:.0f} mW, {fabric.fmax_mhz:.0f} MHz "
          f"(sustains a {fabric.clock_ratio}x fabric clock)")
    print(f"  ASIC:   {asic.area_um2 - 835_525:,.0f} um^2 over the "
          f"baseline, {asic.power_mw:.0f} mW total, "
          f"{asic.fmax_mhz:.0f} MHz")
    return 0


def cmd_compile(args: argparse.Namespace) -> int:
    """Compile an MDL spec; report its hardware cost; optionally run
    it on a workload or print its Table-III rows."""
    from pathlib import Path

    from repro.fabric.mapping import map_network
    from repro.mdl import (
        MdlError,
        compile_spec,
        register_program,
        shipped_specs,
    )

    path = Path(args.spec)
    if not path.exists():
        shipped = shipped_specs()
        if args.spec in shipped:
            path = shipped[args.spec]
        else:
            names = ", ".join(sorted(shipped))
            raise _UsageError(
                f"compile error: {args.spec!r} is neither a file nor "
                f"a shipped spec (shipped: {names})"
            )
    try:
        source = path.read_text()
    except OSError as err:
        raise _UsageError(f"compile error: {err}") from None
    try:
        program = compile_spec(source, str(path))
    except MdlError as err:
        print(err, file=sys.stderr)
        return EXIT_USAGE

    monitor = program.ir
    mapping = map_network(program.hardware())
    flex_rules = sum(1 for r in monitor.rules if r.flex_opfs)
    class_rules = len(monitor.rules) - flex_rules
    meta = []
    if monitor.register_tag_bits:
        meta.append(f"{monitor.register_tag_bits}-bit register tags")
    if monitor.memory_tag_bits:
        meta.append(f"{monitor.memory_tag_bits}-bit memory tags")
    print(f"{program.name}: {monitor.description}")
    print(f"  meta    : {', '.join(meta) if meta else 'none'}")
    print(f"  rules   : {len(monitor.rules)} "
          f"({class_rules} instruction-class, {flex_rules} flex-op)")
    print(f"  forward : "
          f"{', '.join(sorted(c.name for c in monitor.forward_classes))}")
    print(f"  mapping : {mapping.luts} LUTs, {mapping.flipflops} FFs, "
          f"{mapping.pipeline_stages} pipeline stages")

    if args.table3:
        from repro.evaluation import format_table3, run_table3
        register_program(program, replace=True)
        print()
        print(format_table3(run_table3(extensions=(program.name,)),
                            compare=not args.no_compare))

    if args.run is not None:
        from repro.telemetry import run_digest
        from repro.workloads import build_workload
        try:
            workload = build_workload(args.run, args.scale).build()
        except (KeyError, ValueError) as err:
            raise _UsageError(f"compile error: {err}") from None
        try:
            result = run_program(
                workload,
                program.create(),
                clock_ratio=args.ratio,
                fifo_depth=args.fifo,
            )
        except SimulationError as err:
            print(f"simulation error: {err.diagnosis()}",
                  file=sys.stderr)
            return EXIT_SIMULATION_ERROR
        print()
        print(f"run {args.run}:")
        print(f"  instructions : {result.instructions}")
        print(f"  cycles       : {result.cycles}")
        print(f"  CPI          : {result.cpi:.2f}")
        print(f"  digest       : {run_digest(result)}")
        if result.trap is not None:
            print(f"  TRAP         : {result.trap}")
            return EXIT_TRAP
    return 0


def _add_pool_robustness_args(cmd: argparse.ArgumentParser) -> None:
    """The supervised-pool knobs shared by ``inject`` and ``sweep``.

    None of these affect results (only whether/when an item completes
    here-and-now), so they are free to vary between a run and its
    resume."""
    cmd.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="pool deadline per task; a worker past it is presumed "
             "hung, killed and its task retried (default: derived "
             "from the wall-clock watchdog, or unlimited)",
    )
    cmd.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="infra retries per item before quarantining it as "
             "infra-failed (default: 2)",
    )
    cmd.add_argument(
        "--serial-fallback", choices=("auto", "never", "force"),
        default="auto",
        help="when the pool is irrecoverably broken: 'auto' degrades "
             "to in-process serial execution (bit-identical results), "
             "'never' fails instead, 'force' skips the pool entirely",
    )


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import JobServer, ServerConfig

    config = ServerConfig(
        capacity=args.capacity,
        runners=args.runners,
        quota=args.quota,
        fleet=args.fleet,
        heartbeat=args.heartbeat,
        job_deadline=args.job_deadline,
        trace=args.trace,
        trace_dir=args.trace_dir,
        slo=args.slo,
        forensics=not args.no_forensics,
        metrics=not args.no_metrics,
    )
    server = JobServer(args.state_dir, args.listen, config)

    async def run() -> None:
        await server.start()
        print(
            f"repro job server: listening on {args.listen} "
            f"(state: {args.state_dir}, capacity {config.capacity}, "
            f"{config.runners} runner(s), fleet {config.fleet})",
            file=sys.stderr, flush=True,
        )
        await server.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        return EXIT_INTERRUPTED
    return 0


def _service_client(args: argparse.Namespace,
                    timeout: float | None = 30.0):
    from repro.service import Client
    return Client(args.connect,
                  tenant=getattr(args, "tenant", "default"),
                  timeout=timeout)


def cmd_submit(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.service.client import ServiceError, ServiceRejected
    from repro.service.protocol import ProtocolError

    if args.spec is not None:
        raw = args.spec
    else:
        with open(args.spec_file) as handle:
            raw = handle.read()
    try:
        spec = json_module.loads(raw)
    except ValueError as err:
        raise _UsageError(f"spec is not valid JSON: {err}") from None
    try:
        with _service_client(args) as client:
            try:
                response = client.submit(
                    args.kind, spec,
                    wait_on_backpressure=args.backpressure_retries)
            except ServiceRejected as err:
                print(
                    f"rejected: {err} (retry after "
                    f"{err.retry_after:g}s)", file=sys.stderr)
                return 1
            job_id = response["job_id"]
            note = (" (deduplicated)"
                    if response.get("deduplicated") else "")
            print(f"{job_id} {response['state']}{note}")
            if not args.wait:
                return 0
            job = client.wait(job_id, deadline=args.deadline)
            print(f"{job_id} {job['state']}"
                  + (f" {job['detail']}" if job["detail"] else ""))
            return 0 if job["state"] == "done" else 1
    except (ProtocolError, ServiceError, OSError) as err:
        print(f"submit error: {err}", file=sys.stderr)
        return 1


def cmd_tail(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceError

    try:
        # no socket timeout: a tailed campaign may be silent for
        # minutes between state transitions
        with _service_client(args, timeout=None) as client:
            exit_code = 0
            for event in client.tail(args.job_id, since=args.since):
                if event.get("event") == "end":
                    detail = event.get("detail", "")
                    print(f"end {event['state']}"
                          + (f" {detail}" if detail else ""))
                    exit_code = 0 if event["state"] == "done" else 1
                    break
                detail = event.get("detail", "")
                print(f"v{event['version']} {event['state']}"
                      + (f" {detail}" if detail else ""),
                      flush=True)
            if args.trace is not None:
                _write_job_trace(client, args.job_id, args.trace)
            return exit_code
    except (ServiceError, OSError) as err:
        print(f"tail error: {err}", file=sys.stderr)
        return 1


def _write_job_trace(client, job_id: str, path: str) -> None:
    """Fetch a job's trace events and write a merged Perfetto doc."""
    import json as json_module

    from repro.telemetry.trace import TraceEvent, events_to_perfetto

    response = client.trace(job_id)
    events = [TraceEvent.from_dict(raw)
              for raw in response.get("events", [])]
    document = events_to_perfetto(
        events,
        process_name="repro-service",
        time_unit="wall-clock microseconds since server start",
    )
    with open(path, "w") as handle:
        json_module.dump(document, handle, sort_keys=True)
        handle.write("\n")
    print(f"trace ({len(events)} events) written to {path}",
          file=sys.stderr)


def cmd_status(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceError

    try:
        with _service_client(args) as client:
            if args.job_id is None:
                if args.metrics:
                    response = client.metrics()
                    print(response["prometheus"], end="")
                    return 0
                health = client.health()
                from repro.telemetry.summary import (
                    format_service_health,
                )
                print(format_service_health(health))
                return 0
            job = client.status(args.job_id)
            print(f"{job['id']} {job['kind']} {job['state']}"
                  + (f" {job['detail']}" if job["detail"] else ""))
            if args.result is not None:
                if job["state"] != "done":
                    print(
                        f"status error: job is {job['state']}, no "
                        f"result to fetch", file=sys.stderr)
                    return 1
                document = client.result(job["id"])["document"]
                # Byte-exact: CI `cmp`s this file against a locally
                # computed reference report.
                with open(args.result, "w", newline="") as handle:
                    handle.write(document)
                print(f"result written to {args.result}")
            return 0 if job["state"] != "failed" else 1
    except (ServiceError, OSError) as err:
        print(f"status error: {err}", file=sys.stderr)
        return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="FlexCore reproduction command-line interface",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run_cmd = commands.add_parser("run", help="simulate a .s program")
    run_cmd.add_argument(
        "source", nargs="?", default=None,
        help="assembly source file (or use --workload)",
    )
    run_cmd.add_argument(
        "--workload", default=None,
        help="registered workload kernel to run (e.g. crc32, sha)",
    )
    run_cmd.add_argument(
        "--scale", type=float, default=0.125,
        help="workload scale (default: the fast test variant)",
    )
    run_cmd.add_argument("--entry", default="start")
    run_cmd.add_argument(
        "--extension", default=None,
        help="monitoring extension to attach (built-in or --mdl name)",
    )
    run_cmd.add_argument(
        "--mdl", action="append", default=[], metavar="SPEC",
        help="compile and register an MDL monitor spec (repeatable)",
    )
    run_cmd.add_argument("--ratio", type=float, default=0.5,
                         help="fabric:core clock ratio")
    run_cmd.add_argument("--fifo", type=int, default=64,
                         help="forward FIFO depth")
    run_cmd.add_argument("--max-instructions", type=int, default=None)
    run_cmd.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="checkpoint the full system state every N instructions",
    )
    run_cmd.add_argument(
        "--recover", action="store_true",
        help="on a monitor TRAP, roll back to the last checkpoint "
             "and re-execute instead of stopping",
    )
    run_cmd.add_argument(
        "--stats", action="store_true",
        help="print the one-screen metrics summary (CPI, stall "
             "breakdown, cache hit rates, FIFO high-water mark)",
    )
    run_cmd.add_argument(
        "--metrics", action="store_true",
        help="run with the metrics registry enabled and dump it",
    )
    run_cmd.add_argument(
        "--digest", action="store_true",
        help="print the canonical RunResult digest (CI golden check)",
    )
    run_cmd.add_argument(
        "--engine", choices=("fast", "reference", "superblock"),
        default=None,
        help="execution engine (default fast; all are bit-identical)",
    )
    run_cmd.set_defaults(handler=cmd_run)

    trace_cmd = commands.add_parser(
        "trace",
        help="simulate with full telemetry and export a cycle trace",
    )
    trace_cmd.add_argument(
        "source", nargs="?", default=None,
        help="assembly source file (or use --workload)",
    )
    trace_cmd.add_argument(
        "--workload", default=None,
        help="registered workload kernel to trace (e.g. crc32, sha)",
    )
    trace_cmd.add_argument(
        "--scale", type=float, default=0.125,
        help="workload scale (default: the fast test variant)",
    )
    trace_cmd.add_argument("--entry", default="start")
    trace_cmd.add_argument(
        "--extension", default=None,
        help="monitoring extension to attach (built-in or --mdl name)",
    )
    trace_cmd.add_argument(
        "--mdl", action="append", default=[], metavar="SPEC",
        help="compile and register an MDL monitor spec (repeatable)",
    )
    trace_cmd.add_argument("--ratio", type=float, default=0.5,
                           help="fabric:core clock ratio")
    trace_cmd.add_argument("--fifo", type=int, default=64,
                           help="forward FIFO depth")
    trace_cmd.add_argument("--max-instructions", type=int, default=None)
    trace_cmd.add_argument(
        "--buffer", type=int, default=65_536, metavar="N",
        help="trace ring-buffer capacity in events (oldest events "
             "are overwritten when full)",
    )
    trace_cmd.add_argument(
        "--perfetto", default=None, metavar="PATH",
        help="write a Chrome/Perfetto trace_event JSON here",
    )
    trace_cmd.add_argument(
        "--jsonl", default=None, metavar="PATH",
        help="write one JSON event per line here",
    )
    trace_cmd.add_argument(
        "--stats", action="store_true",
        help="also print the one-screen metrics summary",
    )
    trace_cmd.add_argument(
        "--engine", choices=("fast", "reference", "superblock"),
        default=None,
        help="execution engine (tracing forces the reference loop)",
    )
    trace_cmd.set_defaults(handler=cmd_trace)

    inject_cmd = commands.add_parser(
        "inject",
        help="run a fault-injection campaign against a monitor",
    )
    inject_cmd.add_argument(
        "--extension", required=True,
        help="monitoring extension under evaluation "
             "(built-in or --mdl name)",
    )
    inject_cmd.add_argument(
        "--mdl", action="append", default=[], metavar="SPEC",
        help="compile and register an MDL monitor spec (repeatable)",
    )
    target = inject_cmd.add_mutually_exclusive_group(required=True)
    target.add_argument(
        "--workload", default=None,
        help="registered workload kernel to run (e.g. crc32, sha)",
    )
    target.add_argument(
        "--source", default=None,
        help="assembly source file to run instead of a workload",
    )
    inject_cmd.add_argument("--entry", default="start")
    inject_cmd.add_argument(
        "--scale", type=float, default=0.125,
        help="workload scale (default: the fast test variant)",
    )
    inject_cmd.add_argument("--faults", type=int, default=100,
                            help="number of faulted runs")
    inject_cmd.add_argument("--seed", type=int, default=1,
                            help="campaign seed (bit-reproducible)")
    inject_cmd.add_argument(
        "--models", default=None,
        help="comma-separated fault models (default: all applicable)",
    )
    inject_cmd.add_argument("--ratio", type=float, default=0.5,
                            help="fabric:core clock ratio")
    inject_cmd.add_argument("--fifo", type=int, default=64,
                            help="forward FIFO depth")
    inject_cmd.add_argument("--jobs", type=int, default=1,
                            help="worker processes")
    inject_cmd.add_argument(
        "--no-warm-start", action="store_true",
        help="re-simulate every fault-free prefix from reset instead "
             "of forking from cached prefix snapshots",
    )
    inject_cmd.add_argument(
        "--batch-size", type=int, default=8, metavar="N",
        help="faults per lockstep worker dispatch when parallel "
             "(scheduling only; results stream back per fault)",
    )
    inject_cmd.add_argument("--json", default=None, metavar="PATH",
                            help="also write the JSON report here")
    inject_cmd.add_argument(
        "--journal", default=None, metavar="PATH",
        help="append every result to a crash-tolerant journal",
    )
    inject_cmd.add_argument(
        "--resume", action="store_true",
        help="replay the journal and only run the missing faults",
    )
    inject_cmd.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache golden-run profiles here across campaigns",
    )
    inject_cmd.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="periodic checkpoint interval for faulted runs",
    )
    inject_cmd.add_argument(
        "--recover", action="store_true",
        help="roll back + re-execute on monitor traps "
             "(requires --checkpoint-every)",
    )
    inject_cmd.add_argument(
        "--metrics", action="store_true",
        help="print the per-outcome metric aggregation and the "
             "campaign's wall-clock phase profile",
    )
    inject_cmd.add_argument("--details", action="store_true",
                            help="list every run in the report")
    inject_cmd.add_argument("--progress", action="store_true",
                            help="show run progress on stderr")
    _add_pool_robustness_args(inject_cmd)
    inject_cmd.set_defaults(handler=cmd_inject)

    sweep_cmd = commands.add_parser(
        "sweep",
        help="run an evaluation sweep grid across the worker pool",
    )
    sweep_cmd.add_argument(
        "--benchmarks", default=None,
        help="comma-separated workload subset (default: all)",
    )
    sweep_cmd.add_argument(
        "--extensions", default=None,
        help="comma-separated extension subset (default: all)",
    )
    sweep_cmd.add_argument(
        "--ratios", default=None,
        help="comma-separated fabric clock ratios "
             "(default: the paper's 1.0,0.5,0.25)",
    )
    sweep_cmd.add_argument(
        "--scale", type=float, default=0.125,
        help="workload scale (default: the fast test variant)",
    )
    sweep_cmd.add_argument("--jobs", type=int, default=1,
                           help="worker processes")
    sweep_cmd.add_argument(
        "--engine", choices=("fast", "reference", "superblock"),
        default="fast",
        help="execution engine (all are bit-identical)",
    )
    sweep_cmd.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache per-point outcomes here; an interrupted sweep "
             "resumes from the cache on re-run",
    )
    sweep_cmd.add_argument(
        "--skip-infra-failures", action="store_true",
        help="report points whose workers keep dying as INFRA-FAILED "
             "and continue, instead of failing the sweep",
    )
    sweep_cmd.add_argument("--verbose", action="store_true",
                           help="print cache/pool diagnostics")
    _add_pool_robustness_args(sweep_cmd)
    sweep_cmd.set_defaults(handler=cmd_sweep)

    explore_cmd = commands.add_parser(
        "explore",
        help="search the design space for Pareto-optimal monitor "
             "configurations (coverage vs slowdown vs LUT area)",
    )
    explore_cmd.add_argument(
        "space",
        help="space description: a preset name (smoke, table4, "
             "paper) or a .toml file with workloads/extensions/"
             "fifo_depths/clock_ratios[/meta_cache_sizes] axes",
    )
    explore_cmd.add_argument(
        "--evolve", action="store_true",
        help="seeded evolutionary search instead of factorial "
             "enumeration (for spaces too big to brute-force)",
    )
    explore_cmd.add_argument(
        "--population", type=int, default=8,
        help="evolutionary population size (default: 8)",
    )
    explore_cmd.add_argument(
        "--generations", type=int, default=4,
        help="evolutionary generations (default: 4)",
    )
    explore_cmd.add_argument(
        "--max-points", type=int, default=None, metavar="N",
        help="deterministic fractional factorial: evaluate a seeded "
             "N-point sample of the grid",
    )
    explore_cmd.add_argument(
        "--faults", type=int, default=0, metavar="N",
        help="score coverage with fixed-size campaigns of N faults "
             "per configuration (default: no coverage objective)",
    )
    explore_cmd.add_argument(
        "--ci-target", type=float, default=None, metavar="HW",
        help="score coverage with adaptive campaigns: inject until "
             "every outcome rate's Wilson 95%% half-width is <= HW",
    )
    explore_cmd.add_argument(
        "--budget", type=int, default=400, metavar="N",
        help="adaptive campaigns: hard fault budget cap "
             "(default: 400)",
    )
    explore_cmd.add_argument(
        "--batch", type=int, default=50, metavar="N",
        help="adaptive campaigns: faults per batch; the stopping "
             "rule runs at batch boundaries (default: 50)",
    )
    explore_cmd.add_argument(
        "--min-faults", type=int, default=50, metavar="N",
        help="adaptive campaigns: never stop before N faults "
             "(default: 50)",
    )
    explore_cmd.add_argument(
        "--seed", type=int, default=1,
        help="seed for campaigns and the evolutionary/fractional "
             "draw (default: 1)",
    )
    explore_cmd.add_argument("--jobs", type=int, default=1,
                             help="worker processes")
    explore_cmd.add_argument(
        "--engine", choices=("fast", "reference", "superblock"),
        default="fast",
        help="execution engine (all are bit-identical)",
    )
    explore_cmd.add_argument(
        "--journal", default=None, metavar="DIR",
        help="exploration state directory (sweep cache, campaign "
             "journals, golden cache); makes kill -9 resumable",
    )
    explore_cmd.add_argument(
        "--resume", action="store_true",
        help="resume campaign journals under --journal instead of "
             "restarting them",
    )
    explore_cmd.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the full report as JSON",
    )
    explore_cmd.add_argument(
        "--details", action="store_true",
        help="list dominated and infeasible points too",
    )
    explore_cmd.add_argument("--verbose", action="store_true",
                             help="print sweep/campaign progress")
    _add_pool_robustness_args(explore_cmd)
    explore_cmd.set_defaults(handler=cmd_explore)

    bench_cmd = commands.add_parser(
        "bench",
        help="time the fast and superblock engines against the "
             "reference loop",
    )
    bench_cmd.add_argument(
        "--quick", action="store_true",
        help="smoke matrix: baseline + each extension at its paper "
             "fabric clock, scale 0.125 (the CI perf-smoke job)",
    )
    bench_cmd.add_argument(
        "--campaign", action="store_true",
        help="also time a fault campaign warm (prefix-snapshot "
             "forking) vs cold, checking the reports stay "
             "bit-identical",
    )
    bench_cmd.add_argument(
        "--scale", type=float, default=None,
        help="workload scale (default: 1.0, or 0.125 with --quick)",
    )
    bench_cmd.add_argument(
        "--benchmarks", default=None,
        help="comma-separated workload subset (default: all six)",
    )
    bench_cmd.add_argument("--jobs", type=int, default=1,
                           help="worker processes per sweep")
    bench_cmd.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the BENCH_perf.json payload here",
    )
    bench_cmd.set_defaults(handler=cmd_bench)

    disasm_cmd = commands.add_parser("disasm",
                                     help="disassemble a .s program")
    disasm_cmd.add_argument("source")
    disasm_cmd.add_argument("--entry", default="start")
    disasm_cmd.set_defaults(handler=cmd_disasm)

    table3_cmd = commands.add_parser("table3",
                                     help="print the Table III report")
    table3_cmd.add_argument("--no-compare", action="store_true",
                            help="omit the paper's reference numbers")
    table3_cmd.set_defaults(handler=cmd_table3)

    synth_cmd = commands.add_parser(
        "synth", help="synthesize one extension (fabric + ASIC)"
    )
    synth_cmd.add_argument(
        "extension",
        help="extension to synthesize (built-in or --mdl name)",
    )
    synth_cmd.add_argument(
        "--mdl", action="append", default=[], metavar="SPEC",
        help="compile and register an MDL monitor spec (repeatable)",
    )
    synth_cmd.set_defaults(handler=cmd_synth)

    compile_cmd = commands.add_parser(
        "compile",
        help="compile an MDL monitor spec; synthesize or run it",
    )
    compile_cmd.add_argument(
        "spec",
        help="an .mdl file, or a shipped spec name (umc, bc)",
    )
    compile_cmd.add_argument(
        "--table3", action="store_true",
        help="print the monitor's Table-III rows (ASIC + fabric)",
    )
    compile_cmd.add_argument(
        "--no-compare", action="store_true",
        help="omit the paper's reference numbers from --table3",
    )
    compile_cmd.add_argument(
        "--run", default=None, metavar="WORKLOAD",
        help="run the compiled monitor on a registered workload",
    )
    compile_cmd.add_argument(
        "--scale", type=float, default=0.125,
        help="workload scale for --run (default: fast test variant)",
    )
    compile_cmd.add_argument("--ratio", type=float, default=0.5,
                             help="fabric:core clock ratio for --run")
    compile_cmd.add_argument("--fifo", type=int, default=64,
                             help="forward FIFO depth for --run")
    compile_cmd.set_defaults(handler=cmd_compile)

    serve_cmd = commands.add_parser(
        "serve", help="run the crash-safe campaign job server"
    )
    serve_cmd.add_argument(
        "--state-dir", required=True, metavar="DIR",
        help="durable service state (job journal, results, "
             "campaign journals)",
    )
    serve_cmd.add_argument(
        "--listen", required=True, metavar="ADDR",
        help="unix:/path, /path, or host:port",
    )
    serve_cmd.add_argument("--capacity", type=int, default=64,
                           help="admission queue capacity")
    serve_cmd.add_argument("--runners", type=int, default=2,
                           help="concurrent job runner threads")
    serve_cmd.add_argument("--quota", type=int, default=8,
                           help="per-tenant live-job quota")
    serve_cmd.add_argument("--fleet", type=int, default=4,
                           help="shared worker-process budget for "
                                "job fan-out")
    serve_cmd.add_argument("--heartbeat", type=float, default=1.0,
                           metavar="SECONDS",
                           help="heartbeat period")
    serve_cmd.add_argument("--job-deadline", type=float, default=None,
                           metavar="SECONDS",
                           help="cooperative wall-clock deadline "
                                "per job (default: unlimited)")
    serve_cmd.add_argument("--trace", action="store_true",
                           help="enable end-to-end job tracing into "
                                "an in-memory ring (serve it via the "
                                "trace op / repro tail --trace)")
    serve_cmd.add_argument("--trace-dir", default=None, metavar="DIR",
                           help="export each finished job's merged "
                                "Perfetto trace here (implies "
                                "--trace)")
    serve_cmd.add_argument("--slo", type=float, default=None,
                           metavar="SECONDS",
                           help="submit-to-result p95 SLO target "
                                "reflected in health (default: track "
                                "latencies without a threshold)")
    serve_cmd.add_argument("--no-forensics", action="store_true",
                           help="disable post-mortem bundles under "
                                "<state-dir>/.forensics/")
    serve_cmd.add_argument("--no-metrics", action="store_true",
                           help="disable the metrics registry "
                                "entirely (overhead comparison; the "
                                "metrics op returns empty snapshots)")
    serve_cmd.set_defaults(handler=cmd_serve)

    submit_cmd = commands.add_parser(
        "submit", help="submit a job to a running job server"
    )
    submit_cmd.add_argument("--connect", required=True, metavar="ADDR",
                            help="server address (unix:/path, /path "
                                 "or host:port)")
    submit_cmd.add_argument("--tenant", default="default",
                            help="tenant name for quota accounting")
    submit_cmd.add_argument(
        "kind",
        choices=("inject", "sweep", "explore", "run", "compile",
                 "sleep"),
        help="job kind",
    )
    spec_source = submit_cmd.add_mutually_exclusive_group(
        required=True)
    spec_source.add_argument("--spec", default=None, metavar="JSON",
                             help="job spec as inline JSON")
    spec_source.add_argument("--spec-file", default=None,
                             metavar="PATH",
                             help="job spec from a JSON file")
    submit_cmd.add_argument(
        "--backpressure-retries", type=int, default=0, metavar="N",
        help="on reject-with-retry-after, sleep the hint and retry "
             "up to N times (default: fail immediately)",
    )
    submit_cmd.add_argument("--wait", action="store_true",
                            help="block until the job is terminal")
    submit_cmd.add_argument("--deadline", type=float, default=None,
                            metavar="SECONDS",
                            help="give up on --wait after this long")
    submit_cmd.set_defaults(handler=cmd_submit)

    tail_cmd = commands.add_parser(
        "tail", help="stream a job's state transitions"
    )
    tail_cmd.add_argument("--connect", required=True, metavar="ADDR")
    tail_cmd.add_argument("job_id")
    tail_cmd.add_argument("--since", type=int, default=-1,
                          metavar="VERSION",
                          help="only events after this version")
    tail_cmd.add_argument(
        "--trace", default=None, metavar="PATH",
        help="after the job ends, fetch its end-to-end trace and "
             "write a merged Perfetto JSON here (requires a server "
             "started with --trace/--trace-dir)",
    )
    tail_cmd.set_defaults(handler=cmd_tail)

    status_cmd = commands.add_parser(
        "status", help="show server health or one job's status"
    )
    status_cmd.add_argument("--connect", required=True,
                            metavar="ADDR")
    status_cmd.add_argument("job_id", nargs="?", default=None)
    status_cmd.add_argument(
        "--result", default=None, metavar="PATH",
        help="write the job's result document (byte-exact) here",
    )
    status_cmd.add_argument(
        "--metrics", action="store_true",
        help="print the server's Prometheus text exposition "
             "(server-level status only)",
    )
    status_cmd.set_defaults(handler=cmd_status)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except _UsageError as err:
        print(err, file=sys.stderr)
        return EXIT_USAGE


if __name__ == "__main__":
    sys.exit(main())
