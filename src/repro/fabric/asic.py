"""65 nm ASIC cost models: standard-cell logic, SRAM macros, FIFOs.

These replace the Synopsys DC + IBM 65 nm library flow of Section V-A.
Component constants are calibrated against the absolute anchors that
Table III publishes (baseline Leon3 = 835,525 µm^2 / 365 mW / 465 MHz;
ASIC extension deltas of +96.6k/+125k/+161.4k/+1.3k µm^2) and then
reused for everything else (FIFO sweeps, common-module estimates), so
relative results are model outputs, not table lookups.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.fabric.logic import LogicNetwork, Prim, Primitive
from repro.flexcore.packet import PACKET_BITS

# ---------------------------------------------------------------------------
# Calibrated constants (65 nm).

#: Area of one NAND2-equivalent standard cell, placed and routed.
UM2_PER_GATE = 2.5
#: SRAM macro: per-bit cell area and fixed peripheral overhead.
SRAM_UM2_PER_BIT = 0.9
SRAM_PERIPHERY_UM2 = 30_000.0
#: FIFO macros: the periphery (sense amps, pointers, ports) scales
#: with the *width* of the entry, while adding entries only grows the
#: cell array — which is why the paper sees the forward FIFO grow only
#: ~10% from 16 to 64 entries (Section V-C).
FIFO_UM2_PER_BIT = 0.25
FIFO_PERIPHERY_UM2_PER_WIDTH_BIT = 104.0
REGFILE_UM2_PER_BIT = 4.0
REGFILE_PERIPHERY_UM2 = 4_000.0

#: Dynamic power at the 465 MHz baseline clock.
SRAM_MW_PER_KB = 4.0
FIFO_MW = 5.5
REGFILE_MW = 1.5
MW_PER_KGATE = 0.55

#: Table III baseline anchors.
BASELINE_AREA_UM2 = 835_525.0
BASELINE_POWER_MW = 365.0

# ---------------------------------------------------------------------------
# Gate counts for logic networks (NAND2 equivalents).


def _gate_cost(prim: Primitive) -> float:
    width = prim.width
    if prim.kind == Prim.GATE:
        return width * 1.0
    if prim.kind == Prim.REDUCE:
        return width * 1.0
    if prim.kind == Prim.MUX:
        return width * (prim.ways - 1) * 3.0
    if prim.kind == Prim.ADDER:
        return width * 6.5
    if prim.kind == Prim.COMPARATOR_EQ:
        return width * 2.5
    if prim.kind == Prim.COMPARATOR_MAG:
        return width * 4.0
    if prim.kind == Prim.SHIFTER:
        return width * math.ceil(math.log2(max(width, 2))) * 3.0
    if prim.kind == Prim.DECODER:
        return (1 << width) * 1.5
    if prim.kind == Prim.REGISTER:
        return width * 5.5  # a scan flip-flop is ~5-6 NAND2
    if prim.kind == Prim.LUTRAM:
        return prim.depth * width * 1.8  # latch array
    if prim.kind == Prim.SRAM:
        return 0.0  # costed as a macro, not cells
    if prim.kind == Prim.MOD_REDUCE:
        return width * 5.0
    if prim.kind == Prim.MULTIPLIER:
        return width * width * 6.0
    raise ValueError(f"unknown primitive kind {prim.kind}")


def network_gates(network: LogicNetwork) -> float:
    """NAND2-equivalent gate count of a logic network."""
    return sum(_gate_cost(p) * p.count for p in network.primitives)


def logic_area_um2(network: LogicNetwork) -> float:
    return network_gates(network) * UM2_PER_GATE


def logic_power_mw(network: LogicNetwork) -> float:
    return network_gates(network) / 1000.0 * MW_PER_KGATE


# ---------------------------------------------------------------------------
# Macro models.


def sram_area_um2(bits: int) -> float:
    """A dedicated SRAM macro (cache data/tag arrays)."""
    return bits * SRAM_UM2_PER_BIT + SRAM_PERIPHERY_UM2


def fifo_area_um2(entries: int, width_bits: int) -> float:
    """A FIFO macro; periphery dominates at these small depths."""
    return width_bits * (
        FIFO_PERIPHERY_UM2_PER_WIDTH_BIT + FIFO_UM2_PER_BIT * entries
    )


def regfile_area_um2(entries: int, width_bits: int) -> float:
    """A small multi-ported register file (the shadow register file)."""
    return entries * width_bits * REGFILE_UM2_PER_BIT + REGFILE_PERIPHERY_UM2


def cache_area_um2(
    size_bytes: int,
    line_bytes: int = 32,
    bit_writable: bool = False,
    tag_datapath_bits: int = 1,
) -> float:
    """A small L1-style cache: data array + tag array + control.

    ``bit_writable`` adds the per-bit write-enable logic of the
    FlexCore meta-data cache (Section III-D), a significant overhead
    for small arrays.  ``tag_datapath_bits`` widens the read-modify
    datapath for extensions with multi-bit memory tags (BC keeps an
    8-bit tag per word and pays for the wider port).
    """
    data_bits = size_bytes * 8
    lines = size_bytes // line_bytes
    tag_bits = lines * 22  # tag + valid + replacement state
    area = sram_area_um2(data_bits + tag_bits)
    if bit_writable:
        area *= 1.35
    area *= 1.0 + max(tag_datapath_bits - 1, 0) / 14.0
    area += 1_000 * UM2_PER_GATE  # control logic
    return area


# ---------------------------------------------------------------------------
# Extension-level ASIC integration (the "ASIC" rows of Table III).

#: Tailored forward-FIFO widths: a fixed-function integration only
#: carries the fields its extension needs, unlike the general FlexCore
#: interface which carries the full Table II packet.
TAILORED_FIFO_BITS = {
    "umc": 72,  # address + opcode + size
    "dift": 150,  # + register numbers, store-value tag path, policy ops
    "bc": 180,  # + 8-bit tag datapath and colour ops
}


@dataclass(frozen=True)
class AsicEstimate:
    """Area/power delta of integrating one extension in full ASIC."""

    name: str
    logic_um2: float
    cache_um2: float
    fifo_um2: float
    regfile_um2: float
    power_mw: float

    @property
    def total_um2(self) -> float:
        return (
            self.logic_um2 + self.cache_um2 + self.fifo_um2
            + self.regfile_um2
        )


def asic_extension_estimate(
    extension,
    fifo_entries: int = 64,
    meta_cache_bytes: int = 4 * 1024,
) -> AsicEstimate:
    """ASIC-integration cost of one extension (Table III ASIC rows).

    SEC is special-cased by its own meta-data declaration: with no
    memory tags it needs neither the meta-data cache nor a deep FIFO,
    which is why its ASIC delta is ~0.15% (Section V-B).
    """
    network = extension.hardware()
    # A fixed-function integration runs at the core clock in a single
    # pass and taps existing pipeline registers, so the deep pipeline
    # staging of the fabric version is not replicated in cells.
    gates = sum(
        _gate_cost(p) * p.count
        for p in network.primitives
        if p.kind != Prim.REGISTER
    )
    logic = gates * UM2_PER_GATE
    power = gates / 1000.0 * MW_PER_KGATE

    cache = fifo = regfile = 0.0
    if extension.memory_tag_bits:
        cache = cache_area_um2(
            meta_cache_bytes,
            bit_writable=True,
            tag_datapath_bits=extension.memory_tag_bits,
        )
        width = TAILORED_FIFO_BITS.get(extension.name, 128)
        fifo = fifo_area_um2(fifo_entries, width)
        power += SRAM_MW_PER_KB * meta_cache_bytes / 1024 + FIFO_MW
        power += extension.memory_tag_bits / 8.0 * 2.0  # tag datapath
    if extension.register_tag_bits:
        regfile = regfile_area_um2(
            entries=136, width_bits=extension.register_tag_bits
        )
        power += REGFILE_MW

    return AsicEstimate(
        name=extension.name,
        logic_um2=logic,
        cache_um2=cache,
        fifo_um2=fifo,
        regfile_um2=regfile,
        power_mw=power,
    )


def flexcore_common_estimate(
    fifo_entries: int = 64,
    meta_cache_bytes: int = 4 * 1024,
    num_physical_registers: int = 136,
) -> AsicEstimate:
    """The dedicated FlexCore modules shared by every extension
    (Table III "Common" row): the general core-fabric interface with
    the full packet FIFO, the bit-writable meta-data cache, the 8-bit
    shadow register file, backward FIFO, CFGR and clock-domain
    crossing."""
    interface = LogicNetwork("flexcore-interface", pipeline_stages=2)
    # Packet fields are harvested alongside the 7-stage pipeline and
    # carried to the commit stage, then staged across the clock-domain
    # crossing.
    interface.add(Prim.REGISTER, width=PACKET_BITS, count=7,
                  label="per-stage trace harvest registers")
    interface.add(Prim.MUX, width=PACKET_BITS, ways=8, label="packet mux")
    interface.add(Prim.REGISTER, width=PACKET_BITS, count=4,
                  label="packet staging + CDC synchronizers")
    interface.add(Prim.DECODER, width=5, label="instruction-type decode")
    interface.add(Prim.REGISTER, width=64, label="CFGR")
    interface.add(Prim.GATE, width=4096,
                  label="per-type policy matrix + control/ack logic")
    interface.add(Prim.MUX, width=32, ways=4, label="BFIFO return path")
    # The meta-data cache needs its own master port on the shared AHB
    # bus (refill engine, write buffer, arbitration), plus the general
    # 1/2/4/8-bit tag-width datapath.
    interface.add(Prim.GATE, width=4096, label="bus master + refill engine")
    interface.add(Prim.REGISTER, width=256, count=2, label="write buffer")
    interface.add(Prim.GATE, width=4096, label="bit-write mask datapath")

    logic = logic_area_um2(interface)
    cache = cache_area_um2(meta_cache_bytes, bit_writable=True)
    fifo = fifo_area_um2(fifo_entries, PACKET_BITS)
    fifo += fifo_area_um2(8, 40)  # backward FIFO (VAL + control)
    regfile = regfile_area_um2(num_physical_registers, 8)
    power = (
        logic_power_mw(interface)
        + SRAM_MW_PER_KB * meta_cache_bytes / 1024
        + 2 * FIFO_MW
        + REGFILE_MW
        + 5.0  # second clock tree + CDC infrastructure
    )
    return AsicEstimate(
        name="common",
        logic_um2=logic,
        cache_um2=cache,
        fifo_um2=fifo,
        regfile_um2=regfile,
        power_mw=power,
    )
