"""Reconfigurable-fabric and ASIC cost models (Table III machinery)."""

from repro.fabric.area import (
    KUON_ROSE_UM2_PER_LUT,
    fabric_capacity_luts,
    fpga_area_um2,
)
from repro.fabric.asic import (
    BASELINE_AREA_UM2,
    BASELINE_POWER_MW,
    AsicEstimate,
    asic_extension_estimate,
    cache_area_um2,
    fifo_area_um2,
    flexcore_common_estimate,
    network_gates,
    regfile_area_um2,
    sram_area_um2,
)
from repro.fabric.logic import LogicNetwork, Prim, Primitive
from repro.fabric.mapping import MappingResult, map_network
from repro.fabric.power import (
    DEFAULT_STATIC_PROBABILITY,
    DEFAULT_TOGGLE_RATE,
    fpga_power_mw,
)
from repro.fabric.synthesis import (
    SynthesisReport,
    baseline_report,
    synthesize_asic,
    synthesize_common,
    synthesize_fabric,
)
from repro.fabric.timing import (
    ASIC_BASELINE_MHZ,
    asic_fmax_mhz,
    fpga_fmax_mhz,
    supported_clock_ratio,
)

__all__ = [
    "ASIC_BASELINE_MHZ",
    "AsicEstimate",
    "BASELINE_AREA_UM2",
    "BASELINE_POWER_MW",
    "DEFAULT_STATIC_PROBABILITY",
    "DEFAULT_TOGGLE_RATE",
    "KUON_ROSE_UM2_PER_LUT",
    "LogicNetwork",
    "MappingResult",
    "Prim",
    "Primitive",
    "SynthesisReport",
    "asic_extension_estimate",
    "asic_fmax_mhz",
    "baseline_report",
    "cache_area_um2",
    "fabric_capacity_luts",
    "fifo_area_um2",
    "flexcore_common_estimate",
    "fpga_area_um2",
    "fpga_fmax_mhz",
    "fpga_power_mw",
    "map_network",
    "network_gates",
    "regfile_area_um2",
    "sram_area_um2",
    "synthesize_asic",
    "synthesize_common",
    "synthesize_fabric",
]
