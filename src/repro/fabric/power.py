"""Power models.

FPGA side: the paper used the Xilinx Virtex-5 power spreadsheet with a
fixed toggle rate of 0.1 and static probability of 0.5.  We use the
same two-term structure the spreadsheet produces — a static + clock-
tree floor plus a dynamic term proportional to (LUTs x frequency x
toggle rate).  The two coefficients are fitted to the four fabric
power figures of Table III (the fit reproduces all four within 1 mW):

    P(mW) = 14.9 + 2.047e-3 * LUTs * f_MHz * toggle

ASIC side: a baseline Leon3 floor (365 mW at 465 MHz) plus per-
component adders for SRAM macros, FIFOs and logic; constants live in
:mod:`repro.fabric.asic`.
"""

from __future__ import annotations

from repro.fabric.mapping import MappingResult

#: Fitted Virtex-5 spreadsheet coefficients (see module docstring).
FPGA_STATIC_MW = 14.9
FPGA_DYNAMIC_MW_PER_LUT_MHZ_TOGGLE = 2.047e-3

#: The paper's fixed switching assumptions.
DEFAULT_TOGGLE_RATE = 0.1
DEFAULT_STATIC_PROBABILITY = 0.5

#: ASIC anchors (Table III).
ASIC_BASELINE_MW = 365.0


def fpga_power_mw(
    mapping: MappingResult,
    freq_mhz: float,
    toggle_rate: float = DEFAULT_TOGGLE_RATE,
) -> float:
    """Spreadsheet-style power of a mapped extension at ``freq_mhz``."""
    dynamic = (
        FPGA_DYNAMIC_MW_PER_LUT_MHZ_TOGGLE
        * mapping.luts
        * freq_mhz
        * toggle_rate
    )
    return FPGA_STATIC_MW + dynamic
