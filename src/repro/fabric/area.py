"""Silicon-area models.

FPGA side — the paper's exact method (Section V-A): "the area of a CLB
tile with 10 6-input LUTs in the 65nm technology node is approximately
8,069 µm^2 [Kuon and Rose].  We used this estimate of 807 µm^2 per LUT
and multiplied it by the total number of LUTs."

ASIC side — per-component models (standard-cell logic, SRAM macros,
FIFO macros, register files) with constants calibrated against the
Table III anchors; see :mod:`repro.fabric.asic`.
"""

from __future__ import annotations

from repro.fabric.mapping import MappingResult

#: Kuon-Rose 65 nm CLB tile: 8069 um^2 per 10-LUT tile.
KUON_ROSE_UM2_PER_LUT = 807.0


def fpga_area_um2(mapping: MappingResult) -> float:
    """Fabric area of a mapped extension, Kuon-Rose style."""
    return mapping.luts * KUON_ROSE_UM2_PER_LUT


def fabric_capacity_luts(fabric_area_um2: float) -> int:
    """How many LUTs fit in a given fabric provision (used to check
    the paper's claim that all extensions fit in a 0.4 mm^2 fabric)."""
    return int(fabric_area_um2 // KUON_ROSE_UM2_PER_LUT)
