"""Synthesis driver: one call per implementation target.

Combines the mapping, timing, area and power models into the rows of
Table III.  ``synthesize_fabric`` is the Synplify-Pro/ISE replacement
(extension on the reconfigurable fabric); ``synthesize_asic`` is the
Design-Compiler replacement (extension integrated in standard cells).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fabric.area import fpga_area_um2
from repro.fabric.asic import (
    BASELINE_AREA_UM2,
    BASELINE_POWER_MW,
    AsicEstimate,
    asic_extension_estimate,
    flexcore_common_estimate,
)
from repro.fabric.mapping import MappingResult, map_network
from repro.fabric.power import DEFAULT_TOGGLE_RATE, fpga_power_mw
from repro.fabric.timing import (
    ASIC_BASELINE_MHZ,
    TAP_BITS,
    asic_fmax_mhz,
    fpga_fmax_mhz,
    supported_clock_ratio,
)


@dataclass(frozen=True)
class SynthesisReport:
    """One row of Table III."""

    name: str
    target: str  # "fabric" | "asic" | "baseline" | "common"
    fmax_mhz: float
    area_um2: float
    area_overhead: float  # fraction of the baseline Leon3 area
    power_mw: float
    power_overhead: float
    luts: int = 0

    @property
    def clock_ratio(self) -> float:
        """The coarse fabric:core ratio this target can sustain."""
        return supported_clock_ratio(self.fmax_mhz, ASIC_BASELINE_MHZ)


def baseline_report() -> SynthesisReport:
    """The unmodified Leon3 with 32-KB L1 caches."""
    return SynthesisReport(
        name="baseline",
        target="baseline",
        fmax_mhz=ASIC_BASELINE_MHZ,
        area_um2=BASELINE_AREA_UM2,
        area_overhead=0.0,
        power_mw=BASELINE_POWER_MW,
        power_overhead=0.0,
    )


def synthesize_fabric(
    extension, toggle_rate: float = DEFAULT_TOGGLE_RATE
) -> SynthesisReport:
    """Map one extension onto the reconfigurable fabric."""
    mapping: MappingResult = map_network(extension.hardware())
    fmax = fpga_fmax_mhz(mapping)
    area = fpga_area_um2(mapping)
    power = fpga_power_mw(mapping, fmax, toggle_rate)
    return SynthesisReport(
        name=extension.name,
        target="fabric",
        fmax_mhz=fmax,
        area_um2=area,
        area_overhead=area / BASELINE_AREA_UM2,
        power_mw=power,
        power_overhead=power / BASELINE_POWER_MW,
        luts=mapping.luts,
    )


def synthesize_asic(extension) -> SynthesisReport:
    """Integrate one extension into the core as full custom ASIC."""
    estimate: AsicEstimate = asic_extension_estimate(extension)
    return SynthesisReport(
        name=extension.name,
        target="asic",
        fmax_mhz=asic_fmax_mhz(extension.name),
        area_um2=BASELINE_AREA_UM2 + estimate.total_um2,
        area_overhead=estimate.total_um2 / BASELINE_AREA_UM2,
        power_mw=BASELINE_POWER_MW + estimate.power_mw,
        power_overhead=estimate.power_mw / BASELINE_POWER_MW,
    )


def synthesize_common() -> SynthesisReport:
    """The dedicated FlexCore modules (interface + meta cache +
    shadow register file) shared by every fabric extension."""
    estimate = flexcore_common_estimate()
    return SynthesisReport(
        name="common",
        target="common",
        fmax_mhz=asic_fmax_mhz("common", TAP_BITS["common"]),
        area_um2=BASELINE_AREA_UM2 + estimate.total_um2,
        area_overhead=estimate.total_um2 / BASELINE_AREA_UM2,
        power_mw=BASELINE_POWER_MW + estimate.power_mw,
        power_overhead=estimate.power_mw / BASELINE_POWER_MW,
    )
