"""Clock-frequency estimation for fabric and ASIC implementations.

Constants are calibrated once against the synthesis anchors the paper
publishes (Section V-A / Table III) and then applied uniformly:

* FPGA: a 65 nm Virtex-5-class LUT+route level costs ~0.75 ns, the
  sequencing overhead (FF clk->q + setup) ~0.6 ns, and routing delay
  derates with design size (placement congestion).
* ASIC: the baseline Leon3 closes at 465 MHz; adding an extension taps
  internal pipeline signals, loading them and costing a small amount
  of slack proportional to how many bits are tapped.
"""

from __future__ import annotations

from repro.fabric.mapping import MappingResult

#: FPGA timing constants (65 nm Virtex-5 class).
FPGA_FF_OVERHEAD_NS = 0.6
FPGA_LEVEL_NS = 0.75

#: ASIC timing anchors (65 nm IBM library, Table III).
ASIC_BASELINE_MHZ = 465.0
#: frequency loss per tapped pipeline-signal bit (Table III: light
#: taps like UMC/SEC lose ~2 MHz, value-heavy taps like DIFT/BC ~9).
ASIC_TAP_PENALTY_MHZ_PER_BIT = 0.05

#: Signal bits each extension taps from the core pipeline.  UMC needs
#: the address and opcode; DIFT/BC also need register numbers and the
#: store value; SEC needs operands/result but taps them at the commit
#: stage where they are already collected.
TAP_BITS = {
    "umc": 40,
    "dift": 180,
    "bc": 180,
    "sec": 40,
    "common": 140,  # the generic FlexCore interface (Table II packet)
}


def fpga_fmax_mhz(mapping: MappingResult) -> float:
    """Achievable fabric clock for a mapped extension."""
    period_ns = (
        FPGA_FF_OVERHEAD_NS
        + mapping.critical_stage_depth
        * FPGA_LEVEL_NS
        * mapping.routing_congestion
    )
    return 1000.0 / period_ns


def asic_fmax_mhz(name: str, tap_bits: int | None = None) -> float:
    """Core clock after integrating an extension (or the FlexCore
    interface) into the ASIC flow."""
    if tap_bits is None:
        tap_bits = TAP_BITS.get(name, 100)
    return ASIC_BASELINE_MHZ - ASIC_TAP_PENALTY_MHZ_PER_BIT * tap_bits


def supported_clock_ratio(fmax_mhz: float, core_mhz: float) -> float:
    """The coarse fabric:core clock ratio a synthesised extension can
    sustain — the paper runs extensions at 1x, 1/2x, or 1/4x."""
    for ratio in (1.0, 0.5, 0.25, 0.125):
        if fmax_mhz >= core_mhz * ratio * 0.98:  # small rounding slack
            return ratio
    return 0.0625
