"""Structural hardware description (logic-network IR).

Each monitoring extension describes its datapath as a network of
coarse primitives.  Two cost models consume the same description:

* :mod:`repro.fabric.mapping` — technology-maps it onto 6-input LUTs
  (Virtex-5 style) for the FlexCore fabric numbers of Table III, and
* :mod:`repro.fabric.asic` — maps it onto a 65 nm standard-cell
  estimate for the full-ASIC rows.

This mirrors the paper's own methodology, which estimated FPGA area
from LUT counts (Kuon-Rose tile area) and ASIC area from Design
Compiler synthesis; we replace both tools with calibrated per-
primitive cost functions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Prim(enum.Enum):
    """Primitive kinds understood by the cost models."""

    GATE = "gate"  # 2-input gate array, `width` bits wide
    REDUCE = "reduce"  # AND/OR/XOR reduction of `width` bits to 1
    MUX = "mux"  # `ways`-to-1 multiplexer, `width` bits wide
    ADDER = "adder"  # ripple/carry-chain adder, `width` bits
    COMPARATOR_EQ = "cmp_eq"  # equality comparator, `width` bits
    COMPARATOR_MAG = "cmp_mag"  # magnitude comparator, `width` bits
    SHIFTER = "shifter"  # barrel shifter, `width` bits
    DECODER = "decoder"  # `width`-bit input full decoder
    REGISTER = "register"  # flip-flops, `width` bits (x count)
    LUTRAM = "lutram"  # distributed RAM, depth x width
    SRAM = "sram"  # dedicated SRAM macro, depth x width
    MOD_REDUCE = "mod_reduce"  # Mersenne-modulus folding tree
    MULTIPLIER = "multiplier"  # combinational multiplier, width x width


@dataclass(frozen=True)
class Primitive:
    """One primitive instance group in a network."""

    kind: Prim
    width: int = 1  # bit width (or input bits for DECODER)
    count: int = 1  # number of identical instances
    ways: int = 2  # mux fan-in
    depth: int = 0  # RAM depth (entries)
    label: str = ""

    def __post_init__(self):
        if self.width < 1 or self.count < 1:
            raise ValueError("primitive width/count must be positive")


@dataclass
class LogicNetwork:
    """A named collection of primitives plus pipeline structure.

    ``pipeline_stages`` is the number of register stages the extension
    designer inserted ("extensions are moderately pipelined (3 to 6
    stages)", Section IV); the timing model divides the combinational
    depth across stages when estimating the achievable clock.
    """

    name: str
    primitives: list[Primitive] = field(default_factory=list)
    pipeline_stages: int = 3
    #: toggle activity used by the power models (the paper fixes 0.1).
    toggle_rate: float = 0.1
    notes: str = ""

    def add(self, kind: Prim, **kwargs) -> "LogicNetwork":
        self.primitives.append(Primitive(kind=kind, **kwargs))
        return self

    def total(self, kind: Prim) -> int:
        """Total instance count of one primitive kind."""
        return sum(p.count for p in self.primitives if p.kind == kind)

    def flipflop_bits(self) -> int:
        return sum(
            p.width * p.count
            for p in self.primitives
            if p.kind == Prim.REGISTER
        )

    def sram_bits(self) -> int:
        return sum(
            p.width * p.depth * p.count
            for p in self.primitives
            if p.kind == Prim.SRAM
        )
