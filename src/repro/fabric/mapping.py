"""Technology mapping of logic networks onto 6-input LUTs.

Models the Synplify-Pro-to-Virtex-5 flow of Section V-A with
per-primitive cost functions: each primitive contributes a LUT count
and a combinational-depth contribution (levels of LUT logic).  The
depth, divided across the extension's pipeline stages, feeds the
frequency estimate in :mod:`repro.fabric.timing`.

A Virtex-5 6-LUT has a single 6-input function generator usable as two
outputs when five or fewer inputs are shared (LUT6_2), which is where
the "two 2-input gates per LUT" packing below comes from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.fabric.logic import LogicNetwork, Prim, Primitive


def _reduce_luts(width: int, fan_in: int = 6) -> int:
    """LUTs of a reduction tree of ``width`` inputs."""
    total = 0
    remaining = width
    while remaining > 1:
        level = math.ceil(remaining / fan_in)
        total += level
        remaining = level
    return total


def _lut_cost(prim: Primitive) -> int:
    """6-LUT count for one primitive instance."""
    width = prim.width
    if prim.kind == Prim.GATE:
        # Two independent 2-input gates pack into one LUT6_2.
        return math.ceil(width / 2)
    if prim.kind == Prim.REDUCE:
        return _reduce_luts(width)
    if prim.kind == Prim.MUX:
        # A LUT6 implements a 4:1 mux per bit; wider muxes cascade.
        luts_per_bit = math.ceil(max(prim.ways - 1, 1) / 3)
        return width * luts_per_bit
    if prim.kind == Prim.ADDER:
        # One LUT per bit ahead of the dedicated carry chain.
        return width
    if prim.kind == Prim.COMPARATOR_EQ:
        # Three XNOR pairs per LUT, then an AND-reduce tree.
        pairs = math.ceil(width / 3)
        return pairs + _reduce_luts(pairs)
    if prim.kind == Prim.COMPARATOR_MAG:
        return math.ceil(width / 2) + 2
    if prim.kind == Prim.SHIFTER:
        # log2(width) stages of 2:1 muxes, two bits per LUT6_2.
        stages = max(1, math.ceil(math.log2(width)))
        return stages * math.ceil(width / 2)
    if prim.kind == Prim.DECODER:
        # Full decode: one LUT per output for <= 6 input bits.
        return (1 << width) * math.ceil(width / 6)
    if prim.kind == Prim.REGISTER:
        return 0  # flip-flops pack into LUT sites; counted separately
    if prim.kind == Prim.LUTRAM:
        # SLICEM distributed RAM: 64 bits per LUT.
        return math.ceil(prim.depth * width / 64)
    if prim.kind == Prim.SRAM:
        return 0  # dedicated macro, not fabric LUTs
    if prim.kind == Prim.MOD_REDUCE:
        # Fold `width` bits into a 3-bit residue: a carry-save tree of
        # 3-bit adders, ~width/3 adders of 3 bits each plus correction.
        return width + 4
    if prim.kind == Prim.MULTIPLIER:
        return width * width
    raise ValueError(f"unknown primitive kind {prim.kind}")


def _depth_cost(prim: Primitive) -> float:
    """Combinational depth contribution, in LUT levels."""
    width = prim.width
    if prim.kind == Prim.GATE:
        return 1.0
    if prim.kind == Prim.REDUCE:
        return max(1.0, math.ceil(math.log(max(width, 2), 6)))
    if prim.kind == Prim.MUX:
        # A LUT6 is a 4:1 mux: log4(ways) levels.
        return max(1.0, math.ceil(math.log(max(prim.ways, 2), 4)))
    if prim.kind == Prim.ADDER:
        # Carry chains are fast; treat 16 bits of carry as one level.
        return 2.0 + width / 16.0
    if prim.kind == Prim.COMPARATOR_EQ:
        if width <= 3:
            return 1.0
        return 1.0 + max(1.0, math.log(max(width / 3, 2), 6))
    if prim.kind == Prim.COMPARATOR_MAG:
        return 2.0 + width / 16.0
    if prim.kind == Prim.SHIFTER:
        return max(1.0, math.ceil(math.log2(width)) / 2.0)
    if prim.kind == Prim.DECODER:
        return 1.0
    if prim.kind in (Prim.REGISTER, Prim.SRAM):
        return 0.0
    if prim.kind == Prim.LUTRAM:
        return 1.0
    if prim.kind == Prim.MOD_REDUCE:
        return 1.0 + math.log(max(width / 3, 2), 2)
    if prim.kind == Prim.MULTIPLIER:
        return float(width)
    raise ValueError(f"unknown primitive kind {prim.kind}")


def _critical_stage_depth(depths: list[float], stages: int) -> float:
    """Distribute the primitive groups over the pipeline stages.

    Models a designer pipelining the datapath: units are packed into
    ``stages`` register-bounded stages (greedy longest-processing-time
    bin packing); the critical stage is the deepest bin.
    """
    bins = [0.0] * max(stages, 1)
    for depth in sorted(depths, reverse=True):
        bins[bins.index(min(bins))] += depth
    return max(bins)


@dataclass(frozen=True)
class MappingResult:
    """Outcome of technology mapping one network."""

    name: str
    luts: int
    flipflops: int
    logic_depth: float  # total combinational levels, all groups summed
    critical_stage_depth: float  # deepest pipeline stage, in LUT levels
    pipeline_stages: int

    @property
    def sites(self) -> int:
        """Occupied LUT/FF sites: each LUT site carries one FF, so the
        footprint is whichever resource runs out first."""
        return max(self.luts, self.flipflops)

    @property
    def depth_per_stage(self) -> float:
        return self.logic_depth / max(self.pipeline_stages, 1)

    @property
    def routing_congestion(self) -> float:
        """Routing-delay derating that grows with design size — larger
        networks place and route worse on a real fabric."""
        return 1.0 + self.luts / 2000.0


def map_network(network: LogicNetwork) -> MappingResult:
    """Map a logic network onto 6-LUTs."""
    luts = 0
    depths: list[float] = []
    for prim in network.primitives:
        luts += _lut_cost(prim) * prim.count
        # Instances of the same primitive group operate in parallel;
        # their depth counts once per group.
        depth = _depth_cost(prim)
        if depth > 0:
            depths.append(depth)
    return MappingResult(
        name=network.name,
        luts=luts,
        flipflops=network.flipflop_bits(),
        logic_depth=sum(depths),
        critical_stage_depth=_critical_stage_depth(
            depths, network.pipeline_stages
        ),
        pipeline_stages=network.pipeline_stages,
    )
