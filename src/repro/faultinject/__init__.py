"""Fault-injection campaigns and dependability evaluation.

Measures how well the FlexCore monitoring extensions (UMC, DIFT, BC,
SEC, ...) actually *detect* run-time faults: deterministic DAVOS-style
campaigns inject faults drawn from composable fault models into
sandboxed, watchdog-guarded simulations and classify every run as
MASKED / DETECTED / SDC / CRASH / HANG (plus INFRA_FAILED for
runs quarantined by the supervised worker pool — infrastructure
trouble, not a simulation verdict).

Quick start::

    from repro.faultinject import Campaign, CampaignConfig

    report = Campaign(CampaignConfig(
        extension="sec", workload="crc32", faults=200, seed=1,
    )).run()
    print(report.format())

or, from the shell::

    python -m repro inject --extension sec --workload crc32 \\
        --faults 200 --seed 1
"""

from repro.faultinject.campaign import (
    OUTCOME_ORDER,
    Campaign,
    CampaignConfig,
    CampaignError,
    CampaignInterrupted,
    FaultResult,
    Outcome,
    run_campaign,
)
from repro.faultinject.models import (
    MODEL_CLASSES,
    AluResultBitFlip,
    FaultModel,
    FaultSpec,
    FifoDrop,
    GoldenProfile,
    LutConfigUpset,
    MemoryBitFlip,
    MetaBitFlip,
    PacketFieldCorruption,
    RegisterBitFlip,
    create_model,
)
from repro.faultinject.report import CoverageReport

__all__ = [
    "AluResultBitFlip",
    "Campaign",
    "CampaignConfig",
    "CampaignError",
    "CampaignInterrupted",
    "CoverageReport",
    "FaultModel",
    "FaultResult",
    "FaultSpec",
    "FifoDrop",
    "GoldenProfile",
    "LutConfigUpset",
    "MODEL_CLASSES",
    "MemoryBitFlip",
    "MetaBitFlip",
    "OUTCOME_ORDER",
    "Outcome",
    "PacketFieldCorruption",
    "RegisterBitFlip",
    "create_model",
    "run_campaign",
]
