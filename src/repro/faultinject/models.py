"""Composable fault models for simulation-based fault injection.

Each model describes one class of physical upset the FlexCore paper's
monitors are meant to catch (or survive): register-file bit flips,
memory and meta-data bit flips, trace-packet field corruption in the
core-fabric interface, forward-FIFO entry loss, and configuration
upsets in the fabric's LUT/CFGR state (the DAVOS/SBFI taxonomy).

A model separates *planning* from *arming*:

* :meth:`FaultModel.plan` draws one concrete :class:`FaultSpec` from
  the fault space using an explicit ``random.Random`` and the golden
  run's :class:`GoldenProfile` — all randomness flows through the rng,
  which is what makes campaigns bit-reproducible;
* :meth:`FaultModel.arm` installs the fault into a freshly built
  :class:`~repro.flexcore.system.FlexCoreSystem`, typically as a
  commit-record hook that fires at the planned dynamic instruction.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass

from repro.flexcore.cfgr import ForwardConfig
from repro.flexcore.system import FlexCoreSystem
from repro.isa.opcodes import ALU_CLASSES

#: cap on the number of distinct store addresses the profile keeps
#: (deterministic: always the *first* distinct addresses, in order).
MAX_PROFILE_ADDRESSES = 4096


class ProfileMark(tuple):
    """One warm-start landmark of the golden run: after ``instret``
    committed instructions (annulled slots included), exactly
    ``alu_commits`` of them were non-annulled ALU-class commits and
    ``forwarded`` trace packets had been delivered to the extension.

    A plain tuple subclass (not a NamedTuple) so cached profiles
    round-trip through the checkpoint codec as ordinary tuples.  The
    ``forwarded`` element is optional: profiles cached before it
    existed load as 2-tuples, whose marks simply cannot bound
    forwarded-indexed injection windows.
    """

    __slots__ = ()

    def __new__(cls, instret: int, alu_commits: int,
                forwarded: int | None = None):
        if forwarded is None:
            return super().__new__(cls,
                                   (int(instret), int(alu_commits)))
        return super().__new__(
            cls, (int(instret), int(alu_commits), int(forwarded))
        )

    @property
    def instret(self) -> int:
        return self[0]

    @property
    def alu_commits(self) -> int:
        return self[1]

    @property
    def forwarded(self) -> int | None:
        return self[2] if len(self) > 2 else None


@dataclass(frozen=True)
class FaultSpec:
    """One concrete, serialisable fault: a model name plus its
    parameters as a sorted tuple of (key, value) pairs (hashable and
    picklable, with a stable JSON rendering)."""

    model: str
    params: tuple[tuple[str, int | str], ...] = ()

    @classmethod
    def make(cls, model: str, **params: int | str) -> "FaultSpec":
        return cls(model, tuple(sorted(params.items())))

    def get(self, key: str, default: int | str | None = None):
        for name, value in self.params:
            if name == key:
                return value
        return default

    def as_dict(self) -> dict:
        return {"model": self.model, **dict(self.params)}

    def __str__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.params)
        return f"{self.model}({inner})"


@dataclass(frozen=True)
class GoldenProfile:
    """What the fault planner knows about the fault-free run."""

    instructions: int
    cycles: int
    alu_commits: int
    load_commits: int
    store_commits: int
    forwarded: int
    #: distinct word-aligned addresses the program stored to (capped).
    store_addresses: tuple[int, ...]
    text_base: int
    text_size: int
    data_base: int
    data_size: int
    has_memory_tags: bool
    has_shadow_tags: bool
    memory_tag_bits: int
    register_tag_bits: int
    num_physical_registers: int
    #: output signature of the golden run (SDC reference).
    output: str
    #: warm-start landmarks, ascending by instret (see
    #: :class:`ProfileMark`).  Defaults empty so profiles cached
    #: before the field existed keep loading — campaigns simply run
    #: every fault cold until the profile is regenerated.
    marks: tuple[ProfileMark, ...] = ()

    def data_words(self) -> int:
        return max(self.data_size // 4, 0)

    def address_pool(self) -> tuple[int, ...]:
        """Candidate word addresses for memory-targeted faults: the
        stores the program actually performed, else its static data
        words, else its text words (an instruction-memory upset)."""
        if self.store_addresses:
            return self.store_addresses
        if self.data_words():
            return tuple(
                self.data_base + 4 * i for i in range(self.data_words())
            )
        return tuple(
            self.text_base + 4 * i for i in range(self.text_size // 4)
        )


def _rebase_index(spec: FaultSpec, index: int) -> FaultSpec:
    """``spec`` with its dynamic ``index`` parameter replaced."""
    params = dict(spec.params)
    params["index"] = index
    return FaultSpec(spec.model, tuple(sorted(params.items())))


class FaultModel(abc.ABC):
    """One class of injectable fault."""

    #: registry key and report label.
    name: str = "base"
    description: str = ""
    #: which golden-run counter the model's ``index`` parameter walks:
    #: ``"commits"`` (every committed instruction, annulled slots
    #: included), ``"alu"`` (non-annulled ALU-class commits) or
    #: ``"forwarded"`` (packets delivered to the extension).  ``None``
    #: means the model arms at time zero, so there is no fault-free
    #: prefix a warm-started run could skip.
    warm_unit: str | None = None

    def applicable(self, profile: GoldenProfile) -> bool:
        """Whether this model has a non-empty fault space here."""
        return profile.instructions > 0

    # -- warm start ---------------------------------------------------------

    def warm_bound(self, spec: FaultSpec) -> int:
        """Exclusive upper bound on the instret a warm-started run may
        fork from.  The fault provably fires at or after this many
        committed instructions (every counter the index may walk
        advances at most once per instruction), so restoring a prefix
        snapshot strictly below the bound and arming via
        :meth:`arm_warm` reproduces the cold run bit-exactly.
        ``0`` disables warm-starting for this spec."""
        if self.warm_unit is None:
            return 0
        return int(spec.get("index", 0))

    def warm_settle(self, spec: FaultSpec) -> int:
        """Absolute instret by which the armed fault has provably
        finished mutating the run (``0`` = not statically known).
        Past it the injection hook is inert — a pure counter — so the
        remainder of the run can continue hook-free on a fused engine
        with bit-identical results.  Only ``"commits"``-indexed models
        know this statically: their trigger fires *during* commit
        ``index``, so the window closes when ``index`` instructions
        have committed."""
        if self.warm_unit == "commits":
            return int(spec.get("index", 0))
        return 0

    def arm_warm(self, system: FlexCoreSystem, spec: FaultSpec,
                 mark: ProfileMark) -> None:
        """Arm ``spec`` into a system just restored from the prefix
        snapshot described by ``mark``, rebasing the dynamic index
        past the counter value the skipped prefix already consumed."""
        if self.warm_unit == "commits":
            skipped = mark.instret
        elif self.warm_unit == "alu":
            skipped = mark.alu_commits
        elif self.warm_unit == "forwarded":
            # Packets are serviced synchronously at commit, so the
            # restored interface counter *is* the prefix's delivery
            # count.
            skipped = system.interface.stats.forwarded
        else:
            raise ValueError(
                f"model {self.name!r} cannot warm-start"
            )
        index = int(spec.get("index"))
        if skipped >= index:
            raise ValueError(
                f"prefix snapshot at instret {mark.instret} overruns "
                f"the {self.name} trigger (index {index}, "
                f"{skipped} {self.warm_unit} already consumed)"
            )
        self.arm(system, _rebase_index(spec, index - skipped))

    @abc.abstractmethod
    def plan(self, rng: random.Random, profile: GoldenProfile) -> FaultSpec:
        """Draw one concrete fault from the model's fault space."""

    @abc.abstractmethod
    def arm(self, system: FlexCoreSystem, spec: FaultSpec) -> None:
        """Install the fault into a freshly built system."""

    # -- shared helpers -----------------------------------------------------

    @staticmethod
    def at_commit(system: FlexCoreSystem, index: int, action) -> None:
        """Run ``action(record)`` at the ``index``-th committed
        instruction (1-based, counting annulled slots too)."""
        state = {"n": 0}

        def hook(record):
            state["n"] += 1
            if state["n"] == index:
                action(record)

        system.record_hooks.append(hook)


class RegisterBitFlip(FaultModel):
    """Transient single-bit upset in the architectural register file,
    striking between two instructions of the dynamic stream."""

    name = "register"
    description = "register-file single-bit flip"
    warm_unit = "commits"

    def plan(self, rng: random.Random, profile: GoldenProfile) -> FaultSpec:
        return FaultSpec.make(
            self.name,
            index=rng.randrange(1, profile.instructions + 1),
            reg=rng.randrange(1, 32),  # %g0 is hard-wired zero
            bit=rng.randrange(32),
        )

    def arm(self, system: FlexCoreSystem, spec: FaultSpec) -> None:
        reg, bit = spec.get("reg"), spec.get("bit")
        regs = system.cpu.regs

        def flip(record):
            regs.write(reg, regs.read(reg) ^ (1 << bit))

        self.at_commit(system, spec.get("index"), flip)


class MemoryBitFlip(FaultModel):
    """Single-bit upset in a data (or instruction) memory word the
    program uses, struck at a random point of the dynamic stream."""

    name = "memory"
    description = "memory single-bit flip"
    warm_unit = "commits"

    def applicable(self, profile: GoldenProfile) -> bool:
        return profile.instructions > 0 and bool(profile.address_pool())

    def plan(self, rng: random.Random, profile: GoldenProfile) -> FaultSpec:
        return FaultSpec.make(
            self.name,
            index=rng.randrange(1, profile.instructions + 1),
            addr=rng.choice(profile.address_pool()),
            bit=rng.randrange(32),
        )

    def arm(self, system: FlexCoreSystem, spec: FaultSpec) -> None:
        addr, bit = spec.get("addr"), spec.get("bit")
        memory = system.memory

        def flip(record):
            memory.write_word(addr, memory.read_word(addr) ^ (1 << bit))

        self.at_commit(system, spec.get("index"), flip)


class MetaBitFlip(FaultModel):
    """Single-bit upset in the *monitor's* meta-data state — a memory
    tag word or a shadow register — modelling a strike on the fabric's
    embedded meta-data storage (Section III-E)."""

    name = "meta"
    description = "monitor meta-data single-bit flip"
    warm_unit = "commits"

    def applicable(self, profile: GoldenProfile) -> bool:
        return profile.instructions > 0 and (
            profile.has_memory_tags or profile.has_shadow_tags
        )

    def plan(self, rng: random.Random, profile: GoldenProfile) -> FaultSpec:
        targets = []
        if profile.has_memory_tags and profile.address_pool():
            targets.append("mem")
        if profile.has_shadow_tags:
            targets.append("shadow")
        target = rng.choice(targets)
        index = rng.randrange(1, profile.instructions + 1)
        if target == "mem":
            return FaultSpec.make(
                self.name, target=target, index=index,
                addr=rng.choice(profile.address_pool()),
                bit=rng.randrange(max(profile.memory_tag_bits, 1)),
            )
        return FaultSpec.make(
            self.name, target=target, index=index,
            reg=rng.randrange(1, profile.num_physical_registers),
            bit=rng.randrange(max(profile.register_tag_bits, 1)),
        )

    def arm(self, system: FlexCoreSystem, spec: FaultSpec) -> None:
        extension = system.extension
        bit = spec.get("bit")
        if spec.get("target") == "mem":
            addr = spec.get("addr")
            tags = extension.mem_tags

            def flip(record):
                tags.write(addr, tags.read(addr) ^ (1 << bit))
        else:
            reg = spec.get("reg")
            shadow = extension.shadow

            def flip(record):
                shadow.write(reg, shadow.read(reg) ^ (1 << bit))

        self.at_commit(system, spec.get("index"), flip)


class PacketFieldCorruption(FaultModel):
    """Single-bit corruption of one trace-packet field as the commit
    stage assembles it (Table II) — the monitor sees a different
    instruction than the core executed."""

    name = "packet"
    description = "trace-packet field single-bit corruption"
    warm_unit = "commits"

    FIELDS = ("addr", "result", "srcv1", "srcv2", "cond", "branch")

    def plan(self, rng: random.Random, profile: GoldenProfile) -> FaultSpec:
        field = rng.choice(self.FIELDS)
        bits = {"cond": 4, "branch": 1}.get(field, 32)
        return FaultSpec.make(
            self.name,
            index=rng.randrange(1, profile.instructions + 1),
            field=field,
            bit=rng.randrange(bits),
        )

    def arm(self, system: FlexCoreSystem, spec: FaultSpec) -> None:
        field, bit = spec.get("field"), spec.get("bit")

        def corrupt(record):
            if field == "branch":
                record.branch_taken = not record.branch_taken
            else:
                setattr(record, field, getattr(record, field) ^ (1 << bit))

        self.at_commit(system, spec.get("index"), corrupt)


class AluResultBitFlip(FaultModel):
    """The paper's SEC scenario: a particle strike on the ALU output
    latch flips one bit of one dynamic ALU instruction's result."""

    name = "alu-result"
    description = "ALU result single-bit flip"
    warm_unit = "alu"

    def applicable(self, profile: GoldenProfile) -> bool:
        return profile.alu_commits > 0

    def plan(self, rng: random.Random, profile: GoldenProfile) -> FaultSpec:
        return FaultSpec.make(
            self.name,
            index=rng.randrange(1, profile.alu_commits + 1),
            bit=rng.randrange(32),
        )

    def arm(self, system: FlexCoreSystem, spec: FaultSpec) -> None:
        index, bit = spec.get("index"), spec.get("bit")
        state = {"alu": 0}

        def flip(record):
            if record.instr_class in ALU_CLASSES and not record.annulled:
                state["alu"] += 1
                if state["alu"] == index:
                    record.result ^= 1 << bit

        system.record_hooks.append(flip)


class FifoDrop(FaultModel):
    """Loss of one forward-FIFO entry: the Nth forwarded packet never
    reaches the fabric, so the monitor misses that instruction."""

    name = "fifo-drop"
    description = "forward-FIFO entry drop"
    warm_unit = "forwarded"

    def applicable(self, profile: GoldenProfile) -> bool:
        return profile.forwarded > 0

    def plan(self, rng: random.Random, profile: GoldenProfile) -> FaultSpec:
        return FaultSpec.make(
            self.name, index=rng.randrange(1, profile.forwarded + 1)
        )

    def arm(self, system: FlexCoreSystem, spec: FaultSpec) -> None:
        from repro.extensions.base import PacketOutcome

        index = spec.get("index")
        extension = system.extension
        real_process = extension.process
        state = {"n": 0}

        def process(packet):
            state["n"] += 1
            if state["n"] == index:
                return PacketOutcome()  # the packet vanished in flight
            return real_process(packet)

        extension.process = process


class LutConfigUpset(FaultModel):
    """Configuration upset in the fabric: one bit of the 64-bit CFGR
    forwarding register flips, silently changing which instruction
    types the monitor sees (and whether commits wait for acks)."""

    name = "lut-config"
    description = "CFGR/LUT configuration single-bit upset"

    def plan(self, rng: random.Random, profile: GoldenProfile) -> FaultSpec:
        return FaultSpec.make(self.name, bit=rng.randrange(64))

    def arm(self, system: FlexCoreSystem, spec: FaultSpec) -> None:
        interface = system.interface
        word = interface.cfgr.encode() ^ (1 << spec.get("bit"))
        interface.cfgr = ForwardConfig.decode(word)


#: Built-in fault models, in report order.
MODEL_CLASSES: dict[str, type[FaultModel]] = {
    model.name: model
    for model in (
        RegisterBitFlip,
        MemoryBitFlip,
        MetaBitFlip,
        PacketFieldCorruption,
        AluResultBitFlip,
        FifoDrop,
        LutConfigUpset,
    )
}


def create_model(name: str) -> FaultModel:
    """Instantiate a built-in fault model by name."""
    try:
        return MODEL_CLASSES[name]()
    except KeyError:
        known = ", ".join(MODEL_CLASSES)
        raise ValueError(f"unknown fault model {name!r} (known: {known})")
