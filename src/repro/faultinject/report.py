"""Coverage reports for fault-injection campaigns.

The report is deliberately free of wall-clock timestamps and other
environment-dependent fields: re-running a campaign with the same
seed must produce a bit-identical console report and JSON document,
which is what makes campaigns diffable across commits and usable as
regression artifacts in CI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.faultinject.campaign import (
    OUTCOME_ORDER,
    CampaignConfig,
    FaultResult,
    Outcome,
)
from repro.faultinject.models import GoldenProfile
from repro.telemetry.metrics import Histogram
from repro.util.stats import wilson_half_width, wilson_interval

#: Histogram bounds for per-run cycle counts, as multiples of the
#: golden run's cycles.  Relative bounds keep the aggregation
#: meaningful across workloads of very different sizes while staying
#: deterministic (the golden cycle count is part of the profile).
RELATIVE_CYCLE_BUCKETS = (0.25, 0.5, 1.0, 2.0, 4.0)

#: the ``infra.*`` counter names, in report order.  Mirrors
#: :meth:`repro.engine.supervisor.PoolStats.as_dict`.
INFRA_KEYS = ("retries", "respawns", "timeouts", "crashes",
              "quarantined", "degraded")


def zero_infra() -> dict:
    """The all-healthy infra block (every counter zero)."""
    return {key: 0 for key in INFRA_KEYS}


def sum_infra(records) -> dict:
    """Deterministically fold journaled infra records into one block.

    Unknown keys are ignored and missing keys read as zero, so old
    journals replay cleanly.
    """
    total = zero_infra()
    for record in records:
        for key in INFRA_KEYS:
            total[key] += int(record.get(key, 0))
    return total


@dataclass(frozen=True)
class CoverageReport:
    """Aggregated outcome of one campaign."""

    config: CampaignConfig
    profile: GoldenProfile
    results: tuple[FaultResult, ...]
    #: cumulative supervised-pool counters, replayed from the
    #: campaign journal's ``infra`` records (all zeros for
    #: un-journaled campaigns, whose live counters stay on stderr) —
    #: a pure function of the journal, so a resumed campaign reports
    #: the infra history it actually lived through.
    infra: dict = field(default_factory=zero_infra)

    # -- aggregation --------------------------------------------------------

    @classmethod
    def build(
        cls,
        config: CampaignConfig,
        profile: GoldenProfile,
        results: tuple[FaultResult, ...],
        infra: dict | None = None,
    ) -> "CoverageReport":
        return cls(config=config, profile=profile, results=results,
                   infra=dict(infra) if infra else zero_infra())

    def counts(self) -> dict[Outcome, int]:
        """Total runs per outcome (every outcome present, maybe 0)."""
        counts = {outcome: 0 for outcome in OUTCOME_ORDER}
        for result in self.results:
            counts[result.outcome] += 1
        return counts

    def by_model(self) -> dict[str, dict[Outcome, int]]:
        """Outcome counts per fault model, in first-seen order."""
        table: dict[str, dict[Outcome, int]] = {}
        for result in self.results:
            row = table.setdefault(
                result.spec.model,
                {outcome: 0 for outcome in OUTCOME_ORDER},
            )
            row[result.outcome] += 1
        return table

    @property
    def total(self) -> int:
        return len(self.results)

    @property
    def detection_coverage(self) -> float:
        """(Detected + recovered) / (all runs whose fault was *not*
        masked) — the dependability metric: of the faults that
        mattered, how many did the monitor catch before they became
        SDC/crash/hang?  A recovered fault was caught *and* survived,
        so it counts as covered.  INFRA_FAILED runs never executed to
        a verdict, so they are excluded from the denominator — a
        flaky machine must not be able to move the coverage number in
        either direction (the runs stay visible in the counts)."""
        counts = self.counts()
        effective = (self.total - counts[Outcome.MASKED]
                     - counts[Outcome.INFRA_FAILED])
        if effective == 0:
            return 1.0
        caught = counts[Outcome.DETECTED] + counts[Outcome.RECOVERED]
        return caught / effective

    @property
    def no_coverage(self) -> bool:
        """True when the coverage number is vacuous *because of the
        infrastructure*: at least one run was quarantined and not a
        single run reached a non-masked verdict, so the
        detection-coverage denominator is empty.  "All faults masked
        with a healthy pool" is a legitimate (if suspicious) result
        and stays False; this flag exists so CI can distinguish "no
        coverage measured" (exit 3) from "coverage OK"."""
        counts = self.counts()
        effective = (self.total - counts[Outcome.MASKED]
                     - counts[Outcome.INFRA_FAILED])
        return counts[Outcome.INFRA_FAILED] > 0 and effective == 0

    def confidence(self) -> dict:
        """Per-outcome Wilson 95% confidence intervals.

        Rates are over *completed* runs: INFRA_FAILED runs never
        reached a verdict, so they contribute no trials — otherwise a
        flaky machine could tighten or widen the intervals.  The same
        numbers drive :class:`repro.explore.sampling.AdaptiveCampaign`'s
        stopping rule, so "the CI printed" and "the CI the sampler
        stopped on" are one computation.

        A pure function of the (index-sorted) results, bit-identical
        across straight, resumed, and service-job campaigns.
        """
        counts = self.counts()
        trials = self.total - counts[Outcome.INFRA_FAILED]
        outcomes: dict[str, dict] = {}
        for outcome in OUTCOME_ORDER:
            if outcome is Outcome.INFRA_FAILED:
                continue
            n = counts[outcome]
            low, high = wilson_interval(n, trials)
            outcomes[outcome.value] = {
                "count": n,
                "rate": round(n / trials, 6) if trials else 0.0,
                "low": round(low, 6),
                "high": round(high, 6),
                "half_width": round(wilson_half_width(n, trials), 6),
            }
        effective = trials - counts[Outcome.MASKED]
        caught = counts[Outcome.DETECTED] + counts[Outcome.RECOVERED]
        cov_low, cov_high = wilson_interval(caught, effective)
        return {
            "level": 0.95,
            "trials": trials,
            "outcomes": outcomes,
            "detection_coverage": {
                "low": round(cov_low, 6),
                "high": round(cov_high, 6),
                "half_width": round(
                    wilson_half_width(caught, effective), 6),
            },
        }

    def metrics(self) -> dict:
        """Deterministic per-fault metric aggregation.

        Everything here is computed from the (index-sorted) result
        records, never from live run state, so a campaign resumed from
        a journal aggregates to the bit-identical document an
        uninterrupted campaign produces.
        """
        golden_cycles = self.profile.cycles or 1
        per_outcome: dict[str, dict] = {}
        for outcome in OUTCOME_ORDER:
            rows = [r for r in self.results if r.outcome is outcome]
            histogram = Histogram(
                f"cycles_vs_golden.{outcome.value}",
                RELATIVE_CYCLE_BUCKETS,
            )
            for row in rows:
                histogram.observe(row.cycles / golden_cycles)
            cycles = sum(r.cycles for r in rows)
            per_outcome[outcome.value] = {
                "runs": len(rows),
                "instructions": sum(r.instructions for r in rows),
                "cycles": cycles,
                "mean_cycles": (round(cycles / len(rows), 2)
                                if rows else 0.0),
                "cycles_vs_golden": histogram.snapshot()["buckets"],
            }
        return {
            "per_outcome": per_outcome,
            "totals": {
                "runs": self.total,
                "instructions": sum(
                    r.instructions for r in self.results
                ),
                "cycles": sum(r.cycles for r in self.results),
                "recoveries": sum(r.recoveries for r in self.results),
                "recovery_cycles": sum(
                    r.recovery_cycles for r in self.results
                ),
            },
            # Deterministic infra health: a replay of the journal's
            # ``infra`` records (zeros when un-journaled or healthy),
            # prefixed flat so the keys read as ``infra.retries`` etc.
            "infra": {key: self.infra.get(key, 0)
                      for key in INFRA_KEYS},
        }

    # -- rendering ----------------------------------------------------------

    def format(self, details: bool = False,
               metrics: bool = False) -> str:
        """Deterministic console rendering."""
        config = self.config
        target = config.workload or "<inline source>"
        lines = [
            f"fault-injection campaign: extension={config.extension} "
            f"workload={target} faults={config.faults} "
            f"seed={config.seed}",
            f"golden run: {self.profile.instructions} instructions, "
            f"{self.profile.cycles} cycles, output {self.profile.output}",
            "",
            f"{'outcome':<12} {'count':>6} {'fraction':>9} "
            f"{'95% CI':>16}",
        ]
        counts = self.counts()
        confidence = self.confidence()["outcomes"]
        denominator = self.total or 1  # an interrupted campaign may
        for outcome in OUTCOME_ORDER:  # have zero completed runs
            n = counts[outcome]
            interval = confidence.get(outcome.value)
            ci = ("" if interval is None else
                  f"[{interval['low']:6.1%}, {interval['high']:6.1%}]")
            lines.append(
                f"{outcome.value:<12} {n:>6} {n / denominator:>8.1%} "
                f"{ci:>16}"
            )
        lines.append(f"{'total':<12} {self.total:>6}")
        lines.append("")

        by_model = self.by_model()
        header = f"{'model':<12} {'runs':>5}" + "".join(
            f" {outcome.value:>12}" for outcome in OUTCOME_ORDER
        )
        lines.append(header)
        for model, row in by_model.items():
            runs = sum(row.values())
            lines.append(
                f"{model:<12} {runs:>5}" + "".join(
                    f" {row[outcome]:>12}" for outcome in OUTCOME_ORDER
                )
            )
        lines.append("")
        coverage_ci = self.confidence()["detection_coverage"]
        lines.append(
            f"detection coverage (non-masked faults detected): "
            f"{self.detection_coverage:.1%} "
            f"(95% CI [{coverage_ci['low']:.1%}, "
            f"{coverage_ci['high']:.1%}])"
        )
        infra = counts[Outcome.INFRA_FAILED]
        if infra:
            lines.append(
                f"infra: {infra} run(s) quarantined (worker crash or "
                f"deadline overrun) — excluded from coverage; resume "
                f"the campaign to retry them"
            )
        rollbacks = sum(r.recoveries for r in self.results)
        if rollbacks:
            recovery_cycles = sum(r.recovery_cycles for r in self.results)
            lines.append(
                f"recovery: {rollbacks} rollback(s) across "
                f"{sum(1 for r in self.results if r.recoveries)} run(s), "
                f"{recovery_cycles} cycles spent recovering"
            )
        if metrics:
            aggregated = self.metrics()
            lines.append("")
            lines.append(
                f"{'outcome':<12} {'runs':>5} {'mean cycles':>12} "
                f"{'vs golden':>10}"
            )
            golden_cycles = self.profile.cycles or 1
            for outcome in OUTCOME_ORDER:
                row = aggregated["per_outcome"][outcome.value]
                if not row["runs"]:
                    continue
                ratio = row["mean_cycles"] / golden_cycles
                lines.append(
                    f"{outcome.value:<12} {row['runs']:>5} "
                    f"{row['mean_cycles']:>12.1f} {ratio:>9.2f}x"
                )
            totals = aggregated["totals"]
            lines.append(
                f"simulated: {totals['instructions']} instructions, "
                f"{totals['cycles']} cycles across "
                f"{totals['runs']} faulted runs"
            )
            infra = aggregated["infra"]
            lines.append(
                "infra: " + ", ".join(
                    f"{key}={infra[key]}" for key in INFRA_KEYS
                )
            )
        if details:
            lines.append("")
            for result in self.results:
                note = result.trap or result.detail or ""
                lines.append(
                    f"  #{result.index:<4} {result.outcome.value:<9} "
                    f"{result.spec}  {note}"
                )
        return "\n".join(lines)

    def as_dict(self) -> dict:
        config = self.config
        return {
            "campaign": {
                "extension": config.extension,
                "workload": config.workload,
                "entry": config.entry,
                "scale": config.scale,
                "faults": config.faults,
                "seed": config.seed,
                "models": sorted(self.by_model()),
                "clock_ratio": config.clock_ratio,
                "fifo_depth": config.fifo_depth,
                "checkpoint_every": config.checkpoint_every,
                "recover": config.recover,
            },
            "golden": {
                "instructions": self.profile.instructions,
                "cycles": self.profile.cycles,
                "output": self.profile.output,
            },
            "counts": {
                outcome.value: n for outcome, n in self.counts().items()
            },
            "by_model": {
                model: {outcome.value: n for outcome, n in row.items()}
                for model, row in sorted(self.by_model().items())
            },
            "detection_coverage": round(self.detection_coverage, 6),
            "confidence": self.confidence(),
            "metrics": self.metrics(),
            "results": [result.as_dict() for result in self.results],
        }

    def to_json(self, indent: int = 2) -> str:
        """Bit-reproducible JSON document for the whole campaign."""
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def write_json(self, path) -> None:
        """Write the JSON document atomically: a crash mid-write
        leaves either the previous report or the new one, never a
        truncated JSON file."""
        from repro.checkpoint import atomic_write_text
        atomic_write_text(path, self.to_json() + "\n")
