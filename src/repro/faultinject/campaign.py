"""Deterministic fault-injection campaigns over FlexCore systems.

A :class:`Campaign` measures a monitor's detection coverage the way
simulation-based fault injection tools (DAVOS SBFI, MEFISTO) do:

1. run the workload once fault-free (the *golden run*), profiling the
   dynamic stream and recording the output signature;
2. for each of N faults, derive an independent per-run rng from
   ``(seed, run index)``, draw a fault model and a concrete
   :class:`~repro.faultinject.models.FaultSpec`, arm it in a fresh
   system, and execute under a watchdog (instruction budget, cycle
   budget and a wall-clock deadline) so hangs and crashes become
   *results* instead of killing the campaign;
3. classify each run — MASKED, DETECTED (monitor trap), SDC (silent
   data corruption: clean exit, wrong output), CRASH, or HANG — and
   aggregate everything into a :class:`~repro.faultinject.report.
   CoverageReport`.

Runs are independent, so the campaign optionally fans out over a
``multiprocessing`` pool; results are identical (and bit-reproducible
for a given seed) regardless of ``jobs``.
"""

from __future__ import annotations

import enum
import hashlib
import multiprocessing
import random
import time
from dataclasses import dataclass, replace

from repro.core.executor import SimulationError
from repro.extensions import EXTENSION_CLASSES, create_extension
from repro.faultinject.models import (
    MAX_PROFILE_ADDRESSES,
    MODEL_CLASSES,
    FaultModel,
    FaultSpec,
    GoldenProfile,
    create_model,
)
from repro.flexcore.interface import InterfaceConfig
from repro.flexcore.system import (
    WATCHDOG_TERMINATIONS,
    FlexCoreSystem,
    RunResult,
    SystemConfig,
    Termination,
)
from repro.isa.assembler import Program, assemble
from repro.isa.opcodes import ALU_CLASSES
from repro.workloads import build_workload


class CampaignError(Exception):
    """The campaign itself (not a faulted run) is broken — e.g. the
    golden run crashes or no fault model applies."""


class Outcome(str, enum.Enum):
    """DAVOS-style failure-mode dictionary for one faulted run."""

    MASKED = "masked"  # clean exit, output matches the golden run
    DETECTED = "detected"  # the monitoring extension raised TRAP
    SDC = "sdc"  # clean exit, silently corrupted output
    CRASH = "crash"  # the simulated program crashed
    HANG = "hang"  # a watchdog budget tripped

    def __str__(self) -> str:
        return self.value


#: report order (fixed, so reports are stable).
OUTCOME_ORDER = (Outcome.DETECTED, Outcome.MASKED, Outcome.SDC,
                 Outcome.CRASH, Outcome.HANG)


@dataclass(frozen=True)
class FaultResult:
    """Classification of one faulted run (picklable, JSON-able)."""

    index: int
    spec: FaultSpec
    outcome: Outcome
    termination: str
    trap: str | None
    detail: str  # crash diagnosis / watchdog note, "" otherwise
    instructions: int
    cycles: int

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "fault": self.spec.as_dict(),
            "outcome": self.outcome.value,
            "termination": self.termination,
            "trap": self.trap,
            "detail": self.detail,
            "instructions": self.instructions,
            "cycles": self.cycles,
        }


@dataclass(frozen=True)
class CampaignConfig:
    """Everything needed to reproduce a campaign bit-for-bit."""

    extension: str
    #: exactly one of ``workload`` (a registered kernel name) or
    #: ``source`` (raw assembly text) selects the program.
    workload: str | None = None
    source: str | None = None
    entry: str = "start"
    scale: float = 0.125
    faults: int = 100
    seed: int = 1
    #: fault-model names to draw from; ``None`` = every model that
    #: applies to this extension/workload pair.
    models: tuple[str, ...] | None = None
    clock_ratio: float = 0.5
    fifo_depth: int = 64
    #: watchdog: a faulted run may use at most ``hang_multiplier`` x
    #: the golden run's instructions/cycles plus ``hang_slack`` before
    #: it is declared hung.
    hang_multiplier: float = 4.0
    hang_slack: int = 10_000
    #: wall-clock backstop per faulted run, seconds (``None`` = off);
    #: only fires if the *simulator* wedges, so results stay
    #: deterministic in practice.
    wallclock_limit: float | None = 60.0
    #: worker processes (1 = in-process serial).
    jobs: int = 1
    #: instruction budget for the golden run (None = system default).
    max_instructions: int | None = None

    def __post_init__(self) -> None:
        if self.extension not in EXTENSION_CLASSES:
            known = ", ".join(sorted(EXTENSION_CLASSES))
            raise ValueError(
                f"unknown extension {self.extension!r} (known: {known})"
            )
        if (self.workload is None) == (self.source is None):
            raise ValueError(
                "specify exactly one of workload= or source="
            )
        if self.faults < 1:
            raise ValueError(f"faults must be >= 1, got {self.faults}")
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.hang_multiplier <= 1:
            raise ValueError("hang_multiplier must be > 1")
        if self.hang_slack < 0:
            raise ValueError("hang_slack must be >= 0")
        if self.models is not None:
            for name in self.models:
                if name not in MODEL_CLASSES:
                    known = ", ".join(MODEL_CLASSES)
                    raise ValueError(
                        f"unknown fault model {name!r} (known: {known})"
                    )


class Campaign:
    """One fault-injection campaign: golden run + N faulted runs."""

    def __init__(self, config: CampaignConfig):
        self.config = config
        self.program = self._build_program()
        self.golden, self.profile = self._golden_run()
        self.models = self._select_models()
        budget = config.hang_multiplier
        self._instr_budget = (
            int(self.profile.instructions * budget) + config.hang_slack
        )
        self._cycle_budget = (
            int(self.profile.cycles * budget) + 4 * config.hang_slack
        )

    # -- setup --------------------------------------------------------------

    def _build_program(self) -> Program:
        config = self.config
        if config.workload is not None:
            return build_workload(config.workload, config.scale).build()
        return assemble(config.source, entry=config.entry)

    def _system_config(self) -> SystemConfig:
        return SystemConfig(
            interface=InterfaceConfig(
                clock_ratio=self.config.clock_ratio,
                fifo_depth=self.config.fifo_depth,
            ),
        )

    def _build_system(self) -> FlexCoreSystem:
        return FlexCoreSystem(
            self.program,
            create_extension(self.config.extension),
            self._system_config(),
        )

    def _golden_run(self) -> tuple[RunResult, GoldenProfile]:
        system = self._build_system()
        counts = {"alu": 0, "load": 0, "store": 0}
        addresses: dict[int, None] = {}  # insertion-ordered set

        def profile_hook(record):
            if record.annulled:
                return
            if record.instr_class in ALU_CLASSES:
                counts["alu"] += 1
            if record.is_load:
                counts["load"] += 1
            if record.is_store:
                counts["store"] += 1
                addr = record.addr & ~3
                if len(addresses) < MAX_PROFILE_ADDRESSES:
                    addresses[addr] = None

        system.record_hooks.append(profile_hook)
        deadline = None
        if self.config.wallclock_limit is not None:
            deadline = time.monotonic() + self.config.wallclock_limit
        result = system.run_bounded(
            max_instructions=self.config.max_instructions,
            deadline=deadline,
        )
        if result.termination != Termination.HALTED:
            raise CampaignError(
                f"golden run did not halt cleanly "
                f"(termination={result.termination}, "
                f"trap={result.trap}, error={result.error})"
            )

        extension = system.extension
        program = self.program
        profile = GoldenProfile(
            instructions=result.instructions,
            cycles=result.cycles,
            alu_commits=counts["alu"],
            load_commits=counts["load"],
            store_commits=counts["store"],
            forwarded=result.interface_stats.forwarded,
            store_addresses=tuple(addresses),
            text_base=program.text_base,
            text_size=4 * len(program.text),
            data_base=program.data_base,
            data_size=len(program.data),
            has_memory_tags=extension.mem_tags is not None,
            has_shadow_tags=extension.shadow is not None,
            memory_tag_bits=extension.memory_tag_bits,
            register_tag_bits=extension.register_tag_bits,
            num_physical_registers=system.cpu.regs.num_physical,
            output=self._signature(result),
        )
        return result, profile

    def _select_models(self) -> tuple[FaultModel, ...]:
        if self.config.models is not None:
            models = tuple(
                create_model(name) for name in self.config.models
            )
            inapplicable = [
                model.name for model in models
                if not model.applicable(self.profile)
            ]
            if inapplicable:
                raise CampaignError(
                    f"fault model(s) {', '.join(inapplicable)} do not "
                    f"apply to {self.config.extension} on this workload"
                )
            return models
        models = tuple(
            cls() for cls in MODEL_CLASSES.values()
            if cls().applicable(self.profile)
        )
        if not models:
            raise CampaignError("no applicable fault models")
        return models

    # -- per-run machinery --------------------------------------------------

    def _signature(self, result: RunResult) -> str:
        """Output signature used for the golden-run SDC diff: a digest
        of the program's whole data section after the run."""
        program = self.program
        if not program.data:
            return "no-data"
        data = result.memory.read_bytes(program.data_base,
                                        len(program.data))
        return hashlib.sha256(data).hexdigest()[:16]

    def rng_for(self, index: int) -> random.Random:
        """Independent, platform-stable rng for run ``index``."""
        return random.Random(f"{self.config.seed}/{index}")

    def plan(self, index: int) -> tuple[FaultModel, FaultSpec]:
        """Deterministically choose the fault for run ``index``."""
        rng = self.rng_for(index)
        model = rng.choice(self.models)
        return model, model.plan(rng, self.profile)

    def run_spec(
        self, spec: FaultSpec, model: FaultModel | None = None
    ) -> RunResult:
        """Execute one faulted run under the watchdog (never raises
        for in-simulation failures)."""
        if model is None:
            model = create_model(spec.model)
        system = self._build_system()
        model.arm(system, spec)
        deadline = None
        if self.config.wallclock_limit is not None:
            deadline = time.monotonic() + self.config.wallclock_limit
        try:
            return system.run_bounded(
                max_instructions=self._instr_budget,
                max_cycles=self._cycle_budget,
                deadline=deadline,
            )
        except Exception as err:  # noqa: BLE001 — sandbox boundary
            # An injected fault can violate invariants far beyond the
            # simulated program (e.g. a config upset wedging the
            # fabric model).  The sandbox turns *any* escape into a
            # structured crash result instead of killing the campaign.
            error = SimulationError(
                f"simulator fault escaped the run: "
                f"{type(err).__name__}: {err}",
                pc=system.cpu.pc, instret=system.cpu.instret,
            )
            return RunResult(
                cycles=0,
                instructions=system.cpu.instret,
                halted=False,
                trap=None,
                core_stats=system.core_timing.stats,
                interface_stats=(
                    system.interface.stats if system.interface else None
                ),
                memory=system.memory,
                program=self.program,
                termination=Termination.ERROR,
                error=error,
            )

    def classify(self, spec: FaultSpec, index: int,
                 result: RunResult) -> FaultResult:
        """Map one run's termination + output onto the outcome
        dictionary."""
        detail = ""
        if result.termination == Termination.ERROR:
            outcome = Outcome.CRASH
            error = result.error or SimulationError("unknown crash")
            detail = error.diagnosis()
        elif result.termination in WATCHDOG_TERMINATIONS:
            outcome = Outcome.HANG
            detail = (
                f"watchdog: {result.termination} after "
                f"{result.instructions} instructions"
            )
        elif result.trap is not None:
            outcome = Outcome.DETECTED
        elif self._signature(result) != self.profile.output:
            outcome = Outcome.SDC
        else:
            outcome = Outcome.MASKED
        return FaultResult(
            index=index,
            spec=spec,
            outcome=outcome,
            termination=str(result.termination),
            trap=str(result.trap) if result.trap is not None else None,
            detail=detail,
            instructions=result.instructions,
            cycles=result.cycles,
        )

    def run_one(self, index: int) -> FaultResult:
        """Plan, arm, execute and classify run ``index``."""
        model, spec = self.plan(index)
        result = self.run_spec(spec, model)
        return self.classify(spec, index, result)

    # -- the campaign -------------------------------------------------------

    def run(self, progress=None):
        """Execute every faulted run and build the coverage report.

        ``progress`` is an optional callable ``(done, total)`` invoked
        after each completed run (serial mode) or batch (parallel).
        """
        from repro.faultinject.report import CoverageReport

        total = self.config.faults
        if self.config.jobs == 1:
            results = []
            for index in range(total):
                results.append(self.run_one(index))
                if progress is not None:
                    progress(len(results), total)
        else:
            results = self._run_parallel(progress)
        results.sort(key=lambda r: r.index)
        return CoverageReport.build(self.config, self.profile,
                                    tuple(results))

    def _run_parallel(self, progress=None) -> list[FaultResult]:
        """Fan the runs out over a process pool.

        Each worker rebuilds the campaign once (fork keeps this cheap)
        and runs a slice of the indices; per-index seeding makes the
        result independent of the scheduling.
        """
        config = self.config
        ctx = multiprocessing.get_context()
        indices = range(config.faults)
        results: list[FaultResult] = []
        worker_config = replace(config, jobs=1)
        with ctx.Pool(
            processes=config.jobs,
            initializer=_init_worker,
            initargs=(worker_config,),
        ) as pool:
            for result in pool.imap_unordered(_worker_run, indices,
                                              chunksize=8):
                results.append(result)
                if progress is not None:
                    progress(len(results), config.faults)
        return results


#: per-process campaign instance for pool workers.
_WORKER_CAMPAIGN: Campaign | None = None


def _init_worker(config: CampaignConfig) -> None:
    global _WORKER_CAMPAIGN
    _WORKER_CAMPAIGN = Campaign(config)


def _worker_run(index: int) -> FaultResult:
    return _WORKER_CAMPAIGN.run_one(index)


def run_campaign(config: CampaignConfig, progress=None):
    """Convenience one-call entry point."""
    return Campaign(config).run(progress=progress)
