"""Deterministic fault-injection campaigns over FlexCore systems.

A :class:`Campaign` measures a monitor's detection coverage the way
simulation-based fault injection tools (DAVOS SBFI, MEFISTO) do:

1. run the workload once fault-free (the *golden run*), profiling the
   dynamic stream and recording the output signature;
2. for each of N faults, derive an independent per-run rng from
   ``(seed, run index)``, draw a fault model and a concrete
   :class:`~repro.faultinject.models.FaultSpec`, arm it in a fresh
   system, and execute under a watchdog (instruction budget, cycle
   budget and a wall-clock deadline) so hangs and crashes become
   *results* instead of killing the campaign;
3. classify each run — MASKED, DETECTED (monitor trap), SDC (silent
   data corruption: clean exit, wrong output), CRASH, or HANG — and
   aggregate everything into a :class:`~repro.faultinject.report.
   CoverageReport`.

Runs are independent, so the campaign optionally fans out over a
``multiprocessing`` pool; results are identical (and bit-reproducible
for a given seed) regardless of ``jobs``.

Infrastructure failures are kept strictly apart from simulated
failures: a *simulated* crash or hang is a result (that is the whole
point of the campaign), while a *worker-process* death or deadline
overrun is retried by the supervised pool
(:mod:`repro.engine.supervisor`) and, if it keeps recurring for the
same index, quarantined as an :attr:`Outcome.INFRA_FAILED` result
carrying the fault spec and seed so it can be reproduced and re-run
later.  Quarantined indices are reported — never silently dropped —
are excluded from the detection-coverage denominator, and a
``--resume`` re-runs them ("resume heals quarantine").
"""

from __future__ import annotations

import enum
import hashlib
import random
import signal
import time
from dataclasses import dataclass, replace

from repro.checkpoint import (
    GoldenCache,
    IdentityCache,
    JournalMismatchError,
    ResultsJournal,
    SystemSnapshot,
    golden_identity,
)
from repro.core.executor import SimulationError
from repro.engine.pool import PoolPolicy, PoolStats
from repro.extensions import create_extension
from repro.faultinject.models import (
    MAX_PROFILE_ADDRESSES,
    MODEL_CLASSES,
    FaultModel,
    FaultSpec,
    GoldenProfile,
    ProfileMark,
    create_model,
)
from repro.flexcore.interface import InterfaceConfig
from repro.flexcore.system import (
    WATCHDOG_TERMINATIONS,
    FlexCoreSystem,
    RunResult,
    SystemConfig,
    Termination,
)
from repro.isa.assembler import Program, assemble
from repro.isa.opcodes import ALU_CLASSES
from repro.telemetry.profiler import PhaseProfiler
from repro.util.rng import derive_rng
from repro.workloads import build_workload


#: warm-start landmark cadence: one :class:`ProfileMark` every this
#: many committed instructions of the golden run ...
MARK_STRIDE = 256
#: ... until the landmark list would exceed twice this cap, at which
#: point every other landmark is dropped and the stride doubles (so
#: the list length stays below ``2 * MAX_PROFILE_MARKS`` however long
#: the run is, while late faults keep nearby fork points).
MAX_PROFILE_MARKS = 64


class CampaignError(Exception):
    """The campaign itself (not a faulted run) is broken — e.g. the
    golden run crashes or no fault model applies."""


class CampaignInterrupted(Exception):
    """The campaign was stopped early (SIGINT/SIGTERM) after
    terminating its workers cleanly.  Carries everything needed to
    render a partial report and point at the resume path."""

    def __init__(self, config: "CampaignConfig", profile,
                 results: tuple["FaultResult", ...],
                 journal_path=None, infra: dict | None = None):
        self.config = config
        self.profile = profile
        self.results = results
        self.journal_path = journal_path
        self.infra = infra
        super().__init__(
            f"campaign interrupted after {len(results)}/"
            f"{config.faults} runs"
        )

    def partial_report(self):
        from repro.faultinject.report import CoverageReport
        return CoverageReport.build(self.config, self.profile,
                                    self.results, infra=self.infra)


class Outcome(str, enum.Enum):
    """DAVOS-style failure-mode dictionary for one faulted run."""

    MASKED = "masked"  # clean exit, output matches the golden run
    DETECTED = "detected"  # the monitoring extension raised TRAP
    RECOVERED = "recovered"  # detected, rolled back, clean re-execution
    SDC = "sdc"  # clean exit, silently corrupted output
    CRASH = "crash"  # the simulated program crashed
    HANG = "hang"  # a watchdog budget tripped
    #: the *infrastructure* failed, not the simulation: the run's
    #: worker process died or overran its deadline repeatedly and the
    #: index was quarantined.  Reported but excluded from coverage;
    #: ``--resume`` re-runs these indices.
    INFRA_FAILED = "infra_failed"

    def __str__(self) -> str:
        return self.value


#: report order (fixed, so reports are stable).
OUTCOME_ORDER = (Outcome.DETECTED, Outcome.RECOVERED, Outcome.MASKED,
                 Outcome.SDC, Outcome.CRASH, Outcome.HANG,
                 Outcome.INFRA_FAILED)


@dataclass(frozen=True)
class FaultResult:
    """Classification of one faulted run (picklable, JSON-able)."""

    index: int
    spec: FaultSpec
    outcome: Outcome
    termination: str
    trap: str | None
    detail: str  # crash diagnosis / watchdog note, "" otherwise
    instructions: int
    cycles: int
    recoveries: int = 0
    recovery_cycles: int = 0

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "fault": self.spec.as_dict(),
            "outcome": self.outcome.value,
            "termination": self.termination,
            "trap": self.trap,
            "detail": self.detail,
            "instructions": self.instructions,
            "cycles": self.cycles,
            "recoveries": self.recoveries,
            "recovery_cycles": self.recovery_cycles,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultResult":
        """Inverse of :meth:`as_dict` — exact, so a journal replay
        reconstructs bit-identical results."""
        fault = dict(data["fault"])
        model = fault.pop("model")
        return cls(
            index=data["index"],
            spec=FaultSpec.make(model, **fault),
            outcome=Outcome(data["outcome"]),
            termination=data["termination"],
            trap=data["trap"],
            detail=data["detail"],
            instructions=data["instructions"],
            cycles=data["cycles"],
            recoveries=data.get("recoveries", 0),
            recovery_cycles=data.get("recovery_cycles", 0),
        )


@dataclass(frozen=True)
class CampaignConfig:
    """Everything needed to reproduce a campaign bit-for-bit."""

    extension: str
    #: exactly one of ``workload`` (a registered kernel name) or
    #: ``source`` (raw assembly text) selects the program.
    workload: str | None = None
    source: str | None = None
    entry: str = "start"
    scale: float = 0.125
    faults: int = 100
    seed: int = 1
    #: fault-model names to draw from; ``None`` = every model that
    #: applies to this extension/workload pair.
    models: tuple[str, ...] | None = None
    clock_ratio: float = 0.5
    fifo_depth: int = 64
    #: watchdog: a faulted run may use at most ``hang_multiplier`` x
    #: the golden run's instructions/cycles plus ``hang_slack`` before
    #: it is declared hung.
    hang_multiplier: float = 4.0
    hang_slack: int = 10_000
    #: wall-clock backstop per faulted run, seconds (``None`` = off);
    #: only fires if the *simulator* wedges, so results stay
    #: deterministic in practice.
    wallclock_limit: float | None = 60.0
    #: worker processes (1 = in-process serial).
    jobs: int = 1
    #: lockstep batch size for parallel runs: up to this many fault
    #: indices ride one worker dispatch, sharing the worker's golden
    #: profile, predecoded superblocks and warm-start prefix
    #: snapshots.  Results stream back one fault at a time, so retry,
    #: quarantine and journal granularity stay per fault (a batch
    #: that fails mid-way requeues only its unfinished members).
    #: Scheduling only — never part of the journal identity.
    batch_size: int = 8
    #: instruction budget for the golden run (None = system default).
    max_instructions: int | None = None
    #: periodic checkpoint interval (committed instructions) for the
    #: faulted runs; required for ``recover``.
    checkpoint_every: int | None = None
    #: roll back to the last checkpoint on a monitor TRAP instead of
    #: terminating — measures recovery instead of mere detection.
    recover: bool = False
    #: directory for the golden-run profile cache (None = no cache).
    cache_dir: str | None = None
    #: fork each faulted run from a prefix snapshot taken just before
    #: its injection window instead of re-simulating the fault-free
    #: prefix from reset.  A pure accelerant: results are bit-identical
    #: to cold runs (the equivalence suite enforces it), any warm-path
    #: failure degrades to a cold run with a warning, and rollback
    #: recovery (``recover=True``) always runs cold because its
    #: checkpoint cadence is anchored at reset.
    warm_start: bool = True
    #: MDL monitor specs as ``(filename, source)`` pairs.  The sources
    #: ride along *inside* the config (not as paths) so a pickled
    #: config rebuilt in a worker process — or replayed from a journal
    #: on another machine — compiles and registers the exact same
    #: monitors.
    mdl: tuple[tuple[str, str], ...] = ()
    #: supervised-pool deadline per task, seconds (``None`` derives
    #: one from ``wallclock_limit``: the pool deadline must outlast
    #: the in-simulation watchdog or healthy slow runs get reaped).
    task_timeout: float | None = None
    #: infra retries per fault index before quarantine.
    max_retries: int = 2
    #: pool degradation policy: "auto" falls back to in-process serial
    #: execution when the pool is irrecoverably broken, "never" raises
    #: instead, "force" skips the pool entirely (debugging aid).
    serial_fallback: str = "auto"

    def __post_init__(self) -> None:
        from repro.extensions import extension_names
        mdl_names = set()
        if self.mdl:
            from repro.mdl import MdlError, compile_spec
            for filename, spec_source in self.mdl:
                try:
                    mdl_names.add(
                        compile_spec(spec_source, filename).name.lower()
                    )
                except MdlError as err:
                    raise ValueError(str(err)) from None
        known_names = set(extension_names()) | mdl_names
        if self.extension.lower() not in known_names:
            known = ", ".join(sorted(known_names))
            raise ValueError(
                f"unknown extension {self.extension!r} (known: {known})"
            )
        if (self.workload is None) == (self.source is None):
            raise ValueError(
                "specify exactly one of workload= or source="
            )
        if self.faults < 1:
            raise ValueError(f"faults must be >= 1, got {self.faults}")
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.batch_size < 1:
            raise ValueError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        if self.hang_multiplier <= 1:
            raise ValueError("hang_multiplier must be > 1")
        if self.hang_slack < 0:
            raise ValueError("hang_slack must be >= 0")
        if self.models is not None:
            for name in self.models:
                if name not in MODEL_CLASSES:
                    known = ", ".join(MODEL_CLASSES)
                    raise ValueError(
                        f"unknown fault model {name!r} (known: {known})"
                    )
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, "
                f"got {self.checkpoint_every}"
            )
        if self.recover and self.checkpoint_every is None:
            raise ValueError(
                "recover=True requires checkpoint_every="
            )
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError(
                f"task_timeout must be > 0, got {self.task_timeout}"
            )
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.serial_fallback not in ("auto", "never", "force"):
            raise ValueError(
                f"serial_fallback must be auto, never or force, "
                f"got {self.serial_fallback!r}"
            )

    def journal_identity(self) -> dict:
        """The fields a resumable journal is keyed on: everything that
        influences per-index results.  ``jobs`` and ``batch_size``
        (scheduling only),
        ``wallclock_limit`` (an environment backstop), ``cache_dir``
        and ``warm_start`` (pure accelerants) and the pool-robustness
        knobs
        (``task_timeout``, ``max_retries``, ``serial_fallback`` — they
        decide *whether* an index completes here-and-now, never what
        its result is) are deliberately excluded — a campaign may be
        resumed with different parallelism on a different machine and
        still produce the bit-identical report."""
        identity = {
            "extension": self.extension,
            "workload": self.workload,
            "source": self.source,
            "entry": self.entry,
            "scale": self.scale,
            "faults": self.faults,
            "seed": self.seed,
            "models": list(self.models) if self.models else None,
            "clock_ratio": self.clock_ratio,
            "fifo_depth": self.fifo_depth,
            "hang_multiplier": self.hang_multiplier,
            "hang_slack": self.hang_slack,
            "max_instructions": self.max_instructions,
            "checkpoint_every": self.checkpoint_every,
            "recover": self.recover,
        }
        # Only campaigns that actually carry MDL specs key on them —
        # journals written before the field existed keep replaying.
        if self.mdl:
            identity["mdl"] = [list(pair) for pair in self.mdl]
        return identity


class Campaign:
    """One fault-injection campaign: golden run + N faulted runs."""

    def __init__(self, config: CampaignConfig):
        self.config = config
        # Registration lives here, not in the config's __post_init__:
        # unpickling a dataclass skips __init__ entirely, but every
        # worker process rebuilds ``Campaign(config)`` in
        # ``_init_worker``, so this is the one place guaranteed to run
        # wherever ``create_extension`` is about to be called.
        if config.mdl:
            from repro.mdl import compile_spec, register_program
            for filename, spec_source in config.mdl:
                register_program(compile_spec(spec_source, filename),
                                 replace=True)
        #: wall-clock phase timers for the campaign pipeline
        #: (assemble / golden-run / faulted-runs / report).  Purely
        #: diagnostic: never written into the bit-reproducible report.
        self.profiler = PhaseProfiler()
        with self.profiler.phase("assemble"):
            self.program = self._build_program()
        #: why the golden cache could not be used (None on a hit or
        #: when no cache is configured) — surfaced by the CLI.
        self.cache_diagnostic: str | None = None
        #: infra-robustness telemetry from the most recent :meth:`run`
        #: (retries, respawns, quarantines, degraded mode).  Purely
        #: diagnostic: never part of the bit-reproducible report.
        self.pool_stats = PoolStats()
        #: structured degradation warnings (cache/journal unwritable,
        #: pool fell back to serial, ...) — surfaced by the CLI.
        self.warnings: list[str] = []
        #: the golden RunResult; None when the profile came from the
        #: cache and the golden run was skipped entirely.
        self.golden: RunResult | None = None
        cache = GoldenCache(config.cache_dir) if config.cache_dir else None
        profile = None
        if cache is not None:
            profile, self.cache_diagnostic = cache.load(config)
        if profile is None:
            with self.profiler.phase("golden-run"):
                self.golden, profile = self._golden_run()
            if cache is not None:
                cache.store(config, profile)
                if cache.disabled_reason is not None:
                    self._warn(cache.disabled_reason)
        self.profile = profile
        self.models = self._select_models()
        #: in-memory prefix snapshots for warm-started faulted runs,
        #: keyed by instret (one per landmark actually used).
        self._prefix_snapshots: dict[int, SystemSnapshot] = {}
        self._prefix_cache = (
            IdentityCache(config.cache_dir, label="prefix cache",
                          section="snapshot")
            if config.cache_dir else None
        )
        budget = config.hang_multiplier
        self._instr_budget = (
            int(self.profile.instructions * budget) + config.hang_slack
        )
        self._cycle_budget = (
            int(self.profile.cycles * budget) + 4 * config.hang_slack
        )

    # -- setup --------------------------------------------------------------

    def _build_program(self) -> Program:
        config = self.config
        if config.workload is not None:
            return build_workload(config.workload, config.scale).build()
        return assemble(config.source, entry=config.entry)

    def _system_config(self) -> SystemConfig:
        return SystemConfig(
            interface=InterfaceConfig(
                clock_ratio=self.config.clock_ratio,
                fifo_depth=self.config.fifo_depth,
            ),
        )

    def _build_system(self) -> FlexCoreSystem:
        return FlexCoreSystem(
            self.program,
            create_extension(self.config.extension),
            self._system_config(),
        )

    def _golden_run(self) -> tuple[RunResult, GoldenProfile]:
        system = self._build_system()
        counts = {"alu": 0, "load": 0, "store": 0}
        addresses: dict[int, None] = {}  # insertion-ordered set
        marks: list[ProfileMark] = []
        mark_state = {"n": 0, "stride": MARK_STRIDE}

        def profile_hook(record):
            if not record.annulled:
                if record.instr_class in ALU_CLASSES:
                    counts["alu"] += 1
                if record.is_load:
                    counts["load"] += 1
                if record.is_store:
                    counts["store"] += 1
                    addr = record.addr & ~3
                    if len(addresses) < MAX_PROFILE_ADDRESSES:
                        addresses[addr] = None
            # Warm-start landmarks: every ``stride`` commits (annulled
            # slots included, matching instret), remember how far the
            # ALU and forwarded-packet counters have advanced.  When
            # the run outgrows the cap, halve the resolution — long
            # runs get coarser but never unbounded landmark lists.
            n = mark_state["n"] = mark_state["n"] + 1
            if n % mark_state["stride"] == 0:
                forwarded = (system.interface.stats.forwarded
                             if system.interface else 0)
                marks.append(ProfileMark(n, counts["alu"], forwarded))
                if len(marks) == 2 * MAX_PROFILE_MARKS:
                    del marks[::2]
                    mark_state["stride"] *= 2

        system.record_hooks.append(profile_hook)
        deadline = None
        if self.config.wallclock_limit is not None:
            deadline = time.monotonic() + self.config.wallclock_limit
        result = system.run_bounded(
            max_instructions=self.config.max_instructions,
            deadline=deadline,
        )
        if result.termination != Termination.HALTED:
            raise CampaignError(
                f"golden run did not halt cleanly "
                f"(termination={result.termination}, "
                f"trap={result.trap}, error={result.error})"
            )

        extension = system.extension
        program = self.program
        profile = GoldenProfile(
            instructions=result.instructions,
            cycles=result.cycles,
            alu_commits=counts["alu"],
            load_commits=counts["load"],
            store_commits=counts["store"],
            forwarded=result.interface_stats.forwarded,
            store_addresses=tuple(addresses),
            text_base=program.text_base,
            text_size=4 * len(program.text),
            data_base=program.data_base,
            data_size=len(program.data),
            has_memory_tags=extension.mem_tags is not None,
            has_shadow_tags=extension.shadow is not None,
            memory_tag_bits=extension.memory_tag_bits,
            register_tag_bits=extension.register_tag_bits,
            num_physical_registers=system.cpu.regs.num_physical,
            output=self._signature(result),
            marks=tuple(marks),
        )
        return result, profile

    def _select_models(self) -> tuple[FaultModel, ...]:
        if self.config.models is not None:
            models = tuple(
                create_model(name) for name in self.config.models
            )
            inapplicable = [
                model.name for model in models
                if not model.applicable(self.profile)
            ]
            if inapplicable:
                raise CampaignError(
                    f"fault model(s) {', '.join(inapplicable)} do not "
                    f"apply to {self.config.extension} on this workload"
                )
            return models
        models = tuple(
            cls() for cls in MODEL_CLASSES.values()
            if cls().applicable(self.profile)
        )
        if not models:
            raise CampaignError("no applicable fault models")
        return models

    # -- per-run machinery --------------------------------------------------

    def _signature(self, result: RunResult) -> str:
        """Output signature used for the golden-run SDC diff: a digest
        of the program's whole data section after the run."""
        program = self.program
        if not program.data:
            return "no-data"
        data = result.memory.read_bytes(program.data_base,
                                        len(program.data))
        return hashlib.sha256(data).hexdigest()[:16]

    def rng_for(self, index: int) -> random.Random:
        """Independent, platform-stable rng for run ``index``."""
        return derive_rng(self.config.seed, index)

    def plan(self, index: int) -> tuple[FaultModel, FaultSpec]:
        """Deterministically choose the fault for run ``index``."""
        rng = self.rng_for(index)
        model = rng.choice(self.models)
        return model, model.plan(rng, self.profile)

    # -- warm start ---------------------------------------------------------

    def _warm_eligible(self) -> bool:
        return self.config.warm_start and not self.config.recover

    def _warm_mark(self, model: FaultModel,
                   spec: FaultSpec) -> ProfileMark | None:
        """Latest golden-run landmark strictly before the fault's
        injection window (``None`` = no usable landmark: fault too
        early, model arms at reset, or the profile predates marks)."""
        bound = model.warm_bound(spec)
        best = None
        for mark in self.profile.marks:
            if mark[0] >= bound:
                break
            best = mark
        return best

    def _prefix_identity(self, instret: int) -> dict:
        identity = golden_identity(self.config)
        identity["prefix_instret"] = instret
        return identity

    def _prefix_stem(self, instret: int) -> str:
        workload = self.config.workload or "inline"
        return f"{workload}-{self.config.extension}-warm{instret}"

    def _replay_prefix(self, instret: int) -> SystemSnapshot | None:
        """Re-simulate the fault-free prefix (no hooks, so the fused
        engine runs it) and capture the state at exactly ``instret``
        committed instructions.  Chains from the nearest earlier
        snapshot already in memory, so generating the landmarks of a
        whole campaign costs one pass over the longest prefix, not a
        quadratic pile of restarts."""
        system = self._build_system()
        base = 0
        earlier = [w for w in self._prefix_snapshots if w < instret]
        if earlier:
            base = max(earlier)
            self._prefix_snapshots[base].restore_into(system)
        captured: dict = {}

        def grab(_system, state):
            if "state" not in captured:
                captured["state"] = state

        deadline = None
        if self.config.wallclock_limit is not None:
            deadline = time.monotonic() + self.config.wallclock_limit
        # The checkpoint interval fires the callback at the first loop
        # top with ``instret`` committed; the +1 instruction limit
        # then stops the run immediately after.
        system.run_bounded(
            max_instructions=instret + 1,
            checkpoint_every=instret - base,
            on_checkpoint=grab,
            deadline=deadline,
            engine="superblock",
        )
        state = captured.get("state")
        if state is None or state["cpu"]["instret"] != instret:
            return None
        return SystemSnapshot.from_state(system, state)

    def _prefix_snapshot(self, instret: int) -> SystemSnapshot | None:
        """The prefix snapshot at ``instret``, from (in order) the
        in-memory store, the on-disk prefix cache, or a fresh fused-
        engine replay (which then populates both)."""
        snapshot = self._prefix_snapshots.get(instret)
        if snapshot is not None:
            return snapshot
        cache = self._prefix_cache
        if cache is not None:
            payload, _diagnostic = cache.load(
                self._prefix_identity(instret),
                self._prefix_stem(instret),
            )
            if payload is not None:
                snapshot = SystemSnapshot(payload["meta"],
                                          payload["state"])
                if snapshot.instructions != instret:
                    snapshot = None
        if snapshot is None:
            snapshot = self._replay_prefix(instret)
            if snapshot is not None and cache is not None:
                cache.store(
                    self._prefix_identity(instret),
                    self._prefix_stem(instret),
                    {"meta": snapshot.meta, "state": snapshot.state},
                )
                if cache.disabled_reason is not None:
                    self._warn(cache.disabled_reason)
        if snapshot is not None:
            self._prefix_snapshots[instret] = snapshot
        return snapshot

    def _warm_settle(self, model: FaultModel, spec: FaultSpec) -> int:
        """Absolute instret by which the armed fault has provably
        fired (``0`` = unknown: the whole suffix stays hooked).

        ``"commits"``-indexed models know this statically.  For
        ``"alu"``/``"forwarded"``-indexed models the golden landmarks
        supply the bound: the faulted run is identical to the golden
        run until its trigger fires (the fault is the first
        divergence), so the first landmark whose counter has reached
        the index is an instret by which the trigger fired — past it
        the hook is an inert counter and the rest of the run can go
        hook-free on a fused engine."""
        settle = model.warm_settle(spec)
        if settle:
            return settle
        unit = model.warm_unit
        if unit not in ("alu", "forwarded"):
            return 0
        index = int(spec.get("index", 0))
        for mark in self.profile.marks:
            count = (mark.alu_commits if unit == "alu"
                     else mark.forwarded)
            if count is not None and count >= index:
                return mark.instret
        return 0

    def _warm_plan(self, system: FlexCoreSystem, spec: FaultSpec,
                   model: FaultModel) -> tuple[int, int] | None:
        """Restore the best prefix snapshot into ``system``, arm a
        rebased ``spec``, and return ``(fork_instret, settle_instret)``
        (``None`` = no usable landmark; caller arms and runs cold)."""
        mark = self._warm_mark(model, spec)
        if mark is None:
            return None
        snapshot = self._prefix_snapshot(mark.instret)
        if snapshot is None:
            return None
        snapshot.restore_into(system)
        model.arm_warm(system, spec, mark)
        return mark.instret, self._warm_settle(model, spec)

    def _run_warm(self, system: FlexCoreSystem, fork: int, settle: int,
                  deadline: float | None,
                  active: list | None = None) -> RunResult:
        """Run a warm-armed system to completion.

        When the fault's injection window provably closes at
        ``settle``, the run splits in two legs: the hooked reference
        window ``fork..settle``, paused by an artificial instruction
        limit right after capturing the state at ``settle``, and a
        hook-free fused-engine run from that state to completion
        under the real watchdog budgets.  If the run terminates inside
        the window (the fault trapped or crashed it), that result is
        final and the second leg never happens.  Without a static
        settle point the whole suffix runs in one leg.
        """
        config = self.config
        if not settle or settle <= fork:
            return system.run_bounded(
                max_instructions=self._instr_budget,
                max_cycles=self._cycle_budget,
                deadline=deadline,
                checkpoint_every=config.checkpoint_every,
            )
        captured: dict = {}

        def grab(_system, state):
            if "state" not in captured:
                captured["state"] = state

        window = system.run_bounded(
            max_instructions=settle + 1,
            max_cycles=self._cycle_budget,
            deadline=deadline,
            checkpoint_every=settle - fork,
            on_checkpoint=grab,
        )
        state = captured.get("state")
        if (window.termination != Termination.INSTRUCTION_LIMIT
                or state is None
                or state["cpu"]["instret"] != settle):
            return window
        remainder = self._build_system()
        if active is not None:
            active[0] = remainder  # crashes now belong to this system
        remainder.restore_state(state)
        return remainder.run_bounded(
            max_instructions=self._instr_budget,
            max_cycles=self._cycle_budget,
            deadline=deadline,
            checkpoint_every=config.checkpoint_every,
            engine="superblock",
        )

    def run_spec(
        self, spec: FaultSpec, model: FaultModel | None = None
    ) -> RunResult:
        """Execute one faulted run under the watchdog (never raises
        for in-simulation failures)."""
        if model is None:
            model = create_model(spec.model)
        system = self._build_system()
        plan = None
        if self._warm_eligible():
            try:
                plan = self._warm_plan(system, spec, model)
            except Exception as err:  # noqa: BLE001 — accelerant only
                self._warn(
                    f"warm start failed for {spec} "
                    f"({type(err).__name__}: {err}); running cold"
                )
                system = self._build_system()  # drop partial restore
                plan = None
        if plan is None:
            model.arm(system, spec)
        deadline = None
        if self.config.wallclock_limit is not None:
            deadline = time.monotonic() + self.config.wallclock_limit
        # A warm run's suffix leg executes in a *second* system (built
        # inside _run_warm); the sandbox below must attribute a crash
        # to whichever system was actually running, or warm crash
        # reports would diverge from cold ones.
        active = [system]
        try:
            if plan is not None:
                return self._run_warm(system, plan[0], plan[1],
                                      deadline, active)
            return system.run_bounded(
                max_instructions=self._instr_budget,
                max_cycles=self._cycle_budget,
                deadline=deadline,
                checkpoint_every=self.config.checkpoint_every,
                recover=self.config.recover,
            )
        except Exception as err:  # noqa: BLE001 — sandbox boundary
            # An injected fault can violate invariants far beyond the
            # simulated program (e.g. a config upset wedging the
            # fabric model).  The sandbox turns *any* escape into a
            # structured crash result instead of killing the campaign.
            crashed = active[0]
            error = SimulationError(
                f"simulator fault escaped the run: "
                f"{type(err).__name__}: {err}",
                pc=crashed.cpu.pc, instret=crashed.cpu.instret,
            )
            return RunResult(
                cycles=0,
                instructions=crashed.cpu.instret,
                halted=False,
                trap=None,
                core_stats=crashed.core_timing.stats,
                interface_stats=(
                    crashed.interface.stats
                    if crashed.interface else None
                ),
                memory=crashed.memory,
                program=self.program,
                termination=Termination.ERROR,
                error=error,
            )

    def classify(self, spec: FaultSpec, index: int,
                 result: RunResult) -> FaultResult:
        """Map one run's termination + output onto the outcome
        dictionary."""
        detail = ""
        if result.termination == Termination.ERROR:
            outcome = Outcome.CRASH
            error = result.error or SimulationError("unknown crash")
            detail = error.diagnosis()
        elif result.termination in WATCHDOG_TERMINATIONS:
            outcome = Outcome.HANG
            detail = (
                f"watchdog: {result.termination} after "
                f"{result.instructions} instructions"
            )
        elif result.trap is not None:
            outcome = Outcome.DETECTED
        elif self._signature(result) != self.profile.output:
            outcome = Outcome.SDC
        elif result.recoveries > 0:
            # The monitor trapped, the system rolled back and the
            # re-execution produced the golden output: the fault was
            # not merely detected but survived.
            outcome = Outcome.RECOVERED
            detail = (
                f"{result.recoveries} rollback(s), "
                f"{result.recovery_cycles} recovery cycles"
            )
        else:
            outcome = Outcome.MASKED
        return FaultResult(
            index=index,
            spec=spec,
            outcome=outcome,
            termination=str(result.termination),
            trap=str(result.trap) if result.trap is not None else None,
            detail=detail,
            instructions=result.instructions,
            cycles=result.cycles,
            recoveries=result.recoveries,
            recovery_cycles=result.recovery_cycles,
        )

    def run_one(self, index: int) -> FaultResult:
        """Plan, arm, execute and classify run ``index``."""
        model, spec = self.plan(index)
        result = self.run_spec(spec, model)
        return self.classify(spec, index, result)

    # -- the campaign -------------------------------------------------------

    def _warn(self, message: str) -> None:
        """Collect a degradation warning (deduplicated: the same
        condition may be reported once per item by its source)."""
        if message not in self.warnings:
            self.warnings.append(message)

    def run(self, progress=None, journal_path=None, resume=False,
            on_result=None, indices=None):
        """Execute every faulted run and build the coverage report.

        ``progress`` is an optional callable ``(done, total)`` invoked
        after each completed run — parallel lockstep batches stream
        their members back individually, so granularity is one fault
        either way.

        ``indices`` restricts this call to a subset of the campaign's
        fault indices (each must be in ``range(config.faults)``); the
        default ``None`` means all of them.  This is the batch-
        extension hook behind adaptive sampling
        (:class:`repro.explore.sampling.AdaptiveCampaign`): the sampler
        declares its fault *budget* up front — keeping the journal
        identity stable — and then grows the executed prefix batch by
        batch through repeated ``run(indices=range(n), resume=True)``
        calls against one journal.  Per-index seeding makes the result
        of an index independent of which call executed it, so the
        grown journal is bit-identical to a straight-through run.

        ``on_result`` is an optional callable invoked with each
        freshly-executed :class:`FaultResult` (replayed results from a
        resumed journal are *not* re-announced).  It is an observation
        hook — the job service's tracer hangs per-fault trace events
        off it — and must not mutate the result.

        With ``journal_path`` every result is durably appended to a
        crash-tolerant journal the moment it exists; ``resume=True``
        replays a prior journal first and only executes the missing
        fault indices, producing a report bit-identical to an
        uninterrupted campaign.  Replayed indices whose *latest*
        record is :attr:`Outcome.INFRA_FAILED` are re-run — resume
        heals quarantine, because infra failures say nothing about
        the fault itself.  SIGINT/SIGTERM terminate the workers
        cleanly and raise :class:`CampaignInterrupted` with the
        partial results (everything already journaled is safe).

        Journaled campaigns also persist their supervised-pool
        tallies: each session appends one ``infra`` frame (only when
        something actually went wrong), and the report's ``infra.*``
        metrics are the deterministic sum of those frames — so a
        resumed campaign reports the infra history it lived through,
        while un-journaled campaigns keep live stats on stderr only
        and report all-zero ``infra.*`` (preserving bit-identical
        reports across jobs/chaos).
        """
        from repro.faultinject.report import CoverageReport, sum_infra

        total = self.config.faults
        results: list[FaultResult] = []
        if indices is None:
            pending = list(range(total))
        else:
            pending = sorted({int(index) for index in indices})
            out_of_range = [i for i in pending if not 0 <= i < total]
            if out_of_range:
                raise CampaignError(
                    f"fault indices out of range [0, {total}): "
                    f"{', '.join(map(str, out_of_range[:8]))}"
                )
        self.pool_stats = PoolStats()
        infra_records: list[dict] = []
        journal: ResultsJournal | None = None
        if journal_path is not None:
            journal = ResultsJournal(journal_path)
            identity = self.config.journal_identity()
            if resume and journal.exists():
                stored, records, infra_records = journal.read_full()
                if stored is None:
                    # Zero-byte or torn-before-the-header journal (the
                    # campaign died inside its very first write):
                    # nothing to replay, restart it cleanly.
                    journal.start(identity)
                elif stored != identity:
                    raise JournalMismatchError(
                        f"journal {journal_path} records a different "
                        f"campaign configuration; refusing to mix "
                        f"results (delete it to start over)"
                    )
                else:
                    by_index: dict[int, FaultResult] = {}
                    for raw in records:
                        replayed = FaultResult.from_dict(raw)
                        by_index[replayed.index] = replayed  # last wins
                    healing = sorted(
                        index for index, r in by_index.items()
                        if r.outcome is Outcome.INFRA_FAILED
                    )
                    if healing:
                        self._warn(
                            f"resume: re-running {len(healing)} "
                            f"previously quarantined (infra_failed) "
                            f"fault index(es): "
                            f"{', '.join(map(str, healing))}"
                        )
                    results = [
                        r for r in by_index.values()
                        if r.outcome is not Outcome.INFRA_FAILED
                    ]
                    done = {r.index for r in results}
                    pending = [i for i in pending if i not in done]
                    journal.open_append()
            else:
                journal.start(identity)
            if journal.disabled_reason is not None:
                self._warn(journal.disabled_reason)

        def record(result: FaultResult) -> None:
            results.append(result)
            if journal is not None:
                journal.append_result(result.as_dict())
                if journal.disabled_reason is not None:
                    self._warn(journal.disabled_reason)
            if on_result is not None:
                on_result(result)
            if progress is not None:
                progress(len(results), total)

        interrupted = False
        previous_sigterm = None
        try:
            # Make SIGTERM (the polite kill) interrupt exactly like
            # Ctrl-C, so both paths flush the journal and report the
            # partial results.  Only possible from the main thread.
            previous_sigterm = signal.signal(
                signal.SIGTERM, _raise_keyboard_interrupt
            )
        except ValueError:
            pass
        try:
            with self.profiler.phase("faulted-runs"):
                if self.config.jobs == 1:
                    for index in pending:
                        record(self.run_one(index))
                else:
                    self._run_parallel(pending, record)
        except KeyboardInterrupt:
            interrupted = True
        finally:
            if previous_sigterm is not None:
                signal.signal(signal.SIGTERM, previous_sigterm)
            if journal is not None:
                # Persist this session's pool tallies next to its
                # results: the report's infra.* counters are a pure
                # replay of these frames, so they survive kill -9 the
                # same way the results do (at worst the final,
                # not-yet-written session frame is lost — its
                # quarantined *results* are already journaled).
                if self.pool_stats.interesting():
                    journal.append_infra(self.pool_stats.as_dict())
                    if journal.disabled_reason is None:
                        infra_records.append(self.pool_stats.as_dict())
                    else:
                        self._warn(journal.disabled_reason)
                journal.close()

        infra = sum_infra(infra_records)
        results.sort(key=lambda r: r.index)
        if interrupted:
            raise CampaignInterrupted(
                self.config, self.profile, tuple(results),
                journal_path=journal_path, infra=infra,
            )
        with self.profiler.phase("report"):
            return CoverageReport.build(self.config, self.profile,
                                        tuple(results), infra=infra)

    def _run_parallel(self, indices, record) -> None:
        """Fan the runs out over the supervised process pool.

        Each worker rebuilds the campaign once (fork keeps this cheap)
        and runs *lockstep batches* of up to ``config.batch_size``
        indices per dispatch: the members of a batch share the
        worker's golden profile, predecoded superblocks and chained
        warm-start prefix snapshots, and their results stream back one
        ``part`` at a time.  Per-index seeding makes each result
        independent of the scheduling, so batching never changes the
        science — only how much per-dispatch setup is amortised.

        Pool mechanics (worker signal setup, deadlines, retries,
        terminate-on-interrupt) live in
        :func:`repro.engine.pool.fan_out`.  Retry granularity stays
        one fault: a batch that fails mid-way is shrunk to its
        unfinished members (everything already streamed back is
        recorded and journaled) and split into per-index retries; an
        index that keeps killing its worker is quarantined here as an
        :attr:`Outcome.INFRA_FAILED` result carrying the planned
        fault spec, so nothing ever silently disappears from the
        report.
        """
        from repro.engine.pool import fan_out

        worker_config = replace(self.config, jobs=1)
        size = self.config.batch_size
        batches = [list(indices[i:i + size])
                   for i in range(0, len(indices), size)]
        timeout = self.config.task_timeout
        if timeout is None and self.config.wallclock_limit is not None:
            # The pool deadline must comfortably outlast the
            # in-simulation watchdog (golden run + faulted run share
            # one worker dispatch at startup), or healthy-but-slow
            # runs would be reaped as hung.
            timeout = 2.0 * self.config.wallclock_limit + 30.0
        policy = PoolPolicy(
            task_timeout=timeout,
            max_retries=self.config.max_retries,
            fallback=self.config.serial_fallback,
        )

        def quarantine(batch, error):
            # ``batch`` is whatever was still unfinished when retries
            # ran out — usually a single exploded index, but every
            # member is surfaced either way.
            for index in batch:
                _model, spec = self.plan(index)
                record(FaultResult(
                    index=index,
                    spec=spec,
                    outcome=Outcome.INFRA_FAILED,
                    termination="infra-failure",
                    trap=None,
                    detail=str(error),
                    instructions=0,
                    cycles=0,
                ))

        self.pool_stats = fan_out(
            batches, _worker_run_batch, record, jobs=self.config.jobs,
            initializer=_init_worker, initargs=(worker_config,),
            policy=policy, on_quarantine=quarantine, warn=self._warn,
            shrink=_shrink_batch, explode=_explode_batch,
        )


def _raise_keyboard_interrupt(signum, frame):
    raise KeyboardInterrupt


#: per-process campaign instance for pool workers.
_WORKER_CAMPAIGN: Campaign | None = None


def _init_worker(config: CampaignConfig) -> None:
    from repro.engine.pool import worker_signals

    worker_signals()
    global _WORKER_CAMPAIGN
    _WORKER_CAMPAIGN = Campaign(config)


def _worker_run(index: int) -> FaultResult:
    return _WORKER_CAMPAIGN.run_one(index)


def _worker_run_batch(indices):
    """One lockstep batch: the members share this worker's campaign —
    hence its golden profile, predecoded superblock tables and chained
    warm-start prefix snapshots — and stream their results back one
    ``part`` at a time, so the parent journals each fault the moment
    it completes."""
    for index in indices:
        yield _worker_run(index)


def _shrink_batch(batch: list, result: FaultResult) -> list:
    """Drop the member a just-streamed result belongs to, leaving the
    unfinished remainder the pool would requeue."""
    return [index for index in batch if index != result.index]


def _explode_batch(batch: list) -> list[list]:
    """Split a failed batch's remainder into per-index retries."""
    return [[index] for index in batch]


def run_campaign(config: CampaignConfig, progress=None,
                 journal_path=None, resume=False):
    """Convenience one-call entry point."""
    return Campaign(config).run(progress=progress,
                                journal_path=journal_path,
                                resume=resume)
