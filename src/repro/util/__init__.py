"""Cross-cutting helpers shared by otherwise-independent subsystems.

Modules here must not import from any other ``repro`` package: they sit
below everything else in the dependency graph so that, e.g., both
``faultinject`` and ``explore`` can share one seed-derivation scheme
without a cycle.
"""

from repro.util.rng import derive_fraction, derive_key, derive_rng
from repro.util.stats import wilson_half_width, wilson_interval

__all__ = [
    "derive_fraction",
    "derive_key",
    "derive_rng",
    "wilson_half_width",
    "wilson_interval",
]
