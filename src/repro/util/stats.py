"""Small-sample binomial statistics for campaign outcome rates.

Fault-injection coverage numbers are binomial proportions estimated
from a few hundred to a few thousand trials; the Wilson score interval
is the standard choice at those sizes because — unlike the normal
(Wald) approximation — it never escapes ``[0, 1]`` and stays honest at
p near 0 or 1, exactly where detection-coverage estimates live.

Pure functions, stdlib-only, no repro imports: ``faultinject.report``
uses them to annotate reports and ``explore.sampling`` uses the same
code to decide when an adaptive campaign may stop, so the number shown
to the user is definitionally the number the stopping rule saw.
"""

from __future__ import annotations

import math

# Two-sided 95% normal quantile.  Fixed rather than configurable-by-
# alpha because there is no stdlib inverse-normal-CDF; every consumer
# in this repo wants 95% and says so in its output.
Z_95 = 1.959963984540054


def wilson_interval(successes: int, trials: int,
                    z: float = Z_95) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Returns ``(low, high)`` bounds in ``[0, 1]``.  With zero trials
    nothing is known, so the interval is the vacuous ``(0.0, 1.0)``.
    """
    if trials < 0:
        raise ValueError(f"trials must be >= 0, got {trials}")
    if not 0 <= successes <= max(trials, 0):
        raise ValueError(
            f"successes must be in [0, {trials}], got {successes}")
    if trials == 0:
        return (0.0, 1.0)
    n = float(trials)
    p = successes / n
    z2 = z * z
    denominator = 1.0 + z2 / n
    center = (p + z2 / (2.0 * n)) / denominator
    spread = (z / denominator) * math.sqrt(
        p * (1.0 - p) / n + z2 / (4.0 * n * n))
    return (max(0.0, center - spread), min(1.0, center + spread))


def wilson_half_width(successes: int, trials: int,
                      z: float = Z_95) -> float:
    """Half the Wilson interval width — the sampler's stopping metric.

    1.0 (maximally uncertain) when ``trials`` is zero, shrinking
    roughly as ``1/sqrt(trials)``; an adaptive campaign stops once
    every tracked outcome's half-width is under its target.
    """
    low, high = wilson_interval(successes, trials, z)
    return (high - low) / 2.0
