"""Deterministic seeded-RNG derivation, shared repo-wide.

Every reproducibility guarantee in this codebase bottoms out in the
same convention: a stream of randomness is named by a ``/``-joined key
of its coordinates (``"<seed>/<index>"``, ``"<workload>/<ext>"``,
``"<task>/<attempt>"``) and seeded from that string.  The convention
grew up independently in ``faultinject`` (per-fault RNGs), the
supervised pool (backoff jitter), and the chaos tests; this module is
the single definition all of them — and ``repro.explore`` — now use.

The functions are pure and bit-stable: :func:`derive_rng` seeds
``random.Random`` with exactly the joined string (so pre-existing
campaign journals and golden digests keyed on ``f"{seed}/{index}"``
replay unchanged), and :func:`derive_fraction` reduces the key through
``zlib.crc32`` with exact power-of-two float division (so the pool's
pinned backoff schedules are preserved to the last bit).
"""

from __future__ import annotations

import random
import zlib


def derive_key(*parts: object) -> str:
    """Join stream coordinates into the canonical ``a/b/c`` seed key."""
    return "/".join(str(part) for part in parts)


def derive_rng(*parts: object) -> random.Random:
    """A ``random.Random`` seeded from :func:`derive_key` of ``parts``.

    ``derive_rng(seed, index)`` is bit-identical to the historical
    ``random.Random(f"{seed}/{index}")`` idiom it replaces.
    """
    return random.Random(derive_key(*parts))


def derive_fraction(*parts: object) -> float:
    """Deterministic float in ``[0, 1)`` from the key of ``parts``.

    ``crc32(key) / 2**32`` — the division is by a power of two and the
    CRC fits in 32 bits, so the result is exact (no rounding), which is
    what lets callers rescale it (e.g. into a ``[0.5, 1.0)`` jitter
    factor) without perturbing pinned schedules.
    """
    token = derive_key(*parts).encode("utf-8")
    return (zlib.crc32(token) & 0xFFFFFFFF) / 2**32
