"""Software-monitoring baselines (instruction instrumentation)."""

from repro.software.instrumentation import (
    SOFTWARE_TOOLS,
    ClassCost,
    InstrumentationSpec,
    lift_dift,
    naive_dift,
    purify_umc,
    run_instrumented,
    software_bc,
)

__all__ = [
    "ClassCost",
    "InstrumentationSpec",
    "SOFTWARE_TOOLS",
    "lift_dift",
    "naive_dift",
    "purify_umc",
    "run_instrumented",
    "software_bc",
]
