"""Software monitoring baseline (Section V-C comparison).

Software implementations of the same monitors instrument every
monitored instruction with a bookkeeping sequence executed *on the
main core*: compute the tag address, load/store the tag, check it,
branch on the result.  The slowdown mechanism is instruction
inflation plus data-cache pollution from tag accesses — exactly what
makes LIFT-style DIFT ~3.6x, naive taint tracking up to ~37x, and
Purify-style UMC up to ~5.5x slower (numbers the paper cites).

The model executes the program functionally as usual and charges, per
committed instruction, the instrumentation sequence of its class: N
extra single-cycle instructions plus the cache/bus traffic of the tag
accesses, resolved against the same L1/bus models the baseline uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.executor import CpuState, SimulationError
from repro.core.timing import CoreTiming, CoreTimingConfig
from repro.flexcore.system import RunResult, SystemConfig
from repro.isa.assembler import Program
from repro.isa.opcodes import (
    ALU_CLASSES,
    LOAD_CLASSES,
    STORE_CLASSES,
    InstrClass,
)
from repro.memory.backing import SparseMemory
from repro.memory.bus import SharedBus

TAG_REGION_BASE = 0x4000_0000


@dataclass(frozen=True)
class ClassCost:
    """Instrumentation cost for one instruction class."""

    extra_instructions: int = 0  # straight-line bookkeeping ops
    tag_loads: int = 0  # tag-region loads (go through the D$)
    tag_stores: int = 0  # tag-region stores (write-through)


@dataclass
class InstrumentationSpec:
    """A software monitoring tool: per-class instrumentation costs."""

    name: str
    description: str
    costs: dict[InstrClass, ClassCost] = field(default_factory=dict)

    def cost(self, instr_class: InstrClass) -> ClassCost | None:
        return self.costs.get(instr_class)


def _spread(classes, cost: ClassCost) -> dict[InstrClass, ClassCost]:
    return {instr_class: cost for instr_class in classes}


def lift_dift() -> InstrumentationSpec:
    """An optimized software DIFT in the spirit of LIFT: register tags
    live in spare registers, memory tags in a shadow region."""
    costs = {}
    costs.update(_spread(ALU_CLASSES, ClassCost(extra_instructions=2)))
    costs.update(_spread(
        LOAD_CLASSES, ClassCost(extra_instructions=4, tag_loads=1)
    ))
    costs.update(_spread(
        STORE_CLASSES, ClassCost(extra_instructions=4, tag_stores=1)
    ))
    costs[InstrClass.JMPL] = ClassCost(extra_instructions=3)
    return InstrumentationSpec(
        name="dift-sw-opt",
        description="optimized software DIFT (LIFT-style)",
        costs=costs,
    )


def naive_dift() -> InstrumentationSpec:
    """Unoptimized taint tracking: every monitored instruction calls
    into an instrumentation runtime (tens of instructions each)."""
    costs = {}
    costs.update(_spread(ALU_CLASSES, ClassCost(extra_instructions=24)))
    costs.update(_spread(
        LOAD_CLASSES,
        ClassCost(extra_instructions=30, tag_loads=2, tag_stores=1),
    ))
    costs.update(_spread(
        STORE_CLASSES,
        ClassCost(extra_instructions=30, tag_loads=1, tag_stores=2),
    ))
    costs[InstrClass.JMPL] = ClassCost(extra_instructions=28, tag_loads=1)
    costs[InstrClass.BRANCH] = ClassCost(extra_instructions=20)
    costs[InstrClass.SETHI] = ClassCost(extra_instructions=16)
    return InstrumentationSpec(
        name="dift-sw-naive",
        description="naive software taint tracking",
        costs=costs,
    )


def purify_umc() -> InstrumentationSpec:
    """Purify-style uninitialized-memory checking: every load checks a
    state byte, every store updates one."""
    costs = {}
    costs.update(_spread(
        LOAD_CLASSES, ClassCost(extra_instructions=6, tag_loads=1)
    ))
    costs.update(_spread(
        STORE_CLASSES, ClassCost(extra_instructions=5, tag_stores=1)
    ))
    return InstrumentationSpec(
        name="umc-sw",
        description="software uninitialized-memory checking (Purify-style)",
        costs=costs,
    )


def software_bc() -> InstrumentationSpec:
    """Compiler-inserted bounds checks with table lookups."""
    costs = {}
    costs.update(_spread(
        LOAD_CLASSES, ClassCost(extra_instructions=4, tag_loads=1)
    ))
    costs.update(_spread(
        STORE_CLASSES, ClassCost(extra_instructions=4, tag_loads=1,
                                 tag_stores=1)
    ))
    costs[InstrClass.ARITH_ADD] = ClassCost(extra_instructions=1)
    costs[InstrClass.ARITH_SUB] = ClassCost(extra_instructions=1)
    return InstrumentationSpec(
        name="bc-sw",
        description="software array bound checking",
        costs=costs,
    )


SOFTWARE_TOOLS = {
    "dift-opt": lift_dift,
    "dift-naive": naive_dift,
    "umc": purify_umc,
    "bc": software_bc,
}


def run_instrumented(
    program: Program,
    spec: InstrumentationSpec,
    config: SystemConfig | None = None,
    max_instructions: int | None = None,
) -> RunResult:
    """Run a program under software instrumentation.

    Returns a :class:`RunResult` whose cycle count includes the
    instrumentation work; ``instructions`` counts only the original
    program's instructions so CPI reflects the inflation.
    """
    config = config or SystemConfig()
    memory = SparseMemory()
    memory.load_program(program)
    bus = SharedBus(config.core.bus)
    cpu = CpuState(
        memory, entry=program.entry,
        nwindows=config.nwindows, stack_top=config.stack_top,
    )
    timing = CoreTiming(config.core, bus)
    limit = max_instructions or config.max_instructions
    now = 0

    while not cpu.halted:
        if cpu.instret >= limit:
            raise SimulationError(f"instruction limit {limit} exceeded")
        record = cpu.step()
        now = timing.advance(record, now)
        if record.annulled:
            continue
        cost = spec.cost(record.instr_class)
        if cost is None:
            continue
        now += cost.extra_instructions
        tag_addr = TAG_REGION_BASE + ((record.addr >> 5) & ~3)
        for _ in range(cost.tag_loads):
            if not timing.dcache.read(tag_addr):
                now = bus.line_refill(now, "sw-tag-load")
            else:
                now += 1
        for _ in range(cost.tag_stores):
            timing.dcache.write(tag_addr)
            now = max(now, timing.store_buffer.push(now)) + 1

    now = max(now, timing.store_buffer.drain_time())
    return RunResult(
        cycles=int(now),
        instructions=cpu.instret,
        halted=cpu.halted,
        trap=None,
        core_stats=timing.stats,
        interface_stats=None,
        memory=memory,
        program=program,
    )
