"""Seeded evolutionary search over a design space.

A deterministic (μ + λ)-style loop in the spirit of DAVOS's
``Evolutionary_DSE``: tournament selection on Pareto-domination rank,
uniform per-axis crossover, per-axis mutation back onto the grid.
Every random draw comes from :func:`repro.util.rng.derive_rng` keyed
on (seed, space, generation, role), so two runs of the same
configuration walk the identical population sequence — and because
point evaluation is cache-deduplicated, the second run is nearly
free.

The loop *searches*; it never ranks infeasible points above feasible
ones (an infeasible point's rank is worse than any feasible rank),
and it returns every evaluation it paid for — the caller Pareto-
filters the union, so evaluations of dead ends still show up in the
report as explored territory.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.explore.pareto import dominates
from repro.explore.space import DesignPoint, DesignSpace
from repro.util.rng import derive_rng


@dataclass(frozen=True)
class EvolveConfig:
    """Knobs of the evolutionary loop (all deterministic)."""

    population: int = 8
    generations: int = 4
    #: best-ranked members copied unchanged into the next generation.
    elite: int = 2
    #: tournament size for parent selection.
    tournament: int = 2
    #: per-axis probability of re-drawing an offspring's value.
    mutation_rate: float = 0.35

    def __post_init__(self) -> None:
        if self.population < 2:
            raise ValueError(
                f"population must be >= 2, got {self.population}")
        if self.generations < 1:
            raise ValueError(
                f"generations must be >= 1, got {self.generations}")
        if not 0 <= self.elite < self.population:
            raise ValueError(
                f"elite must be in [0, population), got {self.elite}")
        if self.tournament < 1:
            raise ValueError(
                f"tournament must be >= 1, got {self.tournament}")
        if not 0 <= self.mutation_rate <= 1:
            raise ValueError(
                f"mutation_rate must be in [0, 1], "
                f"got {self.mutation_rate}")

    def as_dict(self) -> dict:
        return {
            "population": self.population,
            "generations": self.generations,
            "elite": self.elite,
            "tournament": self.tournament,
            "mutation_rate": self.mutation_rate,
        }


def _random_point(space: DesignSpace, rng) -> DesignPoint:
    values = {axis: rng.choice(candidates)
              for axis, candidates in space.axes().items()}
    return DesignPoint(**values)


def _crossover(a: DesignPoint, b: DesignPoint, rng) -> DesignPoint:
    values = {}
    for axis in ("workload", "extension", "fifo_depth",
                 "clock_ratio", "meta_cache_bytes"):
        values[axis] = getattr(a if rng.random() < 0.5 else b, axis)
    return DesignPoint(**values)


def _mutate(point: DesignPoint, space: DesignSpace, rng,
            rate: float) -> DesignPoint:
    values = point.as_dict()
    for axis, candidates in space.axes().items():
        if rng.random() < rate:
            values[axis] = rng.choice(candidates)
    return DesignPoint(**values)


def evolve(space: DesignSpace, evaluate, config: EvolveConfig,
           objective_key, seed: object = 1, log=None) -> dict:
    """Run the loop; return every evaluation, keyed by point key.

    ``evaluate(points) -> list[Evaluation]`` scores a batch (the
    :class:`repro.explore.evaluate.PointEvaluator` bound method);
    ``objective_key(evaluation) -> tuple | None`` maps an evaluation
    to its minimising objective vector, or ``None`` for points that
    cannot enter the front (infeasible, missing coverage).
    """
    evaluated: dict[str, object] = {}

    def ensure_evaluated(points) -> None:
        fresh, seen = [], set()
        for point in points:
            key = point.key()
            if key not in evaluated and key not in seen:
                seen.add(key)
                fresh.append(point)
        if fresh:
            for point, evaluation in zip(fresh, evaluate(fresh)):
                evaluated[point.key()] = evaluation

    def rank(point: DesignPoint) -> tuple:
        """(domination count, key): lower is fitter; infeasible sits
        below every feasible point; the key breaks ties so sorting
        is total and deterministic."""
        mine = objective_key(evaluated[point.key()])
        if mine is None:
            return (float("inf"), point.key())
        vectors = [
            vector for vector in (
                objective_key(e) for e in evaluated.values())
            if vector is not None
        ]
        dominated_by = sum(
            1 for vector in vectors if dominates(vector, mine))
        return (dominated_by, point.key())

    init_rng = derive_rng(seed, space.name, "evolve", "init")
    population: list[DesignPoint] = []
    member_keys: set[str] = set()
    attempts = 0
    while (len(population) < config.population
           and attempts < config.population * 50):
        attempts += 1
        candidate = _random_point(space, init_rng)
        if candidate.key() not in member_keys:
            member_keys.add(candidate.key())
            population.append(candidate)

    for generation in range(config.generations):
        ensure_evaluated(population)
        if log is not None:
            best = min(rank(point) for point in population)
            log(f"generation {generation}: "
                f"{len(evaluated)} point(s) evaluated, "
                f"best rank {best[0]}")
        if generation == config.generations - 1:
            break
        rng = derive_rng(seed, space.name, "evolve", generation)
        by_rank = sorted(population, key=rank)
        elites = by_rank[:config.elite]

        def select() -> DesignPoint:
            contenders = [rng.choice(population)
                          for _ in range(config.tournament)]
            return min(contenders, key=rank)

        offspring: list[DesignPoint] = list(elites)
        keys = {point.key() for point in offspring}
        stale = 0
        while len(offspring) < config.population and stale < 200:
            child = _mutate(_crossover(select(), select(), rng),
                            space, rng, config.mutation_rate)
            if child.key() in keys:
                stale += 1
                continue
            keys.add(child.key())
            offspring.append(child)
        # A tiny space can saturate (every cell already present);
        # pad with grid re-draws so the population size is stable.
        while len(offspring) < config.population:
            offspring.append(_random_point(space, rng))
        population = offspring

    return evaluated
