"""Pareto dominance filtering and knee-point selection.

Generic over "anything with an objective vector": the functions take a
``key`` callable mapping each item to a tuple of *minimising* floats
(the evaluator encodes coverage as ``1 - coverage`` so every axis
points the same way).  This keeps them property-testable on bare
tuples and reusable if a sixth objective ever shows up.

Determinism: the front preserves the input's first-occurrence order
for distinct objective vectors, and among items with *equal* vectors
keeps every one (they are mutually non-dominating); callers that need
a canonical order sort by their own key, as
:class:`repro.explore.report.ExplorationReport` does.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when ``a`` is at least as good on every objective and
    strictly better on at least one (all objectives minimising)."""
    if len(a) != len(b):
        raise ValueError(
            f"objective vectors differ in length: {len(a)} vs {len(b)}")
    return all(x <= y for x, y in zip(a, b)) and any(
        x < y for x, y in zip(a, b))


def pareto_front(items: Sequence, key: Callable = lambda item: item
                 ) -> list:
    """The non-dominated subset of ``items``, in input order.

    O(n²) pairwise filtering — exploration fronts are hundreds of
    points, not millions, and the simple algorithm is obviously
    order-invariant (membership depends only on the multiset of
    vectors, which the property tests pin down).
    """
    vectors = [tuple(key(item)) for item in items]
    front = []
    for index, item in enumerate(items):
        mine = vectors[index]
        if not any(dominates(other, mine) for other in vectors):
            front.append(item)
    return front


def knee_point(front: Sequence, key: Callable = lambda item: item):
    """The front member closest to the (per-objective) ideal point.

    Objectives are min-max normalised over the front so no axis's
    units dominate the distance; a degenerate axis (all equal)
    contributes zero.  Ties break toward the earliest item, so the
    selection is deterministic for a deterministically-ordered front.
    Returns ``None`` for an empty front.
    """
    if not front:
        return None
    vectors = [tuple(key(item)) for item in front]
    dimensions = len(vectors[0])
    lows = [min(v[d] for v in vectors) for d in range(dimensions)]
    highs = [max(v[d] for v in vectors) for d in range(dimensions)]
    best_index = 0
    best_distance = math.inf
    for index, vector in enumerate(vectors):
        distance = 0.0
        for d in range(dimensions):
            span = highs[d] - lows[d]
            if span > 0:
                normalised = (vector[d] - lows[d]) / span
                distance += normalised * normalised
        if distance < best_distance:
            best_distance = distance
            best_index = index
    return front[best_index]
