"""Scoring one design point on the three exploration objectives.

Each :class:`DesignPoint` is priced on:

* **slowdown** — monitored cycles / unmonitored-baseline cycles, both
  simulated through :class:`repro.engine.sweep.SweepRunner` so the
  on-disk outcome cache deduplicates across exploration modes, resumed
  runs, and repeated service jobs;
* **LUT area / frequency** — the Table-III fabric model
  (:func:`repro.fabric.synthesis.synthesize_fabric`), which also
  decides *feasibility*: a point asking for a faster fabric clock than
  synthesis supports is reported but never enters the Pareto front
  (the paper's own rule — SEC runs at 0.25x because it must);
* **coverage** (optional) — a fault campaign per
  :meth:`DesignPoint.campaign_key`, fixed-size or adaptive
  (:class:`repro.explore.sampling.AdaptiveCampaign`).  Points that
  differ only in meta-cache size share one campaign: the meta cache
  changes timing, not verdicts.

Everything deterministic; ``state_dir`` only accelerates (sweep cache,
golden cache, campaign journals) and is what makes kill -9 + resume
bit-identical.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.engine.pool import PoolPolicy
from repro.engine.sweep import SweepPoint, SweepRunner
from repro.explore.sampling import AdaptiveCampaign, AdaptiveConfig
from repro.explore.space import DesignPoint, DesignSpace
from repro.extensions import create_extension
from repro.fabric.synthesis import synthesize_fabric
from repro.faultinject.campaign import Campaign, CampaignConfig


@dataclass(frozen=True)
class Evaluation:
    """One design point's scores (plain values, JSON-able)."""

    point: DesignPoint
    feasible: bool
    #: why the point is excluded from the front ("" when feasible).
    note: str
    luts: int
    fmax_mhz: float
    supported_clock_ratio: float
    slowdown: float | None = None
    cycles: int | None = None
    baseline_cycles: int | None = None
    coverage: float | None = None
    coverage_low: float | None = None
    coverage_high: float | None = None
    faults_used: int | None = None
    converged: bool | None = None

    def objectives(self, coverage: bool) -> tuple[float, ...]:
        """Minimising objective vector: (1-coverage, slowdown, luts)
        — or (slowdown, luts) when coverage is not measured."""
        if self.slowdown is None:
            raise ValueError(
                f"{self.point.key()} has no slowdown; filter "
                f"infeasible evaluations before ranking")
        if coverage:
            if self.coverage is None:
                raise ValueError(
                    f"{self.point.key()} has no coverage; filter "
                    f"before ranking")
            return (1.0 - self.coverage, self.slowdown,
                    float(self.luts))
        return (self.slowdown, float(self.luts))

    def as_dict(self) -> dict:
        doc = {
            "point": self.point.as_dict(),
            "key": self.point.key(),
            "feasible": self.feasible,
            "note": self.note,
            "luts": self.luts,
            "fmax_mhz": round(self.fmax_mhz, 3),
            "supported_clock_ratio": self.supported_clock_ratio,
            "slowdown": (round(self.slowdown, 6)
                         if self.slowdown is not None else None),
            "cycles": self.cycles,
            "baseline_cycles": self.baseline_cycles,
            "coverage": (round(self.coverage, 6)
                         if self.coverage is not None else None),
            "coverage_low": self.coverage_low,
            "coverage_high": self.coverage_high,
            "faults_used": self.faults_used,
            "converged": self.converged,
        }
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "Evaluation":
        return cls(
            point=DesignPoint.from_dict(doc["point"]),
            feasible=doc["feasible"],
            note=doc["note"],
            luts=doc["luts"],
            fmax_mhz=doc["fmax_mhz"],
            supported_clock_ratio=doc["supported_clock_ratio"],
            slowdown=doc["slowdown"],
            cycles=doc["cycles"],
            baseline_cycles=doc["baseline_cycles"],
            coverage=doc["coverage"],
            coverage_low=doc["coverage_low"],
            coverage_high=doc["coverage_high"],
            faults_used=doc["faults_used"],
            converged=doc["converged"],
        )


class PointEvaluator:
    """Batch-evaluate design points, deduplicating shared work.

    ``faults > 0`` enables fixed-size coverage campaigns;
    ``adaptive`` (an :class:`AdaptiveConfig`) enables CI-driven ones
    (mutually exclusive).  ``state_dir`` roots the sweep cache, the
    campaign golden cache and per-campaign journals; re-running with
    the same directory resumes instead of recomputing.
    """

    def __init__(self, space: DesignSpace, *, jobs: int = 1,
                 engine: str | None = "fast", state_dir=None,
                 seed: int = 1, faults: int = 0,
                 adaptive: AdaptiveConfig | None = None,
                 resume: bool = True,
                 policy: PoolPolicy | None = None,
                 diagnostics=None, log=None, progress=None):
        if faults and adaptive is not None:
            raise ValueError(
                "faults= (fixed-size) and adaptive= (CI-driven) "
                "campaigns are mutually exclusive")
        if faults < 0:
            raise ValueError(f"faults must be >= 0, got {faults}")
        self.space = space
        self.jobs = jobs
        self.seed = seed
        self.faults = faults
        self.adaptive = adaptive
        self.resume = resume
        self.diagnostics = diagnostics
        self.log = log
        #: forwarded to every campaign run as its ``progress``
        #: callback — the job service raises from it to cancel
        #: cooperatively (everything journaled stays resumable).
        self.progress = progress
        self.state_dir = str(state_dir) if state_dir else None
        sweep_cache = None
        if self.state_dir:
            sweep_cache = os.path.join(self.state_dir, "sweep-cache")
        self.runner = SweepRunner(jobs=jobs, engine=engine,
                                  cache_dir=sweep_cache, policy=policy)
        self._synthesis: dict[str, object] = {}
        self._campaigns: dict[str, dict] = {}

    @property
    def coverage_enabled(self) -> bool:
        return bool(self.faults) or self.adaptive is not None

    # -- shared sub-results -------------------------------------------------

    def _synthesis_for(self, extension: str):
        report = self._synthesis.get(extension)
        if report is None:
            report = synthesize_fabric(create_extension(extension))
            self._synthesis[extension] = report
        return report

    def _campaign_journal(self, point: DesignPoint) -> str | None:
        if not self.state_dir:
            return None
        directory = os.path.join(self.state_dir, "campaigns")
        os.makedirs(directory, exist_ok=True)
        stem = point.campaign_key().replace("/", "-")
        return os.path.join(directory, f"{stem}.jsonl")

    def _coverage_for(self, point: DesignPoint) -> dict:
        """Run (or reuse) the fault campaign behind ``point``."""
        key = point.campaign_key()
        cached = self._campaigns.get(key)
        if cached is not None:
            return cached
        if self.log is not None:
            self.log(f"campaign {key}")
        golden_cache = None
        if self.state_dir:
            golden_cache = os.path.join(self.state_dir, "golden-cache")
        config = CampaignConfig(
            extension=point.extension,
            workload=point.workload,
            scale=self.space.scale,
            seed=self.seed,
            faults=self.faults or 1,  # adaptive overrides this
            clock_ratio=point.clock_ratio,
            fifo_depth=point.fifo_depth,
            jobs=self.jobs,
            cache_dir=golden_cache,
        )
        journal = self._campaign_journal(point)
        if self.adaptive is not None:
            result = AdaptiveCampaign(config, self.adaptive).run(
                journal_path=journal,
                resume=self.resume and journal is not None,
                progress=self.progress,
            )
            report = result.report
            faults_used = result.faults_used
            converged = result.converged
        else:
            report = Campaign(config).run(
                journal_path=journal,
                resume=self.resume and journal is not None,
                progress=self.progress,
            )
            faults_used = self.faults
            converged = None
        interval = report.confidence()["detection_coverage"]
        entry = {
            "coverage": report.detection_coverage,
            "low": interval["low"],
            "high": interval["high"],
            "faults_used": faults_used,
            "converged": converged,
        }
        self._campaigns[key] = entry
        return entry

    # -- the batch ----------------------------------------------------------

    def evaluate(self, points) -> list[Evaluation]:
        """Score ``points``, one :class:`Evaluation` each, in order."""
        points = list(points)
        feasibility: dict[str, tuple[bool, str]] = {}
        for point in points:
            synthesis = self._synthesis_for(point.extension)
            supported = synthesis.clock_ratio
            if point.clock_ratio <= supported + 1e-9:
                feasibility[point.key()] = (True, "")
            else:
                feasibility[point.key()] = (False, (
                    f"clock ratio {point.clock_ratio} exceeds the "
                    f"synthesised fabric's supported ratio "
                    f"{supported} ({synthesis.fmax_mhz:.1f} MHz)"))

        # One sweep batch: per-workload baselines plus every feasible
        # monitored point, deduplicated by sweep identity.
        sweep_points: list[SweepPoint] = []
        slots: dict[str, int] = {}

        def slot(sweep_point: SweepPoint) -> int:
            identity = repr(sorted(sweep_point.identity().items()))
            if identity not in slots:
                slots[identity] = len(sweep_points)
                sweep_points.append(sweep_point)
            return slots[identity]

        baseline_slot = {
            workload: slot(SweepPoint(
                workload=workload, extension=None,
                scale=self.space.scale,
                scaled_memory=self.space.scaled_memory))
            for workload in sorted({p.workload for p in points})
        }
        point_slot = {
            point.key(): slot(point.sweep_point(
                self.space.scale, self.space.scaled_memory))
            for point in points
            if feasibility[point.key()][0]
        }

        infra_notes: dict[int, str] = {}

        def on_infra_failure(sweep_point, error):
            identity = repr(sorted(sweep_point.identity().items()))
            infra_notes[slots[identity]] = (
                f"simulation quarantined: {error}")

        if self.log is not None:
            self.log(f"sweeping {len(sweep_points)} point(s) "
                     f"({len(points)} design point(s))")
        outcomes = self.runner.run(sweep_points,
                                   diagnostics=self.diagnostics,
                                   on_infra_failure=on_infra_failure)

        evaluations = []
        for point in points:
            synthesis = self._synthesis_for(point.extension)
            feasible, note = feasibility[point.key()]
            slowdown = cycles = baseline_cycles = None
            coverage_entry = None
            if feasible:
                base = outcomes[baseline_slot[point.workload]]
                mine = outcomes[point_slot[point.key()]]
                if base is None or mine is None:
                    index = (point_slot[point.key()] if mine is None
                             else baseline_slot[point.workload])
                    feasible = False
                    note = infra_notes.get(
                        index, "simulation unavailable")
                else:
                    cycles = mine.cycles
                    baseline_cycles = base.cycles
                    slowdown = cycles / baseline_cycles
                    if self.coverage_enabled:
                        coverage_entry = self._coverage_for(point)
            evaluations.append(Evaluation(
                point=point,
                feasible=feasible,
                note=note,
                luts=synthesis.luts,
                fmax_mhz=synthesis.fmax_mhz,
                supported_clock_ratio=synthesis.clock_ratio,
                slowdown=slowdown,
                cycles=cycles,
                baseline_cycles=baseline_cycles,
                coverage=(coverage_entry["coverage"]
                          if coverage_entry else None),
                coverage_low=(coverage_entry["low"]
                              if coverage_entry else None),
                coverage_high=(coverage_entry["high"]
                               if coverage_entry else None),
                faults_used=(coverage_entry["faults_used"]
                             if coverage_entry else None),
                converged=(coverage_entry["converged"]
                           if coverage_entry else None),
            ))
        return evaluations
