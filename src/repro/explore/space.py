"""Design-space description: axes, points, presets, TOML loading.

A :class:`DesignSpace` is the declarative input of an exploration — a
name plus one tuple of candidate values per axis.  A
:class:`DesignPoint` is one cell of that grid.  Both are frozen,
deterministic, and round-trip exactly through ``as_dict`` /
``from_dict``, which is what lets the job service content-address an
exploration by its normalised spec.

Spaces load from three sources: a preset name (:data:`PRESET_SPACES`),
a TOML file (stdlib ``tomllib``), or a plain dict (the service path).
"""

from __future__ import annotations

import tomllib
from dataclasses import asdict, dataclass

from repro.engine.sweep import SweepPoint
from repro.evaluation.config import (
    CLOCK_RATIOS,
    DEFAULT_META_CACHE_BYTES,
    FIFO_SWEEP,
    META_CACHE_SWEEP,
)
from repro.extensions import extension_names
from repro.workloads import workload_names


class SpaceError(ValueError):
    """The space description is malformed (bad axis, unknown name)."""


@dataclass(frozen=True)
class DesignPoint:
    """One cell of the design grid.

    The workload is an axis on purpose: monitors trade off differently
    per workload (Table IV's spread), so the front carries
    (workload, config) pairs rather than averaging the difference
    away.
    """

    workload: str
    extension: str
    fifo_depth: int
    clock_ratio: float
    meta_cache_bytes: int = DEFAULT_META_CACHE_BYTES

    def key(self) -> str:
        """Canonical id — stable sort key and campaign-journal stem."""
        return (f"{self.workload}/{self.extension}"
                f"/f{self.fifo_depth}/r{self.clock_ratio}"
                f"/m{self.meta_cache_bytes}")

    def campaign_key(self) -> str:
        """Coverage identity: the axes a fault campaign depends on.

        The meta-data cache only changes *timing*, never whether a
        monitor traps, so points differing only in meta-cache size
        share one campaign (and one journal).
        """
        return (f"{self.workload}/{self.extension}"
                f"/f{self.fifo_depth}/r{self.clock_ratio}")

    def sweep_point(self, scale: float = 1,
                    scaled_memory: bool = True) -> SweepPoint:
        return SweepPoint(
            workload=self.workload,
            extension=self.extension,
            clock_ratio=self.clock_ratio,
            fifo_depth=self.fifo_depth,
            scale=scale,
            scaled_memory=scaled_memory,
            meta_cache_bytes=self.meta_cache_bytes,
        )

    def as_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, doc: dict) -> "DesignPoint":
        return cls(
            workload=str(doc["workload"]),
            extension=str(doc["extension"]),
            fifo_depth=int(doc["fifo_depth"]),
            clock_ratio=float(doc["clock_ratio"]),
            meta_cache_bytes=int(
                doc.get("meta_cache_bytes", DEFAULT_META_CACHE_BYTES)),
        )


@dataclass(frozen=True)
class DesignSpace:
    """The declarative grid an exploration searches.

    ``scale`` / ``scaled_memory`` are evaluation conditions shared by
    every point (they size the workloads and memory system), not
    search axes.
    """

    name: str
    workloads: tuple[str, ...]
    extensions: tuple[str, ...]
    fifo_depths: tuple[int, ...]
    clock_ratios: tuple[float, ...]
    meta_cache_sizes: tuple[int, ...] = (DEFAULT_META_CACHE_BYTES,)
    scale: float = 0.25
    scaled_memory: bool = True

    def __post_init__(self) -> None:
        for axis in ("workloads", "extensions", "fifo_depths",
                     "clock_ratios", "meta_cache_sizes"):
            values = getattr(self, axis)
            if not values:
                raise SpaceError(f"axis {axis} is empty")
            if len(set(values)) != len(values):
                raise SpaceError(f"axis {axis} has duplicates: {values}")
        unknown = set(self.workloads) - set(workload_names())
        if unknown:
            raise SpaceError(
                f"unknown workload(s): {', '.join(sorted(unknown))} "
                f"(known: {', '.join(workload_names())})")
        unknown = {e.lower() for e in self.extensions} - set(
            extension_names())
        if unknown:
            raise SpaceError(
                f"unknown extension(s): {', '.join(sorted(unknown))} "
                f"(known: {', '.join(extension_names())})")
        for depth in self.fifo_depths:
            if depth < 1:
                raise SpaceError(f"fifo depth must be >= 1: {depth}")
        for ratio in self.clock_ratios:
            if not 0 < ratio <= 1:
                raise SpaceError(
                    f"clock ratio must be in (0, 1]: {ratio}")
        for size in self.meta_cache_sizes:
            if size < 128 or size % 128:
                raise SpaceError(
                    f"meta cache size must be a positive multiple of "
                    f"128 bytes (line x associativity): {size}")
        if self.scale <= 0:
            raise SpaceError(f"scale must be > 0: {self.scale}")

    @property
    def size(self) -> int:
        """Full-factorial cell count."""
        return (len(self.workloads) * len(self.extensions)
                * len(self.fifo_depths) * len(self.clock_ratios)
                * len(self.meta_cache_sizes))

    def axes(self) -> dict[str, tuple]:
        """Per-axis candidate values, in grid-nesting order."""
        return {
            "workload": self.workloads,
            "extension": self.extensions,
            "fifo_depth": self.fifo_depths,
            "clock_ratio": self.clock_ratios,
            "meta_cache_bytes": self.meta_cache_sizes,
        }

    def contains(self, point: DesignPoint) -> bool:
        return (point.workload in self.workloads
                and point.extension in self.extensions
                and point.fifo_depth in self.fifo_depths
                and point.clock_ratio in self.clock_ratios
                and point.meta_cache_bytes in self.meta_cache_sizes)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "workloads": list(self.workloads),
            "extensions": list(self.extensions),
            "fifo_depths": list(self.fifo_depths),
            "clock_ratios": list(self.clock_ratios),
            "meta_cache_sizes": list(self.meta_cache_sizes),
            "scale": self.scale,
            "scaled_memory": self.scaled_memory,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "DesignSpace":
        try:
            name = str(doc["name"])
            workloads = tuple(str(w) for w in doc["workloads"])
            extensions = tuple(str(e) for e in doc["extensions"])
            fifo_depths = tuple(int(d) for d in doc["fifo_depths"])
            clock_ratios = tuple(float(r) for r in doc["clock_ratios"])
        except KeyError as err:
            raise SpaceError(f"space is missing field {err}") from None
        except (TypeError, ValueError) as err:
            raise SpaceError(f"malformed space: {err}") from None
        known = {"name", "workloads", "extensions", "fifo_depths",
                 "clock_ratios", "meta_cache_sizes", "scale",
                 "scaled_memory"}
        unknown = set(doc) - known
        if unknown:
            raise SpaceError(
                f"unknown space field(s): {', '.join(sorted(unknown))}")
        return cls(
            name=name,
            workloads=workloads,
            extensions=extensions,
            fifo_depths=fifo_depths,
            clock_ratios=clock_ratios,
            meta_cache_sizes=tuple(
                int(s) for s in doc.get(
                    "meta_cache_sizes", (DEFAULT_META_CACHE_BYTES,))),
            scale=float(doc.get("scale", 0.25)),
            scaled_memory=bool(doc.get("scaled_memory", True)),
        )


#: ready-made spaces.  ``paper`` is the full Table-IV/Fig-5 grid
#: (too big to brute-force — pair it with ``--evolve`` or a fractional
#: cap); ``smoke`` is the CI-sized slice.
PRESET_SPACES: dict[str, DesignSpace] = {
    "paper": DesignSpace(
        name="paper",
        workloads=workload_names(),
        extensions=("umc", "dift", "bc", "sec"),
        fifo_depths=FIFO_SWEEP,
        clock_ratios=CLOCK_RATIOS,
        meta_cache_sizes=META_CACHE_SWEEP,
        scale=0.25,
    ),
    "table4": DesignSpace(
        name="table4",
        workloads=workload_names(),
        extensions=("umc", "dift", "bc", "sec"),
        fifo_depths=(64,),
        clock_ratios=(0.25, 0.5),
        meta_cache_sizes=(DEFAULT_META_CACHE_BYTES,),
        scale=0.25,
    ),
    "smoke": DesignSpace(
        name="smoke",
        workloads=("sha", "stringsearch"),
        extensions=("umc", "bc"),
        fifo_depths=(16, 64),
        clock_ratios=(0.5,),
        meta_cache_sizes=(DEFAULT_META_CACHE_BYTES,),
        scale=0.125,
    ),
}


def load_space(source: str) -> DesignSpace:
    """Resolve a CLI space argument: preset name or ``.toml`` path."""
    if source in PRESET_SPACES:
        return PRESET_SPACES[source]
    if source.endswith(".toml"):
        try:
            with open(source, "rb") as handle:
                doc = tomllib.load(handle)
        except FileNotFoundError:
            raise SpaceError(f"no such space file: {source}") from None
        except tomllib.TOMLDecodeError as err:
            raise SpaceError(f"{source}: {err}") from None
        doc.setdefault("name", source.rsplit("/", 1)[-1][:-len(".toml")])
        return DesignSpace.from_dict(doc)
    raise SpaceError(
        f"unknown space {source!r}: expected a .toml file or one of "
        f"{', '.join(sorted(PRESET_SPACES))}")
