"""Factorial enumeration of a design space.

``full_factorial`` walks the whole grid in a fixed nesting order, so
two enumerations of one space are identical lists.
``fractional_factorial`` draws a deterministic seeded subset when the
grid is too big to brute-force — DAVOS's ``FactorialDesignBuilder``
role, reduced to the two designs this harness needs.
"""

from __future__ import annotations

import itertools

from repro.explore.space import DesignPoint, DesignSpace
from repro.util.rng import derive_rng


def full_factorial(space: DesignSpace) -> list[DesignPoint]:
    """Every cell of the grid, in deterministic nesting order
    (workload outermost, meta-cache innermost)."""
    return [
        DesignPoint(workload=workload, extension=extension,
                    fifo_depth=fifo_depth, clock_ratio=clock_ratio,
                    meta_cache_bytes=meta_cache_bytes)
        for workload, extension, fifo_depth, clock_ratio,
            meta_cache_bytes
        in itertools.product(*space.axes().values())
    ]


def fractional_factorial(space: DesignSpace, max_points: int,
                         seed: object = 0) -> list[DesignPoint]:
    """A deterministic ``max_points``-cell sample of the grid.

    A seeded sample of the full enumeration (no randomness source
    other than ``derive_rng(seed, name, "fractional")``), returned in
    grid order so the fraction is a stable sub-list of the full
    factorial: growing ``max_points`` only ever *adds* points, which
    keeps warm sweep caches useful across fraction sizes.
    """
    if max_points < 1:
        raise ValueError(f"max_points must be >= 1, got {max_points}")
    grid = full_factorial(space)
    if max_points >= len(grid):
        return grid
    order = list(range(len(grid)))
    derive_rng(seed, space.name, "fractional").shuffle(order)
    chosen = set(order[:max_points])
    return [point for index, point in enumerate(grid)
            if index in chosen]
