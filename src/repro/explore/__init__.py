"""Statistical campaign intelligence: adaptive sampling + design-space
exploration.

The paper's evaluation is a hand-picked slice of a five-axis design
space (workload × monitor × FIFO depth × fabric clock ratio ×
meta-cache size) scored by fixed-size fault campaigns.  This package
turns that slice into a search:

* :mod:`repro.explore.sampling` — :class:`AdaptiveCampaign` grows a
  fault campaign batch by batch until every outcome rate's Wilson 95%
  interval is tight enough, deterministically, on top of the campaign
  journal (kill -9 + resume reproduces the identical stopping point).
* :mod:`repro.explore.space` / :mod:`factorial` / :mod:`evolve` —
  grid description, full/fractional factorial enumeration and a seeded
  evolutionary loop over design points.
* :mod:`repro.explore.evaluate` — scores each point through
  :class:`repro.engine.sweep.SweepRunner` (slowdown, cache-
  deduplicated), the Table-III fabric models (LUTs, frequency
  feasibility) and optional adaptive campaigns (coverage).
* :mod:`repro.explore.pareto` / :mod:`report` — dominance filtering
  over (coverage ↑, slowdown ↓, LUT area ↓), knee-point selection and
  a deterministic JSON/console front report.

Everything is a pure function of (space, seed, budgets): the same
exploration run straight through, interrupted + resumed, or as a
served ``explore`` job emits a bit-identical report.
"""

from repro.explore.evaluate import Evaluation, PointEvaluator
from repro.explore.evolve import EvolveConfig, evolve
from repro.explore.factorial import fractional_factorial, full_factorial
from repro.explore.pareto import dominates, knee_point, pareto_front
from repro.explore.report import ExplorationReport
from repro.explore.sampling import (
    AdaptiveCampaign,
    AdaptiveConfig,
    AdaptiveResult,
)
from repro.explore.space import (
    PRESET_SPACES,
    DesignPoint,
    DesignSpace,
    load_space,
)

__all__ = [
    "AdaptiveCampaign",
    "AdaptiveConfig",
    "AdaptiveResult",
    "DesignPoint",
    "DesignSpace",
    "Evaluation",
    "EvolveConfig",
    "ExplorationReport",
    "PRESET_SPACES",
    "PointEvaluator",
    "dominates",
    "evolve",
    "fractional_factorial",
    "full_factorial",
    "knee_point",
    "load_space",
    "pareto_front",
]
