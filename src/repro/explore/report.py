"""Deterministic exploration reports: Pareto front + knee point.

The report is the exploration's single artifact: a JSON document (and
console rendering) carrying every evaluation, the Pareto front over
the feasible ones, and the knee point.  Like
:class:`repro.faultinject.report.CoverageReport` it contains no
wall-clock or environment fields, so the same exploration — straight,
resumed after kill -9, or through the job service — serialises to the
identical bytes, which is exactly what the CI smoke job ``cmp``\\ s.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from repro.explore.evaluate import Evaluation
from repro.explore.pareto import knee_point, pareto_front
from repro.explore.space import DesignSpace


@dataclass(frozen=True)
class ExplorationReport:
    """Aggregated outcome of one design-space exploration."""

    space: DesignSpace
    #: how the points were chosen: "factorial", "fractional", "evolve".
    mode: str
    #: whether coverage campaigns ran (and the front is 3-objective).
    coverage: bool
    #: every evaluation, sorted by point key (canonical order).
    evaluations: tuple[Evaluation, ...]
    #: point keys of the non-dominated evaluations, in canonical order.
    front: tuple[str, ...]
    #: point key of the knee (None for an empty front).
    knee: str | None

    @classmethod
    def build(cls, space: DesignSpace, mode: str, evaluations,
              coverage: bool) -> "ExplorationReport":
        ordered = tuple(sorted(evaluations,
                               key=lambda e: e.point.key()))
        candidates = [
            evaluation for evaluation in ordered
            if evaluation.feasible and evaluation.slowdown is not None
            and (not coverage or evaluation.coverage is not None)
        ]

        def objectives(evaluation: Evaluation) -> tuple:
            return evaluation.objectives(coverage)

        front = pareto_front(candidates, key=objectives)
        knee = knee_point(front, key=objectives)
        return cls(
            space=space,
            mode=mode,
            coverage=coverage,
            evaluations=ordered,
            front=tuple(e.point.key() for e in front),
            knee=knee.point.key() if knee is not None else None,
        )

    # -- access -------------------------------------------------------------

    def front_evaluations(self) -> list[Evaluation]:
        members = set(self.front)
        return [e for e in self.evaluations
                if e.point.key() in members]

    @property
    def objective_names(self) -> tuple[str, ...]:
        if self.coverage:
            return ("coverage", "slowdown", "luts")
        return ("slowdown", "luts")

    # -- rendering ----------------------------------------------------------

    def as_dict(self) -> dict:
        feasible = sum(1 for e in self.evaluations if e.feasible)
        return {
            "space": self.space.as_dict(),
            "mode": self.mode,
            "objectives": list(self.objective_names),
            "evaluated": len(self.evaluations),
            "feasible": feasible,
            "front": list(self.front),
            "knee": self.knee,
            "evaluations": [e.as_dict() for e in self.evaluations],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent,
                          sort_keys=True)

    def digest(self) -> str:
        return hashlib.sha256(
            self.to_json().encode("utf-8")).hexdigest()[:16]

    def write_json(self, path) -> None:
        from repro.checkpoint import atomic_write_text
        atomic_write_text(path, self.to_json() + "\n")

    def format(self, details: bool = False) -> str:
        space = self.space
        feasible = sum(1 for e in self.evaluations if e.feasible)
        lines = [
            f"design-space exploration: space={space.name} "
            f"mode={self.mode} "
            f"objectives=({', '.join(self.objective_names)})",
            f"grid size {space.size}, evaluated "
            f"{len(self.evaluations)}, feasible {feasible}, "
            f"front {len(self.front)}",
            "",
        ]
        header = (f"{'point':<40} {'slowdown':>9} {'luts':>6}")
        if self.coverage:
            header += f" {'coverage':>9} {'95% CI':>18} {'faults':>7}"
        header += "  "
        lines.append(header)
        for evaluation in self.front_evaluations():
            marker = " *knee*" if evaluation.point.key() == self.knee \
                else ""
            row = (f"{evaluation.point.key():<40} "
                   f"{evaluation.slowdown:>8.3f}x "
                   f"{evaluation.luts:>6}")
            if self.coverage:
                row += (f" {evaluation.coverage:>8.1%} "
                        f"[{evaluation.coverage_low:6.1%}, "
                        f"{evaluation.coverage_high:6.1%}] "
                        f"{evaluation.faults_used:>7}")
            lines.append(row + marker)
        if not self.front:
            lines.append("(empty front: no feasible evaluations)")
        skipped = [e for e in self.evaluations if not e.feasible]
        if skipped:
            lines.append("")
            lines.append(f"infeasible: {len(skipped)} point(s)")
            if details:
                for evaluation in skipped:
                    lines.append(f"  {evaluation.point.key():<40} "
                                 f"{evaluation.note}")
        if details:
            dominated = [e for e in self.evaluations
                         if e.feasible
                         and e.point.key() not in set(self.front)]
            if dominated:
                lines.append("")
                lines.append(f"dominated: {len(dominated)} point(s)")
                for evaluation in dominated:
                    lines.append(
                        f"  {evaluation.point.key():<40} "
                        f"{evaluation.slowdown:>8.3f}x "
                        f"{evaluation.luts:>6}")
        lines.append("")
        lines.append(f"report digest {self.digest()}")
        return "\n".join(lines)
