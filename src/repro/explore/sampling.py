"""Confidence-interval-driven adaptive fault campaigns.

A fixed-size campaign answers "what happened in N runs"; an adaptive
campaign answers "how many runs until the rates are *known*".
:class:`AdaptiveCampaign` grows a campaign batch by batch and stops at
the first batch boundary where every outcome-class rate's Wilson 95%
interval is narrower than its target half-width (per-outcome
overrides, hard fault budget cap).

Determinism is the whole design:

* The wrapped :class:`~repro.faultinject.campaign.Campaign` is built
  with ``faults = max_faults`` (the budget), so the journal identity
  never changes as batches extend — one journal serves the entire
  adaptive run, and a straight ``repro inject --faults <budget>``
  journal is even compatible with it.
* Batches are executed through ``Campaign.run(indices=...)`` with
  per-index seeding, so *which call* executed an index never affects
  its result.
* The stopping rule is evaluated only at fixed boundaries
  (``batch, 2*batch, ...``) over the results with ``index < n``; a
  resumed journal that already holds more results cannot change an
  earlier decision.  kill -9 + ``--resume`` therefore reproduces the
  identical stopping point and a bit-identical report.

INFRA_FAILED results contribute no trials (a flaky machine must not
tighten or widen an interval) — on a healthy machine every path is
bit-identical; after real quarantine, resume heals the campaign
first, then the stopping rule sees the healed trials.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace

from repro.faultinject.campaign import (
    OUTCOME_ORDER,
    Campaign,
    CampaignConfig,
    FaultResult,
    Outcome,
)
from repro.faultinject.report import CoverageReport
from repro.util.stats import wilson_half_width

#: outcomes the stopping rule tracks: everything that is a verdict.
TRACKED_OUTCOMES = tuple(
    outcome for outcome in OUTCOME_ORDER
    if outcome is not Outcome.INFRA_FAILED
)


@dataclass(frozen=True)
class AdaptiveConfig:
    """Stopping policy for an adaptive campaign."""

    #: faults per batch; the stopping rule runs at batch boundaries.
    batch: int = 50
    #: never stop before this many faults (CI estimates below ~30
    #: trials are honest but uselessly wide).
    min_faults: int = 50
    #: hard budget cap — also the wrapped campaign's ``faults`` and
    #: therefore its journal identity.
    max_faults: int = 400
    #: default target half-width for every tracked outcome rate.
    target_half_width: float = 0.05
    #: per-outcome overrides, e.g. ``{"sdc": 0.02}`` to pin silent
    #: corruptions down harder than the rest.
    targets: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.batch < 1:
            raise ValueError(f"batch must be >= 1, got {self.batch}")
        if self.min_faults < 1:
            raise ValueError(
                f"min_faults must be >= 1, got {self.min_faults}")
        if self.max_faults < self.min_faults:
            raise ValueError(
                f"max_faults ({self.max_faults}) must be >= "
                f"min_faults ({self.min_faults})")
        if not 0 < self.target_half_width < 1:
            raise ValueError(
                f"target_half_width must be in (0, 1), "
                f"got {self.target_half_width}")
        tracked = {outcome.value for outcome in TRACKED_OUTCOMES}
        for name, value in self.targets.items():
            if name not in tracked:
                raise ValueError(
                    f"unknown outcome {name!r} in targets "
                    f"(known: {', '.join(sorted(tracked))})")
            if not 0 < float(value) < 1:
                raise ValueError(
                    f"target for {name!r} must be in (0, 1), "
                    f"got {value}")

    def target_for(self, outcome: Outcome) -> float:
        return float(self.targets.get(outcome.value,
                                      self.target_half_width))

    def as_dict(self) -> dict:
        return {
            "batch": self.batch,
            "min_faults": self.min_faults,
            "max_faults": self.max_faults,
            "target_half_width": self.target_half_width,
            "targets": dict(sorted(self.targets.items())),
        }


@dataclass(frozen=True)
class AdaptiveResult:
    """Outcome of one adaptive campaign."""

    adaptive: AdaptiveConfig
    #: the final coverage report, built as if ``faults=faults_used``
    #: had been configured from the start — bit-identical to the
    #: fixed-size campaign of that length.
    report: CoverageReport
    faults_used: int
    converged: bool
    #: one entry per evaluated batch boundary (deterministic).
    history: tuple[dict, ...]

    def digest(self) -> str:
        """Content digest of the final report — the value the
        determinism tests compare across straight / resumed / served
        runs."""
        return hashlib.sha256(
            self.report.to_json().encode("utf-8")).hexdigest()[:16]

    def as_dict(self) -> dict:
        return {
            "adaptive": self.adaptive.as_dict(),
            "faults_used": self.faults_used,
            "converged": self.converged,
            "history": list(self.history),
            "report_digest": self.digest(),
            "report": self.report.as_dict(),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def format(self) -> str:
        lines = [
            f"adaptive campaign: batch={self.adaptive.batch} "
            f"budget={self.adaptive.max_faults} "
            f"target half-width={self.adaptive.target_half_width}",
        ]
        for entry in self.history:
            widest = max(entry["half_widths"].items(),
                         key=lambda kv: kv[1])
            lines.append(
                f"  n={entry['faults']:>5}  trials={entry['trials']:>5}"
                f"  widest CI: {widest[0]} ±{widest[1]:.4f}"
                f"{'  (stop)' if entry['stop'] else ''}"
            )
        verdict = ("converged" if self.converged
                   else "budget exhausted before convergence")
        lines.append(f"{verdict} after {self.faults_used} faults")
        lines.append("")
        lines.append(self.report.format())
        return "\n".join(lines)


class AdaptiveCampaign:
    """Wrap a :class:`Campaign`, growing it until its CIs converge.

    ``config.faults`` is ignored in favour of the adaptive budget:
    the wrapped campaign is rebuilt with
    ``faults = adaptive.max_faults`` so that one journal identity
    covers every possible stopping point.
    """

    def __init__(self, config: CampaignConfig,
                 adaptive: AdaptiveConfig | None = None):
        self.adaptive = adaptive or AdaptiveConfig()
        self.campaign = Campaign(
            replace(config, faults=self.adaptive.max_faults))

    def _boundary_entry(self, by_index: dict[int, FaultResult],
                        n: int) -> dict:
        """Evaluate the stopping rule at boundary ``n`` (pure)."""
        considered = [result for index, result in by_index.items()
                      if index < n]
        trials = sum(1 for result in considered
                     if result.outcome is not Outcome.INFRA_FAILED)
        counts = {outcome: 0 for outcome in TRACKED_OUTCOMES}
        for result in considered:
            if result.outcome is not Outcome.INFRA_FAILED:
                counts[result.outcome] += 1
        half_widths = {
            outcome.value: round(
                wilson_half_width(counts[outcome], trials), 6)
            for outcome in TRACKED_OUTCOMES
        }
        within = trials > 0 and all(
            half_widths[outcome.value]
            <= self.adaptive.target_for(outcome)
            for outcome in TRACKED_OUTCOMES
        )
        return {
            "faults": n,
            "trials": trials,
            "half_widths": half_widths,
            "within_targets": within,
            "stop": within and n >= self.adaptive.min_faults,
        }

    def run(self, journal_path=None, resume: bool = False,
            progress=None, on_result=None) -> AdaptiveResult:
        """Grow the campaign until the stopping rule fires.

        With ``journal_path`` every batch extends the same crash-safe
        journal; ``resume=True`` replays it first, so an interrupted
        adaptive run re-walks its boundary decisions over the replayed
        results and continues from wherever the budget actually
        stands.  :class:`~repro.faultinject.campaign.CampaignInterrupted`
        from SIGINT/SIGTERM propagates unchanged (the journal keeps
        everything already executed).
        """
        adaptive = self.adaptive
        by_index: dict[int, FaultResult] = {}
        history: list[dict] = []
        last_report = None
        converged = False
        boundary = 0
        resume_next = resume
        while boundary < adaptive.max_faults:
            previous = boundary
            boundary = min(previous + adaptive.batch,
                           adaptive.max_faults)
            if journal_path is not None:
                # Ask for the whole prefix: the journal replay marks
                # earlier batches done, so only this batch executes.
                report = self.campaign.run(
                    journal_path=journal_path, resume=resume_next,
                    indices=range(boundary),
                    progress=progress, on_result=on_result,
                )
                resume_next = True
            else:
                report = self.campaign.run(
                    indices=range(previous, boundary),
                    progress=progress, on_result=on_result,
                )
            for result in report.results:
                by_index[result.index] = result
            last_report = report
            entry = self._boundary_entry(by_index, boundary)
            history.append(entry)
            if entry["stop"]:
                converged = True
                break

        faults_used = boundary
        final_results = tuple(sorted(
            (result for index, result in by_index.items()
             if index < faults_used),
            key=lambda result: result.index,
        ))
        final_config = replace(self.campaign.config,
                               faults=faults_used)
        report = CoverageReport.build(
            final_config, self.campaign.profile, final_results,
            infra=last_report.infra if last_report else None,
        )
        return AdaptiveResult(
            adaptive=adaptive,
            report=report,
            faults_used=faults_used,
            converged=converged,
            history=tuple(history),
        )
