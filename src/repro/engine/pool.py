"""Shared process-pool fan-out.

One implementation of the "initialize each worker once, stream items
through ``imap_unordered``, terminate cleanly on interrupt" pattern,
used by both fault-injection campaigns
(:meth:`repro.faultinject.campaign.Campaign._run_parallel`) and the
evaluation sweeps (:class:`repro.engine.sweep.SweepRunner`).

The interruption contract matches the campaign's original behaviour:
workers ignore SIGINT (only the parent reacts to Ctrl-C, after the
in-flight ``record`` call finished) and revert SIGTERM to the default
action so ``pool.terminate()`` ends them silently.
"""

from __future__ import annotations

import multiprocessing
import signal


def worker_signals() -> None:
    """Standard worker-process signal setup; call first in every pool
    initializer.  The parent owns interruption: a terminal-wide SIGINT
    must not kill workers mid-result while the parent is still
    recording, and SIGTERM reverts to the default action (the fork
    inherited the parent's handler) so ``pool.terminate()`` ends
    workers without tracebacks."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)


def fan_out(
    items,
    worker,
    record,
    *,
    jobs: int,
    initializer=None,
    initargs: tuple = (),
    chunksize: int = 8,
) -> None:
    """Stream ``worker(item)`` results for every item to ``record``.

    Results arrive in completion order (callers that need item order
    must carry an index through the worker).  ``initializer`` runs
    once per worker process — it should call :func:`worker_signals`
    before any real setup.  Any exception in the parent (including
    KeyboardInterrupt) terminates the pool before re-raising, so no
    orphan workers outlive the caller.
    """
    ctx = multiprocessing.get_context()
    pool = ctx.Pool(
        processes=jobs,
        initializer=initializer,
        initargs=initargs,
    )
    try:
        for result in pool.imap_unordered(worker, items,
                                          chunksize=chunksize):
            record(result)
        pool.close()
    except BaseException:
        pool.terminate()
        raise
    finally:
        pool.join()
