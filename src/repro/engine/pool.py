"""Shared process-pool fan-out, now supervised.

One implementation of the "initialize each worker once, stream items
through the pool, terminate cleanly on interrupt" pattern, used by
both fault-injection campaigns
(:meth:`repro.faultinject.campaign.Campaign._run_parallel`) and the
evaluation sweeps (:class:`repro.engine.sweep.SweepRunner`).

:func:`fan_out` fronts :class:`repro.engine.supervisor.SupervisedPool`
and adds **graceful degradation**: when multiprocessing is unavailable
(no fork/pipe support, spawn failures) or the pool breaks
irrecoverably (deterministic initializer failure, retry budget
exhausted), the remaining items run in-process, serially, with a
structured warning — results are bit-identical either way, because
per-item determinism is the callers' contract.

Retry granularity (the old ``chunksize=8`` bug)
-----------------------------------------------
The previous ``Pool.imap_unordered`` fan-out shipped items in chunks
of 8, so one crashed worker lost up to 8 unrelated items and the only
"retry" was aborting the run.  The supervised pool always dispatches
exactly one item per worker: marginally more IPC (one pickled item +
one pickled result per task, ~100 us), but every item here is a whole
simulation (milliseconds to minutes), so the overhead is noise and in
exchange a worker death costs exactly one in-flight attempt — the
natural granularity for retries, deadlines and quarantine.  Callers
that fan out truly tiny items batch them *inside* the item as a
streaming composite (lockstep fault batches in
:meth:`repro.faultinject.campaign.Campaign._run_parallel`): the
worker function returns a generator, each yielded member result is
recorded the moment it exists, and the ``shrink``/``explode`` hooks
keep retry granularity at one member — unlike a pool chunksize the
supervisor cannot see into.

The interruption contract matches the original behaviour: workers
ignore SIGINT (only the parent reacts to Ctrl-C, after the in-flight
``record`` call finished) and take the default SIGTERM action so
reaping ends them silently.
"""

from __future__ import annotations

import inspect
import multiprocessing
import signal
import sys
import threading

from repro.engine.supervisor import (
    PoolError,
    PoolPolicy,
    PoolStats,
    Quarantined,
    SupervisedPool,
    TaskTimeout,
    WorkerCrash,
    deterministic_backoff,
)

__all__ = [
    "FleetLease",
    "PoolError",
    "PoolPolicy",
    "PoolStats",
    "Quarantined",
    "TaskTimeout",
    "WorkerCrash",
    "WorkerFleet",
    "deterministic_backoff",
    "fan_out",
    "worker_signals",
]


def worker_signals() -> None:
    """Standard worker-process signal setup; call first in every pool
    initializer.  The parent owns interruption: a terminal-wide SIGINT
    must not kill workers mid-result while the parent is still
    recording, and SIGTERM reverts to the default action so reaping
    ends workers without tracebacks.

    No-op in the main process: the serial-fallback path runs pool
    initializers in-process, and they must not clobber the parent's
    own SIGINT/SIGTERM handling.
    """
    if multiprocessing.parent_process() is None:
        return
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)


def _warn_stderr(message: str) -> None:
    print(message, file=sys.stderr)


class FleetLease:
    """One granted slice of a :class:`WorkerFleet` worker budget.

    Use as a context manager; :attr:`granted` is how many workers the
    holder may actually spawn (pass it as ``jobs=``).  Releasing twice
    is a no-op, so ``with`` plus an explicit early :meth:`release`
    compose safely.
    """

    __slots__ = ("fleet", "granted", "_released")

    def __init__(self, fleet: "WorkerFleet", granted: int):
        self.fleet = fleet
        self.granted = granted
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            self.fleet._release(self.granted)

    def __enter__(self) -> "FleetLease":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class WorkerFleet:
    """A shared worker budget leased by concurrent pool users.

    The job server runs many campaigns/sweeps at once, each of which
    would happily spawn its own full-size pool; the fleet caps the
    *sum* of their workers.  :meth:`lease` never blocks and always
    grants at least one worker — a job can always run its items
    serially in its own thread — so the fleet bounds parallelism,
    never liveness.  Thread-safe (leases are taken from runner
    threads).
    """

    def __init__(self, size: int):
        if size < 1:
            raise ValueError(f"fleet size must be >= 1, got {size}")
        self.size = size
        self._leased = 0
        self._peak = 0
        self._leases = 0
        self._starved = 0
        self._lock = threading.Lock()

    def lease(self, want: int) -> FleetLease:
        """Grant ``min(want, available)``, but never less than 1."""
        if want < 1:
            raise ValueError(f"lease must ask for >= 1, got {want}")
        with self._lock:
            available = self.size - self._leased
            granted = max(1, min(want, available))
            self._leased += granted
            self._peak = max(self._peak, self._leased)
            self._leases += 1
            if granted < want:
                self._starved += 1
            return FleetLease(self, granted)

    def _release(self, granted: int) -> None:
        with self._lock:
            self._leased -= granted

    @property
    def leased(self) -> int:
        with self._lock:
            return self._leased

    @property
    def peak(self) -> int:
        with self._lock:
            return self._peak

    def snapshot(self) -> dict:
        """Utilization counters for health/metrics exposition:
        ``starved`` counts leases granted below the ask (the fleet
        was saturated — the signal for growing ``--fleet``)."""
        with self._lock:
            return {
                "size": self.size,
                "leased": self._leased,
                "peak": self._peak,
                "leases": self._leases,
                "starved": self._starved,
            }


def _run_serial(items, worker, record, initializer, initargs,
                on_quarantine, stats: PoolStats, shrink=None) -> None:
    """In-process execution of ``items`` (jobs=1 and fallback path).

    No deadlines here — a single process cannot preempt itself — so
    degraded mode trades hung-worker reaping for survivability, which
    is the right trade once the pool has already proven unusable.
    Worker exceptions are deterministic in-process: they quarantine
    immediately (no retries) or propagate when there is no handler.
    A streaming worker (one returning a generator, i.e. a lockstep
    batch) records each yielded member as it completes; an exception
    mid-stream quarantines only the ``shrink``-narrowed remainder, so
    serial and pooled runs agree on which members produced results.
    """
    if initializer is not None:
        initializer(*initargs)

    def quarantine(item, err) -> None:
        if on_quarantine is None:
            raise err
        stats.quarantined += 1
        on_quarantine(item, Quarantined(item, 1, err))

    for item in items:
        try:
            result = worker(item)
        except Exception as err:  # noqa: BLE001 — quarantine boundary
            quarantine(item, err)
            continue
        if not inspect.isgenerator(result):
            record(result)
            continue
        while True:
            try:
                part = next(result)
            except StopIteration:
                break
            except Exception as err:  # noqa: BLE001 — see above
                quarantine(item, err)
                break
            record(part)
            if shrink is not None:
                item = shrink(item, part)


def fan_out(
    items,
    worker,
    record,
    *,
    jobs: int,
    initializer=None,
    initargs: tuple = (),
    policy: PoolPolicy | None = None,
    on_quarantine=None,
    warn=None,
    shrink=None,
    explode=None,
) -> PoolStats:
    """Stream ``worker(item)`` results for every item to ``record``.

    Results arrive in completion order (callers that need item order
    must carry an index through the worker).  ``initializer`` runs
    once per worker process — it should call :func:`worker_signals`
    before any real setup.  Any exception in the parent (including
    KeyboardInterrupt) kills the workers before re-raising, so no
    orphan workers outlive the caller.

    Infra failures (worker deaths, hung tasks) are retried under
    ``policy``; items that exhaust their retries go to
    ``on_quarantine(item, error)`` — without a handler the first
    quarantine raises :class:`Quarantined`.  When the pool is broken
    as a unit and ``policy.fallback`` is ``"auto"``, the remaining
    items run serially in-process after a ``warn(message)`` call.

    Composite items that stream (worker returns a generator) take two
    extra hooks: ``shrink(item, part) -> item`` drops the member a
    just-recorded part belongs to, and ``explode(item) -> [items]``
    splits a failed item's remainder into independently retried
    sub-items.  See :meth:`SupervisedPool.run` for the semantics.

    Returns the run's :class:`PoolStats` (all zeros on a healthy run).
    """
    policy = policy or PoolPolicy()
    warn = warn or _warn_stderr
    items = list(items)
    stats = PoolStats()
    if jobs <= 1 or len(items) <= 1 or policy.fallback == "force":
        # Running a tiny batch in-process is an optimisation, not a
        # degradation; only a forced fallback is worth flagging.
        if policy.fallback == "force" and jobs > 1:
            stats.degraded = True
            warn("pool: serial execution forced (fallback=force)")
        _run_serial(items, worker, record, initializer, initargs,
                    on_quarantine, stats, shrink=shrink)
        return stats
    pool = SupervisedPool(jobs, policy, stats)
    try:
        pool.run(items, worker, record, initializer=initializer,
                 initargs=initargs, on_quarantine=on_quarantine,
                 shrink=shrink, explode=explode)
    except Quarantined:
        raise
    except PoolError as err:
        if policy.fallback != "auto":
            raise
        stats.degraded = True
        warn(
            f"pool: degrading to in-process serial execution for "
            f"{len(err.pending)} remaining item(s) — {err}"
        )
        _run_serial(err.pending, worker, record, initializer,
                    initargs, on_quarantine, stats, shrink=shrink)
    return stats
