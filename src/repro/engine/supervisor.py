"""Supervised worker pool: deadlines, reaping, retries, quarantine.

``multiprocessing.Pool.imap_unordered`` — the previous engine behind
:func:`repro.engine.pool.fan_out` — has exactly one failure mode for
infrastructure faults: abort the whole run.  A worker SIGKILLed by the
OOM killer raises ``BrokenProcessPool`` semantics, a worker wedged on
a kernel call is waited on forever, and either way a multi-hour
campaign dies because of one task.  This module supervises workers
the way grid fault-injection frameworks (DAVOS) do: the harness must
outlive the failures it studies.

Mechanics
---------
* One in-flight task per worker, dispatched over a dedicated pipe, so
  the parent always knows exactly which item a dead worker was
  holding (this is why there is no ``chunksize``: retry granularity
  is one task — see :mod:`repro.engine.pool` for the tradeoff).
* Workers acknowledge start-up (``ready``) and stream back ``ok`` /
  ``err`` messages; the pipe doubles as the liveness heartbeat — a
  dead worker's pipe reads EOF, waking the supervisor immediately
  instead of at the next poll.
* A worker function returning a *generator* streams a composite item
  (a lockstep fault batch) as per-member ``part`` messages followed by
  ``done``: the parent records each part immediately, narrows the
  in-flight item via the caller's ``shrink`` hook, and renews the hang
  deadline on every part.  A failure mid-stream therefore requeues
  only the unfinished remainder, split by the caller's ``explode``
  hook into sub-tasks that retry independently.
* Every dispatch starts a deadline (:attr:`PoolPolicy.task_timeout`).
  A worker that overruns it is presumed hung, SIGKILLed, and its task
  requeued.
* A failed task (worker death, deadline, or an exception escaping the
  worker function) is retried with exponential backoff, at most
  :attr:`PoolPolicy.max_retries` times, against a per-run retry
  budget.
* A task that keeps killing its workers is **quarantined**: handed to
  the caller's ``on_quarantine`` callback as a structured outcome and
  skipped, instead of looping the pool forever.
* When the pool itself is broken — workers cannot be spawned, the
  initializer fails deterministically, or the retry budget is
  exhausted — :class:`PoolError` is raised carrying the items still
  pending, so :func:`repro.engine.pool.fan_out` can degrade to
  in-process serial execution.

Nothing here knows about campaigns or sweeps; callers provide the
worker function, the result recorder, and the quarantine handler.
"""

from __future__ import annotations

import inspect
import multiprocessing
import os
import signal
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import wait as _connection_wait

from repro.util.rng import derive_fraction


def deterministic_backoff(base: float, cap: float, attempt: int,
                          key: object = "") -> float:
    """Exponential backoff with *deterministic* jitter.

    ``base * 2**(attempt-1)`` capped at ``cap``, scaled by a jitter
    factor in ``[0.5, 1.0)`` derived from ``crc32(f"{key}/{attempt}")``
    — a pure function of its inputs, so two retries of the same (task,
    attempt) pair wait the same everywhere: a chaos run and its resume
    schedule identically, yet distinct tasks de-synchronise instead of
    stampeding the machine in lockstep after a correlated failure.
    """
    if attempt < 1:
        return 0.0
    raw = min(cap, base * (2 ** (attempt - 1)))
    jitter = 0.5 + derive_fraction(key, attempt) / 2.0
    return raw * jitter


class PoolError(RuntimeError):
    """The pool itself failed irrecoverably (not just one task).

    ``pending`` lists the items that were neither completed nor
    quarantined, in submission order — the serial-fallback path runs
    exactly these.
    """

    def __init__(self, message: str, pending: list | None = None):
        super().__init__(message)
        self.pending: list = pending if pending is not None else []


class TaskTimeout(PoolError):
    """A task overran its deadline; its worker was reaped."""


class WorkerCrash(PoolError):
    """A worker process died while holding a task."""


class Quarantined(PoolError):
    """A task exhausted its retries and was set aside.

    Carries the offending ``item``, the number of ``attempts`` made,
    and the last failure (``cause``) so callers can attach the full
    context to their structured outcome.
    """

    def __init__(self, item, attempts: int, cause: BaseException):
        self.item = item
        self.attempts = attempts
        self.cause = cause
        super().__init__(
            f"task {item!r} quarantined after {attempts} attempt(s): "
            f"{cause}"
        )


@dataclass(frozen=True)
class PoolPolicy:
    """Supervision knobs, shared by campaigns and sweeps."""

    #: per-task deadline in seconds (``None`` = never presume a task
    #: hung).  Also bounds worker start-up, which may include heavy
    #: initializer work such as a campaign's golden run.
    task_timeout: float | None = None
    #: how many times one task may be re-dispatched after an infra
    #: failure before it is quarantined.
    max_retries: int = 2
    #: total re-dispatches allowed across the whole run (``None`` =
    #: ``max(16, items // 4)``).  Exhausting it means the environment,
    #: not a task, is broken — the pool gives up as a unit.
    retry_budget: int | None = None
    #: exponential-backoff schedule for retries and respawns:
    #: ``base * 2**n`` seconds, capped.
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    #: what :func:`repro.engine.pool.fan_out` does when the pool is
    #: irrecoverable: ``auto`` degrades to in-process serial execution
    #: with a warning, ``never`` re-raises, ``force`` skips the pool
    #: entirely (useful where multiprocessing is unreliable).
    fallback: str = "auto"
    #: supervision poll interval, seconds.  Liveness is event-driven
    #: (pipe EOF); this only bounds deadline-check latency.
    poll_interval: float = 0.2

    def __post_init__(self) -> None:
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError("task_timeout must be > 0 (or None)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.fallback not in ("auto", "never", "force"):
            raise ValueError(
                f"fallback must be auto/never/force, "
                f"got {self.fallback!r}"
            )

    def budget_for(self, items: int) -> int:
        if self.retry_budget is not None:
            return self.retry_budget
        return max(16, items // 4)

    def backoff_delay(self, attempt: int, key: object = "") -> float:
        """The deterministic retry delay for ``(key, attempt)`` —
        see :func:`deterministic_backoff`."""
        return deterministic_backoff(self.backoff_base,
                                     self.backoff_cap, attempt, key)


@dataclass
class PoolStats:
    """Telemetry counters for one supervised run.

    Environment-dependent by nature (a healthy machine reports all
    zeros): the live counters are surfaced on stderr, and *journaled*
    campaigns additionally persist each session's tallies so the
    report's ``infra.*`` metrics are a deterministic replay of the
    journal (see :meth:`repro.faultinject.report.CoverageReport.
    metrics`) rather than whatever the last process held in memory.
    """

    retries: int = 0
    respawns: int = 0
    timeouts: int = 0
    crashes: int = 0
    quarantined: int = 0
    degraded: bool = False

    def interesting(self) -> bool:
        return bool(self.retries or self.respawns or self.timeouts
                    or self.crashes or self.quarantined
                    or self.degraded)

    def as_dict(self) -> dict:
        """JSON-able counters (``degraded`` as 0/1 so sums of
        sessions count how many sessions degraded)."""
        return {
            "retries": self.retries,
            "respawns": self.respawns,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "quarantined": self.quarantined,
            "degraded": int(self.degraded),
        }

    def merge(self, other: dict) -> None:
        """Accumulate another session's counters (an ``as_dict`` /
        journal ``infra`` frame) into this one — how the job server
        keeps fleet-lifetime tallies across many campaigns."""
        self.retries += int(other.get("retries", 0))
        self.respawns += int(other.get("respawns", 0))
        self.timeouts += int(other.get("timeouts", 0))
        self.crashes += int(other.get("crashes", 0))
        self.quarantined += int(other.get("quarantined", 0))
        self.degraded = self.degraded or bool(other.get("degraded"))

    def summary(self) -> str:
        parts = [
            f"{self.retries} retries",
            f"{self.respawns} respawns",
            f"{self.timeouts} timeouts",
            f"{self.crashes} crashes",
            f"{self.quarantined} quarantined",
        ]
        line = ", ".join(parts)
        if self.degraded:
            line += " — degraded to in-process serial execution"
        return line


def _get_context():
    """Seam for tests that simulate multiprocessing being unavailable."""
    return multiprocessing.get_context()


def _worker_main(conn, worker, initializer, initargs) -> None:
    """Worker process body: init, ack, then serve tasks until EOF.

    A ``worker(item)`` returning a *generator* streams: each yielded
    value goes back as its own ``("part", task_id, value)`` message
    the moment it exists, followed by a bare ``("done", task_id)``.
    The parent records parts immediately and (via its ``shrink`` hook)
    narrows the in-flight item, so a death or deadline mid-stream
    requeues only the unfinished remainder — the lockstep-batching
    contract.
    """
    # Parent owns interruption (same contract as the old pool): a
    # terminal-wide SIGINT must not kill workers mid-result, and
    # SIGTERM reverts to the default action so reaping is silent.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    try:
        if initializer is not None:
            initializer(*initargs)
    except BaseException as err:  # noqa: BLE001 — crosses a process
        try:
            conn.send(("init-error", f"{type(err).__name__}: {err}"))
        except OSError:
            pass
        return
    try:
        conn.send(("ready", os.getpid()))
    except OSError:
        return
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            return
        if task is None:
            return
        task_id, item = task
        try:
            result = worker(item)
            if inspect.isgenerator(result):
                for part in result:
                    conn.send(("part", task_id, part))
                message = ("done", task_id)
            else:
                message = ("ok", task_id, result)
        except OSError:
            return
        except BaseException as err:  # noqa: BLE001 — crosses a process
            message = ("err", task_id, f"{type(err).__name__}: {err}")
        try:
            conn.send(message)
        except OSError:
            return


@dataclass
class _Task:
    id: int
    item: object
    attempts: int = 0
    not_before: float = 0.0
    last_error: BaseException | None = None


class _Worker:
    """Parent-side handle for one worker process."""

    __slots__ = ("process", "conn", "ready", "task", "deadline")

    def __init__(self, ctx, worker_fn, initializer, initargs,
                 init_deadline: float | None):
        parent_conn, child_conn = ctx.Pipe()
        self.process = ctx.Process(
            target=_worker_main,
            args=(child_conn, worker_fn, initializer, initargs),
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn
        self.ready = False
        #: the in-flight task, if any.
        self.task: _Task | None = None
        #: monotonic deadline for the current phase (init or task).
        self.deadline = init_deadline

    def dispatch(self, task: _Task, timeout: float | None) -> None:
        self.task = task
        task.attempts += 1
        self.deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        self.conn.send((task.id, task.item))

    def reap(self) -> None:
        """Kill the process unconditionally and release its pipe."""
        if self.process.is_alive():
            self.process.kill()
        self.process.join(timeout=5)
        self.conn.close()


class SupervisedPool:
    """Run items through worker processes under supervision.

    One instance runs one batch; :func:`repro.engine.pool.fan_out` is
    the convenience front end that adds serial fallback.
    """

    def __init__(self, jobs: int, policy: PoolPolicy,
                 stats: PoolStats | None = None):
        self.jobs = jobs
        self.policy = policy
        self.stats = stats if stats is not None else PoolStats()

    def run(self, items, worker, record, *, initializer=None,
            initargs: tuple = (), on_quarantine=None,
            shrink=None, explode=None) -> PoolStats:
        """Stream ``worker(item)`` results to ``record``.

        Results arrive in completion order.  Quarantined items go to
        ``on_quarantine(item, error)`` instead; with no handler, the
        first quarantine aborts the pool by raising
        :class:`Quarantined`.  Any exception in the parent (including
        ``KeyboardInterrupt`` raised from ``record``) kills the
        workers before re-raising, so no orphan outlives the caller.

        Composite items (lockstep batches) stream: a ``worker(item)``
        that returns a generator sends each yielded value back as a
        ``part`` message, recorded here the moment it arrives, and
        ``shrink(item, part)`` narrows the in-flight item to its
        unfinished remainder after every part.  Each part also renews
        the hang deadline — progress is proof of liveness, so the
        timeout governs the gap *between* parts, not the whole batch.
        When a composite item fails mid-stream, ``explode(item)``
        splits the (already shrunk) remainder into sub-items that
        retry independently with fresh attempt counts: completed
        members are never re-run, and a single poisonous member ends
        up quarantined alone instead of dragging its batch down.
        """
        queue = deque(
            _Task(id=i, item=item) for i, item in enumerate(items)
        )
        total = len(queue)
        if not total:
            return self.stats
        budget = self.policy.budget_for(total)
        #: tasks not yet completed or quarantined.  Distinct from
        #: ``total`` because split-on-retry mints new tasks mid-run.
        outstanding = total
        next_id = total
        done: set[int] = set()
        workers: list[_Worker | None] = [None] * min(self.jobs, total)
        worker_args = (worker, initializer, initargs)
        #: earliest moment a replacement worker may be spawned
        #: (exponential backoff on consecutive failures).
        next_spawn = 0.0
        consecutive_failures = 0
        inflight: dict[int, _Task] = {}

        def pending_items() -> list:
            remaining = {t.id: t for t in queue}
            remaining.update(inflight)
            return [t.item for t in
                    sorted(remaining.values(), key=lambda t: t.id)]

        def note_failure() -> None:
            """Back successive respawns off exponentially; computed
            once per failure (not per loop iteration, which would
            push the spawn moment forever into the future)."""
            nonlocal consecutive_failures, next_spawn
            consecutive_failures += 1
            next_spawn = time.monotonic() + min(
                self.policy.backoff_cap,
                self.policy.backoff_base
                * (2 ** (consecutive_failures - 1)),
            )

        def fail_task(task: _Task, error: PoolError) -> None:
            """One attempt failed: requeue with backoff, split a
            composite item, or quarantine."""
            nonlocal budget, outstanding, next_id
            note_failure()
            inflight.pop(task.id, None)
            task.last_error = error
            pieces = (
                list(explode(task.item)) if explode is not None
                else None
            )
            if pieces is not None and len(pieces) > 1:
                # Split-on-retry: the culprit inside a composite item
                # is unknown (any unfinished member may have wedged
                # the worker), so each remaining member retries alone
                # with a *fresh* attempt count — the batch failure is
                # not evidence against any one member.  The split
                # itself debits the budget once, so a hostile
                # environment still exhausts it and degrades instead
                # of splitting forever.
                if budget <= 0:
                    raise PoolError(
                        f"retry budget exhausted after "
                        f"{self.stats.retries} retries (last failure: "
                        f"{error}) — the environment, not a task, "
                        f"looks broken",
                        pending=pending_items() + [task.item],
                    )
                budget -= 1
                self.stats.retries += 1
                outstanding += len(pieces) - 1
                now = time.monotonic()
                for piece in pieces:
                    sub = _Task(id=next_id, item=piece,
                                last_error=error)
                    next_id += 1
                    sub.not_before = now + self.policy.backoff_delay(
                        task.attempts, key=sub.id
                    )
                    queue.append(sub)
                return
            if task.attempts > self.policy.max_retries:
                self.stats.quarantined += 1
                outstanding -= 1
                wrapped = Quarantined(task.item, task.attempts, error)
                if on_quarantine is None:
                    raise wrapped
                on_quarantine(task.item, wrapped)
                return
            if budget <= 0:
                raise PoolError(
                    f"retry budget exhausted after {self.stats.retries}"
                    f" retries (last failure: {error}) — the "
                    f"environment, not a task, looks broken",
                    pending=pending_items() + [task.item],
                )
            budget -= 1
            self.stats.retries += 1
            backoff = self.policy.backoff_delay(task.attempts,
                                                key=task.id)
            task.not_before = time.monotonic() + backoff
            queue.append(task)

        def handle_message(slot: int, message) -> None:
            nonlocal consecutive_failures, outstanding
            kind = message[0]
            handle = workers[slot]
            if kind == "ready":
                handle.ready = True
                handle.deadline = None
            elif kind == "init-error":
                # Deterministic: every respawn would fail the same
                # way, so this breaks the pool as a unit (fallback
                # reproduces the error with a real traceback).
                raise PoolError(
                    f"worker initializer failed: {message[1]}",
                    pending=pending_items(),
                )
            elif kind == "ok":
                task_id, result = message[1], message[2]
                task = handle.task
                handle.task = None
                handle.deadline = None
                if task_id in done:
                    return  # late duplicate after a reap race
                done.add(task_id)
                inflight.pop(task_id, None)
                if task is not None and task.id != task_id:
                    inflight.pop(task.id, None)
                outstanding -= 1
                consecutive_failures = 0
                record(result)
            elif kind == "part":
                # One member of a streaming composite item finished.
                task_id, value = message[1], message[2]
                task = handle.task
                if task is None or task.id != task_id or task_id in done:
                    return  # stale stream after a reap race
                consecutive_failures = 0
                record(value)
                if shrink is not None:
                    task.item = shrink(task.item, value)
                if self.policy.task_timeout is not None:
                    handle.deadline = (
                        time.monotonic() + self.policy.task_timeout
                    )
            elif kind == "done":
                # End of a streamed item: every part was recorded.
                task_id = message[1]
                task = handle.task
                handle.task = None
                handle.deadline = None
                if task_id in done:
                    return  # late duplicate after a reap race
                done.add(task_id)
                inflight.pop(task_id, None)
                if task is not None and task.id != task_id:
                    inflight.pop(task.id, None)
                outstanding -= 1
                consecutive_failures = 0
            elif kind == "err":
                # The worker survived — the task's own code raised.
                # Still an infra-shaped failure from the caller's
                # perspective (the item produced no result); retry it
                # bounded, then quarantine.
                handle.deadline = None
                task = handle.task
                handle.task = None
                if task is not None:
                    fail_task(
                        task, PoolError(f"task raised: {message[2]}")
                    )

        try:
            try:
                ctx = _get_context()
            except Exception as err:  # noqa: BLE001 — env probe
                raise PoolError(
                    f"multiprocessing unavailable: "
                    f"{type(err).__name__}: {err}",
                    pending=pending_items(),
                ) from err
            while outstanding > 0:
                now = time.monotonic()

                # 1. keep the fleet at strength (with backoff).  A
                # fleet that keeps dying before serving any task
                # (e.g. the OOM killer reaping every init) is an
                # environment failure, not a task failure — bound it.
                if self.stats.respawns > budget + 2 * len(workers):
                    raise PoolError(
                        f"workers keep dying "
                        f"({self.stats.respawns} respawns); "
                        f"giving up on the pool",
                        pending=pending_items(),
                    )
                for slot in range(len(workers)):
                    handle = workers[slot]
                    if handle is not None:
                        continue
                    if now < next_spawn:
                        continue
                    init_deadline = (
                        now + self.policy.task_timeout
                        if self.policy.task_timeout is not None
                        else None
                    )
                    try:
                        workers[slot] = _Worker(
                            ctx, *worker_args,
                            init_deadline=init_deadline,
                        )
                    except Exception as err:  # noqa: BLE001
                        raise PoolError(
                            f"cannot spawn worker: "
                            f"{type(err).__name__}: {err}",
                            pending=pending_items(),
                        ) from err

                # 2. dispatch eligible tasks to idle, ready workers.
                for handle in workers:
                    if (handle is None or not handle.ready
                            or handle.task is not None):
                        continue
                    task = self._next_eligible(queue, now)
                    if task is None:
                        break
                    try:
                        handle.dispatch(task, self.policy.task_timeout)
                    except OSError:
                        # The worker died between messages; step 4
                        # reaps it and requeues the task.
                        continue
                    inflight[task.id] = task

                # 3. wait for messages / deaths / deadlines.
                conns = [h.conn for h in workers if h is not None]
                timeout = self._wait_timeout(workers, queue, now,
                                             next_spawn)
                if conns:
                    ready = _connection_wait(conns, timeout)
                else:
                    # whole fleet down: sleep out the spawn backoff
                    time.sleep(timeout)
                    ready = []
                for slot, handle in enumerate(workers):
                    if handle is None or handle.conn not in ready:
                        continue
                    try:
                        message = handle.conn.recv()
                    except (EOFError, OSError):
                        self._on_death(slot, workers, fail_task,
                                       note_failure)
                        continue
                    handle_message(slot, message)

                # 4. reap deadline overruns and silent deaths.
                now = time.monotonic()
                for slot, handle in enumerate(workers):
                    if handle is None:
                        continue
                    if (not handle.process.is_alive()
                            and not handle.conn.poll()):
                        self._on_death(slot, workers, fail_task,
                                       note_failure)
                    elif (handle.deadline is not None
                            and now > handle.deadline
                            and not handle.conn.poll()):
                        self._on_timeout(slot, workers, fail_task)
        except BaseException:
            for handle in workers:
                if handle is not None:
                    handle.reap()
            raise
        # Clean shutdown: ask workers to exit, then join.
        for handle in workers:
            if handle is None:
                continue
            try:
                handle.conn.send(None)
            except OSError:
                pass
        for handle in workers:
            if handle is not None:
                handle.process.join(timeout=5)
                if handle.process.is_alive():
                    handle.process.kill()
                    handle.process.join(timeout=5)
                handle.conn.close()
        return self.stats

    # -- supervision details ------------------------------------------------

    @staticmethod
    def _next_eligible(queue: deque, now: float) -> _Task | None:
        """Pop the first task whose backoff has elapsed (stable)."""
        for _ in range(len(queue)):
            task = queue.popleft()
            if task.not_before <= now:
                return task
            queue.append(task)
        return None

    def _wait_timeout(self, workers, queue, now: float,
                      next_spawn: float) -> float:
        timeout = self.policy.poll_interval
        for handle in workers:
            if handle is not None and handle.deadline is not None:
                timeout = min(timeout, max(0.0, handle.deadline - now))
            if handle is None and next_spawn > now:
                timeout = min(timeout, next_spawn - now)
        for task in queue:
            if task.not_before > now:
                timeout = min(timeout, task.not_before - now)
        return max(0.0, timeout)

    def _on_death(self, slot: int, workers, fail_task,
                  note_failure) -> None:
        handle = workers[slot]
        task = handle.task
        exitcode = handle.process.exitcode
        handle.reap()
        workers[slot] = None
        self.stats.respawns += 1
        if task is None:
            note_failure()  # idle worker died; respawn with backoff
            return
        self.stats.crashes += 1
        fail_task(task, WorkerCrash(
            f"worker died (exit code {exitcode}) while running task "
            f"{task.id} (attempt {task.attempts})"
        ))

    def _on_timeout(self, slot: int, workers, fail_task) -> None:
        handle = workers[slot]
        task = handle.task
        phase = (
            f"task {task.id} (attempt {task.attempts})"
            if task is not None else "start-up"
        )
        error = TaskTimeout(
            f"worker exceeded the {self.policy.task_timeout:.1f}s "
            f"deadline during {phase}; presumed hung and killed"
        )
        handle.reap()
        workers[slot] = None
        self.stats.respawns += 1
        self.stats.timeouts += 1
        if task is None:
            return  # initializer hung; respawn and hope
        fail_task(task, error)
