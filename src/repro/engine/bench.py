"""The ``repro bench`` harness: engines vs reference, timed and checked.

Runs the Table-IV evaluation matrix once per engine — the reference
loop, the fused fast engine, and the superblock engine layered on the
predecoded body-fusion tables — comparing wall clock and asserting the
per-point run digests are bit-identical across all of them.  With
``campaign=True`` it additionally times one fault-injection campaign
twice: cold (every faulted run re-simulates its fault-free prefix from
reset, the pre-warm-start baseline) and warm (faulted runs fork from
chained prefix snapshots), demanding the two coverage reports be
bit-identical.  The result is a JSON payload (``BENCH_perf.json`` by
convention) that CI archives so engine-performance regressions and
silent divergences both show up in the artifact history.

The sweep runner's on-disk cache is deliberately not used here: the
whole point is to measure cold simulation time.
"""

from __future__ import annotations

import time

from repro.engine.sweep import SweepPoint, SweepRunner, table4_points
from repro.evaluation.config import FLEXCORE_RATIOS
from repro.workloads import workload_names

#: default payload filename (what CI uploads).
BENCH_FILENAME = "BENCH_perf.json"

#: engines measured over the sweep matrix, slowest first.  The first
#: entry is the digest referee for all the others.
BENCH_ENGINES = ("reference", "fast", "superblock")

#: the campaign the ``--campaign`` mode times: DIFT on sha is the
#: paper's flagship monitored pair and long enough that the golden
#: prefix dominates a cold faulted run.
CAMPAIGN_BENCH = {"extension": "dift", "workload": "sha"}


def bench_points(scale: float, quick: bool,
                 benchmarks=None) -> list[SweepPoint]:
    """The measured grid.

    Full mode is exactly the Table-IV matrix.  ``quick`` trims it to
    one unmonitored baseline plus each extension at its paper fabric
    clock — the smoke matrix CI can afford on every push.
    """
    benchmarks = benchmarks or workload_names()
    if not quick:
        return table4_points(scale, benchmarks)
    points = []
    for bench in benchmarks:
        points.append(SweepPoint(workload=bench, scale=scale))
        for extension, ratio in FLEXCORE_RATIOS.items():
            points.append(SweepPoint(workload=bench,
                                     extension=extension,
                                     clock_ratio=ratio, scale=scale))
    return points


def _timed_sweep(points, engine: str, jobs: int) -> tuple[list, dict]:
    runner = SweepRunner(jobs=jobs, engine=engine)
    start = time.perf_counter()
    outcomes = runner.run(points)
    seconds = time.perf_counter() - start
    instructions = sum(o.instructions for o in outcomes)
    return outcomes, {
        "seconds": seconds,
        "instructions": instructions,
        "instr_per_sec": instructions / seconds if seconds > 0 else 0.0,
    }


def run_campaign_bench(quick: bool = False, jobs: int = 1,
                       **overrides) -> dict:
    """Time one campaign cold vs warm; return its payload section.

    ``cold`` disables warm starts (and batches one fault per dispatch
    when parallel) — the pre-warm-start baseline where every faulted
    run re-simulates the fault-free prefix from reset.  ``warm`` is
    the shipped default: faulted runs fork from chained prefix
    snapshots and finish on the superblock engine once their fault
    settles.  ``reports_match`` is the correctness verdict: the two
    coverage reports must be bit-identical.  ``overrides`` replace any
    :class:`~repro.faultinject.campaign.CampaignConfig` field (tests
    shrink the campaign with them).
    """
    from repro.faultinject import Campaign, CampaignConfig

    base = dict(
        CAMPAIGN_BENCH,
        scale=0.0625 if quick else 0.125,
        faults=40 if quick else 100,
        seed=1,
        jobs=jobs,
    )
    base.update(overrides)
    timings: dict[str, dict] = {}
    reports: dict[str, str] = {}
    for mode, overrides in (
        ("cold", {"warm_start": False, "batch_size": 1}),
        ("warm", {"warm_start": True}),
    ):
        config = CampaignConfig(**base, **overrides)
        start = time.perf_counter()
        report = Campaign(config).run()
        timings[mode] = {"seconds": time.perf_counter() - start}
        reports[mode] = report.to_json()
    cold = timings["cold"]["seconds"]
    warm = timings["warm"]["seconds"]
    return {
        **base,
        "cold": timings["cold"],
        "warm": timings["warm"],
        "speedup": cold / warm if warm > 0 else 0.0,
        "reports_match": reports["cold"] == reports["warm"],
    }


def run_bench(scale: float = 1.0, quick: bool = False, jobs: int = 1,
              benchmarks=None, campaign: bool = False) -> dict:
    """Measure every engine over the matrix; return the JSON payload.

    ``payload["digests_match"]`` is the correctness verdict: True iff
    every point's digest is identical across all of
    :data:`BENCH_ENGINES` — and, with ``campaign=True``, the cold and
    warm campaign reports are bit-identical too.
    """
    points = bench_points(scale, quick, benchmarks)
    outcomes: dict[str, list] = {}
    timings: dict[str, dict] = {}
    for engine in BENCH_ENGINES:
        outcomes[engine], timings[engine] = _timed_sweep(
            points, engine, jobs
        )

    referee = BENCH_ENGINES[0]
    rows = []
    digests_match = True
    for index, ref in enumerate(outcomes[referee]):
        point = ref.point
        row = {
            "workload": point.workload,
            "extension": point.extension,
            "clock_ratio": point.clock_ratio,
            "fifo_depth": point.fifo_depth,
            "cycles": ref.cycles,
            "instructions": ref.instructions,
            "reference_digest": ref.digest,
        }
        match = True
        for engine in BENCH_ENGINES[1:]:
            digest = outcomes[engine][index].digest
            row[f"{engine}_digest"] = digest
            match = match and digest == ref.digest
        row["fast_engine"] = outcomes["fast"][index].engine
        row["match"] = match
        digests_match = digests_match and match
        rows.append(row)

    ref_seconds = timings[referee]["seconds"]
    fast_seconds = timings["fast"]["seconds"]
    sb_seconds = timings["superblock"]["seconds"]
    payload = {
        "quick": quick,
        "scale": scale,
        "jobs": jobs,
        "points": rows,
        "reference": timings["reference"],
        "fast": timings["fast"],
        "superblock": timings["superblock"],
        "speedup": (ref_seconds / fast_seconds
                    if fast_seconds > 0 else 0.0),
        "superblock_speedup": (ref_seconds / sb_seconds
                               if sb_seconds > 0 else 0.0),
        "superblock_vs_fast": (fast_seconds / sb_seconds
                               if sb_seconds > 0 else 0.0),
        "digests_match": digests_match,
    }
    if campaign:
        payload["campaign"] = run_campaign_bench(quick=quick,
                                                 jobs=jobs)
        payload["digests_match"] = (
            digests_match and payload["campaign"]["reports_match"]
        )
    return payload


def format_bench(payload: dict) -> str:
    """One-screen human summary of a bench payload."""
    lines = []
    mode = "quick" if payload["quick"] else "full table-IV"
    lines.append(
        f"bench ({mode} matrix, scale {payload['scale']}, "
        f"{len(payload['points'])} points, jobs {payload['jobs']})"
    )
    for engine in BENCH_ENGINES:
        timing = payload.get(engine)
        if timing is None:
            continue
        lines.append(
            f"  {engine:10s}: {timing['seconds']:8.2f}s  "
            f"{timing['instr_per_sec']:12,.0f} instr/s"
        )
    lines.append(f"  speedup   : {payload['speedup']:.2f}x fast, "
                 f"{payload.get('superblock_speedup', 0.0):.2f}x "
                 f"superblock "
                 f"({payload.get('superblock_vs_fast', 0.0):.2f}x "
                 f"over fast)")
    mismatches = [row for row in payload["points"] if not row["match"]]
    if mismatches:
        lines.append(f"  DIGEST MISMATCH on {len(mismatches)} point(s):")
        for row in mismatches:
            engine_digests = ", ".join(
                f"{engine} {row[f'{engine}_digest'][:12]}"
                for engine in BENCH_ENGINES[1:]
                if f"{engine}_digest" in row
            )
            lines.append(
                f"    {row['workload']} / "
                f"{row['extension'] or 'baseline'} "
                f"@ {row['clock_ratio']}: "
                f"ref {row['reference_digest'][:12]} != "
                f"{engine_digests}"
            )
    else:
        lines.append(
            f"  digests   : all {len(payload['points'])} points "
            f"bit-identical across {len(BENCH_ENGINES)} engines"
        )
    section = payload.get("campaign")
    if section is not None:
        lines.append(
            f"campaign ({section['workload']}/{section['extension']}, "
            f"{section['faults']} faults, scale {section['scale']})"
        )
        lines.append(
            f"  cold      : {section['cold']['seconds']:8.2f}s  "
            f"(prefix re-run from reset)"
        )
        lines.append(
            f"  warm      : {section['warm']['seconds']:8.2f}s  "
            f"(forked from prefix snapshots)"
        )
        lines.append(f"  speedup   : {section['speedup']:.2f}x")
        if section["reports_match"]:
            lines.append("  reports   : cold and warm bit-identical")
        else:
            lines.append("  CAMPAIGN REPORT MISMATCH: warm-start "
                         "coverage diverges from the cold baseline")
    return "\n".join(lines)
