"""The ``repro bench`` harness: fast vs reference, timed and checked.

Runs the Table-IV evaluation matrix twice — once under the reference
loop, once under the fast engine — comparing wall clock and asserting
the per-point run digests are bit-identical.  The result is a JSON
payload (``BENCH_perf.json`` by convention) that CI archives so
engine-performance regressions and silent divergences both show up in
the artifact history.

The sweep runner's on-disk cache is deliberately not used here: the
whole point is to measure cold simulation time.
"""

from __future__ import annotations

import time

from repro.engine.sweep import SweepPoint, SweepRunner, table4_points
from repro.evaluation.config import FLEXCORE_RATIOS
from repro.workloads import workload_names

#: default payload filename (what CI uploads).
BENCH_FILENAME = "BENCH_perf.json"


def bench_points(scale: float, quick: bool,
                 benchmarks=None) -> list[SweepPoint]:
    """The measured grid.

    Full mode is exactly the Table-IV matrix.  ``quick`` trims it to
    one unmonitored baseline plus each extension at its paper fabric
    clock — the smoke matrix CI can afford on every push.
    """
    benchmarks = benchmarks or workload_names()
    if not quick:
        return table4_points(scale, benchmarks)
    points = []
    for bench in benchmarks:
        points.append(SweepPoint(workload=bench, scale=scale))
        for extension, ratio in FLEXCORE_RATIOS.items():
            points.append(SweepPoint(workload=bench,
                                     extension=extension,
                                     clock_ratio=ratio, scale=scale))
    return points


def _timed_sweep(points, engine: str, jobs: int) -> tuple[list, dict]:
    runner = SweepRunner(jobs=jobs, engine=engine)
    start = time.perf_counter()
    outcomes = runner.run(points)
    seconds = time.perf_counter() - start
    instructions = sum(o.instructions for o in outcomes)
    return outcomes, {
        "seconds": seconds,
        "instructions": instructions,
        "instr_per_sec": instructions / seconds if seconds > 0 else 0.0,
    }


def run_bench(scale: float = 1.0, quick: bool = False, jobs: int = 1,
              benchmarks=None) -> dict:
    """Measure both engines over the matrix; return the JSON payload.

    ``payload["digests_match"]`` is the correctness verdict: True iff
    every point's fast digest equals its reference digest.
    """
    points = bench_points(scale, quick, benchmarks)
    reference, ref_timing = _timed_sweep(points, "reference", jobs)
    fast, fast_timing = _timed_sweep(points, "fast", jobs)

    rows = []
    digests_match = True
    for ref, quickened in zip(reference, fast):
        match = ref.digest == quickened.digest
        digests_match = digests_match and match
        point = ref.point
        rows.append({
            "workload": point.workload,
            "extension": point.extension,
            "clock_ratio": point.clock_ratio,
            "fifo_depth": point.fifo_depth,
            "cycles": ref.cycles,
            "instructions": ref.instructions,
            "reference_digest": ref.digest,
            "fast_digest": quickened.digest,
            "fast_engine": quickened.engine,
            "match": match,
        })

    ref_seconds = ref_timing["seconds"]
    fast_seconds = fast_timing["seconds"]
    return {
        "quick": quick,
        "scale": scale,
        "jobs": jobs,
        "points": rows,
        "reference": ref_timing,
        "fast": fast_timing,
        "speedup": (ref_seconds / fast_seconds
                    if fast_seconds > 0 else 0.0),
        "digests_match": digests_match,
    }


def format_bench(payload: dict) -> str:
    """One-screen human summary of a bench payload."""
    lines = []
    mode = "quick" if payload["quick"] else "full table-IV"
    lines.append(
        f"bench ({mode} matrix, scale {payload['scale']}, "
        f"{len(payload['points'])} points, jobs {payload['jobs']})"
    )
    for engine in ("reference", "fast"):
        timing = payload[engine]
        lines.append(
            f"  {engine:9s}: {timing['seconds']:8.2f}s  "
            f"{timing['instr_per_sec']:12,.0f} instr/s"
        )
    lines.append(f"  speedup  : {payload['speedup']:.2f}x")
    mismatches = [row for row in payload["points"] if not row["match"]]
    if mismatches:
        lines.append(f"  DIGEST MISMATCH on {len(mismatches)} point(s):")
        for row in mismatches:
            lines.append(
                f"    {row['workload']} / "
                f"{row['extension'] or 'baseline'} "
                f"@ {row['clock_ratio']}: "
                f"ref {row['reference_digest'][:12]} != "
                f"fast {row['fast_digest'][:12]}"
            )
    else:
        lines.append(
            f"  digests  : all {len(payload['points'])} points "
            f"bit-identical"
        )
    return "\n".join(lines)
