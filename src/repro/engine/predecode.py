"""Per-PC predecoded handler closures for the fast engine.

The reference loop pays, for every committed instruction: a word
fetch assembled byte-by-byte, a decode-cache lookup, a
:class:`~repro.core.executor.CommitRecord` allocation, a chain of
``isinstance``/opcode dispatch branches, a CFGR policy lookup, and an
:meth:`~repro.flexcore.interface.CoreFabricInterface.on_commit` call
— even when the instruction's class is configured IGNORE and the
packet is never built.

A :class:`HandlerTable` resolves everything that is *static per PC*
exactly once — the instruction word, its decode, its CFGR class and
forwarding policy, its base latency — into one closure per program
counter.  Calling the closure executes the instruction functionally,
charges the timing model, and updates the interface counters, in
precisely the order the reference path does, so the resulting
:class:`~repro.flexcore.system.RunResult` is bit-identical (the
differential and golden tests enforce this).

Fidelity rules the closures follow:

* Ignored-class common instructions are fully fused: no record is
  allocated; the interface bookkeeping reduces to the two counters
  ``on_commit`` would have bumped.
* *Forwarded* common instructions (policy != IGNORE) fuse the
  functional work and the timing charge, build a fresh
  ``CommitRecord`` per call — field-for-field what ``_execute`` would
  have produced, fresh because trace packets retain their record —
  and hand it to the original ``on_commit``, which owns every
  dynamic decision (FIFO occupancy, fabric service, traps).
* The rare opcodes (FLEX, JMPL, TICC, SAVE/RESTORE, RDY/WRY, RETT,
  LDD/STD) run through the original ``CpuState._execute`` /
  ``CoreTiming.advance`` / ``on_commit`` machinery — only the fetch
  and decode are skipped.
* ``now`` is truncated with ``int()`` before timing, errors propagate
  with the same types and messages, ``instret`` only increments after
  the fallible functional work, and mutable collaborators that
  ``restore_state`` *replaces* (``timing.stats``, ``iface.stats``,
  ``cpu.codes``) are re-read through their stable owner on every call.
* Stores into the text section invalidate the handler for the written
  word, so self-modifying code re-predecodes on next execution.

Handlers are built lazily (on first execution of each PC), so a table
never describes memory it has not read.
"""

from __future__ import annotations

from repro.core.alu import execute_alu
from repro.core.executor import CommitRecord
from repro.flexcore.cfgr import ForwardPolicy
from repro.flexcore.packet import TracePacket
from repro.isa.encoding import decode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Cond, Op, Op2, Op3, Op3Mem
from repro.memory.backing import PAGE_MASK, PAGE_SIZE, MemoryFault

MASK32 = 0xFFFFFFFF

#: Process-wide word -> Instruction memo.  Instructions are frozen and
#: decoding is pure, so the memo is shared by every table.
_DECODE_CACHE: dict[int, Instruction] = {}

#: Branch condition evaluators, one closure per Cond (the reference
#: ``evaluate_condition`` rebuilds a 16-entry dict per call).
_COND_EVAL = {
    Cond.BA: lambda codes: True,
    Cond.BN: lambda codes: False,
    Cond.BE: lambda codes: codes.z,
    Cond.BNE: lambda codes: not codes.z,
    Cond.BG: lambda codes: not (codes.z or (codes.n != codes.v)),
    Cond.BLE: lambda codes: codes.z or (codes.n != codes.v),
    Cond.BGE: lambda codes: codes.n == codes.v,
    Cond.BL: lambda codes: codes.n != codes.v,
    Cond.BGU: lambda codes: not (codes.c or codes.z),
    Cond.BLEU: lambda codes: codes.c or codes.z,
    Cond.BCC: lambda codes: not codes.c,
    Cond.BCS: lambda codes: codes.c,
    Cond.BPOS: lambda codes: not codes.n,
    Cond.BNEG: lambda codes: codes.n,
    Cond.BVC: lambda codes: not codes.v,
    Cond.BVS: lambda codes: codes.v,
}


def _sra(a, b):
    return (((a & MASK32) - ((a & 0x80000000) << 1)) >> (b & 31)) & MASK32


#: Non-cc ALU ops whose value the closure computes inline; every
#: formula mirrors :func:`repro.core.alu.execute_alu` bit for bit.
#: Anything cc-setting, carry-consuming or Y-touching calls
#: ``execute_alu`` itself (see ``_make_alu_full``).
_SIMPLE_ALU = {
    Op3.ADD: lambda a, b: (a + b) & MASK32,
    Op3.SUB: lambda a, b: (a - b) & MASK32,
    Op3.AND: lambda a, b: a & b & MASK32,
    Op3.ANDN: lambda a, b: a & ~b & MASK32,
    Op3.OR: lambda a, b: (a | b) & MASK32,
    Op3.ORN: lambda a, b: (a | ~b) & MASK32,
    Op3.XOR: lambda a, b: (a ^ b) & MASK32,
    Op3.XNOR: lambda a, b: ~(a ^ b) & MASK32,
    Op3.SLL: lambda a, b: (a << (b & 31)) & MASK32,
    Op3.SRL: lambda a, b: (a >> (b & 31)) & MASK32,
    Op3.SRA: _sra,
}

#: FORMAT3_ALU opcodes with side effects beyond regs/codes/Y writes
#: (window rotation, control transfer, traps, co-processor I/O); these
#: always run through ``CpuState._execute``.
_SPECIAL_ALU = frozenset({
    Op3.FLEXOP, Op3.JMPL, Op3.TICC, Op3.SAVE, Op3.RESTORE,
    Op3.RDY, Op3.WRY, Op3.RETT,
})

#: Loads/stores with fully fused closures; LDD/STD (two accesses,
#: even-rd checks) take the generic path.
_FUSED_LOADS = (Op3Mem.LD, Op3Mem.LDUB, Op3Mem.LDSB,
                Op3Mem.LDUH, Op3Mem.LDSH)
_FUSED_STORES = (Op3Mem.ST, Op3Mem.STB, Op3Mem.STH)


def _word_accessors(memory):
    """Fast big-endian word read/write over ``memory``'s page dict.

    Bit-compatible with :class:`SparseMemory`'s accessors, including
    the misaligned-fault message and zero-page allocation; an aligned
    word never straddles a page.
    """
    pages = memory._pages

    def read_word(addr):
        if addr & 3:
            raise MemoryFault(f"misaligned word read at {addr:#x}")
        addr &= MASK32
        page = pages.get(addr >> 12)
        if page is None:
            page = bytearray(PAGE_SIZE)
            pages[addr >> 12] = page
        o = addr & PAGE_MASK
        return ((page[o] << 24) | (page[o + 1] << 16)
                | (page[o + 2] << 8) | page[o + 3])

    def write_word(addr, value):
        if addr & 3:
            raise MemoryFault(f"misaligned word write at {addr:#x}")
        addr &= MASK32
        page = pages.get(addr >> 12)
        if page is None:
            page = bytearray(PAGE_SIZE)
            pages[addr >> 12] = page
        o = addr & PAGE_MASK
        value &= MASK32
        page[o] = value >> 24
        page[o + 1] = (value >> 16) & 0xFF
        page[o + 2] = (value >> 8) & 0xFF
        page[o + 3] = value & 0xFF

    return read_word, write_word


class HandlerTable:
    """Lazily-built map of PC -> fused step closure for one system.

    A table is built fresh for each ``run_bounded`` invocation (and
    after every rollback restore), so it can never describe stale
    text.  Within a run, store closures invalidate overwritten words.
    """

    def __init__(self, system):
        self.system = system
        self.handlers: dict[int, object] = {}
        program = system.program
        self.text_lo = program.text_base
        self.text_hi = program.text_base + 4 * len(program.text)
        self._read_word, self._write_word = _word_accessors(system.memory)

    # ------------------------------------------------------------------

    def build(self, pc: int):
        """Decode the word at ``pc`` and install its handler.

        Raises exactly what the reference fetch/decode would raise
        (``MemoryFault`` on unmapped/misaligned PCs, the decoder's
        ``SimulationError`` on bad words); callers wrap errors the
        same way ``CpuState.step`` does.
        """
        system = self.system
        word = system.memory.read_word(pc)
        instr = _DECODE_CACHE.get(word)
        if instr is None:
            instr = decode(word)
            _DECODE_CACHE[word] = instr
        instr_class = instr.instr_class
        latency = system.core_timing.config.base_latency(instr_class)
        iface = system.interface
        policy = (iface.cfgr.policy(instr_class)
                  if iface is not None else ForwardPolicy.IGNORE)

        handler = None
        if policy == ForwardPolicy.IGNORE:
            op = instr.op
            if op == Op.FORMAT3_ALU and instr.opcode not in _SPECIAL_ALU:
                valfn = _SIMPLE_ALU.get(instr.opcode)
                if valfn is not None:
                    handler = self._make_alu_simple(pc, instr, valfn,
                                                    latency)
                else:
                    handler = self._make_alu_full(pc, instr, latency)
            elif op == Op.FORMAT3_MEM:
                if instr.opcode in _FUSED_LOADS:
                    handler = self._make_load(pc, instr, latency)
                elif instr.opcode in _FUSED_STORES:
                    handler = self._make_store(pc, instr, latency)
            elif op == Op.CALL:
                handler = self._make_call(pc, instr, latency)
            elif op == Op.FORMAT2:
                if instr.opcode == Op2.SETHI:
                    handler = self._make_sethi(pc, instr, latency)
                elif instr.opcode == Op2.BICC:
                    handler = self._make_branch(pc, instr, latency)
        else:
            op = instr.op
            if op == Op.FORMAT3_ALU and instr.opcode not in _SPECIAL_ALU:
                valfn = _SIMPLE_ALU.get(instr.opcode)
                if valfn is not None:
                    handler = self._make_alu_simple_fwd(pc, word, instr,
                                                        valfn, latency)
                else:
                    handler = self._make_alu_full_fwd(pc, word, instr,
                                                      latency)
            elif op == Op.FORMAT3_MEM:
                if instr.opcode in _FUSED_LOADS:
                    handler = self._make_load_fwd(pc, word, instr,
                                                  latency)
                elif instr.opcode in _FUSED_STORES:
                    handler = self._make_store_fwd(pc, word, instr,
                                                   latency)
            elif op == Op.CALL:
                handler = self._make_call_fwd(pc, word, instr, latency)
            elif op == Op.FORMAT2:
                if instr.opcode == Op2.SETHI:
                    handler = self._make_sethi_fwd(pc, word, instr,
                                                   latency)
                elif instr.opcode == Op2.BICC:
                    handler = self._make_branch_fwd(pc, word, instr,
                                                    latency)
        if handler is None:
            handler = self._make_generic(pc, word, instr)
        self.handlers[pc] = handler
        return handler

    # ------------------------------------------------------------------
    # Closure factories.  Each captures only objects that are stable
    # across restore_state (the cpu/timing/interface *owners*, bound
    # methods of in-place-mutated collaborators) plus per-PC statics.

    def _context(self):
        system = self.system
        cpu = system.cpu
        timing = system.core_timing
        regs = cpu.regs
        return (cpu, timing, system.interface, regs.read, regs.write,
                regs.physical_index, timing.icache.read,
                system.bus.line_refill)

    def _make_alu_simple(self, pc, instr, valfn, latency):
        (cpu, timing, iface, regs_read, regs_write, phys,
         icache_read, refill) = self._context()
        rs1, rs2, rd = instr.rs1, instr.rs2, instr.rd
        use_imm = instr.use_imm
        imm = instr.imm & MASK32

        def handler(now):
            a = regs_read(rs1)
            b = imm if use_imm else regs_read(rs2)
            regs_write(rd, valfn(a, b))
            npc = cpu.npc
            cpu.pc = npc
            cpu.npc = (npc + 4) & MASK32
            cpu.instret += 1
            ts = timing.stats
            ts.instructions += 1
            now = int(now)
            if not icache_read(pc):
                done = refill(now, "core-ifetch")
                ts.icache_stall += done - now
                now = done
            base = latency
            dest = timing._pending_load_dest
            if dest > 0 and (phys(rs1) == dest
                             or (not use_imm and phys(rs2) == dest)):
                base += 1
                ts.interlock_stall += 1
            timing._pending_load_dest = -1
            ts.base_cycles += base
            now += base
            ts.cycles = now
            if iface is not None:
                s = iface.stats
                s.committed += 1
                s.ignored += 1
            return now

        return handler

    def _make_alu_full(self, pc, instr, latency):
        (cpu, timing, iface, regs_read, regs_write, phys,
         icache_read, refill) = self._context()
        rs1, rs2, rd = instr.rs1, instr.rs2, instr.rd
        use_imm = instr.use_imm
        imm = instr.imm & MASK32
        op3 = instr.opcode

        def handler(now):
            a = regs_read(rs1)
            b = imm if use_imm else regs_read(rs2)
            alu = execute_alu(op3, a, b, carry=cpu.codes.c, y=cpu.y)
            regs_write(rd, alu.value)
            if alu.codes is not None:
                cpu.codes = alu.codes
            if alu.y is not None:
                cpu.y = alu.y
            npc = cpu.npc
            cpu.pc = npc
            cpu.npc = (npc + 4) & MASK32
            cpu.instret += 1
            ts = timing.stats
            ts.instructions += 1
            now = int(now)
            if not icache_read(pc):
                done = refill(now, "core-ifetch")
                ts.icache_stall += done - now
                now = done
            base = latency
            dest = timing._pending_load_dest
            if dest > 0 and (phys(rs1) == dest
                             or (not use_imm and phys(rs2) == dest)):
                base += 1
                ts.interlock_stall += 1
            timing._pending_load_dest = -1
            ts.base_cycles += base
            now += base
            ts.cycles = now
            if iface is not None:
                s = iface.stats
                s.committed += 1
                s.ignored += 1
            return now

        return handler

    def _make_load(self, pc, instr, latency):
        (cpu, timing, iface, regs_read, regs_write, phys,
         icache_read, refill) = self._context()
        rs1, rs2, rd = instr.rs1, instr.rs2, instr.rd
        use_imm = instr.use_imm
        imm = instr.imm & MASK32
        op3 = instr.opcode
        dcache_read = timing.dcache.read
        memory = self.system.memory
        read_word = self._read_word
        read_byte = memory.read_byte
        read_half = memory.read_half

        if op3 == Op3Mem.LD:
            loadfn = read_word
        elif op3 == Op3Mem.LDUB:
            loadfn = read_byte
        elif op3 == Op3Mem.LDSB:
            def loadfn(addr):
                raw = read_byte(addr)
                return (raw - 0x100 if raw & 0x80 else raw) & MASK32
        elif op3 == Op3Mem.LDUH:
            loadfn = read_half
        else:  # LDSH
            def loadfn(addr):
                raw = read_half(addr)
                return (raw - 0x10000 if raw & 0x8000 else raw) & MASK32

        def handler(now):
            a = regs_read(rs1)
            b = imm if use_imm else regs_read(rs2)
            addr = (a + b) & MASK32
            value = loadfn(addr)
            regs_write(rd, value)
            npc = cpu.npc
            cpu.pc = npc
            cpu.npc = (npc + 4) & MASK32
            cpu.instret += 1
            ts = timing.stats
            ts.instructions += 1
            now = int(now)
            if not icache_read(pc):
                done = refill(now, "core-ifetch")
                ts.icache_stall += done - now
                now = done
            base = latency
            dest = timing._pending_load_dest
            if dest > 0 and (phys(rs1) == dest
                             or (not use_imm and phys(rs2) == dest)):
                base += 1
                ts.interlock_stall += 1
            timing._pending_load_dest = phys(rd)
            ts.base_cycles += base
            now += base
            if not dcache_read(addr):
                done = refill(now, "core-dcache")
                ts.dcache_stall += done - now
                now = done
            ts.cycles = now
            if iface is not None:
                s = iface.stats
                s.committed += 1
                s.ignored += 1
            return now

        return handler

    def _make_store(self, pc, instr, latency):
        (cpu, timing, iface, regs_read, regs_write, phys,
         icache_read, refill) = self._context()
        rs1, rs2, rd = instr.rs1, instr.rs2, instr.rd
        use_imm = instr.use_imm
        imm = instr.imm & MASK32
        op3 = instr.opcode
        dcache_write = timing.dcache.write
        sb_push = timing.store_buffer.push
        memory = self.system.memory
        if op3 == Op3Mem.ST:
            storefn = self._write_word
        elif op3 == Op3Mem.STB:
            storefn = memory.write_byte
        else:  # STH
            storefn = memory.write_half
        text_lo, text_hi = self.text_lo, self.text_hi
        handlers = self.handlers

        def handler(now):
            a = regs_read(rs1)
            b = imm if use_imm else regs_read(rs2)
            addr = (a + b) & MASK32
            value = regs_read(rd)
            storefn(addr, value)
            if text_lo <= addr < text_hi:
                # Self-modifying code: re-predecode the touched word.
                handlers.pop(addr & ~3, None)
            npc = cpu.npc
            cpu.pc = npc
            cpu.npc = (npc + 4) & MASK32
            cpu.instret += 1
            ts = timing.stats
            ts.instructions += 1
            now = int(now)
            if not icache_read(pc):
                done = refill(now, "core-ifetch")
                ts.icache_stall += done - now
                now = done
            base = latency
            dest = timing._pending_load_dest
            if dest > 0 and (phys(rs1) == dest
                             or (not use_imm and phys(rs2) == dest)
                             or phys(rd) == dest):
                base += 1
                ts.interlock_stall += 1
            timing._pending_load_dest = -1
            ts.base_cycles += base
            now += base
            dcache_write(addr)
            proceed = sb_push(now)
            ts.store_stall += proceed - now
            now = proceed
            ts.cycles = now
            if iface is not None:
                s = iface.stats
                s.committed += 1
                s.ignored += 1
            return now

        return handler

    def _make_branch(self, pc, instr, latency):
        (cpu, timing, iface, _regs_read, _regs_write, _phys,
         icache_read, refill) = self._context()
        cond_eval = _COND_EVAL[instr.cond]
        target = (pc + 4 * instr.disp) & MASK32
        annul = instr.annul
        annul_taken = instr.annul and instr.cond == Cond.BA

        def handler(now):
            if cond_eval(cpu.codes):
                if annul_taken:
                    cpu._annul_next = True
                npc = cpu.npc
                cpu.pc = npc
                cpu.npc = target
            else:
                if annul:
                    cpu._annul_next = True
                npc = cpu.npc
                cpu.pc = npc
                cpu.npc = (npc + 4) & MASK32
            cpu.instret += 1
            ts = timing.stats
            ts.instructions += 1
            now = int(now)
            if not icache_read(pc):
                done = refill(now, "core-ifetch")
                ts.icache_stall += done - now
                now = done
            # Branches carry no source physical registers, so the
            # load-use interlock can never fire; just clear it.
            timing._pending_load_dest = -1
            ts.base_cycles += latency
            now += latency
            ts.cycles = now
            if iface is not None:
                s = iface.stats
                s.committed += 1
                s.ignored += 1
            return now

        return handler

    def _make_sethi(self, pc, instr, latency):
        (cpu, timing, iface, _regs_read, regs_write, _phys,
         icache_read, refill) = self._context()
        rd = instr.rd
        value = (instr.imm << 10) & MASK32

        def handler(now):
            regs_write(rd, value)
            npc = cpu.npc
            cpu.pc = npc
            cpu.npc = (npc + 4) & MASK32
            cpu.instret += 1
            ts = timing.stats
            ts.instructions += 1
            now = int(now)
            if not icache_read(pc):
                done = refill(now, "core-ifetch")
                ts.icache_stall += done - now
                now = done
            timing._pending_load_dest = -1
            ts.base_cycles += latency
            now += latency
            ts.cycles = now
            if iface is not None:
                s = iface.stats
                s.committed += 1
                s.ignored += 1
            return now

        return handler

    def _make_call(self, pc, instr, latency):
        (cpu, timing, iface, _regs_read, regs_write, _phys,
         icache_read, refill) = self._context()
        target = (pc + 4 * instr.disp) & MASK32

        def handler(now):
            regs_write(15, pc)  # %o7 <- address of the call
            npc = cpu.npc
            cpu.pc = npc
            cpu.npc = target
            cpu.instret += 1
            ts = timing.stats
            ts.instructions += 1
            now = int(now)
            if not icache_read(pc):
                done = refill(now, "core-ifetch")
                ts.icache_stall += done - now
                now = done
            timing._pending_load_dest = -1
            ts.base_cycles += latency
            now += latency
            ts.cycles = now
            if iface is not None:
                s = iface.stats
                s.committed += 1
                s.ignored += 1
            return now

        return handler

    # ------------------------------------------------------------------
    # Forwarded variants: same fused functional/timing work, plus a
    # fresh CommitRecord — field-for-field what ``_execute`` builds,
    # fresh because packets retain their record — handed to a fused
    # commit tail (``_make_forward``) that replays ``on_commit``'s
    # body with the policy, ack mode and static DECODE bits resolved
    # at build time.  The dynamic machinery (FIFO occupancy,
    # ``_service``, trap latching) stays on the original code.

    def _make_forward(self, pc, word, instr, klass):
        """Fused equivalent of ``on_commit`` + ``from_commit`` for a
        known-forwarded, never-annulled instruction.  Telemetry sinks
        are structurally ``None`` here: the fast loop is only entered
        with tracing and metrics disabled."""
        iface = self.system.interface
        policy = iface.cfgr.policy(klass)
        best_effort = policy == ForwardPolicy.BEST_EFFORT
        # FLEX never takes this path (it is in ``_SPECIAL_ALU``), so
        # the READ_STATUS clause of the reference ack rule is moot.
        needs_ack = (policy == ForwardPolicy.ALWAYS_ACK
                     or iface.config.precise_exceptions)
        sync = iface.config.sync_fabric_cycles
        fifo = iface.fifo
        is_full = fifo.is_full
        time_until_space = fifo.time_until_space
        push = fifo.push
        service = iface._service
        base_decode = (int(instr.is_load)
                       | (int(instr.is_store) << 1)
                       | (int(instr.use_imm) << 2)
                       | ((instr.opf & 0x1FF) << 3))
        if instr.is_load or instr.is_store:
            base_decode |= (instr.access_size() & 0xF) << 12

        def forward(record, now):
            stats = iface.stats
            stats.committed += 1
            if is_full(now):
                if best_effort:
                    stats.dropped += 1
                    fifo.stats.dropped += 1
                    return now
                wait = time_until_space(now)
                stats.fifo_stall_cycles += wait
                fifo.stats.full_stall_cycles += wait
                now += wait
            packet = TracePacket(
                pc=pc, inst=word, addr=record.addr, res=record.result,
                srcv1=record.srcv1, srcv2=record.srcv2,
                cond=record.cond, branch=record.branch_taken,
                opcode=klass,
                decode=base_decode | (int(record.carry_before) << 16),
                extra=record.y_before, src1=record.src1_phys,
                src2=record.src2_phys, dest=record.dest_phys,
                record=record,
            )
            stats.forwarded += 1
            by_class = stats.forwarded_by_class
            by_class[klass] = by_class.get(klass, 0) + 1
            drain = service(packet, now)
            push(now, drain)
            if needs_ack:
                ack_at = drain + sync
                stats.ack_stall_cycles += ack_at - now
                now = ack_at
            return now

        return forward

    def _make_alu_simple_fwd(self, pc, word, instr, valfn, latency):
        (cpu, timing, iface, regs_read, regs_write, phys,
         icache_read, refill) = self._context()
        rs1, rs2, rd = instr.rs1, instr.rs2, instr.rd
        use_imm = instr.use_imm
        imm = instr.imm & MASK32
        klass = instr.instr_class
        forward = self._make_forward(pc, word, instr, klass)

        def handler(now):
            a = regs_read(rs1)
            b = imm if use_imm else regs_read(rs2)
            value = valfn(a, b)
            regs_write(rd, value)
            codes = cpu.codes
            record = CommitRecord(
                pc=pc, word=word, instr=instr, instr_class=klass,
                result=value, srcv1=a, srcv2=b, cond=codes.pack(),
                src1_phys=phys(rs1),
                src2_phys=0 if use_imm else phys(rs2),
                dest_phys=phys(rd),
                carry_before=codes.c, y_before=cpu.y,
            )
            npc = cpu.npc
            cpu.pc = npc
            cpu.npc = (npc + 4) & MASK32
            cpu.instret += 1
            ts = timing.stats
            ts.instructions += 1
            now = int(now)
            if not icache_read(pc):
                done = refill(now, "core-ifetch")
                ts.icache_stall += done - now
                now = done
            base = latency
            dest = timing._pending_load_dest
            if dest > 0 and (phys(rs1) == dest
                             or (not use_imm and phys(rs2) == dest)):
                base += 1
                ts.interlock_stall += 1
            timing._pending_load_dest = -1
            ts.base_cycles += base
            now += base
            ts.cycles = now
            return forward(record, now)

        return handler

    def _make_alu_full_fwd(self, pc, word, instr, latency):
        (cpu, timing, iface, regs_read, regs_write, phys,
         icache_read, refill) = self._context()
        rs1, rs2, rd = instr.rs1, instr.rs2, instr.rd
        use_imm = instr.use_imm
        imm = instr.imm & MASK32
        op3 = instr.opcode
        klass = instr.instr_class
        forward = self._make_forward(pc, word, instr, klass)

        def handler(now):
            a = regs_read(rs1)
            b = imm if use_imm else regs_read(rs2)
            carry_before = cpu.codes.c
            y_before = cpu.y
            alu = execute_alu(op3, a, b, carry=carry_before, y=y_before)
            regs_write(rd, alu.value)
            if alu.codes is not None:
                cpu.codes = alu.codes
            if alu.y is not None:
                cpu.y = alu.y
            record = CommitRecord(
                pc=pc, word=word, instr=instr, instr_class=klass,
                result=alu.value, srcv1=a, srcv2=b,
                cond=cpu.codes.pack(),
                src1_phys=phys(rs1),
                src2_phys=0 if use_imm else phys(rs2),
                dest_phys=phys(rd),
                carry_before=carry_before, y_before=y_before,
            )
            npc = cpu.npc
            cpu.pc = npc
            cpu.npc = (npc + 4) & MASK32
            cpu.instret += 1
            ts = timing.stats
            ts.instructions += 1
            now = int(now)
            if not icache_read(pc):
                done = refill(now, "core-ifetch")
                ts.icache_stall += done - now
                now = done
            base = latency
            dest = timing._pending_load_dest
            if dest > 0 and (phys(rs1) == dest
                             or (not use_imm and phys(rs2) == dest)):
                base += 1
                ts.interlock_stall += 1
            timing._pending_load_dest = -1
            ts.base_cycles += base
            now += base
            ts.cycles = now
            return forward(record, now)

        return handler

    def _make_load_fwd(self, pc, word, instr, latency):
        (cpu, timing, iface, regs_read, regs_write, phys,
         icache_read, refill) = self._context()
        rs1, rs2, rd = instr.rs1, instr.rs2, instr.rd
        use_imm = instr.use_imm
        imm = instr.imm & MASK32
        op3 = instr.opcode
        klass = instr.instr_class
        forward = self._make_forward(pc, word, instr, klass)
        dcache_read = timing.dcache.read
        memory = self.system.memory
        read_word = self._read_word
        read_byte = memory.read_byte
        read_half = memory.read_half

        if op3 == Op3Mem.LD:
            loadfn = read_word
        elif op3 == Op3Mem.LDUB:
            loadfn = read_byte
        elif op3 == Op3Mem.LDSB:
            def loadfn(addr):
                raw = read_byte(addr)
                return (raw - 0x100 if raw & 0x80 else raw) & MASK32
        elif op3 == Op3Mem.LDUH:
            loadfn = read_half
        else:  # LDSH
            def loadfn(addr):
                raw = read_half(addr)
                return (raw - 0x10000 if raw & 0x8000 else raw) & MASK32

        def handler(now):
            a = regs_read(rs1)
            b = imm if use_imm else regs_read(rs2)
            addr = (a + b) & MASK32
            value = loadfn(addr)
            regs_write(rd, value)
            codes = cpu.codes
            record = CommitRecord(
                pc=pc, word=word, instr=instr, instr_class=klass,
                addr=addr, result=value, srcv1=a, srcv2=b,
                cond=codes.pack(),
                src1_phys=phys(rs1),
                src2_phys=0 if use_imm else phys(rs2),
                dest_phys=phys(rd),
                carry_before=codes.c, y_before=cpu.y,
            )
            npc = cpu.npc
            cpu.pc = npc
            cpu.npc = (npc + 4) & MASK32
            cpu.instret += 1
            ts = timing.stats
            ts.instructions += 1
            now = int(now)
            if not icache_read(pc):
                done = refill(now, "core-ifetch")
                ts.icache_stall += done - now
                now = done
            base = latency
            dest = timing._pending_load_dest
            if dest > 0 and (phys(rs1) == dest
                             or (not use_imm and phys(rs2) == dest)):
                base += 1
                ts.interlock_stall += 1
            timing._pending_load_dest = phys(rd)
            ts.base_cycles += base
            now += base
            if not dcache_read(addr):
                done = refill(now, "core-dcache")
                ts.dcache_stall += done - now
                now = done
            ts.cycles = now
            return forward(record, now)

        return handler

    def _make_store_fwd(self, pc, word, instr, latency):
        (cpu, timing, iface, regs_read, regs_write, phys,
         icache_read, refill) = self._context()
        rs1, rs2, rd = instr.rs1, instr.rs2, instr.rd
        use_imm = instr.use_imm
        imm = instr.imm & MASK32
        op3 = instr.opcode
        klass = instr.instr_class
        forward = self._make_forward(pc, word, instr, klass)
        dcache_write = timing.dcache.write
        sb_push = timing.store_buffer.push
        memory = self.system.memory
        if op3 == Op3Mem.ST:
            storefn = self._write_word
        elif op3 == Op3Mem.STB:
            storefn = memory.write_byte
        else:  # STH
            storefn = memory.write_half
        text_lo, text_hi = self.text_lo, self.text_hi
        handlers = self.handlers

        def handler(now):
            a = regs_read(rs1)
            b = imm if use_imm else regs_read(rs2)
            addr = (a + b) & MASK32
            value = regs_read(rd)
            storefn(addr, value)
            if text_lo <= addr < text_hi:
                # Self-modifying code: re-predecode the touched word.
                handlers.pop(addr & ~3, None)
            codes = cpu.codes
            record = CommitRecord(
                pc=pc, word=word, instr=instr, instr_class=klass,
                addr=addr, result=value, srcv1=a, srcv2=b,
                cond=codes.pack(),
                src1_phys=phys(rs1),
                src2_phys=0 if use_imm else phys(rs2),
                dest_phys=phys(rd),
                carry_before=codes.c, y_before=cpu.y,
            )
            npc = cpu.npc
            cpu.pc = npc
            cpu.npc = (npc + 4) & MASK32
            cpu.instret += 1
            ts = timing.stats
            ts.instructions += 1
            now = int(now)
            if not icache_read(pc):
                done = refill(now, "core-ifetch")
                ts.icache_stall += done - now
                now = done
            base = latency
            dest = timing._pending_load_dest
            if dest > 0 and (phys(rs1) == dest
                             or (not use_imm and phys(rs2) == dest)
                             or phys(rd) == dest):
                base += 1
                ts.interlock_stall += 1
            timing._pending_load_dest = -1
            ts.base_cycles += base
            now += base
            dcache_write(addr)
            proceed = sb_push(now)
            ts.store_stall += proceed - now
            now = proceed
            ts.cycles = now
            return forward(record, now)

        return handler

    def _make_branch_fwd(self, pc, word, instr, latency):
        (cpu, timing, iface, _regs_read, _regs_write, _phys,
         icache_read, refill) = self._context()
        cond_eval = _COND_EVAL[instr.cond]
        target = (pc + 4 * instr.disp) & MASK32
        annul = instr.annul
        annul_taken = instr.annul and instr.cond == Cond.BA
        klass = instr.instr_class
        forward = self._make_forward(pc, word, instr, klass)

        def handler(now):
            codes = cpu.codes
            taken = cond_eval(codes)
            record = CommitRecord(
                pc=pc, word=word, instr=instr, instr_class=klass,
                addr=target, branch_taken=taken, cond=codes.pack(),
                carry_before=codes.c, y_before=cpu.y,
            )
            if taken:
                if annul_taken:
                    cpu._annul_next = True
                npc = cpu.npc
                cpu.pc = npc
                cpu.npc = target
            else:
                if annul:
                    cpu._annul_next = True
                npc = cpu.npc
                cpu.pc = npc
                cpu.npc = (npc + 4) & MASK32
            cpu.instret += 1
            ts = timing.stats
            ts.instructions += 1
            now = int(now)
            if not icache_read(pc):
                done = refill(now, "core-ifetch")
                ts.icache_stall += done - now
                now = done
            timing._pending_load_dest = -1
            ts.base_cycles += latency
            now += latency
            ts.cycles = now
            return forward(record, now)

        return handler

    def _make_sethi_fwd(self, pc, word, instr, latency):
        (cpu, timing, iface, _regs_read, regs_write, phys,
         icache_read, refill) = self._context()
        rd = instr.rd
        value = (instr.imm << 10) & MASK32
        klass = instr.instr_class
        forward = self._make_forward(pc, word, instr, klass)

        def handler(now):
            regs_write(rd, value)
            codes = cpu.codes
            record = CommitRecord(
                pc=pc, word=word, instr=instr, instr_class=klass,
                result=value, cond=codes.pack(), dest_phys=phys(rd),
                carry_before=codes.c, y_before=cpu.y,
            )
            npc = cpu.npc
            cpu.pc = npc
            cpu.npc = (npc + 4) & MASK32
            cpu.instret += 1
            ts = timing.stats
            ts.instructions += 1
            now = int(now)
            if not icache_read(pc):
                done = refill(now, "core-ifetch")
                ts.icache_stall += done - now
                now = done
            timing._pending_load_dest = -1
            ts.base_cycles += latency
            now += latency
            ts.cycles = now
            return forward(record, now)

        return handler

    def _make_call_fwd(self, pc, word, instr, latency):
        (cpu, timing, iface, _regs_read, regs_write, phys,
         icache_read, refill) = self._context()
        target = (pc + 4 * instr.disp) & MASK32
        klass = instr.instr_class
        forward = self._make_forward(pc, word, instr, klass)

        def handler(now):
            regs_write(15, pc)  # %o7 <- address of the call
            codes = cpu.codes
            record = CommitRecord(
                pc=pc, word=word, instr=instr, instr_class=klass,
                addr=target, result=pc, branch_taken=True,
                cond=codes.pack(), dest_phys=phys(15),
                carry_before=codes.c, y_before=cpu.y,
            )
            npc = cpu.npc
            cpu.pc = npc
            cpu.npc = target
            cpu.instret += 1
            ts = timing.stats
            ts.instructions += 1
            now = int(now)
            if not icache_read(pc):
                done = refill(now, "core-ifetch")
                ts.icache_stall += done - now
                now = done
            timing._pending_load_dest = -1
            ts.base_cycles += latency
            now += latency
            ts.cycles = now
            return forward(record, now)

        return handler

    def _make_generic(self, pc, word, instr):
        """Full-fidelity path minus fetch/decode: forwarded classes,
        rare opcodes, and anything with cross-cutting side effects."""
        system = self.system
        cpu = system.cpu
        execute = cpu._execute
        advance = system.core_timing.advance
        iface = system.interface
        on_commit = iface.on_commit if iface is not None else None
        invalidate = instr.is_store
        double = instr.opcode == Op3Mem.STD if invalidate else False
        text_lo, text_hi = self.text_lo, self.text_hi
        handlers = self.handlers

        def handler(now):
            record = execute(pc, word, instr)
            cpu.instret += 1
            if invalidate:
                addr = record.addr
                if text_lo <= addr < text_hi:
                    handlers.pop(addr & ~3, None)
                    if double:
                        handlers.pop((addr + 4) & ~3, None)
            now = advance(record, int(now))
            if on_commit is not None:
                now = on_commit(record, now)
            return now

        return handler
