"""Per-PC predecoded handler closures for the fast engine.

The reference loop pays, for every committed instruction: a word
fetch assembled byte-by-byte, a decode-cache lookup, a
:class:`~repro.core.executor.CommitRecord` allocation, a chain of
``isinstance``/opcode dispatch branches, a CFGR policy lookup, and an
:meth:`~repro.flexcore.interface.CoreFabricInterface.on_commit` call
— even when the instruction's class is configured IGNORE and the
packet is never built.

A :class:`HandlerTable` resolves everything that is *static per PC*
exactly once — the instruction word, its decode, its CFGR class and
forwarding policy, its base latency — into one closure per program
counter.  Calling the closure executes the instruction functionally,
charges the timing model, and updates the interface counters, in
precisely the order the reference path does, so the resulting
:class:`~repro.flexcore.system.RunResult` is bit-identical (the
differential and golden tests enforce this).

Fidelity rules the closures follow:

* Ignored-class common instructions are fully fused: no record is
  allocated; the interface bookkeeping reduces to the two counters
  ``on_commit`` would have bumped.
* *Forwarded* common instructions (policy != IGNORE) fuse the
  functional work and the timing charge, build a fresh
  ``CommitRecord`` per call — field-for-field what ``_execute`` would
  have produced, fresh because trace packets retain their record —
  and hand it to the original ``on_commit``, which owns every
  dynamic decision (FIFO occupancy, fabric service, traps).
* The rare opcodes (FLEX, JMPL, TICC, SAVE/RESTORE, RDY/WRY, RETT,
  LDD/STD) run through the original ``CpuState._execute`` /
  ``CoreTiming.advance`` / ``on_commit`` machinery — only the fetch
  and decode are skipped.
* ``now`` is truncated with ``int()`` before timing, errors propagate
  with the same types and messages, ``instret`` only increments after
  the fallible functional work, and mutable collaborators that
  ``restore_state`` *replaces* (``timing.stats``, ``iface.stats``,
  ``cpu.codes``) are re-read through their stable owner on every call.
* Stores into the text section invalidate the handler for the written
  word, so self-modifying code re-predecodes on next execution.

Handlers are built lazily (on first execution of each PC), so a table
never describes memory it has not read.
"""

from __future__ import annotations

from repro.core.alu import execute_alu
from repro.core.executor import CommitRecord
from repro.flexcore.cfgr import ForwardPolicy
from repro.flexcore.packet import TracePacket
from repro.isa.encoding import decode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Cond, Op, Op2, Op3, Op3Mem
from repro.memory.backing import PAGE_MASK, PAGE_SIZE, MemoryFault

MASK32 = 0xFFFFFFFF

#: Process-wide word -> Instruction memo.  Instructions are frozen and
#: decoding is pure, so the memo is shared by every table.
_DECODE_CACHE: dict[int, Instruction] = {}

#: Branch condition evaluators, one closure per Cond (the reference
#: ``evaluate_condition`` rebuilds a 16-entry dict per call).
_COND_EVAL = {
    Cond.BA: lambda codes: True,
    Cond.BN: lambda codes: False,
    Cond.BE: lambda codes: codes.z,
    Cond.BNE: lambda codes: not codes.z,
    Cond.BG: lambda codes: not (codes.z or (codes.n != codes.v)),
    Cond.BLE: lambda codes: codes.z or (codes.n != codes.v),
    Cond.BGE: lambda codes: codes.n == codes.v,
    Cond.BL: lambda codes: codes.n != codes.v,
    Cond.BGU: lambda codes: not (codes.c or codes.z),
    Cond.BLEU: lambda codes: codes.c or codes.z,
    Cond.BCC: lambda codes: not codes.c,
    Cond.BCS: lambda codes: codes.c,
    Cond.BPOS: lambda codes: not codes.n,
    Cond.BNEG: lambda codes: codes.n,
    Cond.BVC: lambda codes: not codes.v,
    Cond.BVS: lambda codes: codes.v,
}


def _sra(a, b):
    return (((a & MASK32) - ((a & 0x80000000) << 1)) >> (b & 31)) & MASK32


#: Non-cc ALU ops whose value the closure computes inline; every
#: formula mirrors :func:`repro.core.alu.execute_alu` bit for bit.
#: Anything cc-setting, carry-consuming or Y-touching calls
#: ``execute_alu`` itself (see ``_make_alu_full``).
_SIMPLE_ALU = {
    Op3.ADD: lambda a, b: (a + b) & MASK32,
    Op3.SUB: lambda a, b: (a - b) & MASK32,
    Op3.AND: lambda a, b: a & b & MASK32,
    Op3.ANDN: lambda a, b: a & ~b & MASK32,
    Op3.OR: lambda a, b: (a | b) & MASK32,
    Op3.ORN: lambda a, b: (a | ~b) & MASK32,
    Op3.XOR: lambda a, b: (a ^ b) & MASK32,
    Op3.XNOR: lambda a, b: ~(a ^ b) & MASK32,
    Op3.SLL: lambda a, b: (a << (b & 31)) & MASK32,
    Op3.SRL: lambda a, b: (a >> (b & 31)) & MASK32,
    Op3.SRA: _sra,
}

#: FORMAT3_ALU opcodes with side effects beyond regs/codes/Y writes
#: (window rotation, control transfer, traps, co-processor I/O); these
#: always run through ``CpuState._execute``.
_SPECIAL_ALU = frozenset({
    Op3.FLEXOP, Op3.JMPL, Op3.TICC, Op3.SAVE, Op3.RESTORE,
    Op3.RDY, Op3.WRY, Op3.RETT,
})

#: Loads/stores with fully fused closures; LDD/STD (two accesses,
#: even-rd checks) take the generic path.
_FUSED_LOADS = (Op3Mem.LD, Op3Mem.LDUB, Op3Mem.LDSB,
                Op3Mem.LDUH, Op3Mem.LDSH)
_FUSED_STORES = (Op3Mem.ST, Op3Mem.STB, Op3Mem.STH)

# Per-PC kind bits recorded by ``HandlerTable.build`` so the
# superblock discovery (:class:`SuperblockTable`) can classify a
# handler without re-decoding.  A plain kind of 0 is a linear step
# that can sit anywhere inside a superblock.
#: the handler calls ``_service`` and may latch ``pending_trap``.
KIND_FORWARDED = 1
#: the handler must be the *last* member of a superblock: a store
#: (may invalidate predecoded text) or a CTI (redirects control).
KIND_TERMINAL = 2
#: the handler takes the generic ``_execute`` path (traps, window
#: ops, JMPL/RETT, doubleword memory) and never joins a superblock.
KIND_GENERIC = 4


def _word_accessors(memory):
    """Fast big-endian word read/write over ``memory``'s page dict.

    Bit-compatible with :class:`SparseMemory`'s accessors, including
    the misaligned-fault message and zero-page allocation; an aligned
    word never straddles a page.
    """
    pages = memory._pages

    def read_word(addr):
        if addr & 3:
            raise MemoryFault(f"misaligned word read at {addr:#x}")
        addr &= MASK32
        page = pages.get(addr >> 12)
        if page is None:
            page = bytearray(PAGE_SIZE)
            pages[addr >> 12] = page
        o = addr & PAGE_MASK
        return ((page[o] << 24) | (page[o + 1] << 16)
                | (page[o + 2] << 8) | page[o + 3])

    def write_word(addr, value):
        if addr & 3:
            raise MemoryFault(f"misaligned word write at {addr:#x}")
        addr &= MASK32
        page = pages.get(addr >> 12)
        if page is None:
            page = bytearray(PAGE_SIZE)
            pages[addr >> 12] = page
        o = addr & PAGE_MASK
        value &= MASK32
        page[o] = value >> 24
        page[o + 1] = (value >> 16) & 0xFF
        page[o + 2] = (value >> 8) & 0xFF
        page[o + 3] = value & 0xFF

    return read_word, write_word


class HandlerTable:
    """Lazily-built map of PC -> fused step closure for one system.

    A table is built fresh for each ``run_bounded`` invocation (and
    after every rollback restore), so it can never describe stale
    text.  Within a run, store closures invalidate overwritten words.
    """

    def __init__(self, system):
        self.system = system
        self.handlers: dict[int, object] = {}
        #: PC -> KIND_* bits (see module constants), filled by ``build``.
        self.kinds: dict[int, int] = {}
        #: PC -> (word, instr, base latency), filled by ``build`` so
        #: superblock compilation can reuse the decode work.
        self.meta: dict[int, tuple] = {}
        program = system.program
        self.text_lo = program.text_base
        self.text_hi = program.text_base + 4 * len(program.text)
        self._read_word, self._write_word = _word_accessors(system.memory)

    def invalidate(self, addr: int) -> None:
        """Drop the predecoded handler for the text word at ``addr``
        (self-modifying code overwrote it; the next execution of that
        PC re-fetches and re-predecodes).  Subclasses extend this to
        drop any fused structure covering the word."""
        self.handlers.pop(addr & ~3, None)

    # ------------------------------------------------------------------

    def build(self, pc: int):
        """Decode the word at ``pc`` and install its handler.

        Raises exactly what the reference fetch/decode would raise
        (``MemoryFault`` on unmapped/misaligned PCs, the decoder's
        ``SimulationError`` on bad words); callers wrap errors the
        same way ``CpuState.step`` does.
        """
        system = self.system
        word = system.memory.read_word(pc)
        instr = _DECODE_CACHE.get(word)
        if instr is None:
            instr = decode(word)
            _DECODE_CACHE[word] = instr
        instr_class = instr.instr_class
        latency = system.core_timing.config.base_latency(instr_class)
        iface = system.interface
        policy = (iface.cfgr.policy(instr_class)
                  if iface is not None else ForwardPolicy.IGNORE)
        self.meta[pc] = (word, instr, latency)

        handler = None
        if policy == ForwardPolicy.IGNORE:
            op = instr.op
            if op == Op.FORMAT3_ALU and instr.opcode not in _SPECIAL_ALU:
                valfn = _SIMPLE_ALU.get(instr.opcode)
                if valfn is not None:
                    handler = self._make_alu_simple(pc, instr, valfn,
                                                    latency)
                else:
                    handler = self._make_alu_full(pc, instr, latency)
            elif op == Op.FORMAT3_MEM:
                if instr.opcode in _FUSED_LOADS:
                    handler = self._make_load(pc, instr, latency)
                elif instr.opcode in _FUSED_STORES:
                    handler = self._make_store(pc, instr, latency)
            elif op == Op.CALL:
                handler = self._make_call(pc, instr, latency)
            elif op == Op.FORMAT2:
                if instr.opcode == Op2.SETHI:
                    handler = self._make_sethi(pc, instr, latency)
                elif instr.opcode == Op2.BICC:
                    handler = self._make_branch(pc, instr, latency)
        else:
            op = instr.op
            if op == Op.FORMAT3_ALU and instr.opcode not in _SPECIAL_ALU:
                valfn = _SIMPLE_ALU.get(instr.opcode)
                if valfn is not None:
                    handler = self._make_alu_simple_fwd(pc, word, instr,
                                                        valfn, latency)
                else:
                    handler = self._make_alu_full_fwd(pc, word, instr,
                                                      latency)
            elif op == Op.FORMAT3_MEM:
                if instr.opcode in _FUSED_LOADS:
                    handler = self._make_load_fwd(pc, word, instr,
                                                  latency)
                elif instr.opcode in _FUSED_STORES:
                    handler = self._make_store_fwd(pc, word, instr,
                                                   latency)
            elif op == Op.CALL:
                handler = self._make_call_fwd(pc, word, instr, latency)
            elif op == Op.FORMAT2:
                if instr.opcode == Op2.SETHI:
                    handler = self._make_sethi_fwd(pc, word, instr,
                                                   latency)
                elif instr.opcode == Op2.BICC:
                    handler = self._make_branch_fwd(pc, word, instr,
                                                    latency)
        if handler is None:
            handler = self._make_generic(pc, word, instr)
            kind = KIND_GENERIC
        else:
            kind = (0 if policy == ForwardPolicy.IGNORE
                    else KIND_FORWARDED)
            if (instr.is_store or instr.op == Op.CALL
                    or (instr.op == Op.FORMAT2
                        and instr.opcode == Op2.BICC)):
                kind |= KIND_TERMINAL
        self.kinds[pc] = kind
        self.handlers[pc] = handler
        return handler

    # ------------------------------------------------------------------
    # Closure factories.  Each captures only objects that are stable
    # across restore_state (the cpu/timing/interface *owners*, bound
    # methods of in-place-mutated collaborators) plus per-PC statics.

    def _context(self):
        system = self.system
        cpu = system.cpu
        timing = system.core_timing
        regs = cpu.regs
        return (cpu, timing, system.interface, regs.read, regs.write,
                regs.physical_index, timing.icache.read,
                system.bus.line_refill)

    def _make_alu_simple(self, pc, instr, valfn, latency):
        (cpu, timing, iface, regs_read, regs_write, phys,
         icache_read, refill) = self._context()
        rs1, rs2, rd = instr.rs1, instr.rs2, instr.rd
        use_imm = instr.use_imm
        imm = instr.imm & MASK32

        def handler(now):
            a = regs_read(rs1)
            b = imm if use_imm else regs_read(rs2)
            regs_write(rd, valfn(a, b))
            npc = cpu.npc
            cpu.pc = npc
            cpu.npc = (npc + 4) & MASK32
            cpu.instret += 1
            ts = timing.stats
            ts.instructions += 1
            now = int(now)
            if not icache_read(pc):
                done = refill(now, "core-ifetch")
                ts.icache_stall += done - now
                now = done
            base = latency
            dest = timing._pending_load_dest
            if dest > 0 and (phys(rs1) == dest
                             or (not use_imm and phys(rs2) == dest)):
                base += 1
                ts.interlock_stall += 1
            timing._pending_load_dest = -1
            ts.base_cycles += base
            now += base
            ts.cycles = now
            if iface is not None:
                s = iface.stats
                s.committed += 1
                s.ignored += 1
            return now

        return handler

    def _make_alu_full(self, pc, instr, latency):
        (cpu, timing, iface, regs_read, regs_write, phys,
         icache_read, refill) = self._context()
        rs1, rs2, rd = instr.rs1, instr.rs2, instr.rd
        use_imm = instr.use_imm
        imm = instr.imm & MASK32
        op3 = instr.opcode

        def handler(now):
            a = regs_read(rs1)
            b = imm if use_imm else regs_read(rs2)
            alu = execute_alu(op3, a, b, carry=cpu.codes.c, y=cpu.y)
            regs_write(rd, alu.value)
            if alu.codes is not None:
                cpu.codes = alu.codes
            if alu.y is not None:
                cpu.y = alu.y
            npc = cpu.npc
            cpu.pc = npc
            cpu.npc = (npc + 4) & MASK32
            cpu.instret += 1
            ts = timing.stats
            ts.instructions += 1
            now = int(now)
            if not icache_read(pc):
                done = refill(now, "core-ifetch")
                ts.icache_stall += done - now
                now = done
            base = latency
            dest = timing._pending_load_dest
            if dest > 0 and (phys(rs1) == dest
                             or (not use_imm and phys(rs2) == dest)):
                base += 1
                ts.interlock_stall += 1
            timing._pending_load_dest = -1
            ts.base_cycles += base
            now += base
            ts.cycles = now
            if iface is not None:
                s = iface.stats
                s.committed += 1
                s.ignored += 1
            return now

        return handler

    def _make_load(self, pc, instr, latency):
        (cpu, timing, iface, regs_read, regs_write, phys,
         icache_read, refill) = self._context()
        rs1, rs2, rd = instr.rs1, instr.rs2, instr.rd
        use_imm = instr.use_imm
        imm = instr.imm & MASK32
        op3 = instr.opcode
        dcache_read = timing.dcache.read
        memory = self.system.memory
        read_word = self._read_word
        read_byte = memory.read_byte
        read_half = memory.read_half

        if op3 == Op3Mem.LD:
            loadfn = read_word
        elif op3 == Op3Mem.LDUB:
            loadfn = read_byte
        elif op3 == Op3Mem.LDSB:
            def loadfn(addr):
                raw = read_byte(addr)
                return (raw - 0x100 if raw & 0x80 else raw) & MASK32
        elif op3 == Op3Mem.LDUH:
            loadfn = read_half
        else:  # LDSH
            def loadfn(addr):
                raw = read_half(addr)
                return (raw - 0x10000 if raw & 0x8000 else raw) & MASK32

        def handler(now):
            a = regs_read(rs1)
            b = imm if use_imm else regs_read(rs2)
            addr = (a + b) & MASK32
            value = loadfn(addr)
            regs_write(rd, value)
            npc = cpu.npc
            cpu.pc = npc
            cpu.npc = (npc + 4) & MASK32
            cpu.instret += 1
            ts = timing.stats
            ts.instructions += 1
            now = int(now)
            if not icache_read(pc):
                done = refill(now, "core-ifetch")
                ts.icache_stall += done - now
                now = done
            base = latency
            dest = timing._pending_load_dest
            if dest > 0 and (phys(rs1) == dest
                             or (not use_imm and phys(rs2) == dest)):
                base += 1
                ts.interlock_stall += 1
            timing._pending_load_dest = phys(rd)
            ts.base_cycles += base
            now += base
            if not dcache_read(addr):
                done = refill(now, "core-dcache")
                ts.dcache_stall += done - now
                now = done
            ts.cycles = now
            if iface is not None:
                s = iface.stats
                s.committed += 1
                s.ignored += 1
            return now

        return handler

    def _make_store(self, pc, instr, latency):
        (cpu, timing, iface, regs_read, regs_write, phys,
         icache_read, refill) = self._context()
        rs1, rs2, rd = instr.rs1, instr.rs2, instr.rd
        use_imm = instr.use_imm
        imm = instr.imm & MASK32
        op3 = instr.opcode
        dcache_write = timing.dcache.write
        sb_push = timing.store_buffer.push
        memory = self.system.memory
        if op3 == Op3Mem.ST:
            storefn = self._write_word
        elif op3 == Op3Mem.STB:
            storefn = memory.write_byte
        else:  # STH
            storefn = memory.write_half
        text_lo, text_hi = self.text_lo, self.text_hi
        invalidate = self.invalidate

        def handler(now):
            a = regs_read(rs1)
            b = imm if use_imm else regs_read(rs2)
            addr = (a + b) & MASK32
            value = regs_read(rd)
            storefn(addr, value)
            if text_lo <= addr < text_hi:
                # Self-modifying code: re-predecode the touched word.
                invalidate(addr)
            npc = cpu.npc
            cpu.pc = npc
            cpu.npc = (npc + 4) & MASK32
            cpu.instret += 1
            ts = timing.stats
            ts.instructions += 1
            now = int(now)
            if not icache_read(pc):
                done = refill(now, "core-ifetch")
                ts.icache_stall += done - now
                now = done
            base = latency
            dest = timing._pending_load_dest
            if dest > 0 and (phys(rs1) == dest
                             or (not use_imm and phys(rs2) == dest)
                             or phys(rd) == dest):
                base += 1
                ts.interlock_stall += 1
            timing._pending_load_dest = -1
            ts.base_cycles += base
            now += base
            dcache_write(addr)
            proceed = sb_push(now)
            ts.store_stall += proceed - now
            now = proceed
            ts.cycles = now
            if iface is not None:
                s = iface.stats
                s.committed += 1
                s.ignored += 1
            return now

        return handler

    def _make_branch(self, pc, instr, latency):
        (cpu, timing, iface, _regs_read, _regs_write, _phys,
         icache_read, refill) = self._context()
        cond_eval = _COND_EVAL[instr.cond]
        target = (pc + 4 * instr.disp) & MASK32
        annul = instr.annul
        annul_taken = instr.annul and instr.cond == Cond.BA

        def handler(now):
            if cond_eval(cpu.codes):
                if annul_taken:
                    cpu._annul_next = True
                npc = cpu.npc
                cpu.pc = npc
                cpu.npc = target
            else:
                if annul:
                    cpu._annul_next = True
                npc = cpu.npc
                cpu.pc = npc
                cpu.npc = (npc + 4) & MASK32
            cpu.instret += 1
            ts = timing.stats
            ts.instructions += 1
            now = int(now)
            if not icache_read(pc):
                done = refill(now, "core-ifetch")
                ts.icache_stall += done - now
                now = done
            # Branches carry no source physical registers, so the
            # load-use interlock can never fire; just clear it.
            timing._pending_load_dest = -1
            ts.base_cycles += latency
            now += latency
            ts.cycles = now
            if iface is not None:
                s = iface.stats
                s.committed += 1
                s.ignored += 1
            return now

        return handler

    def _make_sethi(self, pc, instr, latency):
        (cpu, timing, iface, _regs_read, regs_write, _phys,
         icache_read, refill) = self._context()
        rd = instr.rd
        value = (instr.imm << 10) & MASK32

        def handler(now):
            regs_write(rd, value)
            npc = cpu.npc
            cpu.pc = npc
            cpu.npc = (npc + 4) & MASK32
            cpu.instret += 1
            ts = timing.stats
            ts.instructions += 1
            now = int(now)
            if not icache_read(pc):
                done = refill(now, "core-ifetch")
                ts.icache_stall += done - now
                now = done
            timing._pending_load_dest = -1
            ts.base_cycles += latency
            now += latency
            ts.cycles = now
            if iface is not None:
                s = iface.stats
                s.committed += 1
                s.ignored += 1
            return now

        return handler

    def _make_call(self, pc, instr, latency):
        (cpu, timing, iface, _regs_read, regs_write, _phys,
         icache_read, refill) = self._context()
        target = (pc + 4 * instr.disp) & MASK32

        def handler(now):
            regs_write(15, pc)  # %o7 <- address of the call
            npc = cpu.npc
            cpu.pc = npc
            cpu.npc = target
            cpu.instret += 1
            ts = timing.stats
            ts.instructions += 1
            now = int(now)
            if not icache_read(pc):
                done = refill(now, "core-ifetch")
                ts.icache_stall += done - now
                now = done
            timing._pending_load_dest = -1
            ts.base_cycles += latency
            now += latency
            ts.cycles = now
            if iface is not None:
                s = iface.stats
                s.committed += 1
                s.ignored += 1
            return now

        return handler

    # ------------------------------------------------------------------
    # Forwarded variants: same fused functional/timing work, plus a
    # fresh CommitRecord — field-for-field what ``_execute`` builds,
    # fresh because packets retain their record — handed to a fused
    # commit tail (``_make_forward``) that replays ``on_commit``'s
    # body with the policy, ack mode and static DECODE bits resolved
    # at build time.  The dynamic machinery (FIFO occupancy,
    # ``_service``, trap latching) stays on the original code.

    def _make_forward(self, pc, word, instr, klass):
        """Fused equivalent of ``on_commit`` + ``from_commit`` for a
        known-forwarded, never-annulled instruction.  Telemetry sinks
        are structurally ``None`` here: the fast loop is only entered
        with tracing and metrics disabled."""
        iface = self.system.interface
        policy = iface.cfgr.policy(klass)
        best_effort = policy == ForwardPolicy.BEST_EFFORT
        # FLEX never takes this path (it is in ``_SPECIAL_ALU``), so
        # the READ_STATUS clause of the reference ack rule is moot.
        needs_ack = (policy == ForwardPolicy.ALWAYS_ACK
                     or iface.config.precise_exceptions)
        sync = iface.config.sync_fabric_cycles
        fifo = iface.fifo
        is_full = fifo.is_full
        time_until_space = fifo.time_until_space
        push = fifo.push
        service = iface._service
        base_decode = (int(instr.is_load)
                       | (int(instr.is_store) << 1)
                       | (int(instr.use_imm) << 2)
                       | ((instr.opf & 0x1FF) << 3))
        if instr.is_load or instr.is_store:
            base_decode |= (instr.access_size() & 0xF) << 12

        def forward(record, now):
            stats = iface.stats
            stats.committed += 1
            if is_full(now):
                if best_effort:
                    stats.dropped += 1
                    fifo.stats.dropped += 1
                    return now
                wait = time_until_space(now)
                stats.fifo_stall_cycles += wait
                fifo.stats.full_stall_cycles += wait
                now += wait
            packet = TracePacket(
                pc=pc, inst=word, addr=record.addr, res=record.result,
                srcv1=record.srcv1, srcv2=record.srcv2,
                cond=record.cond, branch=record.branch_taken,
                opcode=klass,
                decode=base_decode | (int(record.carry_before) << 16),
                extra=record.y_before, src1=record.src1_phys,
                src2=record.src2_phys, dest=record.dest_phys,
                record=record,
            )
            stats.forwarded += 1
            by_class = stats.forwarded_by_class
            by_class[klass] = by_class.get(klass, 0) + 1
            drain = service(packet, now)
            push(now, drain)
            if needs_ack:
                ack_at = drain + sync
                stats.ack_stall_cycles += ack_at - now
                now = ack_at
            return now

        return forward

    def _make_alu_simple_fwd(self, pc, word, instr, valfn, latency):
        (cpu, timing, iface, regs_read, regs_write, phys,
         icache_read, refill) = self._context()
        rs1, rs2, rd = instr.rs1, instr.rs2, instr.rd
        use_imm = instr.use_imm
        imm = instr.imm & MASK32
        klass = instr.instr_class
        forward = self._make_forward(pc, word, instr, klass)

        def handler(now):
            a = regs_read(rs1)
            b = imm if use_imm else regs_read(rs2)
            value = valfn(a, b)
            regs_write(rd, value)
            codes = cpu.codes
            record = CommitRecord(
                pc=pc, word=word, instr=instr, instr_class=klass,
                result=value, srcv1=a, srcv2=b, cond=codes.pack(),
                src1_phys=phys(rs1),
                src2_phys=0 if use_imm else phys(rs2),
                dest_phys=phys(rd),
                carry_before=codes.c, y_before=cpu.y,
            )
            npc = cpu.npc
            cpu.pc = npc
            cpu.npc = (npc + 4) & MASK32
            cpu.instret += 1
            ts = timing.stats
            ts.instructions += 1
            now = int(now)
            if not icache_read(pc):
                done = refill(now, "core-ifetch")
                ts.icache_stall += done - now
                now = done
            base = latency
            dest = timing._pending_load_dest
            if dest > 0 and (phys(rs1) == dest
                             or (not use_imm and phys(rs2) == dest)):
                base += 1
                ts.interlock_stall += 1
            timing._pending_load_dest = -1
            ts.base_cycles += base
            now += base
            ts.cycles = now
            return forward(record, now)

        return handler

    def _make_alu_full_fwd(self, pc, word, instr, latency):
        (cpu, timing, iface, regs_read, regs_write, phys,
         icache_read, refill) = self._context()
        rs1, rs2, rd = instr.rs1, instr.rs2, instr.rd
        use_imm = instr.use_imm
        imm = instr.imm & MASK32
        op3 = instr.opcode
        klass = instr.instr_class
        forward = self._make_forward(pc, word, instr, klass)

        def handler(now):
            a = regs_read(rs1)
            b = imm if use_imm else regs_read(rs2)
            carry_before = cpu.codes.c
            y_before = cpu.y
            alu = execute_alu(op3, a, b, carry=carry_before, y=y_before)
            regs_write(rd, alu.value)
            if alu.codes is not None:
                cpu.codes = alu.codes
            if alu.y is not None:
                cpu.y = alu.y
            record = CommitRecord(
                pc=pc, word=word, instr=instr, instr_class=klass,
                result=alu.value, srcv1=a, srcv2=b,
                cond=cpu.codes.pack(),
                src1_phys=phys(rs1),
                src2_phys=0 if use_imm else phys(rs2),
                dest_phys=phys(rd),
                carry_before=carry_before, y_before=y_before,
            )
            npc = cpu.npc
            cpu.pc = npc
            cpu.npc = (npc + 4) & MASK32
            cpu.instret += 1
            ts = timing.stats
            ts.instructions += 1
            now = int(now)
            if not icache_read(pc):
                done = refill(now, "core-ifetch")
                ts.icache_stall += done - now
                now = done
            base = latency
            dest = timing._pending_load_dest
            if dest > 0 and (phys(rs1) == dest
                             or (not use_imm and phys(rs2) == dest)):
                base += 1
                ts.interlock_stall += 1
            timing._pending_load_dest = -1
            ts.base_cycles += base
            now += base
            ts.cycles = now
            return forward(record, now)

        return handler

    def _make_load_fwd(self, pc, word, instr, latency):
        (cpu, timing, iface, regs_read, regs_write, phys,
         icache_read, refill) = self._context()
        rs1, rs2, rd = instr.rs1, instr.rs2, instr.rd
        use_imm = instr.use_imm
        imm = instr.imm & MASK32
        op3 = instr.opcode
        klass = instr.instr_class
        forward = self._make_forward(pc, word, instr, klass)
        dcache_read = timing.dcache.read
        memory = self.system.memory
        read_word = self._read_word
        read_byte = memory.read_byte
        read_half = memory.read_half

        if op3 == Op3Mem.LD:
            loadfn = read_word
        elif op3 == Op3Mem.LDUB:
            loadfn = read_byte
        elif op3 == Op3Mem.LDSB:
            def loadfn(addr):
                raw = read_byte(addr)
                return (raw - 0x100 if raw & 0x80 else raw) & MASK32
        elif op3 == Op3Mem.LDUH:
            loadfn = read_half
        else:  # LDSH
            def loadfn(addr):
                raw = read_half(addr)
                return (raw - 0x10000 if raw & 0x8000 else raw) & MASK32

        def handler(now):
            a = regs_read(rs1)
            b = imm if use_imm else regs_read(rs2)
            addr = (a + b) & MASK32
            value = loadfn(addr)
            regs_write(rd, value)
            codes = cpu.codes
            record = CommitRecord(
                pc=pc, word=word, instr=instr, instr_class=klass,
                addr=addr, result=value, srcv1=a, srcv2=b,
                cond=codes.pack(),
                src1_phys=phys(rs1),
                src2_phys=0 if use_imm else phys(rs2),
                dest_phys=phys(rd),
                carry_before=codes.c, y_before=cpu.y,
            )
            npc = cpu.npc
            cpu.pc = npc
            cpu.npc = (npc + 4) & MASK32
            cpu.instret += 1
            ts = timing.stats
            ts.instructions += 1
            now = int(now)
            if not icache_read(pc):
                done = refill(now, "core-ifetch")
                ts.icache_stall += done - now
                now = done
            base = latency
            dest = timing._pending_load_dest
            if dest > 0 and (phys(rs1) == dest
                             or (not use_imm and phys(rs2) == dest)):
                base += 1
                ts.interlock_stall += 1
            timing._pending_load_dest = phys(rd)
            ts.base_cycles += base
            now += base
            if not dcache_read(addr):
                done = refill(now, "core-dcache")
                ts.dcache_stall += done - now
                now = done
            ts.cycles = now
            return forward(record, now)

        return handler

    def _make_store_fwd(self, pc, word, instr, latency):
        (cpu, timing, iface, regs_read, regs_write, phys,
         icache_read, refill) = self._context()
        rs1, rs2, rd = instr.rs1, instr.rs2, instr.rd
        use_imm = instr.use_imm
        imm = instr.imm & MASK32
        op3 = instr.opcode
        klass = instr.instr_class
        forward = self._make_forward(pc, word, instr, klass)
        dcache_write = timing.dcache.write
        sb_push = timing.store_buffer.push
        memory = self.system.memory
        if op3 == Op3Mem.ST:
            storefn = self._write_word
        elif op3 == Op3Mem.STB:
            storefn = memory.write_byte
        else:  # STH
            storefn = memory.write_half
        text_lo, text_hi = self.text_lo, self.text_hi
        invalidate = self.invalidate

        def handler(now):
            a = regs_read(rs1)
            b = imm if use_imm else regs_read(rs2)
            addr = (a + b) & MASK32
            value = regs_read(rd)
            storefn(addr, value)
            if text_lo <= addr < text_hi:
                # Self-modifying code: re-predecode the touched word.
                invalidate(addr)
            codes = cpu.codes
            record = CommitRecord(
                pc=pc, word=word, instr=instr, instr_class=klass,
                addr=addr, result=value, srcv1=a, srcv2=b,
                cond=codes.pack(),
                src1_phys=phys(rs1),
                src2_phys=0 if use_imm else phys(rs2),
                dest_phys=phys(rd),
                carry_before=codes.c, y_before=cpu.y,
            )
            npc = cpu.npc
            cpu.pc = npc
            cpu.npc = (npc + 4) & MASK32
            cpu.instret += 1
            ts = timing.stats
            ts.instructions += 1
            now = int(now)
            if not icache_read(pc):
                done = refill(now, "core-ifetch")
                ts.icache_stall += done - now
                now = done
            base = latency
            dest = timing._pending_load_dest
            if dest > 0 and (phys(rs1) == dest
                             or (not use_imm and phys(rs2) == dest)
                             or phys(rd) == dest):
                base += 1
                ts.interlock_stall += 1
            timing._pending_load_dest = -1
            ts.base_cycles += base
            now += base
            dcache_write(addr)
            proceed = sb_push(now)
            ts.store_stall += proceed - now
            now = proceed
            ts.cycles = now
            return forward(record, now)

        return handler

    def _make_branch_fwd(self, pc, word, instr, latency):
        (cpu, timing, iface, _regs_read, _regs_write, _phys,
         icache_read, refill) = self._context()
        cond_eval = _COND_EVAL[instr.cond]
        target = (pc + 4 * instr.disp) & MASK32
        annul = instr.annul
        annul_taken = instr.annul and instr.cond == Cond.BA
        klass = instr.instr_class
        forward = self._make_forward(pc, word, instr, klass)

        def handler(now):
            codes = cpu.codes
            taken = cond_eval(codes)
            record = CommitRecord(
                pc=pc, word=word, instr=instr, instr_class=klass,
                addr=target, branch_taken=taken, cond=codes.pack(),
                carry_before=codes.c, y_before=cpu.y,
            )
            if taken:
                if annul_taken:
                    cpu._annul_next = True
                npc = cpu.npc
                cpu.pc = npc
                cpu.npc = target
            else:
                if annul:
                    cpu._annul_next = True
                npc = cpu.npc
                cpu.pc = npc
                cpu.npc = (npc + 4) & MASK32
            cpu.instret += 1
            ts = timing.stats
            ts.instructions += 1
            now = int(now)
            if not icache_read(pc):
                done = refill(now, "core-ifetch")
                ts.icache_stall += done - now
                now = done
            timing._pending_load_dest = -1
            ts.base_cycles += latency
            now += latency
            ts.cycles = now
            return forward(record, now)

        return handler

    def _make_sethi_fwd(self, pc, word, instr, latency):
        (cpu, timing, iface, _regs_read, regs_write, phys,
         icache_read, refill) = self._context()
        rd = instr.rd
        value = (instr.imm << 10) & MASK32
        klass = instr.instr_class
        forward = self._make_forward(pc, word, instr, klass)

        def handler(now):
            regs_write(rd, value)
            codes = cpu.codes
            record = CommitRecord(
                pc=pc, word=word, instr=instr, instr_class=klass,
                result=value, cond=codes.pack(), dest_phys=phys(rd),
                carry_before=codes.c, y_before=cpu.y,
            )
            npc = cpu.npc
            cpu.pc = npc
            cpu.npc = (npc + 4) & MASK32
            cpu.instret += 1
            ts = timing.stats
            ts.instructions += 1
            now = int(now)
            if not icache_read(pc):
                done = refill(now, "core-ifetch")
                ts.icache_stall += done - now
                now = done
            timing._pending_load_dest = -1
            ts.base_cycles += latency
            now += latency
            ts.cycles = now
            return forward(record, now)

        return handler

    def _make_call_fwd(self, pc, word, instr, latency):
        (cpu, timing, iface, _regs_read, regs_write, phys,
         icache_read, refill) = self._context()
        target = (pc + 4 * instr.disp) & MASK32
        klass = instr.instr_class
        forward = self._make_forward(pc, word, instr, klass)

        def handler(now):
            regs_write(15, pc)  # %o7 <- address of the call
            codes = cpu.codes
            record = CommitRecord(
                pc=pc, word=word, instr=instr, instr_class=klass,
                addr=target, result=pc, branch_taken=True,
                cond=codes.pack(), dest_phys=phys(15),
                carry_before=codes.c, y_before=cpu.y,
            )
            npc = cpu.npc
            cpu.pc = npc
            cpu.npc = target
            cpu.instret += 1
            ts = timing.stats
            ts.instructions += 1
            now = int(now)
            if not icache_read(pc):
                done = refill(now, "core-ifetch")
                ts.icache_stall += done - now
                now = done
            timing._pending_load_dest = -1
            ts.base_cycles += latency
            now += latency
            ts.cycles = now
            return forward(record, now)

        return handler

    def _make_generic(self, pc, word, instr):
        """Full-fidelity path minus fetch/decode: forwarded classes,
        rare opcodes, and anything with cross-cutting side effects."""
        system = self.system
        cpu = system.cpu
        execute = cpu._execute
        advance = system.core_timing.advance
        iface = system.interface
        on_commit = iface.on_commit if iface is not None else None
        is_store = instr.is_store
        double = instr.opcode == Op3Mem.STD if is_store else False
        text_lo, text_hi = self.text_lo, self.text_hi
        invalidate = self.invalidate

        def handler(now):
            record = execute(pc, word, instr)
            cpu.instret += 1
            if is_store:
                addr = record.addr
                if text_lo <= addr < text_hi:
                    invalidate(addr)
                    if double:
                        invalidate(addr + 4)
            now = advance(record, int(now))
            if on_commit is not None:
                now = on_commit(record, now)
            return now

        return handler


#: Upper bound on superblock length, in instructions — long enough to
#: cover real straight-line runs, short enough that discovery stays
#: cheap and a block nearly always fits the dispatcher's headroom.
MAX_BLOCK = 64

#: ``SuperblockTable.blocks`` entry meaning "no superblock starts
#: here" (fewer than two fusable instructions), so the dispatcher
#: takes the per-PC handler without re-running discovery.
NOBLOCK = object()


#: Process-wide source -> code-object memo for compiled superblocks.
#: Sources embed PC/word/latency literals, so two identical program
#: placements (every re-run of one workload in a campaign or sweep)
#: compile each distinct block exactly once per process.
_BLOCK_CODE_CACHE: dict[str, object] = {}


class SuperblockTable(HandlerTable):
    """A :class:`HandlerTable` that also fuses straight-line runs into
    one *compiled superhandler* per block.

    Discovery walks forward from an entry PC through the predecoded
    kinds: plain linear steps extend the block; stores and CTIs
    (branches, calls) end it *inclusively* — a store may invalidate
    predecoded text and a CTI redirects control, so nothing may follow
    either within one dispatch; generic-path opcodes end it
    *exclusively*.  Each block is then compiled (``compile``/``exec``
    of generated Python) into a single run function that inlines every
    member's functional and timing work with the per-PC statics as
    literals, and batches the bookkeeping the per-PC closures repeat —
    pc/npc/instret, instruction and cycle counters, the committed/
    ignored tallies, and the load-interlock register, which lives in a
    local for the whole block.

    Fidelity contract (the differential and golden tests enforce it):

    * member order, arithmetic, cache/bus/store-buffer charging and
      CommitRecord construction are transcribed from the per-PC
      closures verbatim, so results are bit-identical;
    * after every *forwarded* member the run re-checks
      ``pending_trap`` exactly where the dispatch loop would, and
      before every member after the first it re-checks the cycle
      budget exactly where the reference loop does, early-outing with
      all bookkeeping settled;
    * a member that faults mid-block raises exactly the reference
      exception after a fix-up that settles the completed prefix
      (every fused closure faults before touching pc/instret/timing,
      so the prefix is precisely the completed members).

    The dispatcher (:func:`~repro.engine.fastloop.run_superblock_loop`)
    only enters a block when the pipeline is in sequential lockstep
    (``npc == pc + 4``), no annulment is pending, and the whole block
    fits below the next instret boundary (watchdog limit, deadline
    stride, checkpoint, scheduled fault), so instruction-granular
    semantics hold by construction inside those windows.
    """

    def __init__(self, system):
        super().__init__(system)
        #: entry PC -> ``(length, run)`` or NOBLOCK.
        self.blocks: dict[int, object] = {}
        #: text word -> entry PCs of blocks whose run covers it.
        self._covered: dict[int, set] = {}

    def invalidate(self, addr: int) -> None:
        word = addr & ~3
        self.handlers.pop(word, None)
        # Any block compiled over the stale word is stale too; drop it
        # so the next dispatch re-discovers.  (Leftover coverage
        # entries for already-dropped blocks are harmless — the pops
        # are idempotent.)
        for start in self._covered.pop(word, ()):
            self.blocks.pop(start, None)

    def block_at(self, pc: int):
        """Discover, compile and memoise the superblock at ``pc``.

        Returns ``(length, run)`` or :data:`NOBLOCK`.  Fetch/decode
        errors at the entry PC propagate exactly as per-PC dispatch
        would raise them; lookahead errors just end the block early
        (the per-PC path surfaces them when and if control actually
        reaches the bad word).
        """
        handlers = self.handlers
        kinds = self.kinds
        meta = self.meta
        members: list = []
        words: list = []
        addr = pc
        while len(members) < MAX_BLOCK:
            if addr not in handlers:
                if addr == pc:
                    self.build(addr)
                else:
                    try:
                        self.build(addr)
                    except Exception:
                        # Unmapped, misaligned or undecodable word in
                        # the lookahead (e.g. data past the last
                        # instruction): end the block early; per-PC
                        # dispatch surfaces the error if control ever
                        # actually reaches this address.
                        break
            kind = kinds[addr]
            if kind & KIND_GENERIC:
                break
            word, instr, latency = meta[addr]
            members.append((addr, word, instr, kind, latency))
            words.append(addr)
            if kind & KIND_TERMINAL:
                break
            addr = (addr + 4) & MASK32
        if len(members) < 2:
            entry = NOBLOCK
            words = [pc]
        else:
            entry = (len(members), self._compile_block(pc, members))
        for word in words:
            self._covered.setdefault(word, set()).add(pc)
        self.blocks[pc] = entry
        return entry

    # ------------------------------------------------------------------
    # Superblock compilation.

    def _compile_block(self, pc, members):
        """Generate, compile and bind the block's run function."""
        system = self.system
        iface = system.interface
        monitored = iface is not None
        check_trap = monitored and system.config.stop_on_trap
        cpu = system.cpu
        timing = system.core_timing
        regs = cpu.regs
        ns = {
            "cpu": cpu,
            "T": timing,
            "IF": iface,
            "R": regs.read,
            "W": regs.write,
            "P": regs.physical_index,
            "IC": timing.icache.read,
            "DC": timing.dcache.read,
            "DCW": timing.dcache.write,
            "SBP": timing.store_buffer.push,
            "RF": system.bus.line_refill,
            "CR": CommitRecord,
            "EA": execute_alu,
            "INV": self.invalidate,
        }
        n = len(members)
        base = pc
        end_pc = (base + 4 * n) & MASK32
        last_kind = members[-1][3]
        terminal_cti = bool(last_kind & KIND_TERMINAL
                            and not members[-1][2].is_store)

        lines = [
            "def run(now, max_c):",
            "    pld = T._pending_load_dest",
            "    ts = T.stats",
            "    completed = 0",
            "    bc = 0",
            "    cyc = now",
        ]
        if monitored:
            lines.append("    ign = 0")
        lines.append("    try:")
        lines.append("        while True:")
        for index, member in enumerate(members):
            self._emit_member(lines, ns, index, member, monitored)
            lines.append(f"            completed = {index + 1}")
            if index + 1 < n:
                if check_trap and member[3] & KIND_FORWARDED:
                    lines.append("            if IF.pending_trap "
                                 "is not None: break")
                lines.append("            if now >= max_c: break")
        lines.append("            break")

        fixup = [
            f"cpu.pc = ({base} + 4 * completed) & {MASK32}",
            f"cpu.npc = ({base + 4} + 4 * completed) & {MASK32}",
            "cpu.instret += completed",
            "ts.instructions += completed",
            "ts.base_cycles += bc",
            "ts.cycles = cyc",
        ]
        if monitored:
            fixup += [
                "if ign:",
                "    s = IF.stats",
                "    s.committed += ign",
                "    s.ignored += ign",
            ]
        lines.append("    except BaseException:")
        lines.append("        if completed:")
        lines.extend("            " + line for line in fixup)
        lines.append("        T._pending_load_dest = pld")
        lines.append("        raise")

        if terminal_cti:
            # The CTI member wrote pc/npc itself when it completed.
            lines.append(f"    if completed != {n}:")
            lines.append(f"        cpu.pc = ({base} + 4 * completed)"
                         f" & {MASK32}")
            lines.append(f"        cpu.npc = ({base + 4} + 4 * "
                         f"completed) & {MASK32}")
        else:
            lines.append(f"    if completed == {n}:")
            lines.append(f"        cpu.pc = {end_pc}")
            lines.append(f"        cpu.npc = {(end_pc + 4) & MASK32}")
            lines.append("    else:")
            lines.append(f"        cpu.pc = ({base} + 4 * completed)"
                         f" & {MASK32}")
            lines.append(f"        cpu.npc = ({base + 4} + 4 * "
                         f"completed) & {MASK32}")
        lines.append("    cpu.instret += completed")
        lines.append("    ts.instructions += completed")
        lines.append("    ts.base_cycles += bc")
        lines.append("    ts.cycles = cyc")
        lines.append("    T._pending_load_dest = pld")
        if monitored:
            lines.append("    if ign:")
            lines.append("        s = IF.stats")
            lines.append("        s.committed += ign")
            lines.append("        s.ignored += ign")
        lines.append("    return now")

        source = "\n".join(lines)
        code = _BLOCK_CODE_CACHE.get(source)
        if code is None:
            code = compile(source, f"<superblock {pc:#x}>", "exec")
            _BLOCK_CODE_CACHE[source] = code
        exec(code, ns)
        return ns["run"]

    def _emit_member(self, lines, ns, index, member, monitored):
        """Append one member's inlined body (transcribed from the
        per-PC closure of the same shape) at while-body indentation."""
        addr, word, instr, kind, latency = member
        forwarded = bool(kind & KIND_FORWARDED)
        emit = lines.append
        ind = "            "
        k = index
        rs1, rs2, rd = instr.rs1, instr.rs2, instr.rd
        use_imm = instr.use_imm
        imm = instr.imm & MASK32
        op = instr.op
        is_branch = op == Op.FORMAT2 and instr.opcode == Op2.BICC
        is_call = op == Op.CALL
        is_sethi = op == Op.FORMAT2 and instr.opcode == Op2.SETHI
        is_load = instr.is_load
        is_store = instr.is_store
        npc = (addr + 4) & MASK32

        if forwarded:
            klass = instr.instr_class
            ns[f"I{k}"] = instr
            ns[f"K{k}"] = klass
            ns[f"F{k}"] = self._make_forward(addr, word, instr, klass)

        def emit_ifetch():
            emit(ind + "now = int(now)")
            emit(ind + f"if not IC({addr}):")
            emit(ind + "    done = RF(now, 'core-ifetch')")
            emit(ind + "    ts.icache_stall += done - now")
            emit(ind + "    now = done")

        def emit_operands():
            emit(ind + f"a = R({rs1})")
            emit(ind + (f"b = {imm}" if use_imm else f"b = R({rs2})"))

        def interlock_cond(include_rd=False):
            terms = [f"P({rs1}) == pld"]
            if not use_imm:
                terms.append(f"P({rs2}) == pld")
            if include_rd:
                terms.append(f"P({rd}) == pld")
            return " or ".join(terms)

        def emit_interlock(include_rd=False, load_dest=False):
            emit(ind + f"base = {latency}")
            emit(ind + f"if pld > 0 and ({interlock_cond(include_rd)}):")
            emit(ind + "    base += 1")
            emit(ind + "    ts.interlock_stall += 1")
            emit(ind + (f"pld = P({rd})" if load_dest else "pld = -1"))
            emit(ind + "bc += base")
            emit(ind + "now += base")

        def emit_flat_latency():
            emit(ind + "pld = -1")
            emit(ind + f"bc += {latency}")
            emit(ind + f"now += {latency}")

        def emit_commit():
            if forwarded:
                emit(ind + "cyc = now")
                emit(ind + f"now = F{k}(record, now)")
            else:
                emit(ind + "cyc = now")
                if monitored:
                    emit(ind + "ign += 1")

        if is_load:
            ns[f"L{k}"] = self._block_loadfn(instr.opcode)
            emit_operands()
            emit(ind + f"addr = (a + b) & {MASK32}")
            emit(ind + f"value = L{k}(addr)")
            emit(ind + f"W({rd}, value)")
            if forwarded:
                emit(ind + "codes = cpu.codes")
                emit(ind + f"record = CR(pc={addr}, "
                     f"word={word}, instr=I{k}, instr_class=K{k}, "
                     f"addr=addr, result=value, srcv1=a, srcv2=b, "
                     f"cond=codes.pack(), src1_phys=P({rs1}), "
                     f"src2_phys={0 if use_imm else f'P({rs2})'}, "
                     f"dest_phys=P({rd}), carry_before=codes.c, "
                     f"y_before=cpu.y)")
            emit_ifetch()
            emit_interlock(load_dest=True)
            emit(ind + "if not DC(addr):")
            emit(ind + "    done = RF(now, 'core-dcache')")
            emit(ind + "    ts.dcache_stall += done - now")
            emit(ind + "    now = done")
            emit_commit()
        elif is_store:
            ns[f"S{k}"] = self._block_storefn(instr.opcode)
            emit_operands()
            emit(ind + f"addr = (a + b) & {MASK32}")
            emit(ind + f"value = R({rd})")
            emit(ind + f"S{k}(addr, value)")
            emit(ind + f"if {self.text_lo} <= addr < {self.text_hi}:")
            emit(ind + "    INV(addr)")
            if forwarded:
                emit(ind + "codes = cpu.codes")
                emit(ind + f"record = CR(pc={addr}, "
                     f"word={word}, instr=I{k}, instr_class=K{k}, "
                     f"addr=addr, result=value, srcv1=a, srcv2=b, "
                     f"cond=codes.pack(), src1_phys=P({rs1}), "
                     f"src2_phys={0 if use_imm else f'P({rs2})'}, "
                     f"dest_phys=P({rd}), carry_before=codes.c, "
                     f"y_before=cpu.y)")
            emit_ifetch()
            emit_interlock(include_rd=True)
            emit(ind + "DCW(addr)")
            emit(ind + "proceed = SBP(now)")
            emit(ind + "ts.store_stall += proceed - now")
            emit(ind + "now = proceed")
            emit_commit()
        elif is_branch:
            ns[f"C{k}"] = _COND_EVAL[instr.cond]
            target = (addr + 4 * instr.disp) & MASK32
            annul = instr.annul
            annul_taken = instr.annul and instr.cond == Cond.BA
            if forwarded:
                emit(ind + "codes = cpu.codes")
                emit(ind + f"taken = C{k}(codes)")
                emit(ind + f"record = CR(pc={addr}, "
                     f"word={word}, instr=I{k}, instr_class=K{k}, "
                     f"addr={target}, branch_taken=taken, "
                     f"cond=codes.pack(), carry_before=codes.c, "
                     f"y_before=cpu.y)")
                emit(ind + "if taken:")
            else:
                emit(ind + f"if C{k}(cpu.codes):")
            if annul_taken:
                emit(ind + "    cpu._annul_next = True")
            emit(ind + f"    cpu.pc = {npc}")
            emit(ind + f"    cpu.npc = {target}")
            emit(ind + "else:")
            if annul:
                emit(ind + "    cpu._annul_next = True")
            emit(ind + f"    cpu.pc = {npc}")
            emit(ind + f"    cpu.npc = {(npc + 4) & MASK32}")
            emit_ifetch()
            emit_flat_latency()
            emit_commit()
        elif is_call:
            target = (addr + 4 * instr.disp) & MASK32
            if forwarded:
                emit(ind + f"W(15, {addr})")
                emit(ind + "codes = cpu.codes")
                emit(ind + f"record = CR(pc={addr}, "
                     f"word={word}, instr=I{k}, instr_class=K{k}, "
                     f"addr={target}, result={addr}, "
                     f"branch_taken=True, cond=codes.pack(), "
                     f"dest_phys=P(15), carry_before=codes.c, "
                     f"y_before=cpu.y)")
            else:
                emit(ind + f"W(15, {addr})")
            emit(ind + f"cpu.pc = {npc}")
            emit(ind + f"cpu.npc = {target}")
            emit_ifetch()
            emit_flat_latency()
            emit_commit()
        elif is_sethi:
            value = (imm << 10) & MASK32
            emit(ind + f"W({rd}, {value})")
            if forwarded:
                emit(ind + "codes = cpu.codes")
                emit(ind + f"record = CR(pc={addr}, "
                     f"word={word}, instr=I{k}, instr_class=K{k}, "
                     f"result={value}, cond=codes.pack(), "
                     f"dest_phys=P({rd}), carry_before=codes.c, "
                     f"y_before=cpu.y)")
            emit_ifetch()
            emit_flat_latency()
            emit_commit()
        else:
            # FORMAT3_ALU (simple or full).
            valfn = _SIMPLE_ALU.get(instr.opcode)
            emit_operands()
            if valfn is not None and not forwarded:
                ns[f"V{k}"] = valfn
                emit(ind + f"W({rd}, V{k}(a, b))")
            elif valfn is not None:
                ns[f"V{k}"] = valfn
                emit(ind + f"value = V{k}(a, b)")
                emit(ind + f"W({rd}, value)")
                emit(ind + "codes = cpu.codes")
                emit(ind + f"record = CR(pc={addr}, "
                     f"word={word}, instr=I{k}, instr_class=K{k}, "
                     f"result=value, srcv1=a, srcv2=b, "
                     f"cond=codes.pack(), src1_phys=P({rs1}), "
                     f"src2_phys={0 if use_imm else f'P({rs2})'}, "
                     f"dest_phys=P({rd}), carry_before=codes.c, "
                     f"y_before=cpu.y)")
            else:
                ns[f"O{k}"] = instr.opcode
                if forwarded:
                    emit(ind + "carry_before = cpu.codes.c")
                    emit(ind + "y_before = cpu.y")
                    emit(ind + f"alu = EA(O{k}, a, b, "
                         "carry=carry_before, y=y_before)")
                else:
                    emit(ind + f"alu = EA(O{k}, a, b, "
                         "carry=cpu.codes.c, y=cpu.y)")
                emit(ind + f"W({rd}, alu.value)")
                emit(ind + "if alu.codes is not None:")
                emit(ind + "    cpu.codes = alu.codes")
                emit(ind + "if alu.y is not None:")
                emit(ind + "    cpu.y = alu.y")
                if forwarded:
                    emit(ind + f"record = CR(pc={addr}, "
                         f"word={word}, instr=I{k}, instr_class=K{k}, "
                         f"result=alu.value, srcv1=a, srcv2=b, "
                         f"cond=cpu.codes.pack(), src1_phys=P({rs1}), "
                         f"src2_phys={0 if use_imm else f'P({rs2})'}, "
                         f"dest_phys=P({rd}), carry_before="
                         f"carry_before, y_before=y_before)")
            emit_ifetch()
            emit_interlock()
            emit_commit()

    def _block_loadfn(self, op3):
        memory = self.system.memory
        if op3 == Op3Mem.LD:
            return self._read_word
        if op3 == Op3Mem.LDUB:
            return memory.read_byte
        if op3 == Op3Mem.LDSB:
            read_byte = memory.read_byte

            def loadfn(addr):
                raw = read_byte(addr)
                return (raw - 0x100 if raw & 0x80 else raw) & MASK32

            return loadfn
        if op3 == Op3Mem.LDUH:
            return memory.read_half
        read_half = memory.read_half  # LDSH

        def loadfn(addr):
            raw = read_half(addr)
            return (raw - 0x10000 if raw & 0x8000 else raw) & MASK32

        return loadfn

    def _block_storefn(self, op3):
        memory = self.system.memory
        if op3 == Op3Mem.ST:
            return self._write_word
        if op3 == Op3Mem.STB:
            return memory.write_byte
        return memory.write_half  # STH
