"""Fast execution engine: predecoded step loop + parallel sweeps.

Three pieces:

* :mod:`repro.engine.predecode` / :mod:`repro.engine.fastloop` — the
  per-PC fused handler closures and the flattened hot loop behind
  ``engine="fast"`` (selected via ``SystemConfig.engine`` or the
  ``engine=`` argument of ``run_program``/``run``/``run_bounded``).
* :mod:`repro.engine.pool` / :mod:`repro.engine.supervisor` — the
  shared supervised process-pool fan-out used by fault-injection
  campaigns and sweeps alike: per-task deadlines, worker-death
  recovery, bounded retries, quarantine and serial fallback.
* :mod:`repro.engine.sweep` — :class:`SweepRunner`, which fans the
  workload × extension × clock-ratio × FIFO-depth matrix of the
  paper's tables/figures across the pool, with an identity-checked
  on-disk cache.

The fast engine's contract is *observational invariance*: for any
program, extension and watchdog configuration, the
:class:`~repro.flexcore.system.RunResult` digest is bit-identical to
the reference loop's (``tests/test_engine_differential.py`` and the
pinned golden digests enforce this).
"""

from repro.engine.pool import (
    PoolError,
    PoolPolicy,
    PoolStats,
    Quarantined,
    TaskTimeout,
    WorkerCrash,
    fan_out,
    worker_signals,
)
from repro.engine.predecode import HandlerTable

__all__ = [
    "HandlerTable",
    "PoolError",
    "PoolPolicy",
    "PoolStats",
    "Quarantined",
    "SweepOutcome",
    "SweepPoint",
    "SweepRunner",
    "TaskTimeout",
    "WorkerCrash",
    "fan_out",
    "table4_points",
    "worker_signals",
]

_SWEEP_EXPORTS = ("SweepOutcome", "SweepPoint", "SweepRunner",
                  "table4_points")


def __getattr__(name):
    # Lazy re-export: the sweep module imports the evaluation package
    # (whose experiment runners import the sweep module back), so an
    # eager import here would turn the fast loop's ``import
    # repro.engine.fastloop`` into a circular-import error.
    if name in _SWEEP_EXPORTS:
        from repro.engine import sweep
        return getattr(sweep, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
