"""Parallel sweep runner for the paper's evaluation matrices.

Every table and figure of the evaluation is a sweep over the same
four-dimensional grid — workload × extension × fabric clock ratio ×
forward-FIFO depth — and every grid point is an independent simulation.
:class:`SweepRunner` runs a list of :class:`SweepPoint`\\ s either
serially (sharing the assembled workload across points that only vary
the monitor configuration) or fanned out over the shared process pool
(:func:`repro.engine.pool.fan_out`), optionally memoising each
outcome in an identity-checked on-disk cache
(:class:`repro.checkpoint.golden_cache.IdentityCache`).

The execution engine (``fast`` / ``reference``) is deliberately *not*
part of a point's cache identity: the engines are bit-identical by
contract, so an outcome computed by either is valid for both.  The
``repro bench`` harness, which exists to *measure* the engines, never
passes a cache directory.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace

from repro.checkpoint.golden_cache import IdentityCache
from repro.engine.pool import (
    PoolPolicy,
    PoolStats,
    fan_out,
    worker_signals,
)
from repro.evaluation.config import (
    CLOCK_RATIOS,
    DEFAULT_FIFO_DEPTH,
    DEFAULT_META_CACHE_BYTES,
    experiment_system_config,
)
from repro.extensions import EXTENSION_NAMES, create_extension
from repro.telemetry.summary import run_digest
from repro.workloads import build_workload, workload_names

OUTCOME_SECTION = "outcome"


@dataclass(frozen=True)
class SweepPoint:
    """One grid point of an evaluation sweep.

    ``extension=None`` is the unmonitored baseline.  The fields mirror
    the knobs of
    :func:`repro.evaluation.config.experiment_system_config` plus the
    workload selection.
    """

    workload: str
    extension: str | None = None
    clock_ratio: float = 0.5
    fifo_depth: int = DEFAULT_FIFO_DEPTH
    scale: float = 1
    predecode: bool = True
    scaled_memory: bool = True
    #: meta-data cache capacity at paper scale (scaled down with the
    #: rest of the memory system when ``scaled_memory`` is on) — the
    #: design-space explorer's fifth axis.
    meta_cache_bytes: int = DEFAULT_META_CACHE_BYTES

    def identity(self) -> dict:
        """Cache identity: every field that affects the outcome.

        The engine is excluded on purpose — fast and reference produce
        bit-identical results, so they share cache entries.
        """
        return asdict(self)

    def stem(self) -> str:
        return f"{self.workload}-{self.extension or 'baseline'}"


@dataclass(frozen=True)
class SweepOutcome:
    """The architecturally-visible result of one sweep point.

    Plain picklable values only: outcomes cross the process-pool
    boundary and round-trip through the on-disk cache.
    """

    point: SweepPoint
    cycles: int
    instructions: int
    forwarded_fraction: float
    fifo_stall_cycles: int
    meta_stall_cycles: float
    digest: str
    #: engine that actually produced this outcome ("fast" or
    #: "reference") — informational; the digest is engine-invariant.
    engine: str

    def payload(self) -> dict:
        fields = asdict(self)
        del fields["point"]
        return fields

    @classmethod
    def from_payload(cls, point: SweepPoint, payload: dict
                     ) -> "SweepOutcome":
        return cls(point=point, **payload)


def run_point(point: SweepPoint, engine: str | None = None,
              workload=None) -> SweepOutcome:
    """Simulate one grid point and distil its outcome.

    ``workload`` lets callers share one built
    :class:`~repro.workloads.Workload` across points that only vary
    the monitor configuration (assembly is pure, so this is safe).
    """
    from repro.flexcore.system import FlexCoreSystem

    if workload is None:
        workload = build_workload(point.workload, point.scale)
    config = experiment_system_config(
        clock_ratio=point.clock_ratio,
        fifo_depth=point.fifo_depth,
        scaled_memory=point.scaled_memory,
        predecode=point.predecode,
        meta_cache_bytes=point.meta_cache_bytes,
    )
    extension = (
        create_extension(point.extension) if point.extension else None
    )
    system = FlexCoreSystem(workload.build(), extension, config)
    result = system.run(engine=engine)
    if result.word(workload.checksum_symbol) != workload.expected_checksum:
        raise AssertionError(
            f"{workload.name} checksum mismatch under "
            f"{point.extension or 'baseline'}"
        )
    stats = result.interface_stats
    return SweepOutcome(
        point=point,
        cycles=result.cycles,
        instructions=result.instructions,
        forwarded_fraction=(
            stats.forwarded_fraction if stats is not None else 0.0
        ),
        fifo_stall_cycles=(
            stats.fifo_stall_cycles if stats is not None else 0
        ),
        meta_stall_cycles=(
            stats.meta_stall_cycles if stats is not None else 0.0
        ),
        digest=run_digest(result),
        engine=result.engine,
    )


def _run_indexed(item) -> tuple[int, SweepOutcome]:
    index, point, engine = item
    return index, run_point(point, engine)


def _init_sweep_worker() -> None:
    worker_signals()


class SweepRunner:
    """Run a list of sweep points, serially or across the pool.

    ``jobs=1`` runs in-process, sharing one built workload per
    (workload, scale) pair; ``jobs>1`` fans the points out via
    :func:`repro.engine.pool.fan_out` (each worker rebuilds workloads
    from names — points are cheap to ship, programs are not).
    ``cache_dir`` enables the on-disk outcome cache; cached entries
    are returned without simulating.  ``policy`` tunes the supervised
    pool (task deadlines, retries, serial fallback).

    Completed outcomes are cached *as they arrive*, so an interrupted
    sweep keeps everything it finished and a re-run only simulates the
    missing points.  After :meth:`run`, :attr:`stats` holds the pool's
    infra counters and :attr:`failures` the quarantined points.
    """

    def __init__(self, jobs: int = 1, engine: str | None = "fast",
                 cache_dir=None, policy: PoolPolicy | None = None):
        self.jobs = jobs
        self.engine = engine
        self.policy = policy
        self.cache = (
            IdentityCache(cache_dir, label="sweep cache",
                          section=OUTCOME_SECTION)
            if cache_dir is not None else None
        )
        #: pool telemetry from the most recent :meth:`run`.
        self.stats = PoolStats()
        #: quarantined points from the most recent :meth:`run`, as
        #: ``(point, reason)`` pairs.
        self.failures: list[tuple[SweepPoint, str]] = []
        #: cache tallies from the most recent :meth:`run` (both zero
        #: when no cache is configured) — the explore benchmark's
        #: cold-vs-warm hit-ratio source.
        self.cache_hits = 0
        self.cache_misses = 0
        self._cache_warned = False

    def _store(self, outcome: SweepOutcome, diagnostics) -> None:
        if self.cache is None:
            return
        self.cache.store(outcome.point.identity(),
                         outcome.point.stem(), outcome.payload())
        # A dying cache (ENOSPC, EROFS, ...) degrades to uncached
        # execution; surface its one-shot warning.
        if (self.cache.disabled_reason and not self._cache_warned
                and diagnostics is not None):
            self._cache_warned = True
            diagnostics(self.cache.disabled_reason)

    def run(self, points, diagnostics=None,
            on_infra_failure=None) -> list[SweepOutcome | None]:
        """Return one :class:`SweepOutcome` per point, in input order.

        ``diagnostics`` (optional callable) receives the cache's
        human-readable miss explanations and any degradation
        warnings.  ``on_infra_failure(point, error)`` opts into
        skip-and-report semantics for quarantined points: the handler
        is invoked, the point's slot in the returned list stays
        ``None``, and the pair lands in :attr:`failures`.  Without a
        handler a quarantined point raises
        :class:`repro.engine.pool.Quarantined` — sweeps feeding the
        paper's tables need every point.
        """
        points = list(points)
        outcomes: list[SweepOutcome | None] = [None] * len(points)
        pending: list[int] = []
        self.stats = PoolStats()
        self.failures = []
        self.cache_hits = 0
        self.cache_misses = 0
        for index, point in enumerate(points):
            if self.cache is not None:
                payload, diagnostic = self.cache.load(
                    point.identity(), point.stem())
                if payload is not None:
                    self.cache_hits += 1
                    outcomes[index] = SweepOutcome.from_payload(
                        point, payload)
                    continue
                self.cache_misses += 1
                if diagnostics is not None:
                    diagnostics(diagnostic)
            pending.append(index)

        if pending and self.jobs > 1:
            items = [(i, points[i], self.engine) for i in pending]

            def record(result):
                index, outcome = result
                outcomes[index] = outcome
                self._store(outcome, diagnostics)

            quarantine = None
            if on_infra_failure is not None:
                def quarantine(item, error):
                    _index, point, _engine = item
                    self.failures.append((point, str(error)))
                    on_infra_failure(point, error)

            self.stats = fan_out(
                items, _run_indexed, record, jobs=self.jobs,
                initializer=_init_sweep_worker,
                policy=self.policy, on_quarantine=quarantine,
                warn=diagnostics,
            )
        elif pending:
            workloads: dict[tuple[str, float], object] = {}
            for index in pending:
                point = points[index]
                key = (point.workload, point.scale)
                if key not in workloads:
                    workloads[key] = build_workload(*key)
                outcomes[index] = run_point(
                    point, self.engine, workload=workloads[key])
                self._store(outcomes[index], diagnostics)
        return outcomes


def table4_points(
    scale: float = 1,
    benchmarks=None,
    extensions=EXTENSION_NAMES,
    ratios=CLOCK_RATIOS,
) -> list[SweepPoint]:
    """The Table IV grid: per benchmark, one unmonitored baseline plus
    every extension at every fabric clock ratio."""
    benchmarks = benchmarks or workload_names()
    points = []
    for bench in benchmarks:
        base = SweepPoint(workload=bench, scale=scale)
        points.append(base)
        for extension in extensions:
            for ratio in ratios:
                points.append(replace(base, extension=extension,
                                      clock_ratio=ratio))
    return points
