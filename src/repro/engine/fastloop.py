"""The flattened hot loop of the fast engine.

``run_fast_loop`` is the drop-in replacement for the body of
``FlexCoreSystem.run_bounded``'s reference while-loop.  It drives the
:class:`~repro.engine.predecode.HandlerTable` closures and keeps the
watchdog, checkpoint, rollback-recovery and trap semantics of the
reference loop exactly — same check order, same error wrapping, same
cycle arithmetic — returning the same ``(now, trap, termination,
error, recoveries, recovery_cycles)`` tuple the shared result tail
consumes.

Eligibility is decided by ``FlexCoreSystem.run_bounded``
(:meth:`~repro.flexcore.system.FlexCoreSystem._fast_loop_supported`):
record hooks or live telemetry force the reference loop, because
hooks see every ``CommitRecord`` and tracers/metrics observe events
the fused closures deliberately skip.
"""

from __future__ import annotations

import time

from repro.core.executor import SimulationError
from repro.engine.predecode import (
    MASK32,
    NOBLOCK,
    HandlerTable,
    SuperblockTable,
)
from repro.isa.registers import WindowOverflow, WindowUnderflow
from repro.memory.backing import MemoryFault

_INFINITY = float("inf")


def run_fast_loop(
    system,
    limit: int,
    max_cycles: int | None,
    deadline: float | None,
    checkpoint_every: int | None,
    on_checkpoint,
    recover: bool,
    recovery_limit: int,
    recovery_latency: int,
):
    """Run ``system`` to a stop condition; see module docstring."""
    from repro.flexcore.system import Termination

    cpu = system.cpu
    timing = system.core_timing
    iface = system.interface
    stop_on_trap = system.config.stop_on_trap
    stride = system.DEADLINE_STRIDE
    icache_read = timing.icache.read
    refill = system.bus.line_refill

    table = HandlerTable(system)
    handlers = table.handlers
    build = table.build

    now = system.now
    trap = None
    termination = Termination.HALTED
    error: SimulationError | None = None
    recoveries = 0
    recovery_cycles = 0.0

    max_c = _INFINITY if max_cycles is None else max_cycles
    next_deadline = (_INFINITY if deadline is None
                     else cpu.instret + stride)
    next_checkpoint = (_INFINITY if checkpoint_every is None
                       else cpu.instret + checkpoint_every)
    checkpoint: dict | None = None
    replay_from = now
    if recover:
        system.now = now
        checkpoint = system.snapshot_state()

    while not cpu.halted:
        instret = cpu.instret
        if instret >= limit:
            termination = Termination.INSTRUCTION_LIMIT
            error = SimulationError(
                f"instruction limit {limit} exceeded at "
                f"pc={cpu.pc:#x} — runaway program?",
                pc=cpu.pc, instret=instret, cycle=int(now),
            )
            break
        if now >= max_c:
            termination = Termination.CYCLE_LIMIT
            break
        if instret >= next_deadline:
            next_deadline = instret + stride
            if time.monotonic() >= deadline:
                termination = Termination.DEADLINE
                break
        if instret >= next_checkpoint:
            next_checkpoint = instret + checkpoint_every
            system.now = now
            checkpoint = system.snapshot_state()
            replay_from = now
            if on_checkpoint is not None:
                on_checkpoint(system, checkpoint)

        pc = cpu.pc
        try:
            if cpu._annul_next:
                # Fused annulled delay slot: the reference still
                # fetches and decodes the slot (errors included) —
                # building its handler performs both — then charges
                # ifetch plus one cycle and clears the interlock.
                if pc not in handlers:
                    build(pc)
                cpu._annul_next = False
                npc = cpu.npc
                cpu.pc = npc
                cpu.npc = (npc + 4) & MASK32
                cpu.instret = instret + 1
                ts = timing.stats
                ts.instructions += 1
                inow = int(now)
                if not icache_read(pc):
                    done = refill(inow, "core-ifetch")
                    ts.icache_stall += done - inow
                    inow = done
                ts.base_cycles += 1
                inow += 1
                ts.cycles = inow
                timing._pending_load_dest = -1
                now = inow
                if iface is not None:
                    iface.stats.committed += 1
            else:
                handler = handlers.get(pc)
                if handler is None:
                    handler = build(pc)
                now = handler(now)
        except SimulationError as err:
            cpu._attach_context(err, pc)
            if err.cycle is None:
                err.cycle = int(now)
            termination = Termination.ERROR
            error = err
            break
        except (MemoryFault, WindowOverflow, WindowUnderflow) as err:
            wrapped = SimulationError(str(err))
            cpu._attach_context(wrapped, pc)
            wrapped.cycle = int(now)
            termination = Termination.ERROR
            error = wrapped
            break

        if (iface is not None and iface.pending_trap is not None
                and stop_on_trap):
            if (recover and checkpoint is not None
                    and recoveries < recovery_limit):
                trap_at = max(now, iface.trap_time)
                wasted = trap_at - replay_from + recovery_latency
                system.restore_state(checkpoint)
                now = replay_from = trap_at + recovery_latency
                recoveries += 1
                recovery_cycles += wasted
                if checkpoint_every is not None:
                    next_checkpoint = cpu.instret + checkpoint_every
                # The rollback rewound memory (possibly text), so the
                # old handler table may be stale; rebuild lazily.
                table = HandlerTable(system)
                handlers = table.handlers
                build = table.build
                continue
            trap = iface.pending_trap
            now = max(now, iface.trap_time)
            termination = Termination.TRAP
            break

    return now, trap, termination, error, recoveries, recovery_cycles


def run_superblock_loop(
    system,
    limit: int,
    max_cycles: int | None,
    deadline: float | None,
    checkpoint_every: int | None,
    on_checkpoint,
    recover: bool,
    recovery_limit: int,
    recovery_latency: int,
):
    """``run_fast_loop`` striding a superblock per dispatch.

    Straight-line runs discovered by
    :class:`~repro.engine.predecode.SuperblockTable` execute as one
    fused call; the per-PC path handles everything else — annulled
    delay slots, blocks that would straddle an instret boundary
    (watchdog limit, deadline stride, checkpoint), and entry in a
    delay slot (``npc != pc + 4``).  Check order, error wrapping and
    cycle arithmetic match the reference loop exactly; the
    differential and golden tests enforce bit-identity.
    """
    from repro.flexcore.system import Termination

    cpu = system.cpu
    timing = system.core_timing
    iface = system.interface
    stop_on_trap = system.config.stop_on_trap
    stride = system.DEADLINE_STRIDE
    icache_read = timing.icache.read
    refill = system.bus.line_refill

    table = SuperblockTable(system)
    handlers = table.handlers
    build = table.build
    blocks = table.blocks
    block_at = table.block_at

    now = system.now
    trap = None
    termination = Termination.HALTED
    error: SimulationError | None = None
    recoveries = 0
    recovery_cycles = 0.0

    max_c = _INFINITY if max_cycles is None else max_cycles
    next_deadline = (_INFINITY if deadline is None
                     else cpu.instret + stride)
    next_checkpoint = (_INFINITY if checkpoint_every is None
                       else cpu.instret + checkpoint_every)
    checkpoint: dict | None = None
    replay_from = now
    if recover:
        system.now = now
        checkpoint = system.snapshot_state()

    while not cpu.halted:
        instret = cpu.instret
        if instret >= limit:
            termination = Termination.INSTRUCTION_LIMIT
            error = SimulationError(
                f"instruction limit {limit} exceeded at "
                f"pc={cpu.pc:#x} — runaway program?",
                pc=cpu.pc, instret=instret, cycle=int(now),
            )
            break
        if now >= max_c:
            termination = Termination.CYCLE_LIMIT
            break
        if instret >= next_deadline:
            next_deadline = instret + stride
            if time.monotonic() >= deadline:
                termination = Termination.DEADLINE
                break
        if instret >= next_checkpoint:
            next_checkpoint = instret + checkpoint_every
            system.now = now
            checkpoint = system.snapshot_state()
            replay_from = now
            if on_checkpoint is not None:
                on_checkpoint(system, checkpoint)

        pc = cpu.pc
        try:
            if cpu._annul_next:
                # Fused annulled delay slot (see ``run_fast_loop``).
                if pc not in handlers:
                    build(pc)
                cpu._annul_next = False
                npc = cpu.npc
                cpu.pc = npc
                cpu.npc = (npc + 4) & MASK32
                cpu.instret = instret + 1
                ts = timing.stats
                ts.instructions += 1
                inow = int(now)
                if not icache_read(pc):
                    done = refill(inow, "core-ifetch")
                    ts.icache_stall += done - inow
                    inow = done
                ts.base_cycles += 1
                inow += 1
                ts.cycles = inow
                timing._pending_load_dest = -1
                now = inow
                if iface is not None:
                    iface.stats.committed += 1
            else:
                entry = blocks.get(pc)
                if entry is None:
                    entry = block_at(pc)
                if (entry is not NOBLOCK
                        and cpu.npc == ((pc + 4) & MASK32)
                        and entry[0] <= min(limit, next_deadline,
                                            next_checkpoint) - instret):
                    now = entry[1](now, max_c)
                else:
                    handler = handlers.get(pc)
                    if handler is None:
                        handler = build(pc)
                    now = handler(now)
        except SimulationError as err:
            # ``cpu.pc`` is the faulting member's PC: every fused
            # closure raises before touching pc/instret/timing.
            cpu._attach_context(err, cpu.pc)
            if err.cycle is None:
                err.cycle = int(now)
            termination = Termination.ERROR
            error = err
            break
        except (MemoryFault, WindowOverflow, WindowUnderflow) as err:
            wrapped = SimulationError(str(err))
            cpu._attach_context(wrapped, cpu.pc)
            wrapped.cycle = int(now)
            termination = Termination.ERROR
            error = wrapped
            break

        if (iface is not None and iface.pending_trap is not None
                and stop_on_trap):
            if (recover and checkpoint is not None
                    and recoveries < recovery_limit):
                trap_at = max(now, iface.trap_time)
                wasted = trap_at - replay_from + recovery_latency
                system.restore_state(checkpoint)
                now = replay_from = trap_at + recovery_latency
                recoveries += 1
                recovery_cycles += wasted
                if checkpoint_every is not None:
                    next_checkpoint = cpu.instret + checkpoint_every
                # The rollback rewound memory (possibly text), so both
                # the handlers and the fused blocks may be stale.
                table = SuperblockTable(system)
                handlers = table.handlers
                build = table.build
                blocks = table.blocks
                block_at = table.block_at
                continue
            trap = iface.pending_trap
            now = max(now, iface.trap_time)
            termination = Termination.TRAP
            break

    return now, trap, termination, error, recoveries, recovery_cycles
