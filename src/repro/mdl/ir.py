"""Typed rule IR — the contract between the MDL front-end and the two
backends.

Every expression node carries an explicit bit ``width``; arithmetic
wraps at the width of its operands (``max`` of the two sides, capped
at 32), exactly the semantics a fixed-width fabric datapath has.  The
checker (:mod:`repro.mdl.check`) is the only producer; the behavioral
interpreter and the hardware lowering consume the same tree, which is
what makes the differential test (compiled vs hand-written monitor)
meaningful: one IR, two executions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.opcodes import InstrClass

MAX_WIDTH = 32

#: Trace-packet fields an MDL expression may read, with the TracePacket
#: attribute each maps to and its hardware width (Table II).
PACKET_FIELDS: dict[str, tuple[str, int]] = {
    "pc": ("pc", 32),
    "inst": ("inst", 32),
    "addr": ("addr", 32),
    "res": ("res", 32),
    "srcv1": ("srcv1", 32),
    "srcv2": ("srcv2", 32),
    "cond": ("cond", 4),
    "branch": ("branch", 1),
    "src1": ("src1", 9),
    "src2": ("src2", 9),
    "dest": ("dest", 9),
    "access_size": ("access_size", 4),
}

#: Monitor-state latches (software-visible registers, Section III-C).
STATE_FIELDS: dict[str, int] = {
    "tagval": 32,
    "policy": 32,
}

#: Context variables whose value depends on where a rule runs:
#: ``word``/``words`` exist inside ``foreach word`` rules, ``flexaddr``
#: (the rs1+rs2 effective address) inside ``flex`` rules.
CONTEXT_FIELDS: dict[str, int] = {
    "word": 32,
    "words": 4,
    "flexaddr": 32,
}


def clamp_width(width: int) -> int:
    return max(1, min(width, MAX_WIDTH))


# -- expressions -----------------------------------------------------------


@dataclass(frozen=True)
class ExprIR:
    width: int


@dataclass(frozen=True)
class Const(ExprIR):
    value: int


@dataclass(frozen=True)
class PacketField(ExprIR):
    attr: str


@dataclass(frozen=True)
class StateField(ExprIR):
    name: str


@dataclass(frozen=True)
class ContextVar(ExprIR):
    name: str


@dataclass(frozen=True)
class LocalVar(ExprIR):
    name: str


@dataclass(frozen=True)
class MemTagRead(ExprIR):
    """Read a word's memory tag (records one meta-cache read); if
    ``hi``/``lo`` are set, extract that declared field."""

    address: ExprIR
    hi: int | None = None
    lo: int | None = None


@dataclass(frozen=True)
class RegTagRead(ExprIR):
    index: ExprIR


@dataclass(frozen=True)
class BinaryIR(ExprIR):
    op: str
    left: ExprIR
    right: ExprIR


@dataclass(frozen=True)
class UnaryIR(ExprIR):
    op: str
    operand: ExprIR


@dataclass(frozen=True)
class CallIR(ExprIR):
    func: str  # "max" | "min"
    args: tuple[ExprIR, ...]


# -- statements ------------------------------------------------------------


@dataclass(frozen=True)
class StmtIR:
    pass


@dataclass(frozen=True)
class LetIR(StmtIR):
    name: str
    value: ExprIR


@dataclass(frozen=True)
class MemTagWrite(StmtIR):
    """Whole-tag write (``hi is None``) or a field-masked
    read-modify-write of one declared field."""

    address: ExprIR
    value: ExprIR
    hi: int | None = None
    lo: int | None = None


@dataclass(frozen=True)
class RegTagWrite(StmtIR):
    index: ExprIR
    value: ExprIR


@dataclass(frozen=True)
class TrapIR(StmtIR):
    kind: str
    condition: ExprIR
    address: ExprIR | None
    #: alternating literal text and (expression, format-spec) parts.
    template: tuple["str | tuple[ExprIR, str]", ...]


@dataclass(frozen=True)
class CyclesIR(StmtIR):
    value: ExprIR


# -- rules and the monitor -------------------------------------------------


@dataclass(frozen=True)
class RuleIR:
    """One compiled rule: which packets fire it and what it does."""

    classes: tuple[InstrClass, ...]  # empty for flex rules
    flex_opfs: tuple[int, ...]  # empty for class rules
    foreach_word: bool
    body: tuple[StmtIR, ...]


@dataclass(frozen=True)
class MonitorIR:
    """A fully checked monitor, ready for either backend."""

    name: str
    description: str
    register_tag_bits: int
    memory_tag_bits: int
    fields: dict[str, tuple[int, int]]  # name -> (hi, lo)
    init: tuple[tuple[str, int], ...]  # (section, tag value)
    forward_classes: frozenset[InstrClass]
    rules: tuple[RuleIR, ...]

    def class_rules(self) -> list[RuleIR]:
        return [r for r in self.rules if r.classes]

    def flex_rules(self) -> list[RuleIR]:
        return [r for r in self.rules if r.flex_opfs]
