"""Semantic checker: untyped AST -> typed :mod:`repro.mdl.ir`.

All diagnostics are collected (not fail-fast) so one compile reports
every problem.  The checks:

* unknown meta attribute / field / identifier / instruction class /
  flex opf — each with a did-you-mean hint;
* width mismatches — a constant that cannot fit the tag it is
  assigned to, a wide expression assigned to a narrow tag without an
  explicit mask, a comparison whose constant side can never match;
* unreachable rules — a trap whose condition constant-folds to false,
  or a rule on an instruction class the explicit ``forward`` block
  never forwards;
* context misuse — ``word``/``words`` outside ``foreach word``,
  ``flexaddr`` outside a ``flex`` rule, ``mem[]``/``reg[]`` on a
  monitor that declares no such meta-data.

Width semantics are the fabric's: arithmetic wraps at the operand
width (``max`` of the two sides, capped at 32), ``&`` with a constant
narrows to the mask's width, comparisons and boolean operators are
1 bit wide.
"""

from __future__ import annotations

from repro.isa.opcodes import (
    FlexOpf,
    InstrClass,
    LOAD_CLASSES,
    STORE_CLASSES,
)
from repro.mdl import ast, ir
from repro.mdl.diagnostics import DiagnosticSink, MdlError, suggest
from repro.mdl.parser import parse_embedded_expr

_ALLOWED_META = ("register_tag_bits", "memory_tag_bits")
_MEMORY_TAG_WIDTHS = (1, 2, 4, 8)
_INIT_SECTIONS = ("text", "data")

#: Instruction-class selector names (lowercase), reserved slots
#: excluded — a rule on a reserved class could never fire.
_CLASS_NAMES = {
    cls.name.lower(): cls
    for cls in InstrClass
    if not cls.name.startswith("RESERVED")
}

_FLEX_OPF_NAMES = {opf.name: opf for opf in FlexOpf}

#: Everything a bare identifier may resolve to, for suggestions.
_IDENT_NAMESPACE = (
    tuple(ir.PACKET_FIELDS) + tuple(ir.STATE_FIELDS)
    + tuple(ir.CONTEXT_FIELDS)
)

_POISON = ir.Const(width=1, value=0)


class _RuleContext:
    """Where an expression appears: which context variables exist and
    which locals are in scope."""

    def __init__(self, foreach: bool, is_flex: bool):
        self.foreach = foreach
        self.is_flex = is_flex
        self.locals: dict[str, int] = {}


class Checker:
    def __init__(self, spec: ast.Spec, source: str | None = None):
        self.spec = spec
        self.source = source
        self.sink = DiagnosticSink()
        self.register_tag_bits = 0
        self.memory_tag_bits = 0
        self.fields: dict[str, tuple[int, int]] = {}

    # -- entry point ------------------------------------------------------

    def check(self) -> ir.MonitorIR:
        self._check_meta()
        self._check_fields()
        init = self._check_init()
        rules, rule_classes, has_flex = self._check_rules()
        forward = self._check_forward(rule_classes, has_flex)
        self.sink.raise_if_errors(self.source)
        return ir.MonitorIR(
            name=self.spec.name,
            description=self.spec.description,
            register_tag_bits=self.register_tag_bits,
            memory_tag_bits=self.memory_tag_bits,
            fields=dict(self.fields),
            init=init,
            forward_classes=forward,
            rules=tuple(rules),
        )

    # -- declaration blocks -----------------------------------------------

    def _check_meta(self) -> None:
        seen: set[str] = set()
        for item in self.spec.meta:
            if item.name not in _ALLOWED_META:
                self.sink.error(
                    item.location,
                    f"unknown meta attribute '{item.name}'",
                    suggest(item.name, _ALLOWED_META))
                continue
            if item.name in seen:
                self.sink.error(item.location,
                                f"duplicate meta attribute '{item.name}'")
                continue
            seen.add(item.name)
            if item.name == "register_tag_bits":
                if not 0 <= item.value <= 8:
                    self.sink.error(
                        item.location,
                        f"register_tag_bits must be 0..8, "
                        f"got {item.value}")
                else:
                    self.register_tag_bits = item.value
            else:
                if item.value and item.value not in _MEMORY_TAG_WIDTHS:
                    self.sink.error(
                        item.location,
                        f"memory_tag_bits must be 0, 1, 2, 4 or 8 "
                        f"(tags must pack into a byte), "
                        f"got {item.value}")
                else:
                    self.memory_tag_bits = item.value

    def _check_fields(self) -> None:
        for decl in self.spec.fields:
            if not self.memory_tag_bits:
                self.sink.error(
                    decl.location,
                    "fields require memory tags; set memory_tag_bits "
                    "in the meta block first")
                return
            if decl.name in self.fields:
                self.sink.error(decl.location,
                                f"duplicate field '{decl.name}'")
                continue
            if decl.lo < 0 or decl.hi < decl.lo:
                self.sink.error(
                    decl.location,
                    f"field '{decl.name}' has an empty bit range "
                    f"{decl.hi}:{decl.lo}")
                continue
            if decl.hi >= self.memory_tag_bits:
                self.sink.error(
                    decl.location,
                    f"field '{decl.name}' (bits {decl.hi}:{decl.lo}) "
                    f"does not fit in a {self.memory_tag_bits}-bit "
                    f"memory tag")
                continue
            self.fields[decl.name] = (decl.hi, decl.lo)

    def _check_init(self) -> tuple[tuple[str, int], ...]:
        out: list[tuple[str, int]] = []
        seen: set[str] = set()
        for item in self.spec.init:
            if item.section not in _INIT_SECTIONS:
                self.sink.error(
                    item.location,
                    f"unknown init section '{item.section}'",
                    suggest(item.section, _INIT_SECTIONS))
                continue
            if item.section in seen:
                self.sink.error(
                    item.location,
                    f"duplicate init section '{item.section}'")
                continue
            seen.add(item.section)
            if not self.memory_tag_bits:
                self.sink.error(
                    item.location,
                    "init tags require memory tags; set "
                    "memory_tag_bits in the meta block")
                continue
            if item.value >= (1 << self.memory_tag_bits):
                self.sink.error(
                    item.location,
                    f"init value {item.value} does not fit in a "
                    f"{self.memory_tag_bits}-bit memory tag")
                continue
            out.append((item.section, item.value))
        return tuple(out)

    # -- rule headers -----------------------------------------------------

    def _resolve_class_selector(
        self, selector: ast.Selector
    ) -> tuple[InstrClass, ...]:
        if selector.kind == "load":
            return tuple(sorted(LOAD_CLASSES))
        if selector.kind == "store":
            return tuple(sorted(STORE_CLASSES))
        cls = _CLASS_NAMES.get(selector.name.lower())
        if cls is None:
            self.sink.error(
                selector.location,
                f"unknown instruction class '{selector.name}'",
                suggest(selector.name.lower(),
                        list(_CLASS_NAMES) + ["load", "store"]))
            return ()
        return (cls,)

    def _resolve_flex_selector(
        self, selector: ast.Selector
    ) -> tuple[int, ...]:
        if not selector.name:
            self.sink.error(
                selector.location,
                "a flex rule must name the opf it handles "
                "(e.g. 'on flex TAG_SET_MEM')")
            return ()
        opf = _FLEX_OPF_NAMES.get(selector.name.upper())
        if opf is None:
            self.sink.error(
                selector.location,
                f"unknown flex opf '{selector.name}'",
                suggest(selector.name.upper(), _FLEX_OPF_NAMES))
            return ()
        return (int(opf),)

    def _check_rules(self):
        rules: list[ir.RuleIR] = []
        rule_classes: set[InstrClass] = set()
        has_flex = False
        for rule in self.spec.rules:
            kinds = {s.kind for s in rule.selectors}
            if "flex" in kinds and kinds != {"flex"}:
                self.sink.error(
                    rule.location,
                    "a rule cannot mix flex opf selectors with "
                    "instruction-class selectors")
                continue
            if "flex" in kinds:
                has_flex = True
                opfs: list[int] = []
                for selector in rule.selectors:
                    opfs.extend(self._resolve_flex_selector(selector))
                if rule.foreach_word:
                    self.sink.error(
                        rule.location,
                        "'foreach word' only applies to load/store "
                        "rules")
                    continue
                ctx = _RuleContext(foreach=False, is_flex=True)
                body = self._check_body(rule, ctx)
                rules.append(ir.RuleIR((), tuple(opfs), False, body))
                continue
            classes: list[InstrClass] = []
            for selector in rule.selectors:
                classes.extend(self._resolve_class_selector(selector))
            if rule.foreach_word and not all(
                cls in LOAD_CLASSES or cls in STORE_CLASSES
                for cls in classes
            ):
                self.sink.error(
                    rule.location,
                    "'foreach word' only applies to load/store rules")
                continue
            ctx = _RuleContext(foreach=rule.foreach_word,
                               is_flex=False)
            body = self._check_body(rule, ctx)
            rule_classes.update(classes)
            rules.append(
                ir.RuleIR(tuple(classes), (), rule.foreach_word, body))
        return rules, rule_classes, has_flex

    def _check_forward(
        self, rule_classes: set[InstrClass], has_flex: bool
    ) -> frozenset[InstrClass]:
        if self.spec.forward is None:
            # Derived policy: forward exactly what some rule reads,
            # plus FLEX — co-processor instructions are how software
            # programs any monitor (set base/policy/tagval).
            return frozenset(rule_classes | {InstrClass.FLEX})
        explicit: set[InstrClass] = set()
        for selector in self.spec.forward:
            if selector.kind == "flex":
                explicit.add(InstrClass.FLEX)
            else:
                explicit.update(self._resolve_class_selector(selector))
        for rule in self.spec.rules:
            for selector in rule.selectors:
                if selector.kind == "flex":
                    if InstrClass.FLEX not in explicit:
                        self.sink.error(
                            selector.location,
                            "unreachable rule: flex packets are not "
                            "in the forward block")
                    continue
                for cls in self._resolve_class_selector(selector):
                    if cls not in explicit:
                        self.sink.error(
                            selector.location,
                            f"unreachable rule: class "
                            f"'{cls.name.lower()}' is not in the "
                            f"forward block")
        return frozenset(explicit)

    # -- statements -------------------------------------------------------

    def _check_body(
        self, rule: ast.Rule, ctx: _RuleContext
    ) -> tuple[ir.StmtIR, ...]:
        out: list[ir.StmtIR] = []
        for stmt in rule.body:
            checked = self._check_stmt(stmt, ctx)
            if checked is not None:
                out.append(checked)
        return tuple(out)

    def _check_stmt(
        self, stmt: ast.Stmt, ctx: _RuleContext
    ) -> ir.StmtIR | None:
        if isinstance(stmt, ast.Let):
            if (stmt.name in ctx.locals
                    or stmt.name in _IDENT_NAMESPACE):
                what = ("a built-in name"
                        if stmt.name in _IDENT_NAMESPACE
                        else "already bound")
                self.sink.error(stmt.location,
                                f"'{stmt.name}' is {what}")
                return None
            value = self._check_expr(stmt.value, ctx)
            ctx.locals[stmt.name] = value.width
            return ir.LetIR(stmt.name, value)
        if isinstance(stmt, ast.Assign):
            return self._check_assign(stmt, ctx)
        if isinstance(stmt, ast.Trap):
            return self._check_trap(stmt, ctx)
        if isinstance(stmt, ast.Cycles):
            return ir.CyclesIR(self._check_expr(stmt.value, ctx))
        raise AssertionError(f"unhandled statement {stmt!r}")

    def _check_value_fits(self, value: ir.ExprIR, width: int,
                          location, what: str) -> None:
        if isinstance(value, ir.Const):
            if value.value >= (1 << width):
                self.sink.error(
                    location,
                    f"width mismatch: constant {value.value:#x} does "
                    f"not fit in {what} ({width} bit"
                    f"{'s' if width != 1 else ''})")
        elif value.width > width:
            self.sink.error(
                location,
                f"width mismatch: a {value.width}-bit value assigned "
                f"to {what} ({width} bit"
                f"{'s' if width != 1 else ''}); mask it explicitly "
                f"(e.g. '& {(1 << width) - 1:#x}')")

    def _check_assign(
        self, stmt: ast.Assign, ctx: _RuleContext
    ) -> ir.StmtIR | None:
        value = self._check_expr(stmt.value, ctx)
        target = stmt.target
        if isinstance(target, ast.MemRef):
            if not self._require_mem(target.location):
                return None
            address = self._check_expr(target.address, ctx)
            if target.field_name is None:
                self._check_value_fits(
                    value, self.memory_tag_bits, stmt.location,
                    "the memory tag")
                return ir.MemTagWrite(address, value)
            span = self._lookup_field(target.field_name,
                                      target.field_location)
            if span is None:
                return None
            hi, lo = span
            self._check_value_fits(
                value, hi - lo + 1, stmt.location,
                f"field '{target.field_name}'")
            return ir.MemTagWrite(address, value, hi, lo)
        if isinstance(target, ast.RegRef):
            if not self._require_reg(target.location):
                return None
            index = self._check_expr(target.index, ctx)
            self._check_value_fits(
                value, self.register_tag_bits, stmt.location,
                "the register tag")
            return ir.RegTagWrite(index, value)
        self.sink.error(stmt.location,
                        "only mem[...] and reg[...] can be assigned")
        return None

    def _check_trap(
        self, stmt: ast.Trap, ctx: _RuleContext
    ) -> ir.StmtIR | None:
        condition = self._check_expr(stmt.condition, ctx)
        folded = _fold(condition)
        if folded == 0:
            self.sink.error(
                stmt.location,
                f"unreachable trap '{stmt.kind}': its condition is "
                f"always false")
            return None
        address = (self._check_expr(stmt.address, ctx)
                   if stmt.address is not None else None)
        template = self._check_template(stmt, ctx)
        return ir.TrapIR(stmt.kind, condition, address, template)

    def _check_template(
        self, stmt: ast.Trap, ctx: _RuleContext
    ) -> tuple:
        parts: list = []
        text = stmt.template
        pos = 0
        while pos < len(text):
            brace = text.find("{", pos)
            if brace < 0:
                parts.append(text[pos:])
                break
            if text.startswith("{{", brace):
                parts.append(text[pos:brace] + "{")
                pos = brace + 2
                continue
            if brace > pos:
                parts.append(text[pos:brace])
            close = text.find("}", brace)
            if close < 0:
                self.sink.error(
                    stmt.template_location,
                    "unterminated '{' in the trap message template")
                return tuple(parts)
            inner = text[brace + 1:close]
            expr_text, _, fmt = inner.partition(":")
            try:
                format(0, fmt)
            except ValueError:
                self.sink.error(
                    stmt.template_location,
                    f"bad format spec '{fmt}' in the trap message "
                    f"template")
                pos = close + 1
                continue
            try:
                embedded = parse_embedded_expr(
                    expr_text, stmt.template_location.filename,
                    stmt.template_location)
            except MdlError as err:
                self.sink.diagnostics.extend(err.diagnostics)
                pos = close + 1
                continue
            parts.append((self._check_expr(embedded, ctx), fmt))
            pos = close + 1
        return tuple(parts)

    # -- expressions ------------------------------------------------------

    def _require_mem(self, location) -> bool:
        if self.memory_tag_bits:
            return True
        self.sink.error(
            location,
            "this monitor declares no memory tags; set "
            "memory_tag_bits in the meta block to use mem[...]")
        return False

    def _require_reg(self, location) -> bool:
        if self.register_tag_bits:
            return True
        self.sink.error(
            location,
            "this monitor declares no register tags; set "
            "register_tag_bits in the meta block to use reg[...]")
        return False

    def _lookup_field(self, name: str,
                      location) -> tuple[int, int] | None:
        span = self.fields.get(name)
        if span is None:
            self.sink.error(
                location,
                f"unknown field '{name}' on a "
                f"{self.memory_tag_bits}-bit tag",
                suggest(name, self.fields))
            return None
        return span

    def _check_expr(self, expr: ast.Expr,
                    ctx: _RuleContext) -> ir.ExprIR:
        if isinstance(expr, ast.Number):
            return ir.Const(
                width=ir.clamp_width(expr.value.bit_length()),
                value=expr.value)
        if isinstance(expr, ast.Name):
            return self._check_name(expr, ctx)
        if isinstance(expr, ast.MemRef):
            if not self._require_mem(expr.location):
                return _POISON
            address = self._check_expr(expr.address, ctx)
            if expr.field_name is None:
                return ir.MemTagRead(width=self.memory_tag_bits,
                                     address=address)
            span = self._lookup_field(expr.field_name,
                                      expr.field_location)
            if span is None:
                return _POISON
            hi, lo = span
            return ir.MemTagRead(width=hi - lo + 1, address=address,
                                 hi=hi, lo=lo)
        if isinstance(expr, ast.RegRef):
            if not self._require_reg(expr.location):
                return _POISON
            index = self._check_expr(expr.index, ctx)
            return ir.RegTagRead(width=self.register_tag_bits,
                                 index=index)
        if isinstance(expr, ast.FieldAccess):
            base = self._check_expr(expr.base, ctx)
            span = self._lookup_field(expr.field_name, expr.location)
            if span is None:
                return _POISON
            hi, lo = span
            if hi >= base.width:
                self.sink.error(
                    expr.location,
                    f"field '{expr.field_name}' (bits {hi}:{lo}) "
                    f"does not fit in a {base.width}-bit value")
                return _POISON
            width = hi - lo + 1
            shifted = base if lo == 0 else ir.BinaryIR(
                width=base.width, op=">>", left=base,
                right=ir.Const(width=ir.clamp_width(lo.bit_length()),
                               value=lo))
            mask = (1 << width) - 1
            return ir.BinaryIR(
                width=width, op="&", left=shifted,
                right=ir.Const(width=width, value=mask))
        if isinstance(expr, ast.Unary):
            return self._check_unary(expr, ctx)
        if isinstance(expr, ast.Binary):
            return self._check_binary(expr, ctx)
        if isinstance(expr, ast.Call):
            return self._check_call(expr, ctx)
        raise AssertionError(f"unhandled expression {expr!r}")

    def _check_name(self, expr: ast.Name,
                    ctx: _RuleContext) -> ir.ExprIR:
        name = expr.ident
        if name in ctx.locals:
            return ir.LocalVar(width=ctx.locals[name], name=name)
        if name in ir.PACKET_FIELDS:
            attr, width = ir.PACKET_FIELDS[name]
            return ir.PacketField(width=width, attr=attr)
        if name in ir.STATE_FIELDS:
            return ir.StateField(width=ir.STATE_FIELDS[name],
                                 name=name)
        if name in ir.CONTEXT_FIELDS:
            if name in ("word", "words") and not ctx.foreach:
                self.sink.error(
                    expr.location,
                    f"'{name}' only exists inside a "
                    f"'foreach word' rule")
                return _POISON
            if name == "flexaddr" and not ctx.is_flex:
                self.sink.error(
                    expr.location,
                    "'flexaddr' only exists inside a flex rule")
                return _POISON
            return ir.ContextVar(width=ir.CONTEXT_FIELDS[name],
                                 name=name)
        self.sink.error(
            expr.location, f"unknown identifier '{name}'",
            suggest(name, list(ctx.locals) + list(_IDENT_NAMESPACE)))
        return _POISON

    def _check_unary(self, expr: ast.Unary,
                     ctx: _RuleContext) -> ir.ExprIR:
        operand = self._check_expr(expr.operand, ctx)
        width = 1 if expr.op == "not" else operand.width
        return ir.UnaryIR(width=width, op=expr.op, operand=operand)

    def _check_binary(self, expr: ast.Binary,
                      ctx: _RuleContext) -> ir.ExprIR:
        left = self._check_expr(expr.left, ctx)
        right = self._check_expr(expr.right, ctx)
        op = expr.op
        if op in ("and", "or"):
            return ir.BinaryIR(width=1, op=op, left=left, right=right)
        if op in ("==", "!=", "<", "<=", ">", ">="):
            for const, other, side in ((left, right, "left"),
                                       (right, left, "right")):
                if (isinstance(const, ir.Const)
                        and not isinstance(other, ir.Const)
                        and const.value >= (1 << other.width)):
                    outcome = ("true" if op == "!=" else "false")
                    self.sink.error(
                        expr.location,
                        f"width mismatch: constant {const.value:#x} "
                        f"never fits in the {other.width}-bit other "
                        f"side, so this comparison is always "
                        f"{outcome}")
            return ir.BinaryIR(width=1, op=op, left=left, right=right)
        if op in ("+", "-"):
            width = ir.clamp_width(max(left.width, right.width))
        elif op == "*":
            width = ir.clamp_width(left.width + right.width)
        elif op == "/":
            folded = _fold(right)
            if folded is None or folded <= 0 or folded & (folded - 1):
                self.sink.error(
                    expr.location,
                    "'/' is only synthesizable with a constant "
                    "power-of-two divisor")
                return _POISON
            width = left.width
        elif op == "<<":
            folded = _fold(right)
            if folded is not None:
                width = ir.clamp_width(left.width + folded)
            else:
                width = ir.MAX_WIDTH
        elif op == ">>":
            width = left.width
        elif op == "&":
            width = min(left.width, right.width)
            for side in (left, right):
                if isinstance(side, ir.Const):
                    width = min(
                        width,
                        ir.clamp_width(side.value.bit_length()))
        elif op in ("|", "^"):
            width = max(left.width, right.width)
        else:
            raise AssertionError(f"unhandled operator {op!r}")
        return ir.BinaryIR(width=width, op=op, left=left, right=right)

    def _check_call(self, expr: ast.Call,
                    ctx: _RuleContext) -> ir.ExprIR:
        if expr.func not in ("max", "min"):
            self.sink.error(
                expr.location, f"unknown function '{expr.func}'",
                suggest(expr.func, ("max", "min")))
            return _POISON
        if len(expr.args) != 2:
            self.sink.error(
                expr.location,
                f"'{expr.func}' takes exactly two arguments")
            return _POISON
        args = tuple(self._check_expr(a, ctx) for a in expr.args)
        return ir.CallIR(width=max(a.width for a in args),
                         func=expr.func, args=args)


def _fold(expr: ir.ExprIR) -> int | None:
    """Constant-fold an IR expression; None if it depends on runtime
    state.  Uses the same wrap-at-width semantics as the interpreter
    so 'always false' judgements are exact."""
    mask = (1 << expr.width) - 1
    if isinstance(expr, ir.Const):
        return expr.value & mask
    if isinstance(expr, ir.UnaryIR):
        value = _fold(expr.operand)
        if value is None:
            return None
        if expr.op == "-":
            return (-value) & mask
        if expr.op == "~":
            return (~value) & mask
        return int(not value)
    if isinstance(expr, ir.BinaryIR):
        left = _fold(expr.left)
        right = _fold(expr.right)
        if left is None or right is None:
            return None
        op = expr.op
        if op == "and":
            return int(bool(left) and bool(right))
        if op == "or":
            return int(bool(left) or bool(right))
        if op == "==":
            return int(left == right)
        if op == "!=":
            return int(left != right)
        if op == "<":
            return int(left < right)
        if op == "<=":
            return int(left <= right)
        if op == ">":
            return int(left > right)
        if op == ">=":
            return int(left >= right)
        if op == "+":
            return (left + right) & mask
        if op == "-":
            return (left - right) & mask
        if op == "*":
            return (left * right) & mask
        if op == "/":
            return (left // right) & mask
        if op == "<<":
            return (left << right) & mask
        if op == ">>":
            return (left >> right) & mask
        if op == "&":
            return (left & right) & mask
        if op == "|":
            return (left | right) & mask
        if op == "^":
            return (left ^ right) & mask
    if isinstance(expr, ir.CallIR):
        values = [_fold(a) for a in expr.args]
        if any(v is None for v in values):
            return None
        return (max(values) if expr.func == "max"
                else min(values)) & mask
    return None


def check_spec(spec: ast.Spec,
               source: str | None = None) -> ir.MonitorIR:
    """Validate a parsed spec; raises :class:`MdlError` with every
    collected diagnostic on failure."""
    return Checker(spec, source).check()
