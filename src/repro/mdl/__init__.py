"""MDL — the monitor description language and its compiler.

The paper's headline claim is *flexibility*: FlexCore monitors are
fabric programs, not frozen RTL.  This package makes that claim
reproducible.  A monitor is written as a small declarative spec
(meta-data layout, per-instruction-class rules, trap conditions,
software-visible flex ops); one compiler front end checks it into a
typed rule IR, and two backends consume the *same* IR:

* :mod:`repro.mdl.behavioral` interprets it as a
  :class:`~repro.extensions.base.MonitorExtension` that runs
  unmodified on the simulator (``repro run/trace/inject``,
  checkpointable);
* :mod:`repro.mdl.hardware` lowers it to
  :class:`~repro.fabric.logic.LogicNetwork` primitives plus the
  derived CFGR forwarding policy, feeding the Table-III area, power
  and frequency models.

``specs/`` ships ``umc.mdl`` and ``bc.mdl`` — the paper's UMC and BC
prototypes re-expressed in MDL.  The test suite differential-tests
them against the hand-written classes: identical traps and identical
RunResult digests on every paper workload, LUT counts within 15%.

Typical use::

    from repro.mdl import load_spec
    program = load_spec("examples/redzone.mdl")
    extension = program.create()          # a MonitorExtension
    network = program.hardware()          # a LogicNetwork

or from the CLI: ``python -m repro compile examples/redzone.mdl
--table3`` / ``python -m repro run --mdl examples/redzone.mdl
--extension redzone ...``.
"""

from __future__ import annotations

from pathlib import Path

from repro.mdl.ast import Spec
from repro.mdl.behavioral import CompiledMonitor, MonitorProgram
from repro.mdl.check import check_spec
from repro.mdl.diagnostics import Diagnostic, MdlError, SourceLocation
from repro.mdl.hardware import derive_forward_config, lower_network
from repro.mdl.ir import MonitorIR
from repro.mdl.parser import parse_spec

#: Directory holding the specs this repository ships (the paper's
#: prototypes re-expressed in MDL).
SHIPPED_SPEC_DIR = Path(__file__).resolve().parent / "specs"


def compile_spec(source: str,
                 filename: str = "<spec>") -> MonitorProgram:
    """Compile spec text end-to-end: parse, check, build the program.

    Raises :class:`MdlError` carrying every diagnostic on failure.
    """
    spec = parse_spec(source, filename)
    monitor_ir = check_spec(spec, source)
    return MonitorProgram(monitor_ir, source=source,
                          filename=filename)


def load_spec(path) -> MonitorProgram:
    """Compile a spec file from disk."""
    path = Path(path)
    return compile_spec(path.read_text(), filename=str(path))


def shipped_specs() -> dict[str, Path]:
    """Name -> path of every spec shipped under ``specs/``."""
    return {
        spec_path.stem: spec_path
        for spec_path in sorted(SHIPPED_SPEC_DIR.glob("*.mdl"))
    }


def register_program(program: MonitorProgram, *,
                     replace: bool = False) -> str:
    """Make a compiled monitor available to
    :func:`repro.extensions.create_extension` (and so to every CLI
    command and campaign) under its spec name."""
    from repro.extensions.registry import register_extension

    register_extension(program.name, program.create, replace=replace)
    return program.name


__all__ = [
    "CompiledMonitor",
    "Diagnostic",
    "MdlError",
    "MonitorIR",
    "MonitorProgram",
    "SHIPPED_SPEC_DIR",
    "SourceLocation",
    "Spec",
    "check_spec",
    "compile_spec",
    "derive_forward_config",
    "load_spec",
    "lower_network",
    "parse_spec",
    "register_program",
    "shipped_specs",
]
