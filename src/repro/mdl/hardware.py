"""Hardware backend: typed IR -> :class:`fabric.logic.LogicNetwork`.

The lowering mirrors how the hand-written prototypes describe their
datapaths, so compiled monitors land in the same cost regime (the
differential test holds LUT counts within 15% of the hand-written
networks):

* a monitor with memory tags gets the meta-data access path — the
  base-address adder, the write-mask decoder, the tag-select mux and
  the cache request steering (cf. UMC/BC);
* any *field* write adds the read-modify-write merge path (BC's
  nibble masking): a 64-bit merge gate array and the meta datapath
  select mux;
* rule expressions lower structurally: ``+``/``-`` become adders at
  their IR width, ``==``/``!=`` equality comparators, non-constant
  ``&``/``|``/``^`` gate arrays, variable shifts barrel shifters;
  constant masks/shifts are wiring and cost nothing, boolean glue is
  absorbed into the per-rule check logic;
* control scales with the spec: the FSM grows 4 bits per rule, the
  flex-opf decoder only appears once a monitor handles more than two
  opfs (two fold into the FSM), trap rules add check logic and the
  trap-condition reduce tree;
* the pipeline register width tracks the forwarded data plus the
  meta-data being carried (2 bits per memory-tag bit, 4 per
  register-tag bit); stages = 3 + memory path + read-modify path,
  within the paper's "moderately pipelined (3 to 6 stages)".
"""

from __future__ import annotations

from repro.fabric.logic import LogicNetwork, Prim
from repro.flexcore.cfgr import ForwardConfig, ForwardPolicy
from repro.mdl import ir


def derive_forward_config(monitor_ir: ir.MonitorIR) -> ForwardConfig:
    """The CFGR programming implied by the spec: forward exactly the
    classes some rule reads (plus FLEX), ignore everything else."""
    config = ForwardConfig()
    config.set_classes(monitor_ir.forward_classes,
                       ForwardPolicy.ALWAYS)
    return config


class _DatapathCollector:
    """Tallies the structural primitives a rule body's expressions
    need, grouped by (kind, width, ways)."""

    def __init__(self):
        self.groups: dict[tuple, int] = {}

    def _add(self, kind: Prim, width: int, ways: int = 2,
             count: int = 1) -> None:
        key = (kind, width, ways)
        self.groups[key] = self.groups.get(key, 0) + count

    def stmt(self, stmt: ir.StmtIR) -> None:
        if isinstance(stmt, ir.LetIR):
            self.expr(stmt.value)
        elif isinstance(stmt, ir.MemTagWrite):
            self.expr(stmt.address)
            self.expr(stmt.value)
        elif isinstance(stmt, ir.RegTagWrite):
            self.expr(stmt.index)
            self.expr(stmt.value)
        elif isinstance(stmt, ir.TrapIR):
            self.expr(stmt.condition)
            if stmt.address is not None:
                self.expr(stmt.address)
            for part in stmt.template:
                if not isinstance(part, str):
                    self.expr(part[0])
        elif isinstance(stmt, ir.CyclesIR):
            self.expr(stmt.value)

    def expr(self, expr: ir.ExprIR) -> None:
        if isinstance(expr, ir.MemTagRead):
            self.expr(expr.address)
            return
        if isinstance(expr, ir.RegTagRead):
            self.expr(expr.index)
            return
        if isinstance(expr, ir.UnaryIR):
            # '-' is an adder-class op; '~'/'not' fold into downstream
            # logic.
            if expr.op == "-":
                self._add(Prim.ADDER, expr.width)
            self.expr(expr.operand)
            return
        if isinstance(expr, ir.CallIR):
            width = expr.width
            self._add(Prim.COMPARATOR_MAG, width)
            self._add(Prim.MUX, width, ways=2)
            for arg in expr.args:
                self.expr(arg)
            return
        if not isinstance(expr, ir.BinaryIR):
            return  # leaves are wiring
        left, right = expr.left, expr.right
        const_left = isinstance(left, ir.Const)
        const_right = isinstance(right, ir.Const)
        op = expr.op
        if not (const_left and const_right):
            if op in ("+", "-"):
                self._add(Prim.ADDER, expr.width)
            elif op in ("==", "!="):
                self._add(Prim.COMPARATOR_EQ,
                          max(left.width, right.width, 1))
            elif op in ("<", "<=", ">", ">="):
                self._add(Prim.COMPARATOR_MAG,
                          max(left.width, right.width, 1))
            elif op in ("&", "|", "^"):
                if not (const_left or const_right):
                    self._add(Prim.GATE, expr.width)
            elif op in ("<<", ">>"):
                if not const_right:
                    self._add(Prim.SHIFTER, expr.width)
            elif op == "*":
                if const_left or const_right:
                    const = left if const_left else right
                    if bin(const.value).count("1") > 1:
                        self._add(Prim.ADDER, expr.width)
                else:
                    self._add(Prim.MULTIPLIER,
                              max(left.width, right.width))
            # '/', 'and', 'or': constant shifts / boolean glue — free.
        self.expr(left)
        self.expr(right)


def lower_network(monitor_ir: ir.MonitorIR) -> LogicNetwork:
    """Lower a checked monitor to the structural primitives the
    area/power/frequency models consume."""
    mem_bits = monitor_ir.memory_tag_bits
    reg_bits = monitor_ir.register_tag_bits
    rules = monitor_ir.rules
    n_rules = len(rules)
    trap_rules = sum(
        1 for rule in rules
        if any(isinstance(s, ir.TrapIR) for s in rule.body)
    )
    has_rmw = any(
        isinstance(s, ir.MemTagWrite) and s.hi is not None
        for rule in rules for s in rule.body
    )
    flex_opfs = {opf for rule in rules for opf in rule.flex_opfs}

    stages = 3 + (1 if mem_bits else 0) + (1 if has_rmw else 0)
    stages = min(stages, 6)
    net = LogicNetwork(
        monitor_ir.name,
        pipeline_stages=stages,
        notes=f"compiled from MDL spec '{monitor_ir.name}' "
              f"({n_rules} rules)",
    )

    if mem_bits:
        net.add(Prim.ADDER, width=32, label="tag address base add")
        net.add(Prim.DECODER, width=5, label="write-mask decode")
        net.add(Prim.MUX, width=mem_bits, ways=32 // mem_bits,
                label="tag select")
        net.add(Prim.GATE, width=28, label="cache request mux/steer")
        if has_rmw:
            net.add(Prim.GATE, width=64,
                    label="read-modify merge path")
            net.add(Prim.MUX, width=32, ways=4,
                    label="meta datapath select")

    if len(flex_opfs) > 2:
        net.add(Prim.DECODER, width=4, label="flex opf decode")

    collector = _DatapathCollector()
    for rule in rules:
        for stmt in rule.body:
            collector.stmt(stmt)
    for (kind, width, ways), count in sorted(
            collector.groups.items(),
            key=lambda item: (item[0][0].value, item[0][1],
                              item[0][2])):
        net.add(kind, width=width, count=count, ways=ways,
                label=f"rule datapath {kind.value}{width}")

    net.add(Prim.GATE, width=8 + 4 * n_rules, label="control FSM")
    net.add(Prim.GATE, width=16, label="FIFO handshake")
    if trap_rules:
        net.add(Prim.GATE, width=8 * trap_rules,
                label="check/trap logic")
        net.add(Prim.REDUCE, width=8, label="trap condition")

    pipeline_width = 32 + 2 * mem_bits + 4 * reg_bits
    net.add(Prim.REGISTER, width=pipeline_width, count=stages,
            label="pipeline regs")
    net.add(Prim.REGISTER, width=33 + reg_bits,
            label="base/policy registers")
    return net
