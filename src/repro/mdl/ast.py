"""Untyped syntax tree for the monitor description language.

The parser builds these nodes directly from the token stream; every
node keeps the :class:`~repro.mdl.diagnostics.SourceLocation` of its
first token so the checker can anchor diagnostics.  Width/type
information only appears one layer down, in :mod:`repro.mdl.ir`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mdl.diagnostics import SourceLocation

# -- expressions -----------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    location: SourceLocation


@dataclass(frozen=True)
class Number(Expr):
    value: int


@dataclass(frozen=True)
class Name(Expr):
    ident: str


@dataclass(frozen=True)
class MemRef(Expr):
    """``mem[addr]`` or ``mem[addr].field`` — the per-word memory tag
    (or one named bit-field of it)."""

    address: Expr
    field_name: str | None = None
    field_location: SourceLocation | None = None


@dataclass(frozen=True)
class RegRef(Expr):
    """``reg[index]`` — a shadow register file entry."""

    index: Expr


@dataclass(frozen=True)
class FieldAccess(Expr):
    """``<expr>.field`` on a let-bound tag value."""

    base: Expr
    field_name: str


@dataclass(frozen=True)
class Unary(Expr):
    op: str  # "-" | "~" | "not"
    operand: Expr


@dataclass(frozen=True)
class Binary(Expr):
    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Call(Expr):
    func: str
    args: tuple[Expr, ...]


# -- statements ------------------------------------------------------------


@dataclass(frozen=True)
class Stmt:
    location: SourceLocation


@dataclass(frozen=True)
class Let(Stmt):
    name: str
    value: Expr


@dataclass(frozen=True)
class Assign(Stmt):
    """``mem[e] = v``, ``mem[e].field = v`` or ``reg[e] = v``."""

    target: Expr  # MemRef or RegRef
    value: Expr


@dataclass(frozen=True)
class Trap(Stmt):
    """``trap "kind" when <cond> [at <addr>]: "message {expr}"``."""

    kind: str
    condition: Expr
    address: Expr | None
    template: str
    template_location: SourceLocation


@dataclass(frozen=True)
class Cycles(Stmt):
    value: Expr


# -- rules and the spec ----------------------------------------------------


@dataclass(frozen=True)
class Selector:
    """One event in a rule header: ``load``, ``store``, an instruction
    class name, or ``flex OPF_NAME``."""

    kind: str  # "load" | "store" | "class" | "flex"
    name: str  # class name or flex opf name ("" for load/store)
    location: SourceLocation


@dataclass(frozen=True)
class Rule:
    selectors: tuple[Selector, ...]
    foreach_word: bool
    body: tuple[Stmt, ...]
    location: SourceLocation


@dataclass(frozen=True)
class MetaItem:
    name: str
    value: int
    location: SourceLocation


@dataclass(frozen=True)
class FieldDecl:
    """``name = hi:lo`` inside a ``fields`` block."""

    name: str
    hi: int
    lo: int
    location: SourceLocation


@dataclass(frozen=True)
class InitItem:
    """``text = v`` / ``data = v`` inside an ``init`` block."""

    section: str
    value: int
    location: SourceLocation


@dataclass
class Spec:
    """A whole parsed monitor description."""

    name: str
    description: str
    location: SourceLocation
    meta: list[MetaItem] = field(default_factory=list)
    fields: list[FieldDecl] = field(default_factory=list)
    init: list[InitItem] = field(default_factory=list)
    forward: list[Selector] | None = None
    rules: list[Rule] = field(default_factory=list)
