"""Source locations and diagnostics for the monitor description
language.

Every token the lexer produces carries a :class:`SourceLocation`; the
parser and the checker attach those locations to the errors they
report, so a bad spec fails with a caret pointing at the offending
text instead of a Python traceback:

.. code-block:: text

    redzone.mdl:9:21: error: unknown field 'lo' on an 8-bit tag
        trap "oob" when t.lo != 0: "..."
                          ^
    hint: did you mean 'loc'?

The checker collects *all* diagnostics before failing, so one compile
round-trips every problem in the spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class SourceLocation:
    """A 1-based (line, column) position in a spec file."""

    filename: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


@dataclass(frozen=True)
class Diagnostic:
    """One compile error, anchored to a source location."""

    location: SourceLocation
    message: str
    hint: str = ""

    def render(self, source: str | None = None) -> str:
        """Human-readable rendering with the source line and a caret."""
        lines = [f"{self.location}: error: {self.message}"]
        if source is not None:
            raw = source.splitlines()
            if 1 <= self.location.line <= len(raw):
                text = raw[self.location.line - 1]
                lines.append(f"    {text}")
                lines.append(f"    {' ' * (self.location.column - 1)}^")
        if self.hint:
            lines.append(f"hint: {self.hint}")
        return "\n".join(lines)


class MdlError(Exception):
    """Raised when a spec fails to parse or validate.

    Carries every collected :class:`Diagnostic` plus the source text,
    so ``str(err)`` renders the full caret-annotated report.
    """

    def __init__(self, diagnostics: list[Diagnostic],
                 source: str | None = None):
        self.diagnostics = list(diagnostics)
        self.source = source
        super().__init__(self.render())

    def render(self) -> str:
        return "\n".join(
            diag.render(self.source) for diag in self.diagnostics
        )

    def __str__(self) -> str:
        return self.render()


@dataclass
class DiagnosticSink:
    """Collector the checker funnels problems into: validation keeps
    going after the first error so a spec's problems surface in one
    compile instead of one-at-a-time."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def error(self, location: SourceLocation, message: str,
              hint: str = "") -> None:
        self.diagnostics.append(Diagnostic(location, message, hint))

    def __bool__(self) -> bool:
        return bool(self.diagnostics)

    def raise_if_errors(self, source: str | None = None) -> None:
        if self.diagnostics:
            raise MdlError(self.diagnostics, source)


def suggest(name: str, candidates) -> str:
    """'did you mean ...?' hint text, or '' if nothing is close."""
    import difflib

    matches = difflib.get_close_matches(name, list(candidates), n=1,
                                        cutoff=0.6)
    if matches:
        return f"did you mean '{matches[0]}'?"
    return ""
