"""Recursive-descent parser for the monitor description language.

Grammar (EBNF, ``#`` comments and whitespace are trivia)::

    spec      = "monitor" IDENT [STRING] { section } ;
    section   = meta | fields | init | forward | rule ;
    meta      = "meta"    "{" { IDENT "=" INT } "}" ;
    fields    = "fields"  "{" { IDENT "=" INT ":" INT } "}" ;
    init      = "init"    "{" { IDENT "=" INT } "}" ;
    forward   = "forward" "{" selector { "," selector } "}" ;
    rule      = "on" selector { "," selector }
                ["foreach" "word"] "{" { stmt } "}" ;
    selector  = "load" | "store" | "flex" [IDENT] | IDENT ;
    stmt      = "let" IDENT "=" expr
              | "trap" STRING "when" expr ["at" expr] ":" STRING
              | "cycles" expr
              | ("mem" | "reg") "[" expr "]" ["." IDENT] "=" expr ;

Expressions use conventional precedence (``or`` < ``and`` < ``not`` <
comparisons < ``|`` < ``^`` < ``&`` < shifts < ``+ -`` < ``* /`` <
unary < postfix ``.field``); comparisons do not chain.  Trap message
templates embed ``{expr}`` / ``{expr:#x}`` fragments that are parsed
with this same expression grammar by the checker.

Syntax errors are fail-fast (one :class:`MdlError` with a caret);
semantic errors are collected by :mod:`repro.mdl.check`.
"""

from __future__ import annotations

from repro.mdl import ast
from repro.mdl.diagnostics import Diagnostic, MdlError, SourceLocation
from repro.mdl.lexer import KEYWORDS, Lexer, Token

_COMPARISONS = ("==", "!=", "<=", ">=", "<", ">")


class Parser:
    def __init__(self, source: str, filename: str = "<spec>"):
        self.source = source
        self.filename = filename
        self.toks = Lexer(source, filename).tokens()
        self.pos = 0

    # -- token plumbing ---------------------------------------------------

    def peek(self) -> Token:
        return self.toks[self.pos]

    def next(self) -> Token:
        tok = self.toks[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def at(self, text: str) -> bool:
        return self.peek().text == text and self.peek().kind != "string"

    def accept(self, text: str) -> Token | None:
        if self.at(text):
            return self.next()
        return None

    def expect(self, text: str, what: str = "") -> Token:
        tok = self.peek()
        if tok.text == text and tok.kind != "string":
            return self.next()
        want = what or f"'{text}'"
        self._fail(tok, f"expected {want}, found {self._describe(tok)}")

    def expect_kind(self, kind: str, what: str) -> Token:
        tok = self.peek()
        if tok.kind == kind:
            return self.next()
        self._fail(tok, f"expected {what}, found {self._describe(tok)}")

    @staticmethod
    def _describe(tok: Token) -> str:
        if tok.kind == "eof":
            return "end of file"
        if tok.kind == "string":
            return "string literal"
        return f"'{tok.text}'"

    def _fail(self, tok: Token, message: str) -> None:
        raise MdlError([Diagnostic(tok.location, message)], self.source)

    def _ident(self, what: str = "identifier") -> Token:
        tok = self.peek()
        if tok.kind != "ident":
            self._fail(tok, f"expected {what}, "
                            f"found {self._describe(tok)}")
        if tok.text in KEYWORDS:
            self._fail(tok, f"'{tok.text}' is a reserved word and "
                            f"cannot be used as {what}")
        return self.next()

    # -- top level --------------------------------------------------------

    def parse_spec(self) -> ast.Spec:
        head = self.expect("monitor", "'monitor' at the top of the spec")
        name = self._ident("the monitor name")
        description = ""
        if self.peek().kind == "string":
            description = self.next().text
        spec = ast.Spec(name=name.text, description=description,
                        location=head.location)
        while self.peek().kind != "eof":
            tok = self.peek()
            if self.at("meta"):
                self._parse_meta(spec)
            elif self.at("fields"):
                self._parse_fields(spec)
            elif self.at("init"):
                self._parse_init(spec)
            elif self.at("forward"):
                self._parse_forward(spec)
            elif self.at("on"):
                spec.rules.append(self._parse_rule())
            else:
                self._fail(tok, "expected a 'meta', 'fields', 'init', "
                                "'forward' or 'on' section, found "
                                f"{self._describe(tok)}")
        return spec

    def _parse_meta(self, spec: ast.Spec) -> None:
        self.next()
        self.expect("{")
        while not self.accept("}"):
            name = self.expect_kind("ident", "a meta attribute name")
            self.expect("=")
            value = self.expect_kind("int", "an integer value")
            spec.meta.append(ast.MetaItem(name.text, value.value,
                                          name.location))

    def _parse_fields(self, spec: ast.Spec) -> None:
        self.next()
        self.expect("{")
        while not self.accept("}"):
            name = self._ident("a field name")
            self.expect("=")
            hi = self.expect_kind("int", "the field's high bit")
            self.expect(":")
            lo = self.expect_kind("int", "the field's low bit")
            spec.fields.append(ast.FieldDecl(name.text, hi.value,
                                             lo.value, name.location))

    def _parse_init(self, spec: ast.Spec) -> None:
        self.next()
        self.expect("{")
        while not self.accept("}"):
            section = self.expect_kind("ident",
                                       "'text' or 'data'")
            self.expect("=")
            value = self.expect_kind("int", "an integer tag value")
            spec.init.append(ast.InitItem(section.text, value.value,
                                          section.location))

    def _parse_forward(self, spec: ast.Spec) -> None:
        self.next()
        self.expect("{")
        selectors = [self._parse_selector()]
        while self.accept(","):
            selectors.append(self._parse_selector())
        self.expect("}")
        spec.forward = selectors

    def _parse_selector(self) -> ast.Selector:
        tok = self.peek()
        if self.at("flex"):
            self.next()
            name = ""
            nxt = self.peek()
            if (nxt.kind == "ident" and nxt.text not in KEYWORDS
                    and not self.at("load") and not self.at("store")):
                name = self.next().text
            return ast.Selector("flex", name, tok.location)
        ident = self.expect_kind(
            "ident", "an instruction selector "
                     "('load', 'store', 'flex' or a class name)")
        if ident.text in ("load", "store"):
            return ast.Selector(ident.text, "", ident.location)
        if ident.text in KEYWORDS:
            self._fail(ident, f"'{ident.text}' cannot start an "
                              "instruction selector")
        return ast.Selector("class", ident.text, ident.location)

    def _parse_rule(self) -> ast.Rule:
        head = self.next()  # "on"
        selectors = [self._parse_selector()]
        while self.accept(","):
            selectors.append(self._parse_selector())
        foreach = False
        if self.at("foreach"):
            self.next()
            word = self.expect_kind("ident", "'word' after 'foreach'")
            if word.text != "word":
                self._fail(word, "only 'foreach word' iteration is "
                                 "supported")
            foreach = True
        self.expect("{")
        body: list[ast.Stmt] = []
        while not self.accept("}"):
            body.append(self._parse_stmt())
        return ast.Rule(tuple(selectors), foreach, tuple(body),
                        head.location)

    # -- statements -------------------------------------------------------

    def _parse_stmt(self) -> ast.Stmt:
        tok = self.peek()
        if self.at("let"):
            self.next()
            name = self._ident("a let-binding name")
            self.expect("=")
            value = self.parse_expr()
            return ast.Let(tok.location, name.text, value)
        if self.at("trap"):
            return self._parse_trap()
        if self.at("cycles"):
            self.next()
            return ast.Cycles(tok.location, self.parse_expr())
        if self.at("mem") or self.at("reg"):
            target = self._parse_postfix()
            self.expect("=")
            value = self.parse_expr()
            return ast.Assign(tok.location, target, value)
        self._fail(tok, "expected a statement ('let', 'trap', "
                        "'cycles', or a 'mem'/'reg' assignment), "
                        f"found {self._describe(tok)}")

    def _parse_trap(self) -> ast.Trap:
        head = self.next()  # "trap"
        kind = self.expect_kind("string",
                                "the trap kind as a string literal")
        self.expect("when")
        condition = self.parse_expr()
        address = None
        if self.at("at"):
            self.next()
            address = self.parse_expr()
        self.expect(":")
        template = self.expect_kind("string", "the trap message "
                                              "template string")
        return ast.Trap(head.location, kind.text, condition, address,
                        template.text, template.location)

    # -- expressions ------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self.at("or"):
            op = self.next()
            right = self._parse_and()
            left = ast.Binary(op.location, "or", left, right)
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while self.at("and"):
            op = self.next()
            right = self._parse_not()
            left = ast.Binary(op.location, "and", left, right)
        return left

    def _parse_not(self) -> ast.Expr:
        if self.at("not"):
            op = self.next()
            return ast.Unary(op.location, "not", self._parse_not())
        return self._parse_cmp()

    def _parse_cmp(self) -> ast.Expr:
        left = self._parse_bitor()
        for cmp_op in _COMPARISONS:
            if self.at(cmp_op):
                op = self.next()
                right = self._parse_bitor()
                return ast.Binary(op.location, cmp_op, left, right)
        return left

    def _parse_bitor(self) -> ast.Expr:
        left = self._parse_bitxor()
        while self.at("|"):
            op = self.next()
            left = ast.Binary(op.location, "|", left,
                              self._parse_bitxor())
        return left

    def _parse_bitxor(self) -> ast.Expr:
        left = self._parse_bitand()
        while self.at("^"):
            op = self.next()
            left = ast.Binary(op.location, "^", left,
                              self._parse_bitand())
        return left

    def _parse_bitand(self) -> ast.Expr:
        left = self._parse_shift()
        while self.at("&"):
            op = self.next()
            left = ast.Binary(op.location, "&", left,
                              self._parse_shift())
        return left

    def _parse_shift(self) -> ast.Expr:
        left = self._parse_add()
        while self.at("<<") or self.at(">>"):
            op = self.next()
            left = ast.Binary(op.location, op.text, left,
                              self._parse_add())
        return left

    def _parse_add(self) -> ast.Expr:
        left = self._parse_mul()
        while self.at("+") or self.at("-"):
            op = self.next()
            left = ast.Binary(op.location, op.text, left,
                              self._parse_mul())
        return left

    def _parse_mul(self) -> ast.Expr:
        left = self._parse_unary()
        while self.at("*") or self.at("/"):
            op = self.next()
            left = ast.Binary(op.location, op.text, left,
                              self._parse_unary())
        return left

    def _parse_unary(self) -> ast.Expr:
        if self.at("-") or self.at("~"):
            op = self.next()
            return ast.Unary(op.location, op.text, self._parse_unary())
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while self.at("."):
            self.next()
            name = self._ident("a field name after '.'")
            if isinstance(expr, ast.MemRef) and expr.field_name is None:
                expr = ast.MemRef(expr.location, expr.address,
                                  name.text, name.location)
            else:
                expr = ast.FieldAccess(name.location, expr, name.text)
        return expr

    def _parse_primary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind == "int":
            self.next()
            return ast.Number(tok.location, tok.value)
        if self.at("("):
            self.next()
            expr = self.parse_expr()
            self.expect(")")
            return expr
        if self.at("mem") or self.at("reg"):
            self.next()
            self.expect("[")
            index = self.parse_expr()
            self.expect("]")
            if tok.text == "mem":
                return ast.MemRef(tok.location, index)
            return ast.RegRef(tok.location, index)
        if tok.kind == "ident" and tok.text not in KEYWORDS:
            self.next()
            if self.at("("):
                self.next()
                args = []
                if not self.at(")"):
                    args.append(self.parse_expr())
                    while self.accept(","):
                        args.append(self.parse_expr())
                self.expect(")")
                return ast.Call(tok.location, tok.text, tuple(args))
            return ast.Name(tok.location, tok.text)
        self._fail(tok, f"expected an expression, "
                        f"found {self._describe(tok)}")


def parse_spec(source: str, filename: str = "<spec>") -> ast.Spec:
    """Parse a spec's source text into an untyped syntax tree."""
    return Parser(source, filename).parse_spec()


def parse_embedded_expr(text: str, filename: str,
                        location: SourceLocation) -> ast.Expr:
    """Parse one ``{expr}`` fragment from a trap message template.

    Diagnostics inside the fragment are anchored to the template
    string's token (the fragment has no precise column of its own).
    """
    parser = Parser(text, filename)
    # Re-anchor every token to the template's location so caret
    # diagnostics point at the enclosing string literal.
    parser.toks = [
        Token(t.kind, t.text, t.value, location) for t in parser.toks
    ]
    expr = parser.parse_expr()
    trailing = parser.peek()
    if trailing.kind != "eof":
        raise MdlError(
            [Diagnostic(location,
                        f"trailing '{trailing.text}' after the "
                        f"embedded expression '{text}'")],
            text)
    return expr
