"""Behavioral backend: typed IR -> a runnable MonitorExtension.

Each IR expression/statement compiles once into a Python closure of
signature ``fn(monitor, packet, outcome, env)``; :meth:`process` then
just walks the pre-compiled statement lists for the packet's class
(or flex opf).  The semantics are bit-exact with the hand-written
prototypes — the differential tests demand *identical* RunResult
fingerprints, which pins down every observable:

* each ``mem[...]`` r-value records exactly one meta-cache read at
  ``TagStore.meta_address``; a whole-tag assignment records one write
  with ``TagStore.write_mask``; a *field* assignment is a functional
  read-modify-write that records only the masked write (the fabric's
  bit-granular write port, Section III-D);
* ``reg[...]`` reads/writes touch only the shadow register file (it
  lives inside the fabric — no cache traffic);
* arithmetic wraps at the IR width; boolean operators evaluate both
  sides (hardware has no short-circuit, and skipping a side could
  skip its meta-cache read);
* a firing ``trap`` statement *overwrites* the packet's trap (UMC's
  double-word load can trap per word; the last faulting word wins,
  while the interface latches the first trapping packet);
* FLEX packets go through :meth:`MonitorExtension.handle_flex` first
  (base/policy/tagval latches), then any ``on flex OPF`` rules.
"""

from __future__ import annotations

from typing import Callable

from repro.extensions.base import (
    DEFAULT_META_BASE,
    MonitorExtension,
    PacketOutcome,
)
from repro.flexcore.cfgr import ForwardConfig, ForwardPolicy
from repro.flexcore.packet import TracePacket
from repro.isa.opcodes import InstrClass
from repro.mdl import ir

_EvalFn = Callable[..., int]


# -- expression compilation ------------------------------------------------


def _compile_expr(expr: ir.ExprIR) -> _EvalFn:
    mask = (1 << expr.width) - 1

    if isinstance(expr, ir.Const):
        value = expr.value & mask
        return lambda mon, pkt, out, env: value

    if isinstance(expr, ir.PacketField):
        attr = expr.attr
        if attr == "branch":  # bool on the packet, int in the IR
            return lambda mon, pkt, out, env: int(pkt.branch)
        return lambda mon, pkt, out, env: getattr(pkt, attr)

    if isinstance(expr, ir.StateField):
        name = expr.name
        return lambda mon, pkt, out, env: getattr(mon, name)

    if isinstance(expr, ir.ContextVar):
        name = expr.name
        return lambda mon, pkt, out, env: env[name]

    if isinstance(expr, ir.LocalVar):
        name = expr.name
        return lambda mon, pkt, out, env: env[name]

    if isinstance(expr, ir.MemTagRead):
        address = _compile_expr(expr.address)
        hi, lo = expr.hi, expr.lo

        if hi is None:
            def read_tag(mon, pkt, out, env):
                addr = address(mon, pkt, out, env)
                tags = mon.mem_tags
                out.read(tags.meta_address(addr))
                return tags.read(addr)
            return read_tag

        field_mask = (1 << (hi - lo + 1)) - 1

        def read_field(mon, pkt, out, env):
            addr = address(mon, pkt, out, env)
            tags = mon.mem_tags
            out.read(tags.meta_address(addr))
            return (tags.read(addr) >> lo) & field_mask
        return read_field

    if isinstance(expr, ir.RegTagRead):
        index = _compile_expr(expr.index)
        return (lambda mon, pkt, out, env:
                mon.shadow.read(index(mon, pkt, out, env)))

    if isinstance(expr, ir.UnaryIR):
        operand = _compile_expr(expr.operand)
        if expr.op == "-":
            return (lambda mon, pkt, out, env:
                    (-operand(mon, pkt, out, env)) & mask)
        if expr.op == "~":
            return (lambda mon, pkt, out, env:
                    (~operand(mon, pkt, out, env)) & mask)
        return (lambda mon, pkt, out, env:
                int(not operand(mon, pkt, out, env)))

    if isinstance(expr, ir.BinaryIR):
        left = _compile_expr(expr.left)
        right = _compile_expr(expr.right)
        op = expr.op
        table: dict[str, _EvalFn] = {
            "+": lambda m, p, o, e: (left(m, p, o, e)
                                     + right(m, p, o, e)) & mask,
            "-": lambda m, p, o, e: (left(m, p, o, e)
                                     - right(m, p, o, e)) & mask,
            "*": lambda m, p, o, e: (left(m, p, o, e)
                                     * right(m, p, o, e)) & mask,
            "/": lambda m, p, o, e: (left(m, p, o, e)
                                     // right(m, p, o, e)) & mask,
            "<<": lambda m, p, o, e: (left(m, p, o, e)
                                      << right(m, p, o, e)) & mask,
            ">>": lambda m, p, o, e: (left(m, p, o, e)
                                      >> right(m, p, o, e)) & mask,
            "&": lambda m, p, o, e: (left(m, p, o, e)
                                     & right(m, p, o, e)) & mask,
            "|": lambda m, p, o, e: (left(m, p, o, e)
                                     | right(m, p, o, e)) & mask,
            "^": lambda m, p, o, e: (left(m, p, o, e)
                                     ^ right(m, p, o, e)) & mask,
            "==": lambda m, p, o, e: int(left(m, p, o, e)
                                         == right(m, p, o, e)),
            "!=": lambda m, p, o, e: int(left(m, p, o, e)
                                         != right(m, p, o, e)),
            "<": lambda m, p, o, e: int(left(m, p, o, e)
                                        < right(m, p, o, e)),
            "<=": lambda m, p, o, e: int(left(m, p, o, e)
                                         <= right(m, p, o, e)),
            ">": lambda m, p, o, e: int(left(m, p, o, e)
                                        > right(m, p, o, e)),
            ">=": lambda m, p, o, e: int(left(m, p, o, e)
                                         >= right(m, p, o, e)),
            # both sides always evaluate: no short-circuit in hardware
            "and": lambda m, p, o, e: int(bool(left(m, p, o, e))
                                          & bool(right(m, p, o, e))),
            "or": lambda m, p, o, e: int(bool(left(m, p, o, e))
                                         | bool(right(m, p, o, e))),
        }
        return table[op]

    if isinstance(expr, ir.CallIR):
        args = [_compile_expr(a) for a in expr.args]
        first, second = args
        if expr.func == "max":
            return (lambda m, p, o, e:
                    max(first(m, p, o, e), second(m, p, o, e)))
        return (lambda m, p, o, e:
                min(first(m, p, o, e), second(m, p, o, e)))

    raise AssertionError(f"unhandled IR expression {expr!r}")


# -- statement compilation -------------------------------------------------


def _compile_stmt(stmt: ir.StmtIR) -> _EvalFn:
    if isinstance(stmt, ir.LetIR):
        value = _compile_expr(stmt.value)
        name = stmt.name

        def run_let(mon, pkt, out, env):
            env[name] = value(mon, pkt, out, env)
        return run_let

    if isinstance(stmt, ir.MemTagWrite):
        address = _compile_expr(stmt.address)
        value = _compile_expr(stmt.value)
        hi, lo = stmt.hi, stmt.lo

        if hi is None:
            def run_write(mon, pkt, out, env):
                addr = address(mon, pkt, out, env)
                tags = mon.mem_tags
                tags.write(addr, value(mon, pkt, out, env))
                out.write(tags.meta_address(addr),
                          tags.write_mask(addr))
            return run_write

        field_mask = (1 << (hi - lo + 1)) - 1
        keep_mask = ~(field_mask << lo)

        def run_field_write(mon, pkt, out, env):
            addr = address(mon, pkt, out, env)
            tags = mon.mem_tags
            merged = ((tags.read(addr) & keep_mask)
                      | ((value(mon, pkt, out, env) & field_mask)
                         << lo))
            tags.write(addr, merged)
            # Bit-granular masked write of just this field's lanes
            # within the 32-bit meta word (cf. BC's nibble masks).
            slot = (addr >> 2) % (32 // tags.tag_bits)
            write_mask = ((field_mask << lo)
                          << (slot * tags.tag_bits)) & 0xFFFFFFFF
            out.write(tags.meta_address(addr), write_mask)
        return run_field_write

    if isinstance(stmt, ir.RegTagWrite):
        index = _compile_expr(stmt.index)
        value = _compile_expr(stmt.value)

        def run_reg_write(mon, pkt, out, env):
            mon.shadow.write(index(mon, pkt, out, env),
                             value(mon, pkt, out, env))
        return run_reg_write

    if isinstance(stmt, ir.TrapIR):
        condition = _compile_expr(stmt.condition)
        address = (_compile_expr(stmt.address)
                   if stmt.address is not None else None)
        kind = stmt.kind
        parts: list = [
            part if isinstance(part, str)
            else (_compile_expr(part[0]), part[1])
            for part in stmt.template
        ]

        def run_trap(mon, pkt, out, env):
            if not condition(mon, pkt, out, env):
                return
            message = "".join(
                part if isinstance(part, str)
                else format(part[0](mon, pkt, out, env), part[1])
                for part in parts
            )
            addr = (address(mon, pkt, out, env)
                    if address is not None else 0)
            out.trap = mon.trap(pkt, kind, message, addr=addr)
        return run_trap

    if isinstance(stmt, ir.CyclesIR):
        value = _compile_expr(stmt.value)

        def run_cycles(mon, pkt, out, env):
            out.fabric_cycles = int(value(mon, pkt, out, env))
        return run_cycles

    raise AssertionError(f"unhandled IR statement {stmt!r}")


# -- the compiled extension ------------------------------------------------


class MonitorProgram:
    """A compiled monitor spec: a factory for extension instances plus
    the shared hardware view.  One program can be instantiated many
    times (runs, campaigns, workers) — compilation happens once."""

    def __init__(self, monitor_ir: ir.MonitorIR,
                 source: str | None = None,
                 filename: str = "<spec>"):
        self.ir = monitor_ir
        self.source = source
        self.filename = filename
        self.by_class: dict[InstrClass, list] = {}
        self.by_opf: dict[int, list] = {}
        for rule in monitor_ir.rules:
            body = [_compile_stmt(s) for s in rule.body]
            for cls in rule.classes:
                self.by_class.setdefault(cls, []).append(
                    (rule.foreach_word, body))
            for opf in rule.flex_opfs:
                self.by_opf.setdefault(opf, []).append(body)

    @property
    def name(self) -> str:
        return self.ir.name

    def create(self,
               meta_base: int = DEFAULT_META_BASE
               ) -> "CompiledMonitor":
        """Factory with the :func:`create_extension` signature —
        suitable for :func:`repro.extensions.register_extension`."""
        return CompiledMonitor(self, meta_base)

    def forward_config(self) -> ForwardConfig:
        config = ForwardConfig()
        config.set_classes(self.ir.forward_classes,
                           ForwardPolicy.ALWAYS)
        return config

    def hardware(self):
        from repro.mdl.hardware import lower_network
        return lower_network(self.ir)


class CompiledMonitor(MonitorExtension):
    """A MonitorExtension interpreted from compiled MDL rules.

    Behaves exactly like a hand-written subclass: same construction
    and attach/forward/process/hardware protocol, checkpointable via
    the inherited snapshot machinery (all its state lives in the base
    class: tag store, shadow file, latches)."""

    def __init__(self, program: MonitorProgram,
                 meta_base: int = DEFAULT_META_BASE):
        self.program = program
        monitor_ir = program.ir
        # Instance attributes must shadow the class-level defaults
        # *before* the base constructor sizes the tag store.
        self.name = monitor_ir.name
        self.description = (monitor_ir.description
                            or f"MDL-compiled monitor "
                               f"'{monitor_ir.name}'")
        self.register_tag_bits = monitor_ir.register_tag_bits
        self.memory_tag_bits = monitor_ir.memory_tag_bits
        super().__init__(meta_base)

    def forward_config(self) -> ForwardConfig:
        return self.program.forward_config()

    def on_program_load(self, program, stack_top: int) -> None:
        tags = self.mem_tags
        if tags is None:
            return
        for section, value in self.program.ir.init:
            if section == "text":
                tags.fill_range(program.text_base,
                                program.text_size, value)
            elif section == "data" and program.data:
                tags.fill_range(program.data_base,
                                len(program.data), value)

    def process(self, packet: TracePacket) -> PacketOutcome:
        if packet.opcode == InstrClass.FLEX:
            outcome = self.handle_flex(packet)
            bodies = self.program.by_opf.get(packet.opf)
            if bodies:
                flexaddr = (packet.srcv1 + packet.srcv2) & 0xFFFFFFFF
                for body in bodies:
                    env = {"flexaddr": flexaddr}
                    for stmt in body:
                        stmt(self, packet, outcome, env)
            return outcome

        outcome = PacketOutcome()
        for foreach, body in self.program.by_class.get(
                packet.opcode, ()):
            if foreach:
                words = max(1, (packet.access_size or 4) // 4)
                base = packet.addr
                for index in range(words):
                    env = {"word": base + 4 * index, "words": words}
                    for stmt in body:
                        stmt(self, packet, outcome, env)
            else:
                env: dict = {}
                for stmt in body:
                    stmt(self, packet, outcome, env)
        return outcome

    def hardware(self):
        return self.program.hardware()

    def __repr__(self) -> str:
        return (f"<CompiledMonitor {self.name!r} "
                f"({len(self.program.ir.rules)} rules)>")
