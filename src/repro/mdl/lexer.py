"""Tokenizer for the monitor description language.

The language is whitespace-insensitive (statements are delimited by
their leading keyword, blocks by braces), so the lexer emits a flat
token stream: identifiers, integer literals (decimal / hex / binary),
double-quoted strings, and punctuation.  ``#`` starts a comment that
runs to end of line.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mdl.diagnostics import Diagnostic, MdlError, SourceLocation

#: Multi-character operators first so maximal munch works.
_PUNCT = (
    "<<", ">>", "==", "!=", "<=", ">=",
    "{", "}", "[", "]", "(", ")", ",", ":", ".", "=", "!",
    "<", ">", "&", "|", "^", "+", "-", "*", "/", "~",
)

#: Words with grammatical meaning; they cannot name ``let`` bindings.
KEYWORDS = frozenset({
    "monitor", "meta", "fields", "init", "forward", "on", "flex",
    "foreach", "let", "trap", "when", "at", "cycles", "mem", "reg",
    "and", "or", "not",
})


@dataclass(frozen=True)
class Token:
    kind: str  # "ident" | "int" | "string" | "punct" | "eof"
    text: str
    value: int | str | None
    location: SourceLocation


class Lexer:
    def __init__(self, source: str, filename: str = "<spec>"):
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.column = 1

    def _location(self) -> SourceLocation:
        return SourceLocation(self.filename, self.line, self.column)

    def _error(self, message: str) -> MdlError:
        return MdlError([Diagnostic(self._location(), message)],
                        self.source)

    def _advance(self, n: int = 1) -> None:
        for _ in range(n):
            if self.pos < len(self.source):
                if self.source[self.pos] == "\n":
                    self.line += 1
                    self.column = 1
                else:
                    self.column += 1
                self.pos += 1

    def _skip_trivia(self) -> None:
        source = self.source
        while self.pos < len(source):
            char = source[self.pos]
            if char in " \t\r\n":
                self._advance()
            elif char == "#":
                while (self.pos < len(source)
                       and source[self.pos] != "\n"):
                    self._advance()
            else:
                return

    def _lex_string(self) -> Token:
        loc = self._location()
        self._advance()  # opening quote
        chars: list[str] = []
        while True:
            if self.pos >= len(self.source):
                raise MdlError(
                    [Diagnostic(loc, "unterminated string literal")],
                    self.source)
            char = self.source[self.pos]
            if char == "\n":
                raise MdlError(
                    [Diagnostic(loc, "unterminated string literal")],
                    self.source)
            if char == '"':
                self._advance()
                break
            if char == "\\":
                self._advance()
                if self.pos >= len(self.source):
                    raise self._error("dangling escape in string")
                escape = self.source[self.pos]
                mapped = {"n": "\n", "t": "\t", '"': '"',
                          "\\": "\\"}.get(escape)
                if mapped is None:
                    raise self._error(f"unknown escape '\\{escape}'")
                chars.append(mapped)
                self._advance()
            else:
                chars.append(char)
                self._advance()
        return Token("string", "".join(chars), "".join(chars), loc)

    def _lex_number(self) -> Token:
        loc = self._location()
        start = self.pos
        source = self.source
        if source.startswith(("0x", "0X"), self.pos):
            self._advance(2)
            while (self.pos < len(source)
                   and source[self.pos] in "0123456789abcdefABCDEF_"):
                self._advance()
        elif source.startswith(("0b", "0B"), self.pos):
            self._advance(2)
            while self.pos < len(source) and source[self.pos] in "01_":
                self._advance()
        else:
            while self.pos < len(source) and source[self.pos].isdigit():
                self._advance()
        text = source[start:self.pos]
        try:
            value = int(text.replace("_", ""), 0)
        except ValueError:
            raise MdlError(
                [Diagnostic(loc, f"malformed number '{text}'")],
                self.source) from None
        return Token("int", text, value, loc)

    def tokens(self) -> list[Token]:
        out: list[Token] = []
        source = self.source
        while True:
            self._skip_trivia()
            if self.pos >= len(source):
                out.append(Token("eof", "", None, self._location()))
                return out
            char = source[self.pos]
            if char == '"':
                out.append(self._lex_string())
            elif char.isdigit():
                out.append(self._lex_number())
            elif char.isalpha() or char == "_":
                loc = self._location()
                start = self.pos
                while (self.pos < len(source)
                       and (source[self.pos].isalnum()
                            or source[self.pos] == "_")):
                    self._advance()
                text = source[start:self.pos]
                out.append(Token("ident", text, text, loc))
            else:
                loc = self._location()
                for punct in _PUNCT:
                    if source.startswith(punct, self.pos):
                        self._advance(len(punct))
                        out.append(Token("punct", punct, punct, loc))
                        break
                else:
                    raise self._error(f"unexpected character {char!r}")


def tokenize(source: str, filename: str = "<spec>") -> list[Token]:
    return Lexer(source, filename).tokens()
