"""Timing cache models.

These caches track only tags and replacement state — data values live
in :class:`~repro.memory.backing.SparseMemory`.  This is the standard
trace-driven split: functional state and timing state are decoupled,
which keeps the simulator fast while preserving hit/miss behaviour.

Two models are provided:

* :class:`Cache` — generic set-associative, LRU, write-through with
  no-allocate-on-write (the Leon3 L1 policy, Section V-A).
* :class:`MetadataCache` — the FlexCore meta-data cache (Section
  III-D): identical to a regular data cache except writes carry a
  32-bit *write-enable bit mask* so the fabric can update tags smaller
  than a word without a read-modify-write sequence.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CacheConfig:
    """Geometry of one cache."""

    size_bytes: int = 32 * 1024
    line_bytes: int = 32
    associativity: int = 4

    def __post_init__(self):
        if self.size_bytes % (self.line_bytes * self.associativity):
            raise ValueError("cache size must divide evenly into sets")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.associativity)


@dataclass
class CacheStats:
    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0

    @property
    def accesses(self) -> int:
        return (self.read_hits + self.read_misses
                + self.write_hits + self.write_misses)

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0

    @property
    def hit_rate(self) -> float:
        """Complement of :attr:`miss_rate` (1.0 when never accessed)."""
        return 1.0 - self.miss_rate


class Cache:
    """Set-associative, LRU, write-through, no-allocate timing cache."""

    def __init__(self, config: CacheConfig | None = None):
        self.config = config or CacheConfig()
        self.stats = CacheStats()
        # Per-set list of resident line tags, most recently used last.
        self._sets: list[list[int]] = [
            [] for _ in range(self.config.num_sets)
        ]
        line = self.config.line_bytes
        self._offset_bits = line.bit_length() - 1

    def _locate(self, addr: int) -> tuple[list[int], int]:
        line_addr = addr >> self._offset_bits
        set_index = line_addr % self.config.num_sets
        return self._sets[set_index], line_addr

    def read(self, addr: int) -> bool:
        """Look up ``addr`` for a read; fill on miss. Returns hit?"""
        ways, tag = self._locate(addr)
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            self.stats.read_hits += 1
            return True
        self.stats.read_misses += 1
        ways.append(tag)
        if len(ways) > self.config.associativity:
            ways.pop(0)
        return False

    def write(self, addr: int) -> bool:
        """Look up ``addr`` for a write.  Write-through/no-allocate:
        a miss does not fill the line.  Returns hit?"""
        ways, tag = self._locate(addr)
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            self.stats.write_hits += 1
            return True
        self.stats.write_misses += 1
        return False

    def contains(self, addr: int) -> bool:
        ways, tag = self._locate(addr)
        return tag in ways

    def flush(self) -> None:
        for ways in self._sets:
            ways.clear()

    # ------------------------------------------------------------------
    # Snapshot/restore (crash-safe checkpointing): resident tags *and*
    # LRU order are state — a restored run must hit and miss exactly
    # like the uninterrupted one.

    def snapshot_state(self) -> dict:
        return {
            "sets": [list(ways) for ways in self._sets],
            "stats": vars(self.stats).copy(),
        }

    def restore_state(self, state: dict) -> None:
        sets = state["sets"]
        if len(sets) != len(self._sets):
            raise ValueError(
                f"cache snapshot has {len(sets)} sets, this cache "
                f"has {len(self._sets)}"
            )
        for ways, saved in zip(self._sets, sets):
            ways[:] = saved
        self.stats = CacheStats(**state["stats"])


#: Default meta-data cache geometry from the paper's evaluation:
#: "a 4-KB meta-data cache with 32-B lines".
META_CACHE_CONFIG = CacheConfig(size_bytes=4 * 1024, line_bytes=32,
                                associativity=4)


class MetadataCache(Cache):
    """The meta-data L1 with bit-granular writes.

    Functionally the bit mask lives in the extension's tag store; here
    we account for the *structural* benefit: a masked write is a single
    cache access, whereas without the feature the fabric would need an
    explicit read followed by a write (two accesses) for any tag
    narrower than a word.  ``bit_writes`` counts how many accesses the
    mask feature saved, which the ablation bench reports.
    """

    def __init__(self, config: CacheConfig | None = None):
        super().__init__(config or META_CACHE_CONFIG)
        self.bit_writes = 0

    def write_bits(self, addr: int, mask: int) -> bool:
        """A masked (sub-word) tag write.  Returns hit?"""
        if not 0 <= mask <= 0xFFFFFFFF:
            raise ValueError("write-enable mask must be a 32-bit value")
        if mask != 0xFFFFFFFF:
            self.bit_writes += 1
        return self.write(addr)

    def snapshot_state(self) -> dict:
        state = super().snapshot_state()
        state["bit_writes"] = self.bit_writes
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        self.bit_writes = state["bit_writes"]
