"""Shared memory bus and SDRAM timing model.

The Leon3 prototype has no L2 cache: the L1 instruction cache, L1 data
cache (write-through), and the FlexCore meta-data cache all share one
AMBA-style bus to off-chip SDRAM.  Section V-C of the paper attributes
part of the monitoring overhead to exactly this contention: "meta-data
refills from memory hog the memory bus shared by the meta-data cache
and the main core caches."

The model is discrete-event: the bus is a single serially-reusable
resource with a ``busy_until`` timestamp (in core-clock cycles).  Each
transaction waits for the bus, occupies it for its duration, and the
caller learns its completion time.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class BusConfig:
    """Timing parameters, in main-core clock cycles."""

    dram_latency: int = 30  # first-word latency of an SDRAM read
    word_cycles: int = 1  # per-word burst transfer time
    write_cycles: int = 4  # posted single-word write occupancy
    line_words: int = 8  # words per cache line (32-byte lines)

    @property
    def refill_cycles(self) -> int:
        """Total occupancy of a full line refill."""
        return self.dram_latency + self.line_words * self.word_cycles


@dataclass
class BusStats:
    """Accounting of bus usage per requester name."""

    transactions: dict[str, int] = field(default_factory=dict)
    busy_cycles: dict[str, int] = field(default_factory=dict)
    wait_cycles: dict[str, int] = field(default_factory=dict)

    def record(self, who: str, wait: int, duration: int) -> None:
        self.transactions[who] = self.transactions.get(who, 0) + 1
        self.busy_cycles[who] = self.busy_cycles.get(who, 0) + duration
        self.wait_cycles[who] = self.wait_cycles.get(who, 0) + wait

    @property
    def total_busy(self) -> int:
        return sum(self.busy_cycles.values())


class SharedBus:
    """Single shared bus; transactions are serialized in arrival order.

    This is intentionally simple (no split transactions, no priorities)
    — the same fidelity level the performance discussion in the paper
    relies on: contention shows up as increased access latency for
    whoever arrives while the bus is busy.
    """

    def __init__(self, config: BusConfig | None = None):
        self.config = config or BusConfig()
        self.busy_until = 0
        self.stats = BusStats()
        # Telemetry sinks (None = disabled, the zero-overhead default;
        # the only cost then is one None check per transaction).
        self._tracer = None
        self._metrics = None
        self._m_wait = None

    def attach_telemetry(self, telemetry) -> None:
        """Wire a :class:`repro.telemetry.Telemetry` bundle in."""
        self._tracer = telemetry.tracer
        if telemetry.metrics.enabled:
            self._metrics = telemetry.metrics
            self._m_wait = telemetry.metrics.counter(
                "bus.arbitration_wait"
            )

    def acquire(self, now: int, duration: int, who: str) -> int:
        """Occupy the bus for ``duration`` cycles starting no earlier
        than ``now``; return the completion time."""
        start = max(now, self.busy_until)
        self.busy_until = start + duration
        self.stats.record(who, start - now, duration)
        if self._tracer is not None:
            self._tracer.span(start, duration, "bus", f"bus.{who}",
                              wait=start - now)
        if self._metrics is not None:
            self._m_wait.inc(start - now)
            self._metrics.counter(f"bus.grants.{who}").inc()
        return self.busy_until

    # Convenience wrappers -------------------------------------------------

    def line_refill(self, now: int, who: str) -> int:
        """A full cache-line refill from SDRAM; returns completion time."""
        return self.acquire(now, self.config.refill_cycles, who)

    def word_write(self, now: int, who: str) -> int:
        """A posted write-through word write; returns completion time."""
        return self.acquire(now, self.config.write_cycles, who)

    def reset(self) -> None:
        self.busy_until = 0
        self.stats = BusStats()

    # ------------------------------------------------------------------
    # Snapshot/restore (crash-safe checkpointing).

    def snapshot_state(self) -> dict:
        return {
            "busy_until": self.busy_until,
            "transactions": dict(self.stats.transactions),
            "busy_cycles": dict(self.stats.busy_cycles),
            "wait_cycles": dict(self.stats.wait_cycles),
        }

    def restore_state(self, state: dict) -> None:
        self.busy_until = state["busy_until"]
        self.stats = BusStats(
            transactions=dict(state["transactions"]),
            busy_cycles=dict(state["busy_cycles"]),
            wait_cycles=dict(state["wait_cycles"]),
        )


class StoreBuffer:
    """Write buffer between a write-through cache and the bus.

    Stores are posted into the buffer and drain to the bus in order.
    The core only stalls when the buffer is full — the dominant effect
    that makes stores cheap on Leon3 despite the write-through policy.
    """

    def __init__(self, bus: SharedBus, depth: int = 8, who: str = "store"):
        self.bus = bus
        self.depth = depth
        self.who = who
        self._drain_times: list[int] = []
        self.stall_cycles = 0

    def push(self, now: int) -> int:
        """Post a store at time ``now``; return the (possibly delayed)
        time at which the core may proceed."""
        self._drain_times = [t for t in self._drain_times if t > now]
        proceed = now
        if len(self._drain_times) >= self.depth:
            # Stall until the oldest entry drains.
            proceed = self._drain_times[0]
            self.stall_cycles += proceed - now
            self._drain_times = [t for t in self._drain_times if t > proceed]
        done = self.bus.word_write(proceed, self.who)
        self._drain_times.append(done)
        return proceed

    def drain_time(self) -> int:
        """Time at which every buffered store has reached memory."""
        return self._drain_times[-1] if self._drain_times else 0

    def reset(self) -> None:
        self._drain_times = []
        self.stall_cycles = 0

    def snapshot_state(self) -> dict:
        return {
            "drains": list(self._drain_times),
            "stall_cycles": self.stall_cycles,
        }

    def restore_state(self, state: dict) -> None:
        self._drain_times = list(state["drains"])
        self.stall_cycles = state["stall_cycles"]
