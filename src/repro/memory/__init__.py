"""Memory hierarchy: functional backing store, timing caches, bus."""

from repro.memory.backing import MemoryFault, SparseMemory
from repro.memory.bus import BusConfig, BusStats, SharedBus, StoreBuffer
from repro.memory.cache import (
    META_CACHE_CONFIG,
    Cache,
    CacheConfig,
    CacheStats,
    MetadataCache,
)

__all__ = [
    "BusConfig",
    "BusStats",
    "Cache",
    "CacheConfig",
    "CacheStats",
    "META_CACHE_CONFIG",
    "MemoryFault",
    "MetadataCache",
    "SharedBus",
    "SparseMemory",
    "StoreBuffer",
]
