"""Functional backing memory.

A sparse, byte-addressable, big-endian (SPARC) 32-bit address space.
The timing side of the memory system (caches, bus, SDRAM latency) is
modelled separately in :mod:`repro.memory.cache` and
:mod:`repro.memory.bus`; this module only stores values.
"""

from __future__ import annotations

PAGE_BITS = 12
PAGE_SIZE = 1 << PAGE_BITS
PAGE_MASK = PAGE_SIZE - 1


class MemoryFault(Exception):
    """Raised on a misaligned access."""


class SparseMemory:
    """Byte-addressable sparse memory with big-endian word accessors."""

    def __init__(self):
        self._pages: dict[int, bytearray] = {}

    def _page(self, addr: int) -> bytearray:
        index = addr >> PAGE_BITS
        page = self._pages.get(index)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[index] = page
        return page

    # ------------------------------------------------------------------
    # Byte-granularity primitives.

    def read_byte(self, addr: int) -> int:
        addr &= 0xFFFFFFFF
        return self._page(addr)[addr & PAGE_MASK]

    def write_byte(self, addr: int, value: int) -> None:
        addr &= 0xFFFFFFFF
        self._page(addr)[addr & PAGE_MASK] = value & 0xFF

    def read_bytes(self, addr: int, length: int) -> bytes:
        return bytes(self.read_byte(addr + i) for i in range(length))

    def write_bytes(self, addr: int, data: bytes) -> None:
        for i, byte in enumerate(data):
            self.write_byte(addr + i, byte)

    # ------------------------------------------------------------------
    # Sized big-endian accessors with SPARC alignment rules.

    def read_word(self, addr: int) -> int:
        if addr & 3:
            raise MemoryFault(f"misaligned word read at {addr:#x}")
        return int.from_bytes(self.read_bytes(addr, 4), "big")

    def write_word(self, addr: int, value: int) -> None:
        if addr & 3:
            raise MemoryFault(f"misaligned word write at {addr:#x}")
        self.write_bytes(addr, (value & 0xFFFFFFFF).to_bytes(4, "big"))

    def read_half(self, addr: int) -> int:
        if addr & 1:
            raise MemoryFault(f"misaligned half read at {addr:#x}")
        return int.from_bytes(self.read_bytes(addr, 2), "big")

    def write_half(self, addr: int, value: int) -> None:
        if addr & 1:
            raise MemoryFault(f"misaligned half write at {addr:#x}")
        self.write_bytes(addr, (value & 0xFFFF).to_bytes(2, "big"))

    def load_program(self, program) -> None:
        """Copy an assembled :class:`~repro.isa.assembler.Program`'s
        text and data sections into memory."""
        for i, word in enumerate(program.text):
            self.write_word(program.text_base + 4 * i, word)
        self.write_bytes(program.data_base, program.data)

    # ------------------------------------------------------------------
    # Snapshot/restore (crash-safe checkpointing).

    _ZERO_PAGE = bytes(PAGE_SIZE)

    def snapshot_state(self, baseline: "SparseMemory | None" = None) -> dict:
        """Capture memory as a sparse delta against ``baseline``.

        Only pages that differ from the baseline image (typically the
        freshly loaded program) are stored, which keeps checkpoints of
        a 4-GB address space at the size of the working set actually
        written.  With no baseline, every non-zero page is stored.
        """
        base_pages = baseline._pages if baseline is not None else {}
        pages: dict[int, bytes] = {}
        for index, page in self._pages.items():
            reference = base_pages.get(index, self._ZERO_PAGE)
            if page != reference:
                pages[index] = bytes(page)
        return {"pages": pages}

    def restore_state(
        self, state: dict, baseline: "SparseMemory | None" = None
    ) -> None:
        """Restore from a delta snapshot: reset to the baseline image,
        then overlay the changed pages.  Mutates in place."""
        self._pages.clear()
        if baseline is not None:
            for index, page in baseline._pages.items():
                self._pages[index] = bytearray(page)
        for index, page in state["pages"].items():
            self._pages[int(index)] = bytearray(page)
