"""Near-zero-overhead metrics registry.

One instrumentation API for every layer of the simulator: counters,
gauges and fixed-bucket histograms, keyed by hierarchical dotted names
(``fifo.occupancy``, ``bus.wait.core-dcache``, ``mcache.refill_cycles``).

The design goal is that *disabled* telemetry costs nothing measurable:

* components are wired with ``telemetry=None`` by default and guard
  every instrumentation site with a single ``is not None`` check that
  lives inside branches the timing model already takes (miss paths,
  stall paths), never on the per-instruction fast path;
* for code that wants to hold an instrument unconditionally,
  :data:`NULL_METRICS` hands out shared no-op instruments, so the call
  site stays branch-free and the no-op method is the only cost.

Instruments are interned by name: asking the registry twice for
``fifo.pushes`` returns the same :class:`Counter`, which is what lets
hot paths resolve instruments once at construction time and then touch
only plain attribute increments.
"""

from __future__ import annotations

from bisect import bisect_left


class Counter:
    """A monotonically increasing count (events, cycles, bytes)."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def snapshot(self):
        return self.value


class Gauge:
    """A point-in-time value (occupancy, high-water mark)."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def track_max(self, value) -> None:
        """Retain the largest value ever seen (high-water marks)."""
        if value > self.value:
            self.value = value

    def snapshot(self):
        return self.value


#: Default histogram buckets: powers of two up to 64 Ki.  Good enough
#: for latencies and occupancies; pass explicit buckets for anything
#: with a known range.
DEFAULT_BUCKETS = tuple(1 << i for i in range(17))


class Histogram:
    """Fixed-bucket histogram (upper bounds, plus an overflow bucket).

    ``counts[i]`` is the number of observations ``<= buckets[i]``;
    ``counts[-1]`` collects everything larger than the last bound.
    """

    __slots__ = ("name", "buckets", "counts", "total", "count")
    kind = "histogram"

    def __init__(self, name: str, buckets=DEFAULT_BUCKETS):
        if not buckets:
            raise ValueError("histogram needs at least one bucket bound")
        bounds = tuple(buckets)
        if list(bounds) != sorted(bounds):
            raise ValueError("histogram buckets must be ascending")
        self.name = name
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0
        self.count = 0

    def observe(self, value) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (the upper bound of
        the bucket holding the q-th observation; +inf overflow
        reports the largest finite bound)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, bound in enumerate(self.buckets):
            seen += self.counts[i]
            if seen >= rank:
                return float(bound)
        return float(self.buckets[-1])

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "buckets": {
                **{
                    str(bound): self.counts[i]
                    for i, bound in enumerate(self.buckets)
                },
                "+inf": self.counts[-1],
            },
        }


class MetricsRegistry:
    """Interning factory and store for every instrument of one run."""

    enabled = True

    def __init__(self):
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _intern(self, name: str, kind, factory):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} is a "
                f"{type(instrument).__name__}, not a {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._intern(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._intern(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str, buckets=DEFAULT_BUCKETS) -> Histogram:
        return self._intern(
            name, Histogram, lambda: Histogram(name, buckets)
        )

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __getitem__(self, name: str):
        return self._instruments[name]

    def snapshot(self) -> dict:
        """Plain-data dump of every instrument, sorted by name."""
        return {
            name: instrument.snapshot()
            for name, instrument in sorted(self._instruments.items())
        }

    def instruments(self) -> list:
        """Every live instrument, sorted by name (exposition
        renderers need the instrument objects, not just values, to
        know counter vs gauge vs histogram)."""
        return [instrument for _name, instrument
                in sorted(self._instruments.items())]

    def format(self) -> str:
        """Human rendering grouped by the first name segment."""
        lines: list[str] = []
        group = None
        for name, instrument in sorted(self._instruments.items()):
            prefix = name.split(".", 1)[0]
            if prefix != group:
                if group is not None:
                    lines.append("")
                group = prefix
            if isinstance(instrument, Histogram):
                lines.append(
                    f"{name:<32} count={instrument.count} "
                    f"mean={instrument.mean:.1f}"
                )
                for bound, n in instrument.snapshot()["buckets"].items():
                    if n:
                        lines.append(f"{'':<34}<= {bound}: {n}")
            else:
                value = instrument.value
                shown = (f"{value:.1f}" if isinstance(value, float)
                         else str(value))
                lines.append(f"{name:<32} {shown}")
        return "\n".join(lines)


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram."""

    __slots__ = ()
    name = "null"
    kind = "null"
    value = 0
    count = 0
    total = 0
    mean = 0.0

    def inc(self, amount=1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def track_max(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass

    def snapshot(self):
        return 0


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """The off switch: hands out shared no-op instruments.

    ``enabled`` is False so callers can skip whole instrumentation
    blocks; callers that don't bother still pay only a no-op call.
    """

    enabled = False

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, buckets=DEFAULT_BUCKETS):
        return _NULL_INSTRUMENT

    def __contains__(self, name: str) -> bool:
        return False

    def snapshot(self) -> dict:
        return {}

    def instruments(self) -> list:
        return []

    def format(self) -> str:
        return ""


#: Process-wide disabled registry; safe to share (it holds no state).
NULL_METRICS = NullMetrics()
